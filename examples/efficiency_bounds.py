#!/usr/bin/env python
"""How close to optimal are these schedules, in absolute terms?

Relative comparisons (algorithm A vs algorithm B) are the paper's
currency, but a production user wants an absolute yardstick.  The
bandwidth-centric steady-state bound (`repro.analysis`) provides one: no
schedule can beat `W / ρ*`, where ρ* is the platform's optimal sustained
throughput.  This example:

1. shows the bound and the bandwidth-centric principle on a heterogeneous
   cluster (slow-but-well-connected beats fast-but-starved);
2. measures every scheduler's *efficiency* (bound / makespan) on one
   platform, with and without prediction errors;
3. demonstrates UMR's asymptotic optimality: efficiency → 1 as W grows.

Run:  python examples/efficiency_bounds.py
"""

from repro import (
    RUMR,
    UMR,
    EqualSplit,
    Factoring,
    MultiInstallment,
    NormalErrorModel,
    NoError,
    PlatformSpec,
    WorkerSpec,
    homogeneous_platform,
    simulate,
)
from repro.analysis import efficiency, makespan_lower_bound, steady_state_throughput


def main() -> None:
    # 1. The bandwidth-centric principle.
    cluster = PlatformSpec(
        [
            WorkerSpec(S=10.0, B=2.0),   # fast compute, starved link
            WorkerSpec(S=1.0, B=100.0),  # slow compute, fat link
            WorkerSpec(S=2.0, B=20.0),
        ]
    )
    alloc = steady_state_throughput(cluster)
    print("steady-state allocation (units/s):")
    for i, (w, x) in enumerate(zip(cluster, alloc.rates)):
        tag = "saturated" if i in alloc.saturated else "link-limited"
        print(f"  worker {i}: S={w.S:5.1f} B={w.B:6.1f} -> x={x:6.2f}  ({tag})")
    print(f"  total throughput ρ* = {alloc.throughput:.2f} units/s, "
          f"link utilization {alloc.link_utilization:.0%}")
    print("  note: the slow worker with the fat link is saturated first —")
    print("  feeding it costs the master almost nothing.\n")

    # 2. Efficiency table on a Table-1 platform.
    p = homogeneous_platform(16, S=1.0, bandwidth_factor=1.5, cLat=0.3, nLat=0.1)
    W = 1000.0
    bound = makespan_lower_bound(p, W)
    print(f"platform N=16, W={W:g}: lower bound = {bound:.2f} s")
    print(f"{'scheduler':<12} {'no error':>10} {'error=0.3':>10}   (efficiency)")
    for sched_factory in (
        UMR, lambda: RUMR(known_error=0.3), lambda: MultiInstallment(3),
        Factoring, EqualSplit,
    ):
        clean = simulate(p, W, sched_factory(), NoError())
        noisy_eff = sum(
            efficiency(simulate(p, W, sched_factory(), NormalErrorModel(0.3), seed=s))
            for s in range(10)
        ) / 10
        print(f"{sched_factory().name:<12} {efficiency(clean):>9.1%} {noisy_eff:>10.1%}")

    # 3. UMR's asymptotic optimality.
    print("\nUMR efficiency vs workload size (no error):")
    for w in (100, 1000, 10000, 100000):
        result = simulate(p, float(w), UMR(), NoError())
        print(f"  W={w:>6}: {efficiency(result):6.1%}")
    print("\nPer-round overheads amortize: UMR approaches the steady-state")
    print("bound, which is exactly why multi-round beats one-round scheduling.")


if __name__ == "__main__":
    main()
