#!/usr/bin/env python
"""Online error estimation — the paper's future-work loop, running.

The paper closes (§6) by planning an APST integration that would
"determine empirical performance prediction error distributions … as the
application runs" and use them "on-the-fly".  AdaptiveRUMR implements
that: it starts from a plain UMR plan, watches completion announcements,
estimates the error magnitude from completion *intervals*, and switches
to a factoring tail when the remaining work matches the estimate.

This example shows the estimator converging during a run and compares
three levels of knowledge across the error axis:

* UMR            — assumes perfect predictions;
* RUMR(oracle)   — told the true error;
* RUMR_80        — the paper's fixed fallback when the error is unknown;
* AdaptiveRUMR   — estimates it online.

Run:  python examples/adaptive_scheduling.py
"""

import statistics

from repro import (
    RUMR,
    UMR,
    AdaptiveRUMR,
    NormalErrorModel,
    homogeneous_platform,
    simulate,
)


class ProbedAdaptive(AdaptiveRUMR):
    """AdaptiveRUMR that keeps its last source for inspection."""

    def create_source(self, platform, total_work):
        self.last_source = super().create_source(platform, total_work)
        return self.last_source


def main() -> None:
    platform = homogeneous_platform(
        20, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1
    )
    total = 1000.0

    # One run, dissected: what did the estimator see and decide?
    true_error = 0.35
    probe = ProbedAdaptive()
    result = simulate(platform, total, probe, NormalErrorModel(true_error), seed=3)
    src = probe.last_source
    print("single run dissection")
    print(f"  true error magnitude        : {true_error:.2f}")
    print(f"  online estimate at decision : {src.final_estimate:.3f}")
    print(f"  switched to phase 2 at      : t = {src.switched_at:.1f} s "
          f"(makespan {result.makespan:.1f} s)")
    tail = result.phase_work().get("adaptive-p2", 0.0)
    print(f"  workload given to the tail  : {tail:.0f} / {total:.0f} units\n")

    # The comparison table.
    print(f"{'error':>6} {'UMR':>9} {'RUMR(oracle)':>13} {'RUMR_80':>9} {'Adaptive':>9}")
    for error in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        def mean(sched_factory):
            return statistics.mean(
                simulate(
                    platform, total, sched_factory(), NormalErrorModel(error), seed=s
                ).makespan
                for s in range(15)
            )
        print(
            f"{error:>6.2f} {mean(UMR):>9.2f} "
            f"{mean(lambda: RUMR(known_error=error)):>13.2f} "
            f"{mean(lambda: RUMR(known_error=error, phase1_fraction=0.8)):>9.2f} "
            f"{mean(AdaptiveRUMR):>9.2f}"
        )
    print(
        "\nReading: the adaptive scheduler pays nothing at error 0 (it never\n"
        "switches on a phantom signal) and tracks the oracle elsewhere —\n"
        "the measurement the paper's future-work section asked for."
    )


if __name__ == "__main__":
    main()
