#!/usr/bin/env python
"""A miniature Figure 4(a): relative makespan vs prediction error.

Runs the paper's seven algorithms over a pocket-sized parameter grid and
prints the mean makespan of each competitor normalized to RUMR, plus an
ASCII rendering of the curves — the same pipeline the full benchmark
harness uses, at interactive scale.

Run:  python examples/error_sensitivity.py
"""

from repro.experiments import fig4a, run_sweep, smoke_grid
from repro.experiments.report import ascii_chart, figure_csv
from repro.experiments.runner import eta_progress


def main() -> None:
    grid = smoke_grid().restrict(repetitions=5)
    total = grid.num_simulations(7)
    print(f"Sweeping {grid.num_platforms} platforms × {len(grid.errors)} error "
          f"levels × {grid.repetitions} repetitions × 7 algorithms "
          f"= {total} simulations…\n")

    results = run_sweep(grid, progress=eta_progress())
    figure = fig4a(results)

    print(ascii_chart(figure))
    print(figure_csv(figure))
    print("Values above 1.0: RUMR is faster.  Compare with the paper's "
          "Figure 4(a):\n"
          "  - UMR starts at parity (slightly better at small error) and "
          "degrades as error grows;\n"
          "  - Factoring starts far above and approaches RUMR from above;\n"
          "  - MI-x stays well above RUMR throughout.")


if __name__ == "__main__":
    main()
