#!/usr/bin/env python
"""Scheduling on a heterogeneous cluster with resource selection.

The paper evaluates the homogeneous case but UMR/RUMR are defined for
heterogeneous platforms.  This example builds a mixed cluster (fast/slow
workers, uneven links), shows the full-utilization check and the greedy
worker selection, and compares schedules on the selected subset.  It also
demonstrates per-worker chunk scaling: within a UMR round every worker
computes for the same time, so faster workers receive bigger chunks.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import (
    RUMR,
    UMR,
    Factoring,
    NormalErrorModel,
    PlatformSpec,
    WorkerSpec,
    select_workers,
    simulate,
    solve_umr,
)
from repro.platform import full_utilization_fraction


def main() -> None:
    # A mixed bag: some fast well-connected nodes, some slow stragglers,
    # and one node so poorly connected it is not worth feeding.
    cluster = PlatformSpec(
        [
            WorkerSpec(S=2.0, B=16.0, cLat=0.1, nLat=0.05),   # fast node
            WorkerSpec(S=2.0, B=16.0, cLat=0.1, nLat=0.05),
            WorkerSpec(S=1.0, B=10.0, cLat=0.2, nLat=0.10),   # mid node
            WorkerSpec(S=1.0, B=10.0, cLat=0.2, nLat=0.10),
            WorkerSpec(S=0.5, B=6.0, cLat=0.3, nLat=0.15),    # slow node
            WorkerSpec(S=4.0, B=1.5, cLat=0.2, nLat=0.30),    # starved link!
        ]
    )
    total = 1500.0

    frac = full_utilization_fraction(cluster)
    print(f"Full cluster: N={cluster.N}, sum(S_i/B_i) = {frac:.3f} "
          f"({'feasible' if frac < 1 else 'INFEASIBLE for multi-round'})")

    chosen = select_workers(cluster)
    selected = cluster.subset(chosen)
    print(f"Selected workers: {chosen} "
          f"(sum(S_i/B_i) = {full_utilization_fraction(selected):.3f})\n")

    # Within a round, chunk_i = S_i * (T_j - cLat_i): equal compute time.
    plan = solve_umr(selected, total)
    print(f"UMR plan on the selected subset: {plan.num_rounds} rounds")
    print(f"{'worker':>6} {'S':>5} {'round-0 chunk':>14} {'round-0 time':>13}")
    for i, (w, chunk) in enumerate(zip(selected, plan.chunk_sizes[0])):
        t = w.cLat + chunk / w.S
        print(f"{i:>6} {w.S:>5.1f} {chunk:>14.2f} {t:>13.3f}")

    error = 0.25
    print(f"\nmakespans under {error:.0%} prediction error (mean of 15 runs):")
    for scheduler in (RUMR(known_error=error), UMR(), Factoring()):
        selected_ms = sum(
            simulate(selected, total, scheduler, NormalErrorModel(error), seed=s).makespan
            for s in range(15)
        ) / 15
        full_ms = sum(
            simulate(cluster, total, scheduler, NormalErrorModel(error), seed=s).makespan
            for s in range(15)
        ) / 15
        print(f"  {scheduler.name:<12} selected subset: {selected_ms:7.1f} s   "
              f"full cluster: {full_ms:7.1f} s")
    print("\nDropping the starved-link node helps the multi-round schedulers:")
    print("their no-idle pipelines cannot afford a transfer that monopolizes")
    print("the master's link for little computation in return.  Self-scheduled")
    print("Factoring, by contrast, only feeds that node when it is idle anyway,")
    print("so it can still profit from the extra (fast) processor.")


if __name__ == "__main__":
    main()
