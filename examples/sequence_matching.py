#!/usr/bin/env python
"""BLAST-style sequence matching — heavy-tailed, hard-to-predict costs.

One query is compared against a 100k-sequence dictionary.  Sequence
lengths are Pareto-distributed, so a chunk's compute time is genuinely
data-dependent: this is the regime the Factoring idea (and RUMR's phase 2)
exists for.  The example sweeps the tail index from "mild" to "nasty" and
shows the crossover: UMR wins when costs are predictable, RUMR holds on as
they become heavy-tailed, and pure Factoring only catches up at the
extreme end.

Run:  python examples/sequence_matching.py
"""

from repro import (
    RUMR,
    UMR,
    Factoring,
    NormalErrorModel,
    homogeneous_platform,
    simulate,
)
from repro.workloads import SequenceMatching


def mean_makespan(platform, total, scheduler, error, seeds=12):
    return sum(
        simulate(platform, total, scheduler, NormalErrorModel(error), seed=s).makespan
        for s in range(seeds)
    ) / seeds


def main() -> None:
    hardware = homogeneous_platform(
        24, S=1.0, bandwidth_factor=1.4, cLat=0.25, nLat=0.05
    )

    print("Sweep over dictionary tail heaviness (Pareto index; lower = heavier):\n")
    print(f"{'tail':>5} {'error':>7} | {'RUMR':>9} {'UMR':>9} {'Factoring':>10} | winner")
    print("-" * 60)
    for tail in (8.0, 4.0, 3.0, 2.5, 2.2):
        workload = SequenceMatching(
            num_sequences=20000, mean_length=350.0, tail_index=tail
        )
        platform = workload.calibrated_platform(hardware)
        total = workload.total_units
        # Profile-style error estimate at a typical self-scheduling chunk.
        error = workload.estimate_error(
            chunk_units=total / (4 * platform.N), samples=120, seed=11
        )
        rows = {
            "RUMR": mean_makespan(platform, total, RUMR(known_error=error), error),
            "UMR": mean_makespan(platform, total, UMR(), error),
            "Factoring": mean_makespan(platform, total, Factoring(), error),
        }
        winner = min(rows, key=rows.get)
        print(
            f"{tail:>5.1f} {error:>7.3f} | {rows['RUMR']:>9.1f} {rows['UMR']:>9.1f} "
            f"{rows['Factoring']:>10.1f} | {winner}"
        )

    print(
        "\nReading: with a light tail (predictable chunks) UMR and RUMR tie;"
        "\nas the tail gets heavy, UMR's precomputed schedule degrades while"
        "\nRUMR's factoring tail absorbs the stragglers."
    )


if __name__ == "__main__":
    main()
