#!/usr/bin/env python
"""Quickstart: schedule one divisible workload and compare algorithms.

Builds the paper's platform model (20 workers, Table-1-style parameters),
runs RUMR and its competitors on a 1000-unit workload under 20% prediction
error, and prints makespans plus a dispatch timeline for RUMR.

Run:  python examples/quickstart.py
"""

from repro import (
    RUMR,
    UMR,
    Factoring,
    MultiInstallment,
    NormalErrorModel,
    homogeneous_platform,
    simulate,
    validate_schedule,
)


def main() -> None:
    # A homogeneous cluster: 20 workers at 1 unit/s, master link at
    # 1.8 * N units/s (inside the full-utilization region), with 0.3 s
    # computation start-up and 0.1 s per-transfer latency.
    platform = homogeneous_platform(
        20, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1
    )
    total_work = 1000.0
    error = 0.2  # 20% prediction uncertainty

    print(f"Platform: N={platform.N}, B={platform[0].B:g} units/s, "
          f"cLat={platform[0].cLat}s, nLat={platform[0].nLat}s")
    print(f"Workload: {total_work:g} units, prediction error = {error:.0%}\n")

    schedulers = [
        RUMR(known_error=error),
        UMR(),
        MultiInstallment(3),
        Factoring(),
    ]

    print(f"{'algorithm':<12} {'mean makespan':>14} {'chunks':>8}")
    print("-" * 38)
    baseline = None
    for scheduler in schedulers:
        makespans = []
        chunks = 0
        for seed in range(20):
            result = simulate(
                platform, total_work, scheduler, NormalErrorModel(error), seed=seed
            )
            validate_schedule(result)
            makespans.append(result.makespan)
            chunks = result.num_chunks
        mean = sum(makespans) / len(makespans)
        if baseline is None:
            baseline = mean
        print(f"{scheduler.name:<12} {mean:>10.2f} s   {chunks:>8d}"
              + (f"   ({mean / baseline:.2f}x RUMR)" if scheduler.name != "RUMR" else ""))

    # Inspect one RUMR run in detail: the two phases are visible in the
    # dispatch record (increasing chunk sizes, then a decreasing tail).
    result = simulate(
        platform, total_work, RUMR(known_error=error), NormalErrorModel(error), seed=0
    )
    print(f"\nRUMR dispatch timeline (seed 0, makespan {result.makespan:.2f} s):")
    print(f"{'#':>4} {'phase':<16} {'worker':>6} {'size':>8} {'sent':>8} {'done':>8}")
    for record in result.records[:: max(1, len(result.records) // 15)]:
        print(
            f"{record.index:>4} {record.phase:<16} {record.worker:>6} "
            f"{record.size:>8.2f} {record.send_start:>8.2f} {record.comp_end:>8.2f}"
        )
    phases = result.phase_work()
    p1 = sum(v for k, v in phases.items() if k.startswith("rumr-p1"))
    p2 = phases.get("rumr-p2", 0.0)
    print(f"\nphase 1 (UMR, increasing chunks):   {p1:7.1f} units")
    print(f"phase 2 (Factoring, decreasing):    {p2:7.1f} units")


if __name__ == "__main__":
    main()
