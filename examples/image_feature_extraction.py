#!/usr/bin/env python
"""Feature extraction over a large image — the paper's first application.

An 8192×8192 image is divided into 64×64-pixel blocks; each block's
processing cost depends on local scene complexity (lognormal multiplier).
The example:

1. calibrates the platform to the workload (mean block cost → worker rate);
2. *measures* the application's inherent prediction error empirically, the
   way a real deployment would (§4.1: "past experience with the
   application") — at the chunk sizes UMR will actually use;
3. hands the estimate to RUMR and compares against UMR and Factoring,
   simulating the data-dependent costs with the measured error magnitude.

Run:  python examples/image_feature_extraction.py
"""

from repro import (
    RUMR,
    UMR,
    Factoring,
    NormalErrorModel,
    homogeneous_platform,
    simulate,
    solve_umr,
)
from repro.workloads import ImageFeatureExtraction


def main() -> None:
    workload = ImageFeatureExtraction(
        width=8192, height=8192, block=64, complexity_sigma=0.9
    )
    # 16-worker cluster; the link carries a block's pixels in well under a
    # block's compute time (bandwidth_factor inside the feasible region).
    hardware = homogeneous_platform(
        16, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.05
    )
    platform = workload.calibrated_platform(hardware)
    total = workload.total_units

    print(f"Workload: {workload.name}, {total:g} blocks "
          f"({workload.bytes_per_unit() / 1024:.0f} KiB per block)")

    # What chunk sizes will phase 1 use?  Calibrate the error estimate at
    # the mean UMR chunk size, like a profiling run would.
    plan = solve_umr(platform, total)
    mean_chunk = total / (plan.num_rounds * platform.N)
    error = workload.estimate_error(chunk_units=mean_chunk, samples=150, seed=7)
    print(f"UMR plan: {plan.num_rounds} rounds, mean chunk {mean_chunk:.0f} blocks")
    print(f"Measured inherent prediction error at that chunk size: {error:.3f}\n")

    print(f"{'algorithm':<12} {'mean makespan':>14}")
    print("-" * 28)
    for scheduler in (RUMR(known_error=error), UMR(), Factoring()):
        makespans = [
            simulate(
                platform, total, scheduler, NormalErrorModel(error), seed=seed
            ).makespan
            for seed in range(15)
        ]
        print(f"{scheduler.name:<12} {sum(makespans) / len(makespans):>10.1f} s")

    # Show the trade-off the paper is about: a smoother image (lower
    # complexity spread) shrinks the error and with it RUMR's phase 2.
    print("\nphase-2 share vs image complexity:")
    print(f"{'sigma':>6} {'error':>8} {'phase-2 share':>14}")
    for sigma in (0.0, 0.3, 0.6, 0.9, 1.2):
        wl = ImageFeatureExtraction(width=8192, height=8192, block=64,
                                    complexity_sigma=sigma)
        err = wl.estimate_error(chunk_units=mean_chunk, samples=150, seed=7)
        _, w2 = RUMR(known_error=err).split(platform, total)
        print(f"{sigma:>6.1f} {err:>8.3f} {w2 / total:>13.1%}")


if __name__ == "__main__":
    main()
