#!/usr/bin/env python
"""Trace-driven errors, result-return traffic, and trace export together.

Three extensions beyond the paper's evaluation, composed into one
realistic pipeline:

1. derive a *perturbation trace* from the ray-tracing workload's own
   data-dependent costs (so the error process has the scene's
   autocorrelation, not an iid abstraction);
2. simulate RUMR under that trace *with output traffic* — rendered tiles
   must return to the master over the same serialized link;
3. export the run as CSV and a Chrome trace-viewer file
   (chrome://tracing) for inspection.

Run:  python examples/traces_and_output.py
"""

import pathlib
import statistics

from repro import RUMR, UMR, homogeneous_platform
from repro.errors import trace_from_workload
from repro.sim import simulate
from repro.sim.export import chrome_trace, records_csv
from repro.sim.gantt import render_gantt
from repro.sim.output import simulate_with_output
from repro.workloads import RayTracing


def main() -> None:
    scene = RayTracing(width=1920, height=1080, tile=32, sigma=0.7,
                       correlation=0.95, seed=5)
    hardware = homogeneous_platform(12, S=1.0, bandwidth_factor=1.6,
                                    cLat=0.2, nLat=0.05)
    platform = scene.calibrated_platform(hardware)
    total = scene.total_units

    # 1. The workload's own error trace (autocorrelated chunk costs).
    model = trace_from_workload(scene, chunk_units=total / 48, length=256, seed=9)
    print(f"scene: {scene.name}, {total:g} tiles")
    print(f"derived error trace: magnitude = {model.magnitude:.3f} "
          f"(this is what RUMR's phase split consumes)\n")

    # 2. Rendered tiles return to the master: compare schedulers with a
    # 20% output ratio (compressed tiles) over the trace-driven errors.
    print(f"{'scheduler':<8} {'makespan (mean of 10, output 20%)':>36}")
    for scheduler_factory in (lambda: RUMR(known_error=model.magnitude), UMR):
        spans = []
        for seed in range(10):
            model.reset()
            result = simulate_with_output(
                platform, total, scheduler_factory(), model,
                output_ratio=0.2, seed=seed,
            )
            spans.append(result.makespan)
        name = scheduler_factory().name
        print(f"{name:<8} {statistics.mean(spans):>18.1f} s")

    # 3. Export one input-side run for inspection.
    model.reset()
    result = simulate(platform, total, RUMR(known_error=model.magnitude), model, seed=0)
    out_dir = pathlib.Path("artifacts")
    out_dir.mkdir(exist_ok=True)
    (out_dir / "raytracing_run.csv").write_text(records_csv(result))
    (out_dir / "raytracing_run.trace.json").write_text(chrome_trace(result))
    print(f"\nwrote {out_dir}/raytracing_run.csv and "
          f"{out_dir}/raytracing_run.trace.json (open in chrome://tracing)")
    print()
    print(render_gantt(result, width=80))


if __name__ == "__main__":
    main()
