"""Analytical companions to the simulators.

* :mod:`repro.analysis.steady_state` — the bandwidth-centric steady-state
  throughput bound for master-worker platforms (the §2 related-work line
  of Beaumont/Legrand/Robert): an algorithm-independent lower bound on
  makespan that every scheduler in :mod:`repro.core` can be measured
  against.
* :mod:`repro.analysis.bounds` — per-run lower bounds (work bound,
  pipeline-fill bound, link-capacity bound) and efficiency metrics.
"""

from repro.analysis.bounds import efficiency, makespan_lower_bound
from repro.analysis.steady_state import (
    SteadyStateAllocation,
    steady_state_throughput,
)

__all__ = [
    "SteadyStateAllocation",
    "efficiency",
    "makespan_lower_bound",
    "steady_state_throughput",
]
