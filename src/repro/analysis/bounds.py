"""Per-run makespan lower bounds and efficiency metrics.

Three algorithm-independent lower bounds on the makespan of ``W`` units
on a platform:

* **work bound** — even with a perfectly shared load and zero latencies,
  ``W / Σ S_i`` seconds of computing must happen somewhere;
* **link bound** — every unit crosses the master's serialized link once:
  at least ``W / max_i B_i`` seconds — and since *all* units must cross,
  actually ``W · min_i(1/B_i over the units' routes)``; the safe
  algorithm-independent form uses the best link, plus one ``nLat``;
* **pipeline bound** — some worker must compute last; before it can
  finish, at least one chunk must be sent to it and computed:
  ``nLat + cLat`` of latency is unavoidable.

``makespan_lower_bound`` combines them with the steady-state bound, and
``efficiency`` reports a run's makespan against it — a number in (0, 1]
usable across platforms, used by the integration tests and examples.
"""

from __future__ import annotations

from repro.analysis.steady_state import steady_state_throughput
from repro.platform.spec import PlatformSpec
from repro.sim.result import SimResult

__all__ = ["makespan_lower_bound", "efficiency"]


def makespan_lower_bound(platform: PlatformSpec, total_work: float) -> float:
    """Best known algorithm-independent lower bound (see module docstring)."""
    if not total_work > 0:
        raise ValueError(f"total_work must be > 0, got {total_work}")
    work_bound = total_work / platform.total_compute_rate()
    best_b = max(w.B for w in platform)
    link_bound = total_work / best_b
    latency_bound = min(w.nLat + w.cLat for w in platform)
    steady = steady_state_throughput(platform).makespan_bound(total_work)
    return max(work_bound, link_bound, latency_bound, steady)


def efficiency(result: SimResult) -> float:
    """``lower_bound / makespan`` — 1.0 means provably optimal."""
    bound = makespan_lower_bound(result.platform, result.total_work)
    if result.makespan <= 0:
        return 0.0
    return min(1.0, bound / result.makespan)
