"""Bandwidth-centric steady-state throughput (Beaumont, Legrand & Robert).

For very long-running divisible applications the makespan objective gives
way to *throughput*: how many workload units per second can the platform
sustain?  The classic result for the one-port master model is that the
optimal steady state allocates the master's link **by bandwidth, not by
speed**: feeding worker ``i`` one unit costs the link ``1/B_i`` seconds,
so high-``B`` workers are cheap to keep busy regardless of how fast they
compute.

Formally, maximize ``ρ = Σ x_i`` subject to

    0 ≤ x_i ≤ S_i            (worker compute rate)
    Σ x_i / B_i ≤ 1          (one-port link capacity)

whose greedy optimum saturates workers in decreasing ``B_i`` order and
gives the last (marginal) worker the remaining link fraction.

``W / ρ*`` is then an algorithm-independent asymptotic lower bound on the
makespan of *any* schedule, and the test suite verifies that UMR's
makespan approaches it as ``W → ∞`` (its per-round overheads amortize) —
connecting the paper's makespan world to the steady-state literature it
cites.

Latencies enter only through chunk granularity: with chunks of ``c``
units the effective per-unit costs become ``(cLat + c/S)/c`` and
``(nLat + c/B)/c``; :func:`steady_state_throughput` accepts an optional
``chunk_size`` to evaluate the degraded bound at finite granularity.
"""

from __future__ import annotations

import dataclasses
import math

from repro.platform.spec import PlatformSpec

__all__ = ["SteadyStateAllocation", "steady_state_throughput"]


@dataclasses.dataclass(frozen=True)
class SteadyStateAllocation:
    """The optimal steady-state operating point of a platform.

    Attributes
    ----------
    throughput:
        ``ρ*`` in workload units per second.
    rates:
        Per-worker consumption rates ``x_i`` (units/s), platform order.
    link_utilization:
        ``Σ x_i/B_i`` at the optimum (1.0 when the link binds).
    saturated:
        Indices of workers running at full compute speed.
    chunk_size:
        The granularity the bound was evaluated at (None = fluid limit).
    """

    throughput: float
    rates: tuple[float, ...]
    link_utilization: float
    saturated: tuple[int, ...]
    chunk_size: float | None = None

    def makespan_bound(self, total_work: float) -> float:
        """Asymptotic lower bound ``W / ρ*`` on any schedule's makespan."""
        if total_work < 0:
            raise ValueError(f"total_work must be >= 0, got {total_work}")
        if self.throughput == 0:
            return math.inf
        return total_work / self.throughput


def _effective_rates(
    platform: PlatformSpec, chunk_size: float | None
) -> list[tuple[float, float]]:
    """Per-worker (compute rate, link rate) in units/s at a granularity."""
    out = []
    for w in platform:
        if chunk_size is None:
            s_eff = w.S
            b_eff = w.B
        else:
            c = chunk_size
            s_eff = c / w.compute_time(c)
            link = w.link_time(c)
            b_eff = math.inf if link == 0 else c / link
        out.append((s_eff, b_eff))
    return out


def steady_state_throughput(
    platform: PlatformSpec, chunk_size: float | None = None
) -> SteadyStateAllocation:
    """Solve the steady-state LP greedily (see module docstring).

    Parameters
    ----------
    platform:
        The master-worker platform.
    chunk_size:
        Optional chunk granularity; when given, per-chunk latencies are
        amortized into the rates (smaller chunks → lower bound).
    """
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
    rates = _effective_rates(platform, chunk_size)
    # Greedy by descending link rate (bandwidth-centric priority).
    order = sorted(range(platform.N), key=lambda i: (-rates[i][1], i))
    x = [0.0] * platform.N
    link_left = 1.0
    saturated = []
    for i in order:
        s_eff, b_eff = rates[i]
        if link_left <= 0:
            break
        cost_full = 0.0 if math.isinf(b_eff) else s_eff / b_eff
        if cost_full <= link_left:
            x[i] = s_eff
            link_left -= cost_full
            saturated.append(i)
        else:
            x[i] = link_left * b_eff
            link_left = 0.0
    used = sum(
        0.0 if math.isinf(rates[i][1]) else x[i] / rates[i][1] for i in range(platform.N)
    )
    return SteadyStateAllocation(
        throughput=sum(x),
        rates=tuple(x),
        link_utilization=used,
        saturated=tuple(sorted(saturated)),
        chunk_size=chunk_size,
    )
