"""Experiment grids: the paper's Table 1 and decimated presets.

Table 1 (verbatim):

=========================  =====================================
Number of processors       N = 10, 15, 20, …, 50
Workload (unit)            W_total = 1000
Compute rate (unit/s)      S = 1
Transfer rate (unit/s)     B = (1.2, 1.3, …, 2.0) × N
Computation latency (s)    cLat = 0.0, 0.1, …, 1.0
Communication latency (s)  nLat = 0.0, 0.1, …, 1.0
=========================  =====================================

with *error* swept from 0.0 to 0.5 and 40 repetitions per point.  The full
cross product is ~10,900 platforms × 26 error values × 40 repetitions per
algorithm — far beyond a single-core reproduction run, hence the presets.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import typing

from repro.platform.spec import PlatformSpec, homogeneous_platform

__all__ = [
    "PlatformPoint",
    "ExperimentGrid",
    "paper_grid",
    "paper_sample_grid",
    "small_grid",
    "smoke_grid",
    "bench_grid",
    "preset_grid",
    "sweep_key",
    "PAPER_ALGORITHMS",
]

#: The six competitors of §5.1, plus RUMR itself.
PAPER_ALGORITHMS = ("RUMR", "UMR", "MI-1", "MI-2", "MI-3", "MI-4", "Factoring")


@dataclasses.dataclass(frozen=True)
class PlatformPoint:
    """One Table-1 platform configuration (homogeneous)."""

    N: int
    bandwidth_factor: float
    cLat: float
    nLat: float
    S: float = 1.0

    def build(self) -> PlatformSpec:
        """Materialize the :class:`~repro.platform.spec.PlatformSpec`.

        Memoized: equal points return the *same* (immutable) spec object,
        so downstream identity-keyed caches — the lru-cached plan solvers
        and the compiled-plan cache — hit across repeated sweeps.
        """
        return _build_platform(self)

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return dataclasses.asdict(self)


@functools.lru_cache(maxsize=4096)
def _build_platform(point: "PlatformPoint") -> PlatformSpec:
    return homogeneous_platform(
        point.N,
        S=point.S,
        bandwidth_factor=point.bandwidth_factor,
        cLat=point.cLat,
        nLat=point.nLat,
    )


@dataclasses.dataclass(frozen=True)
class ExperimentGrid:
    """A cross-product experiment specification.

    Attributes mirror Table 1; ``errors`` is the §5 error axis,
    ``repetitions`` the per-point sample count, ``seed`` the root of the
    per-cell random streams, ``error_kind``/``error_mode`` select the
    perturbation model (see :mod:`repro.errors.models`).
    """

    name: str
    Ns: tuple[int, ...]
    bandwidth_factors: tuple[float, ...]
    cLats: tuple[float, ...]
    nLats: tuple[float, ...]
    errors: tuple[float, ...]
    repetitions: int = 40
    total_work: float = 1000.0
    S: float = 1.0
    seed: int = 2003  # the venue year; any fixed value works
    error_kind: str = "normal"
    error_mode: str = "multiply"
    #: When > 0, run only this many platforms: a deterministic uniform
    #: sample (keyed by ``seed``) of the full cross product.  Lets the
    #: paper's exact axes be probed at a fraction of the cost, with
    #: unbiased coverage of the whole space (unlike axis decimation).
    platform_sample: int = 0
    #: Worker fault scenario applied to every run, as a spec string parsed
    #: by :func:`repro.errors.make_fault_model` (``"none"`` = fault-free,
    #: ``"crash:p=0.2,tmax=400"``, ``"pause:p=0.5,tmax=200,dur=60"``, …).
    #: Part of the grid identity, so fault and fault-free sweeps hash to
    #: different cache keys.
    fault: str = "none"
    #: Interconnect shape applied to every run, as a spec string parsed by
    #: :func:`repro.platform.make_topology` (``"star"`` = the paper's
    #: baseline, ``"chain:relay=sf"``, ``"tree:fanout=2"``,
    #: ``"sharedbw:cap=2"``, …).  Like ``fault``, part of the grid
    #: identity.
    topology: str = "star"

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if not self.total_work > 0:
            raise ValueError(f"total_work must be > 0, got {self.total_work}")
        if not self.Ns or not self.bandwidth_factors or not self.cLats or not self.nLats:
            raise ValueError("grid axes must be non-empty")
        if not self.errors:
            raise ValueError("error axis must be non-empty")
        if self.platform_sample < 0:
            raise ValueError(f"platform_sample must be >= 0, got {self.platform_sample}")
        # Validate the fault and topology specs eagerly so a typo fails at
        # grid build time, not platforms-deep into a sweep.
        from repro.errors.faults import make_fault_model
        from repro.platform.topology import make_topology

        make_fault_model(self.fault)
        topo = make_topology(self.topology)
        if topo.kind == "sharedbw" and self.fault.strip() not in ("", "none"):
            raise ValueError(
                "sharedbw topologies do not support fault injection "
                f"(fault={self.fault!r}, topology={self.topology!r})"
            )

    @property
    def has_faults(self) -> bool:
        """Whether this grid injects worker faults."""
        return self.fault.strip() not in ("", "none")

    @property
    def has_topology(self) -> bool:
        """Whether this grid routes runs through a non-star interconnect."""
        from repro.platform.topology import make_topology

        return make_topology(self.topology).kind != "star"

    def _full_cross_product(self) -> list[PlatformPoint]:
        return [
            PlatformPoint(N=n, bandwidth_factor=f, cLat=cl, nLat=nl, S=self.S)
            for n in self.Ns
            for f in self.bandwidth_factors
            for cl in self.cLats
            for nl in self.nLats
        ]

    def platforms(self) -> list[PlatformPoint]:
        """Platform points, in deterministic order (sampled when configured)."""
        full = self._full_cross_product()
        if not self.platform_sample or self.platform_sample >= len(full):
            return full
        import numpy as np

        rng = np.random.default_rng(np.random.SeedSequence(self.seed, spawn_key=(99,)))
        idx = sorted(rng.choice(len(full), size=self.platform_sample, replace=False))
        return [full[i] for i in idx]

    @property
    def num_platforms(self) -> int:
        """Number of platforms a sweep will run (after sampling)."""
        full = (
            len(self.Ns) * len(self.bandwidth_factors) * len(self.cLats) * len(self.nLats)
        )
        if self.platform_sample:
            return min(self.platform_sample, full)
        return full

    def num_simulations(self, num_algorithms: int) -> int:
        """Total simulator invocations a sweep will make."""
        return self.num_platforms * len(self.errors) * self.repetitions * num_algorithms

    def restrict(self, **axes: typing.Sequence) -> "ExperimentGrid":
        """A copy with some axes replaced (e.g. ``errors=(0.0, 0.1)``)."""
        updates = {}
        for key, value in axes.items():
            if key in ("Ns", "bandwidth_factors", "cLats", "nLats", "errors"):
                updates[key] = tuple(value)
            elif key in (
                "repetitions", "seed", "name", "error_kind", "error_mode",
                "platform_sample", "fault", "topology",
            ):
                updates[key] = value
            else:
                raise ValueError(f"unknown grid axis {key!r}")
        return dataclasses.replace(self, **updates)


def sweep_key(grid: ExperimentGrid, algorithms: typing.Sequence[str]) -> str:
    """Deterministic content hash identifying a sweep.

    Keys both the on-disk sweep cache (:mod:`repro.experiments.cache`)
    and the crash-recovery checkpoint shards
    (:class:`repro.experiments.resilient.CheckpointStore`) — any change
    to the grid or the algorithm list invalidates both automatically.
    """
    payload = json.dumps(
        {"grid": dataclasses.asdict(grid), "algorithms": list(algorithms)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _error_axis(step: float, stop: float = 0.5) -> tuple[float, ...]:
    values = []
    k = 0
    while True:
        v = round(k * step, 10)
        if v > stop + 1e-12:
            break
        values.append(v)
        k += 1
    return tuple(values)


def paper_grid() -> ExperimentGrid:
    """The full Table-1 cross product with the paper's error axis."""
    return ExperimentGrid(
        name="paper",
        Ns=tuple(range(10, 51, 5)),
        bandwidth_factors=tuple(round(1.2 + 0.1 * k, 10) for k in range(9)),
        cLats=tuple(round(0.1 * k, 10) for k in range(11)),
        nLats=tuple(round(0.1 * k, 10) for k in range(11)),
        errors=_error_axis(0.02),
        repetitions=40,
    )


def small_grid() -> ExperimentGrid:
    """A decimated grid spanning Table 1's ranges; minutes on one core.

    Axis endpoints and interior points are kept so that both low- and
    high-latency regimes (the two behaviour classes discussed in §5.1) and
    the ``cLat < 0.3, nLat < 0.3`` subset of Fig 4(b) are represented.
    """
    return ExperimentGrid(
        name="small",
        Ns=(10, 20, 40),
        bandwidth_factors=(1.2, 1.6, 2.0),
        cLats=(0.0, 0.1, 0.2, 0.5, 1.0),
        nLats=(0.0, 0.1, 0.2, 0.5, 1.0),
        errors=_error_axis(0.04, 0.48),
        repetitions=10,
    )


def smoke_grid() -> ExperimentGrid:
    """A seconds-scale grid for tests and the benchmark harness."""
    return ExperimentGrid(
        name="smoke",
        Ns=(10, 20),
        bandwidth_factors=(1.4, 1.8),
        cLats=(0.0, 0.2),
        nLats=(0.1, 0.2),
        errors=(0.0, 0.1, 0.2, 0.3, 0.4),
        repetitions=3,
    )


def bench_grid() -> ExperimentGrid:
    """The smoke axes at paper-scale repetitions, for benchmarking.

    The smoke grid's 3 repetitions are fine for correctness checks but
    understate the batch engines badly: a lockstep pass costs nearly the
    same wall time at 3 repetitions as at 20 (its per-iteration cost is
    dominated by fixed per-array-op overhead, not element count), while
    the scalar engine scales linearly.  Benchmarking at 20 repetitions —
    half the paper's 40 — measures the regime sweeps actually run in.
    """
    return dataclasses.replace(smoke_grid(), name="bench", repetitions=20)


def paper_sample_grid(platforms: int = 150, repetitions: int = 15) -> ExperimentGrid:
    """A uniform random sample of the *full* Table-1 cross product.

    Unlike :func:`small_grid` (which decimates the axes), this probes the
    paper's exact parameter axes — including the interior values the
    decimated grid skips — at a tractable cost.  The sample is
    deterministic in the grid seed.
    """
    return dataclasses.replace(
        paper_grid(),
        name="paper-sample",
        platform_sample=platforms,
        repetitions=repetitions,
    )


def preset_grid(name: str) -> ExperimentGrid:
    """Look up a preset grid by name.

    ``smoke`` (seconds), ``bench`` (the smoke axes at 20 repetitions, for
    benchmarking), ``small`` (minutes, decimated axes), ``paper`` (the
    full cross product, hours), ``paper-sample`` (a 150-platform uniform
    sample of the full cross product, tens of minutes).
    """
    presets = {
        "paper": paper_grid,
        "small": small_grid,
        "smoke": smoke_grid,
        "bench": bench_grid,
        "paper-sample": paper_sample_grid,
    }
    try:
        return presets[name]()
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: {', '.join(sorted(presets))}"
        ) from None
