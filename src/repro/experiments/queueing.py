"""Queueing metrics and sweeps for multi-job streams.

Single-run experiments score a scheduler by makespan; a *stream* of jobs
contending for the star is scored by queueing behavior instead.  This
module reduces a :class:`~repro.sim.multijob.MultiJobResult` to a
:class:`QueueingMetrics` record (wait/response/slowdown statistics,
utilization, peak queue depth, work accounting), serializes it
byte-deterministically for golden regressions, runs `run_sweep`-style
(arrival-spec × policy) grids, and derives :class:`~repro.experiments.
figures.FigureResult` charts from them.

Metric definitions (per job ``j`` with arrival ``a_j``, first service
``s_j``, completion ``c_j``):

* **wait** ``s_j - a_j`` — head-of-line delay before first service.
* **response** ``c_j - a_j`` — sojourn time (what a user experiences).
* **service** — the sum of the job's slice makespans (pure processing).
* **slowdown** ``response / service`` — stretch; 1.0 means never queued.
* **utilization** — delivered compute time over ``N × horizon``: the
  fraction of the star's worker-seconds spent computing chunks that
  were not lost to faults.
* **max_queue_depth** — peak number of jobs in the system.

Per-job statistics (wait/response/slowdown/service, throughput) are
taken over the *completed* jobs — a failed job has no meaningful sojourn
time.  Fault-free streams complete every job, so their metrics (and
their golden bytes) are unchanged.

Streams run under an active stream-frame fault plane additionally carry
a :class:`StreamHealthStats` block: failure/resubmission counts, the
exclusion count, **goodput** (completed jobs' requested work per second
— work delivered to failed jobs is wasted, not good), and the
**degraded-capacity utilization** ``live_utilization``, whose
denominator is the *live-worker capacity* (each worker contributes
worker-seconds only until its crash) rather than ``N × horizon``.  The
block is omitted from the JSON serialization when absent, so fault-free
metrics serialize to the exact pre-fault-plane bytes.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.experiments.figures import FigureResult
from repro.sim.multijob import MultiJobResult, simulate_stream

if typing.TYPE_CHECKING:
    from repro.platform.spec import PlatformSpec

__all__ = [
    "QueueingMetrics",
    "QueueingSweepResults",
    "StreamHealthStats",
    "metrics_from_json",
    "metrics_to_json",
    "queueing_figure",
    "queueing_metrics",
    "run_queueing_sweep",
]


@dataclasses.dataclass(frozen=True)
class StreamHealthStats:
    """Fault-plane summary of one stream (see module docstring).

    Present only for streams run under an active ``fault_frame="stream"``
    plane; fault-free metrics carry ``health=None`` and serialize without
    the block.
    """

    jobs_failed: int
    jobs_resubmitted: int
    workers_excluded: int
    goodput: float
    live_capacity: float
    live_utilization: float


@dataclasses.dataclass(frozen=True)
class QueueingMetrics:
    """Stream-level queueing summary of one multi-job run.

    Per-job statistics are over *completed* jobs; work accounting
    (``total_work``/``dispatched_work``/``delivered_work``/
    ``work_lost``) covers every job, failed ones included.
    """

    policy: str
    scheduler: str
    num_jobs: int
    horizon: float
    throughput: float
    mean_wait: float
    max_wait: float
    mean_response: float
    max_response: float
    mean_slowdown: float
    max_slowdown: float
    mean_service: float
    utilization: float
    max_queue_depth: int
    total_work: float
    dispatched_work: float
    delivered_work: float
    work_lost: float
    health: "StreamHealthStats | None" = None


def _mean(values: typing.Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _health_stats(
    stream: MultiJobResult, horizon: float, busy: float
) -> "StreamHealthStats | None":
    """The fault-plane block, or ``None`` without an active plane."""
    if stream.fault_frame != "stream" or stream.fault_spec == "none":
        return None
    n = stream.platform.N
    deaths = dict(stream.excluded)
    live_capacity = sum(
        min(deaths.get(w, horizon), horizon) for w in range(n)
    )
    goodwork = sum(rec.job.work for rec in stream.completed_jobs)
    return StreamHealthStats(
        jobs_failed=stream.jobs_failed,
        jobs_resubmitted=stream.jobs_resubmitted,
        workers_excluded=len(stream.excluded),
        goodput=goodwork / horizon if horizon > 0 else 0.0,
        live_capacity=live_capacity,
        live_utilization=busy / live_capacity if live_capacity > 0 else 0.0,
    )


def queueing_metrics(stream: MultiJobResult) -> QueueingMetrics:
    """Reduce a stream result to its queueing summary."""
    jobs = stream.jobs
    completed = stream.completed_jobs
    waits = [j.wait for j in completed]
    responses = [j.response for j in completed]
    slowdowns = [j.slowdown for j in completed]
    services = [j.service for j in completed]
    horizon = stream.horizon
    busy = sum(
        r.comp_time
        for rec in jobs
        for result in rec.results
        for r in result.records
        if not r.lost
    )
    capacity = stream.platform.N * horizon
    return QueueingMetrics(
        policy=stream.policy,
        scheduler=stream.scheduler_name,
        num_jobs=len(jobs),
        horizon=horizon,
        throughput=len(completed) / horizon if horizon > 0 else 0.0,
        mean_wait=_mean(waits),
        max_wait=max(waits, default=0.0),
        mean_response=_mean(responses),
        max_response=max(responses, default=0.0),
        mean_slowdown=_mean(slowdowns),
        max_slowdown=max(slowdowns, default=0.0),
        mean_service=_mean(services),
        utilization=busy / capacity if capacity > 0 else 0.0,
        max_queue_depth=stream.max_queue_depth(),
        total_work=stream.total_work,
        dispatched_work=stream.dispatched_work,
        delivered_work=stream.delivered_work,
        work_lost=stream.work_lost,
        health=_health_stats(stream, horizon, busy),
    )


def metrics_to_json(metrics: QueueingMetrics) -> str:
    """Serialize metrics byte-deterministically (sorted keys, compact).

    Floats use Python's shortest-roundtrip repr, so identical metrics
    always serialize to identical bytes — the golden multijob regression
    pins exactly these strings.  A ``None`` health block is omitted
    entirely, keeping fault-free metrics byte-identical to their
    pre-fault-plane serialization.
    """
    data = dataclasses.asdict(metrics)
    if data.get("health") is None:
        data.pop("health", None)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def metrics_from_json(text: str) -> QueueingMetrics:
    """Exact inverse of :func:`metrics_to_json`."""
    data = json.loads(text)
    fields = {f.name for f in dataclasses.fields(QueueingMetrics)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(f"unknown metrics field(s): {sorted(unknown)}")
    missing = fields - set(data) - {"health"}
    if missing:
        raise ValueError(f"missing metrics field(s): {sorted(missing)}")
    health = data.pop("health", None)
    if health is not None:
        health_fields = {f.name for f in dataclasses.fields(StreamHealthStats)}
        if set(health) != health_fields:
            raise ValueError(
                f"malformed health block: got {sorted(health)}, "
                f"want {sorted(health_fields)}"
            )
        health = StreamHealthStats(**health)
    return QueueingMetrics(health=health, **data)


@dataclasses.dataclass(frozen=True)
class QueueingSweepResults:
    """A (arrival-spec × policy) grid of queueing metrics.

    ``metrics`` is keyed by ``(arrival_spec, policy_spec)`` — the spec
    strings as given, so grids are addressable the way they were asked
    for.  ``streams`` keeps the full per-cell results for drill-down.
    """

    platform: "PlatformSpec"
    scheduler: str
    error: float
    seed: int | None
    arrival_specs: tuple[str, ...]
    policies: tuple[str, ...]
    metrics: dict[tuple[str, str], QueueingMetrics]
    streams: dict[tuple[str, str], MultiJobResult]

    def cell(self, arrival_spec: str, policy: str) -> QueueingMetrics:
        return self.metrics[(arrival_spec, policy)]


def run_queueing_sweep(
    platform: "PlatformSpec",
    arrival_specs: typing.Sequence[str],
    policies: typing.Sequence[str] = ("fcfs", "partitioned:parts=2", "interleaved:slices=4"),
    scheduler: str = "RUMR",
    error: float = 0.0,
    seed: int | None = 0,
    engine: str = "fast",
    faults: "typing.Any | None" = None,
    fault_frame: str = "stream",
    failure_policy: "typing.Any" = "drop",
    stats: "typing.Any | None" = None,
) -> QueueingSweepResults:
    """Sweep the (arrival-spec × policy) grid on one platform.

    Every cell re-realizes its arrival process from the same ``seed``,
    so policies are compared on *identical* job streams — the queueing
    analogue of the sweep harness's common-random-numbers discipline.
    ``fault_frame``/``failure_policy`` forward to every cell's
    :func:`~repro.sim.multijob.simulate_stream`; ``stats``, when given a
    :class:`~repro.obs.stats.SweepStats`, accumulates the cells' stream
    health counters for ``repro stats``.
    """
    metrics: dict[tuple[str, str], QueueingMetrics] = {}
    streams: dict[tuple[str, str], MultiJobResult] = {}
    for arrival_spec in arrival_specs:
        for policy in policies:
            stream = simulate_stream(
                platform,
                arrival_spec,
                scheduler=scheduler,
                error=error,
                seed=seed,
                policy=policy,
                engine=engine,
                faults=faults,
                fault_frame=fault_frame,
                failure_policy=failure_policy,
            )
            metrics[(arrival_spec, policy)] = queueing_metrics(stream)
            streams[(arrival_spec, policy)] = stream
            if stats is not None:
                stats.count_stream(stream)
    return QueueingSweepResults(
        platform=platform,
        scheduler=scheduler,
        error=error,
        seed=seed,
        arrival_specs=tuple(arrival_specs),
        policies=tuple(policies),
        metrics=metrics,
        streams=streams,
    )


def _arrival_axis(arrival_specs: typing.Sequence[str]) -> tuple[float, ...]:
    """X-axis values for a figure: Poisson rates when every spec has one,
    otherwise the spec indices."""
    rates = []
    for spec in arrival_specs:
        rate = None
        kind, _, body = spec.partition(":")
        if kind.strip() == "poisson":
            for part in body.split(","):
                key, _, value = part.partition("=")
                if key.strip() == "rate":
                    try:
                        rate = float(value)
                    except ValueError:
                        rate = None
        if rate is None:
            return tuple(float(i) for i in range(len(arrival_specs)))
        rates.append(rate)
    return tuple(rates)


def queueing_figure(
    results: QueueingSweepResults, metric: str = "mean_response"
) -> FigureResult:
    """One series per policy over the arrival axis, plotting ``metric``.

    ``metric`` names any float field of :class:`QueueingMetrics`
    (``mean_response``, ``mean_slowdown``, ``utilization``, ...).  The
    x-axis is the Poisson arrival rate when every arrival spec is a
    ``poisson:`` spec, otherwise the spec index.
    """
    fields = {f.name for f in dataclasses.fields(QueueingMetrics)} - {"health"}
    if metric not in fields:
        raise ValueError(f"unknown metric {metric!r}; available: {sorted(fields)}")
    series = {
        policy: tuple(
            float(getattr(results.cell(spec, policy), metric))
            for spec in results.arrival_specs
        )
        for policy in results.policies
    }
    return FigureResult(
        title=f"Queueing: {metric} by inter-job policy ({results.scheduler})",
        xlabel="arrival rate" if any(
            s.startswith("poisson") for s in results.arrival_specs
        ) else "arrival spec index",
        ylabel=metric,
        errors=_arrival_axis(results.arrival_specs),
        series=series,
    )
