"""Statistical utilities for sweep results.

The paper reports bare means over 40 repetitions.  For a reproduction it
is worth knowing *how solid* each comparison is, so this module adds:

* :func:`bootstrap_ci` — percentile-bootstrap confidence intervals for the
  per-error mean normalized makespan of Figure-4-style series (resampling
  experiments, i.e. (platform, repetition) cells, with replacement);
* :func:`win_rate_ci` — a normal-approximation interval for the
  outperformance percentages of Tables 2–3;
* :func:`sign_test_pvalue` — a paired sign test that "RUMR beats X" at a
  given error level, usable because the harness shares seeds across
  algorithms (common random numbers make runs paired by construction).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.experiments.runner import SweepResults

__all__ = ["ConfidenceInterval", "bootstrap_ci", "win_rate_ci", "sign_test_pvalue"]


@dataclasses.dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided interval."""

    estimate: float
    low: float
    high: float
    level: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Interval width (high - low)."""
        return self.high - self.low


def bootstrap_ci(
    results: SweepResults,
    competitor: str,
    error_index: int,
    level: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for the mean normalized makespan at one error level.

    Resamples the (platform, repetition) experiment cells with
    replacement; the statistic is the mean of per-cell
    ``makespan(competitor)/makespan(reference)`` ratios.
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0,1), got {level}")
    ref = results.makespans[results.reference][:, error_index, :].ravel()
    comp = results.makespans[competitor][:, error_index, :].ravel()
    ratios = comp / ref
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, ratios.size, size=(resamples, ratios.size))
    means = ratios[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(ratios.mean()), low=float(low), high=float(high), level=level
    )


def win_rate_ci(
    results: SweepResults,
    competitor: str,
    error_index: int | None = None,
    margin: float = 0.0,
    level: float = 0.95,
) -> ConfidenceInterval:
    """Normal-approximation CI for a Table-2/3 outperformance fraction.

    ``error_index=None`` pools all error levels (the "overall" column).
    """
    ref = results.makespans[results.reference]
    comp = results.makespans[competitor]
    if error_index is not None:
        ref = ref[:, error_index, :]
        comp = comp[:, error_index, :]
    wins = (comp > (1.0 + margin) * ref).ravel()
    n = wins.size
    p = float(wins.mean())
    z = _z_for(level)
    half = z * math.sqrt(max(p * (1 - p), 1e-12) / n)
    return ConfidenceInterval(
        estimate=p, low=max(0.0, p - half), high=min(1.0, p + half), level=level
    )


def sign_test_pvalue(
    results: SweepResults, competitor: str, error_index: int
) -> float:
    """One-sided paired sign test: H1 = "reference beats competitor".

    Uses the paired cells (shared seeds).  Ties (exact equality, e.g. at
    error 0 against UMR) are dropped, per the standard sign test.
    Returns the p-value from the exact binomial tail.
    """
    ref = results.makespans[results.reference][:, error_index, :].ravel()
    comp = results.makespans[competitor][:, error_index, :].ravel()
    wins = int((comp > ref).sum())
    losses = int((comp < ref).sum())
    n = wins + losses
    if n == 0:
        return 1.0
    # P(X >= wins) for X ~ Binomial(n, 1/2).
    from math import comb

    tail = sum(comb(n, k) for k in range(wins, n + 1))
    return tail / 2.0**n


def _z_for(level: float) -> float:
    """Two-sided normal quantile for common confidence levels."""
    table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    if level in table:
        return table[level]
    from scipy.stats import norm

    return float(norm.ppf(0.5 + level / 2.0))
