"""Sweep runner: grids × algorithms → makespan tensors.

Seeding discipline: every (platform, error, repetition) cell gets its own
stream key derived from the grid seed, *shared across algorithms* (common
random numbers) — the same trick the paper needs for its paired
"percentage of experiments where RUMR outperforms X" statistics.

The runner is serial by default (the reproduction box has one core) but
can fan platforms out over a process pool with ``n_jobs > 1``.
"""

from __future__ import annotations

import dataclasses
import time
import typing

import numpy as np

from repro.core.registry import make_scheduler
from repro.errors.models import make_error_model
from repro.errors.rng import stream_for
from repro.experiments.config import PAPER_ALGORITHMS, ExperimentGrid, PlatformPoint
from repro.sim.fastsim import simulate_fast

__all__ = ["SweepResults", "run_sweep"]


@dataclasses.dataclass(frozen=True)
class SweepResults:
    """Makespans for every algorithm over a grid.

    ``makespans[algo]`` has shape ``(num_platforms, num_errors,
    repetitions)``; ``platforms`` matches axis 0 and ``grid.errors``
    axis 1.
    """

    grid: ExperimentGrid
    algorithms: tuple[str, ...]
    platforms: tuple[PlatformPoint, ...]
    makespans: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        expected = (len(self.platforms), len(self.grid.errors), self.grid.repetitions)
        for algo, tensor in self.makespans.items():
            if tensor.shape != expected:
                raise ValueError(
                    f"{algo}: tensor shape {tensor.shape} != expected {expected}"
                )

    def platform_mask(
        self, predicate: typing.Callable[[PlatformPoint], bool]
    ) -> np.ndarray:
        """Boolean mask over the platform axis."""
        return np.array([predicate(p) for p in self.platforms], dtype=bool)

    def select(self, predicate: typing.Callable[[PlatformPoint], bool]) -> "SweepResults":
        """Restrict to platforms satisfying ``predicate`` (Fig 4(b) style)."""
        mask = self.platform_mask(predicate)
        if not mask.any():
            raise ValueError("predicate selects no platforms")
        return SweepResults(
            grid=self.grid,
            algorithms=self.algorithms,
            platforms=tuple(p for p, keep in zip(self.platforms, mask) if keep),
            makespans={a: t[mask] for a, t in self.makespans.items()},
        )

    @property
    def reference(self) -> str:
        """The normalization baseline — RUMR when present, else algo 0."""
        return "RUMR" if "RUMR" in self.algorithms else self.algorithms[0]


def _run_platform(
    args: tuple[ExperimentGrid, PlatformPoint, int, tuple[str, ...]],
) -> np.ndarray:
    """Worker: all (error, rep, algo) simulations for one platform.

    Returns an array of shape (num_errors, repetitions, num_algorithms).
    """
    grid, point, p_idx, algorithms = args
    platform = point.build()
    out = np.empty((len(grid.errors), grid.repetitions, len(algorithms)))
    for e_idx, error in enumerate(grid.errors):
        schedulers = [make_scheduler(name, error) for name in algorithms]
        for rep in range(grid.repetitions):
            # One stream key per cell, shared by all algorithms (paired
            # comparisons).  simulate_fast spawns independent comm/comp
            # streams from it.
            seed = int(
                stream_for(grid.seed, p_idx, e_idx, rep).integers(0, 2**63 - 1)
            )
            for a_idx, scheduler in enumerate(schedulers):
                model = make_error_model(grid.error_kind, error, mode=grid.error_mode)
                result = simulate_fast(
                    platform, grid.total_work, scheduler, model, seed=seed
                )
                out[e_idx, rep, a_idx] = result.makespan
    return out


def run_sweep(
    grid: ExperimentGrid,
    algorithms: typing.Sequence[str] = PAPER_ALGORITHMS,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
) -> SweepResults:
    """Run the full sweep and return the makespan tensors.

    Parameters
    ----------
    grid:
        The experiment specification.
    algorithms:
        Registry names to run (default: the paper's seven).
    n_jobs:
        Process-pool width; 1 (default) runs in-process.
    progress:
        Optional callback ``(platforms_done, platforms_total)``.
    """
    algorithms = tuple(algorithms)
    if len(set(algorithms)) != len(algorithms):
        raise ValueError("duplicate algorithm names")
    platforms = tuple(grid.platforms())
    shape = (len(platforms), len(grid.errors), grid.repetitions)
    tensors = {a: np.empty(shape) for a in algorithms}

    tasks = [(grid, point, p_idx, algorithms) for p_idx, point in enumerate(platforms)]
    if n_jobs > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(max_workers=n_jobs) as pool:
            for done, (p_idx, block) in enumerate(
                zip(range(len(tasks)), pool.map(_run_platform, tasks, chunksize=4))
            ):
                for a_idx, algo in enumerate(algorithms):
                    tensors[algo][p_idx] = block[:, :, a_idx]
                if progress is not None:
                    progress(done + 1, len(tasks))
    else:
        for done, task in enumerate(tasks):
            block = _run_platform(task)
            p_idx = task[2]
            for a_idx, algo in enumerate(algorithms):
                tensors[algo][p_idx] = block[:, :, a_idx]
            if progress is not None:
                progress(done + 1, len(tasks))

    return SweepResults(
        grid=grid, algorithms=algorithms, platforms=platforms, makespans=tensors
    )


def eta_progress(stream=None) -> typing.Callable[[int, int], None]:
    """A ready-made progress callback printing rate and ETA lines."""
    import sys

    stream = stream or sys.stderr
    start = time.monotonic()

    def callback(done: int, total: int) -> None:
        elapsed = time.monotonic() - start
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = (total - done) / rate if rate > 0 else float("inf")
        stream.write(
            f"\r[{done}/{total} platforms] {elapsed:6.1f}s elapsed, "
            f"~{remaining:6.1f}s left "
        )
        stream.flush()
        if done == total:
            stream.write("\n")

    return callback
