"""Sweep runner: grids × algorithms → makespan tensors.

Seeding discipline: every (platform, error, repetition) cell gets its own
stream key derived from the grid seed, *shared across algorithms* (common
random numbers) — the same trick the paper needs for its paired
"percentage of experiments where RUMR outperforms X" statistics.

Fast path: algorithms that declare :attr:`~repro.core.base.Scheduler.
is_static` (UMR, MI-x, one-round) have a fixed dispatch sequence, so each
(platform, error) cell's whole repetition axis collapses into one
:func:`~repro.sim.batch.simulate_static_batch` call — NumPy array math
instead of the per-run Python loop, two orders of magnitude faster.  The
plan is solved once per platform and shared across every error level and
repetition.  Batch-dynamic algorithms (RUMR and its variants, Factoring,
WeightedFactoring) have no fixed plan but a pure-arithmetic decision
rule, so *their* repetition axes advance in lockstep through
:func:`~repro.sim.dynbatch.simulate_dynamic_cells` — one global pass
merging every (platform, error) cell, run after the per-platform loop.
The remaining dynamic algorithms (FSC, AdaptiveRUMR) keep the scalar
engine in makespan-only mode.  All paths use *the same per-cell seeds*,
so the cross-algorithm pairing is untouched.  At ``error = 0`` the batch
paths agree with the scalar engine bit-for-bit; at ``error > 0`` their
makespans are distributionally identical but not bitwise (see
``repro.sim.batch`` / ``repro.sim.dynbatch``).  ``batch_static=False``
(CLI ``--no-batch``) forces everything through the scalar engine.

The runner is serial by default (the reproduction box has one core) but
can fan platforms out over a process pool with ``n_jobs > 1`` (or
``n_jobs=-1`` for one worker per CPU).  The grid ships to pool workers
once, through the pool initializer — not inside every task.
"""

from __future__ import annotations

import dataclasses
import os
import time
import typing

import numpy as np

from repro.core.registry import is_batch_dynamic_algorithm, make_scheduler
from repro.errors.faults import make_fault_model
from repro.errors.models import make_error_model
from repro.errors.rng import stream_for
from repro.experiments.config import PAPER_ALGORITHMS, ExperimentGrid, PlatformPoint
from repro.sim.batch import (
    compile_static_plan,
    draw_factor_matrices,
    simulate_static_batch,
)
from repro.sim.dynbatch import DynamicCell, simulate_dynamic_cells
from repro.sim.fastsim import simulate_fast

__all__ = ["SweepResults", "run_sweep", "run_fault_sweep", "FaultSweepResults"]


@dataclasses.dataclass(frozen=True)
class SweepResults:
    """Makespans for every algorithm over a grid.

    ``makespans[algo]`` has shape ``(num_platforms, num_errors,
    repetitions)``; ``platforms`` matches axis 0 and ``grid.errors``
    axis 1.
    """

    grid: ExperimentGrid
    algorithms: tuple[str, ...]
    platforms: tuple[PlatformPoint, ...]
    makespans: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        expected = (len(self.platforms), len(self.grid.errors), self.grid.repetitions)
        for algo, tensor in self.makespans.items():
            if tensor.shape != expected:
                raise ValueError(
                    f"{algo}: tensor shape {tensor.shape} != expected {expected}"
                )

    def platform_mask(
        self, predicate: typing.Callable[[PlatformPoint], bool]
    ) -> np.ndarray:
        """Boolean mask over the platform axis."""
        return np.array([predicate(p) for p in self.platforms], dtype=bool)

    def select(self, predicate: typing.Callable[[PlatformPoint], bool]) -> "SweepResults":
        """Restrict to platforms satisfying ``predicate`` (Fig 4(b) style)."""
        mask = self.platform_mask(predicate)
        if not mask.any():
            raise ValueError("predicate selects no platforms")
        return SweepResults(
            grid=self.grid,
            algorithms=self.algorithms,
            platforms=tuple(p for p, keep in zip(self.platforms, mask) if keep),
            makespans={a: t[mask] for a, t in self.makespans.items()},
        )

    @property
    def reference(self) -> str:
        """The normalization baseline — RUMR when present, else algo 0."""
        return "RUMR" if "RUMR" in self.algorithms else self.algorithms[0]


def _grid_supports_batch(grid: ExperimentGrid) -> bool:
    """Whether the batch engine implements this grid's error model.

    The batch engine draws truncated-normal multiplicative factors — the
    ``normal`` kind (and trivially ``none``).  ``uniform`` and ``drifting``
    grids fall back to the scalar path for every algorithm.
    """
    return grid.error_kind in ("normal", "none")


def _batch_eligible(grid: ExperimentGrid, scheduler) -> bool:
    """Whether one scheduler's cells may take a batch path on this grid.

    Fault grids additionally require the scheduler to declare
    :attr:`~repro.core.base.Scheduler.batch_supports_faults` — the explicit
    opt-in mirroring ``is_batch_dynamic``.  No in-tree scheduler sets it
    yet, so every fault cell currently routes through the scalar engine.
    """
    return not grid.has_faults or scheduler.batch_supports_faults


def _cell_seeds(grid: ExperimentGrid, p_idx: int, e_idx: int) -> list[int]:
    """The per-repetition stream keys of one (platform, error) cell.

    One seed per repetition, shared by all algorithms (paired comparisons)
    and by both engines; simulate_fast and simulate_static_batch spawn the
    same independent comm/comp streams from it.
    """
    return [
        int(stream_for(grid.seed, p_idx, e_idx, rep).integers(0, 2**63 - 1))
        for rep in range(grid.repetitions)
    ]


def _run_platform(
    grid: ExperimentGrid,
    point: PlatformPoint,
    p_idx: int,
    algorithms: tuple[str, ...],
    batch_static: bool = True,
    batch_dynamic: bool = True,
    stats=None,
) -> np.ndarray:
    """Worker: all (error, rep, algo) simulations for one platform.

    Returns an array of shape (num_errors, repetitions, num_algorithms).
    With ``batch_dynamic`` on, batch-dynamic algorithms are *skipped*
    here — their slots hold garbage until the caller's global lockstep
    pass overwrites them.

    ``stats`` (a :class:`repro.obs.SweepStats`) receives per-cell wall
    times; only the in-process path passes it — pool workers cannot share
    the parent's collector.
    """
    platform = point.build()
    out = np.empty((len(grid.errors), grid.repetitions, len(algorithms)))
    fault_model = make_fault_model(grid.fault) if grid.has_faults else None

    # Per-platform plan cache: a static plan depends only on (platform,
    # total_work), so it is solved and compiled exactly once here and
    # reused across the whole (error × repetition) face instead of being
    # re-derived inside create_source for every run.
    static_plans: dict[int, typing.Any] = {}
    skipped: set[int] = set()
    if batch_static and _grid_supports_batch(grid):
        for a_idx, name in enumerate(algorithms):
            scheduler = make_scheduler(name, 0.0)
            if scheduler.is_static and _batch_eligible(grid, scheduler):
                static_plans[a_idx] = compile_static_plan(
                    platform, scheduler.static_plan(platform, grid.total_work)
                )
    if batch_dynamic and _grid_supports_batch(grid):
        skipped = {
            a_idx
            for a_idx, name in enumerate(algorithms)
            if is_batch_dynamic_algorithm(name)
            and _batch_eligible(grid, make_scheduler(name, 0.0))
        }

    dynamic_indices = [
        i for i in range(len(algorithms)) if i not in static_plans and i not in skipped
    ]
    if not static_plans and not dynamic_indices:
        return out
    max_chunks = max((p.num_chunks for p in static_plans.values()), default=0)
    for e_idx, error in enumerate(grid.errors):
        seeds = _cell_seeds(grid, p_idx, e_idx)
        magnitude = error if grid.error_kind != "none" else 0.0
        # One factor draw per cell, column-sliced per algorithm: the same
        # per-seed streams the scalar engines spawn, drawn once instead of
        # once per static algorithm.
        factors = (
            draw_factor_matrices(seeds, max_chunks, magnitude)
            if static_plans and magnitude > 0.0
            else None
        )
        for a_idx, plan in static_plans.items():
            t0 = time.perf_counter() if stats is not None else 0.0
            out[e_idx, :, a_idx] = simulate_static_batch(
                platform, plan, magnitude, seeds, mode=grid.error_mode,
                factors=factors,
            )
            if stats is not None:
                stats.time_cell(
                    algorithms[a_idx], p_idx, e_idx, "static-batch",
                    grid.repetitions, time.perf_counter() - t0,
                )
        if not dynamic_indices:
            continue
        schedulers = [(i, make_scheduler(algorithms[i], error)) for i in dynamic_indices]
        scalar_wall = {i: 0.0 for i in dynamic_indices} if stats is not None else None
        for rep in range(grid.repetitions):
            for a_idx, scheduler in schedulers:
                model = make_error_model(grid.error_kind, error, mode=grid.error_mode)
                t0 = time.perf_counter() if stats is not None else 0.0
                result = simulate_fast(
                    platform,
                    grid.total_work,
                    scheduler,
                    model,
                    seed=seeds[rep],
                    collect_records=False,
                    faults=fault_model,
                )
                if scalar_wall is not None:
                    scalar_wall[a_idx] += time.perf_counter() - t0
                out[e_idx, rep, a_idx] = result.makespan
        if stats is not None:
            for a_idx, wall in scalar_wall.items():
                stats.time_cell(
                    algorithms[a_idx], p_idx, e_idx, "scalar",
                    grid.repetitions, wall,
                )
    return out


# Process-pool plumbing: the grid, platform list and algorithm tuple are
# shipped to each worker exactly once via the initializer; tasks are then
# bare platform indices instead of fat pickled tuples.
_POOL_CTX: (
    tuple[ExperimentGrid, tuple[PlatformPoint, ...], tuple[str, ...], bool, bool] | None
) = None


def _pool_init(
    grid: ExperimentGrid,
    platforms: tuple[PlatformPoint, ...],
    algorithms: tuple[str, ...],
    batch_static: bool,
    batch_dynamic: bool,
) -> None:
    global _POOL_CTX
    _POOL_CTX = (grid, platforms, algorithms, batch_static, batch_dynamic)


def _pool_task(p_idx: int) -> np.ndarray:
    assert _POOL_CTX is not None, "pool worker used without initializer"
    grid, platforms, algorithms, batch_static, batch_dynamic = _POOL_CTX
    return _run_platform(
        grid, platforms[p_idx], p_idx, algorithms, batch_static, batch_dynamic
    )


def _run_dynamic_batch_pass(
    grid: ExperimentGrid,
    platforms: tuple[PlatformPoint, ...],
    names: list[str],
    tensors: dict[str, np.ndarray],
) -> None:
    """Fill the batch-dynamic algorithms' tensors via one lockstep pass.

    Builds one :class:`~repro.sim.dynbatch.DynamicCell` per (platform,
    error, algorithm) with the *same* per-cell seeds the scalar path
    would use, then lets :func:`simulate_dynamic_cells` merge compatible
    cells into shared lockstep calls.
    """
    cells: list[DynamicCell] = []
    targets: list[tuple[str, int, int]] = []
    for p_idx, point in enumerate(platforms):
        platform = point.build()
        for e_idx, error in enumerate(grid.errors):
            seeds = tuple(_cell_seeds(grid, p_idx, e_idx))
            magnitude = error if grid.error_kind != "none" else 0.0
            for name in names:
                cells.append(
                    DynamicCell(
                        platform=platform,
                        scheduler=make_scheduler(name, error),
                        total_work=grid.total_work,
                        error=magnitude,
                        seeds=seeds,
                    )
                )
                targets.append((name, p_idx, e_idx))
    results = simulate_dynamic_cells(cells, mode=grid.error_mode)
    for (name, p_idx, e_idx), makespans in zip(targets, results):
        tensors[name][p_idx, e_idx, :] = makespans


def run_sweep(
    grid: ExperimentGrid,
    algorithms: typing.Sequence[str] = PAPER_ALGORITHMS,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
    batch_static: bool = True,
    batch_dynamic: bool | None = None,
    stats=None,
) -> SweepResults:
    """Run the full sweep and return the makespan tensors.

    Parameters
    ----------
    grid:
        The experiment specification.
    algorithms:
        Registry names to run (default: the paper's seven).
    n_jobs:
        Process-pool width; 1 (default) runs in-process, ``-1`` uses one
        worker per CPU.
    progress:
        Optional callback ``(platforms_done, platforms_total)``.
    batch_static:
        Route static algorithms through the vectorized batch engine (the
        default; see the module docstring).  ``False`` forces the scalar
        engine — mainly for benchmarking and equivalence tests.
    batch_dynamic:
        Route batch-dynamic algorithms through the lockstep batch engine.
        ``None`` (default) follows ``batch_static``, so ``--no-batch``
        disables both fast paths at once.
    stats:
        Optional :class:`repro.obs.SweepStats` collector: engine-routing
        counts, per-cell wall times (in-process runs only — pool workers
        cannot share the parent's collector), lockstep and total wall
        time.  Surfaced by the ``repro stats`` CLI.
    """
    sweep_t0 = time.perf_counter()
    algorithms = tuple(algorithms)
    if len(set(algorithms)) != len(algorithms):
        raise ValueError("duplicate algorithm names")
    if n_jobs == -1:
        n_jobs = os.cpu_count() or 1
    elif n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    if batch_dynamic is None:
        batch_dynamic = batch_static
    platforms = tuple(grid.platforms())
    shape = (len(platforms), len(grid.errors), grid.repetitions)
    tensors = {a: np.empty(shape) for a in algorithms}

    dyn_batch_names = (
        [
            a
            for a in algorithms
            if is_batch_dynamic_algorithm(a)
            and _batch_eligible(grid, make_scheduler(a, 0.0))
        ]
        if batch_dynamic and _grid_supports_batch(grid)
        else []
    )
    # When the lockstep pass covers every algorithm, the per-platform loop
    # has nothing left to do — skip it (and the pool) entirely.
    if len(dyn_batch_names) == len(algorithms):
        n_jobs = 0

    if stats is not None:
        # Routing is deterministic from (grid, algorithm, flags), so the
        # counts are derived analytically rather than tallied in the loops
        # — which also makes them exact on the process-pool path.
        num_cells = len(platforms) * len(grid.errors)
        for a in algorithms:
            scheduler = make_scheduler(a, 0.0)
            if a in dyn_batch_names:
                engine = "dynbatch"
            elif (
                batch_static
                and _grid_supports_batch(grid)
                and scheduler.is_static
                and _batch_eligible(grid, scheduler)
            ):
                engine = "static-batch"
            else:
                engine = "scalar"
            stats.count_routing(engine, num_cells, grid.repetitions)

    if n_jobs == 0:
        if progress is not None:
            progress(len(platforms), len(platforms))
    elif n_jobs > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_pool_init,
            initargs=(grid, platforms, algorithms, batch_static, batch_dynamic),
        ) as pool:
            blocks = pool.map(_pool_task, range(len(platforms)), chunksize=4)
            for p_idx, block in enumerate(blocks):
                for a_idx, algo in enumerate(algorithms):
                    tensors[algo][p_idx] = block[:, :, a_idx]
                if progress is not None:
                    progress(p_idx + 1, len(platforms))
    else:
        for p_idx, point in enumerate(platforms):
            block = _run_platform(
                grid, point, p_idx, algorithms, batch_static, batch_dynamic,
                stats=stats,
            )
            for a_idx, algo in enumerate(algorithms):
                tensors[algo][p_idx] = block[:, :, a_idx]
            if progress is not None:
                progress(p_idx + 1, len(platforms))

    if dyn_batch_names:
        t0 = time.perf_counter()
        _run_dynamic_batch_pass(grid, platforms, dyn_batch_names, tensors)
        if stats is not None:
            stats.lockstep_wall_s += time.perf_counter() - t0

    if stats is not None:
        stats.total_wall_s += time.perf_counter() - sweep_t0
    return SweepResults(
        grid=grid, algorithms=algorithms, platforms=platforms, makespans=tensors
    )


@dataclasses.dataclass(frozen=True)
class FaultSweepResults:
    """One sweep per fault scenario, sharing grid, seeds and algorithms.

    ``sweeps[spec]`` holds the :class:`SweepResults` of the grid with
    ``fault=spec``; the first spec is conventionally ``"none"`` so
    degradation metrics have a baseline.  Because each scenario's grid
    shares the base grid's seed, the (platform, error, repetition) cells
    are paired across scenarios — the same common-random-numbers trick the
    algorithm comparisons use, applied to the fault axis.
    """

    base_grid: ExperimentGrid
    fault_specs: tuple[str, ...]
    algorithms: tuple[str, ...]
    sweeps: dict[str, SweepResults]

    def __post_init__(self) -> None:
        missing = [s for s in self.fault_specs if s not in self.sweeps]
        if missing:
            raise ValueError(f"fault specs without results: {missing}")


def run_fault_sweep(
    grid: ExperimentGrid,
    fault_specs: typing.Sequence[str],
    algorithms: typing.Sequence[str] = PAPER_ALGORITHMS,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
    directory: "str | os.PathLike | None" = None,
) -> FaultSweepResults:
    """Run the same sweep under several fault scenarios.

    ``fault_specs`` are fault spec strings (see
    :func:`repro.errors.make_fault_model`); ``"none"`` is prepended when
    absent so the result always carries a fault-free baseline.  When
    ``directory`` is given each scenario goes through the sweep cache
    (scenarios hash to distinct keys because ``fault`` is part of the grid).
    """
    specs = tuple(fault_specs)
    if "none" not in specs:
        specs = ("none",) + specs
    if len(set(specs)) != len(specs):
        raise ValueError("duplicate fault specs")
    algorithms = tuple(algorithms)
    sweeps: dict[str, SweepResults] = {}
    for spec in specs:
        fault_grid = dataclasses.replace(grid, fault=spec)
        if directory is not None:
            from repro.experiments.cache import cached_sweep

            sweeps[spec] = cached_sweep(
                fault_grid, algorithms, directory, n_jobs=n_jobs, progress=progress
            )
        else:
            sweeps[spec] = run_sweep(
                fault_grid, algorithms=algorithms, n_jobs=n_jobs, progress=progress
            )
    return FaultSweepResults(
        base_grid=grid, fault_specs=specs, algorithms=algorithms, sweeps=sweeps
    )


def eta_progress(stream=None) -> typing.Callable[[int, int], None]:
    """A ready-made progress callback printing rate and ETA lines."""
    import sys

    stream = stream or sys.stderr
    start = time.monotonic()

    def callback(done: int, total: int) -> None:
        elapsed = time.monotonic() - start
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = (total - done) / rate if rate > 0 else float("inf")
        stream.write(
            f"\r[{done}/{total} platforms] {elapsed:6.1f}s elapsed, "
            f"~{remaining:6.1f}s left "
        )
        stream.flush()
        if done == total:
            stream.write("\n")

    return callback
