"""Sweep runner: grids × algorithms → makespan tensors.

Seeding discipline: every (platform, error, repetition) cell gets its own
stream key derived from the grid seed, *shared across algorithms* (common
random numbers) — the same trick the paper needs for its paired
"percentage of experiments where RUMR outperforms X" statistics.

Fast path: algorithms that declare :attr:`~repro.core.base.Scheduler.
is_static` (UMR, MI-x, one-round) have a fixed dispatch sequence, so
*every* one of their cells — the whole (platform × error × repetition)
grid — stacks into a single :func:`~repro.sim.batch.simulate_static_cells`
pass: one (rows × chunks) tensor, NumPy array math instead of the
per-run Python loop, two orders of magnitude faster.  Each plan is
solved once per platform and shared across every error level and
repetition.  Batch-dynamic algorithms — every in-tree dynamic scheduler:
Factoring, WeightedFactoring, FSC, RUMR and its variants, AdaptiveRUMR —
have no fixed plan but a pure-arithmetic decision rule, so *their*
repetition axes advance in lockstep through
:func:`~repro.sim.dynbatch.simulate_dynamic_cells` — one global pass
merging every (platform, error) cell, reusing one grow-only
:class:`~repro.sim.dynbatch.BatchArena` across the merged calls.  Fault
grids ride the same passes: both batch engines realize per-repetition
fault schedules with the scalar engine's exact semantics, gated per
scheduler by :attr:`~repro.core.base.Scheduler.batch_supports_faults`.
All paths use *the same per-cell seeds*, so the cross-algorithm pairing
is untouched.  At ``error = 0`` the batch paths agree with the scalar
engine bit-for-bit; at ``error > 0`` their makespans are
distributionally identical but not bitwise (see ``repro.sim.batch`` /
``repro.sim.dynbatch``).  ``batch_static=False`` (CLI ``--no-batch``)
forces everything through the scalar engine.

Resilience: every cell executes under a
:class:`~repro.experiments.resilient.CellSupervisor` — retried per the
:class:`~repro.experiments.resilient.RetryPolicy`, rerouted down the
engine-fallback ladder (batch engine → scalar engine), and finally
quarantined as NaN with a :class:`~repro.experiments.resilient.
CellFailure` ledger entry instead of aborting the sweep.  With a
``checkpoint_dir``, each completed platform shard (and the lockstep
pass) is flushed atomically so a killed sweep resumes from the last
shard via ``resume=True``.  The process pool is supervised too: a
``BrokenProcessPool`` restarts the pool once and degrades to in-process
execution on a second break; a shard that overruns
``RetryPolicy.cell_timeout_s`` is abandoned (its worker killed) and
recomputed in-process.  Because a retry re-runs the exact same seeded
computation, any cell that eventually succeeds on its original engine is
bitwise identical to an unperturbed run; a scalar fallback yields
exactly what ``batch_static=False`` would have.

The runner is serial by default (the reproduction box has one core) but
can fan platforms out over a process pool with ``n_jobs > 1`` (or
``n_jobs=-1`` for one worker per CPU).  The grid ships to pool workers
once, through the pool initializer — not inside every task.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import time
import typing
from functools import lru_cache

import numpy as np

from repro.core.registry import is_batch_dynamic_algorithm, make_scheduler
from repro.errors.faults import make_fault_model
from repro.errors.models import make_error_model
from repro.errors.rng import stream_for
from repro.experiments.config import (
    PAPER_ALGORITHMS,
    ExperimentGrid,
    PlatformPoint,
    sweep_key,
)
from repro.experiments.resilient import (
    CellSupervisor,
    CheckpointStore,
    FailureLedger,
    RetryPolicy,
)
from repro.sim.batch import (
    StaticCell,
    compile_static_plan,
    simulate_static_cells,
)
from repro.platform.topology import make_topology
from repro.sim.dynbatch import BatchArena, DynamicCell, simulate_dynamic_cells
from repro.sim.engine import simulate_des
from repro.sim.fastsim import simulate_fast

__all__ = ["SweepResults", "run_sweep", "run_fault_sweep", "FaultSweepResults"]


@dataclasses.dataclass(frozen=True)
class SweepResults:
    """Makespans for every algorithm over a grid.

    ``makespans[algo]`` has shape ``(num_platforms, num_errors,
    repetitions)``; ``platforms`` matches axis 0 and ``grid.errors``
    axis 1.  Quarantined cells (see :mod:`repro.experiments.resilient`)
    hold NaN.
    """

    grid: ExperimentGrid
    algorithms: tuple[str, ...]
    platforms: tuple[PlatformPoint, ...]
    makespans: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        expected = (len(self.platforms), len(self.grid.errors), self.grid.repetitions)
        for algo, tensor in self.makespans.items():
            if tensor.shape != expected:
                raise ValueError(
                    f"{algo}: tensor shape {tensor.shape} != expected {expected}"
                )

    def platform_mask(
        self, predicate: typing.Callable[[PlatformPoint], bool]
    ) -> np.ndarray:
        """Boolean mask over the platform axis."""
        return np.array([predicate(p) for p in self.platforms], dtype=bool)

    def select(self, predicate: typing.Callable[[PlatformPoint], bool]) -> "SweepResults":
        """Restrict to platforms satisfying ``predicate`` (Fig 4(b) style)."""
        mask = self.platform_mask(predicate)
        if not mask.any():
            raise ValueError("predicate selects no platforms")
        return SweepResults(
            grid=self.grid,
            algorithms=self.algorithms,
            platforms=tuple(p for p, keep in zip(self.platforms, mask) if keep),
            makespans={a: t[mask] for a, t in self.makespans.items()},
        )

    @property
    def reference(self) -> str:
        """The normalization baseline — RUMR when present, else algo 0."""
        return "RUMR" if "RUMR" in self.algorithms else self.algorithms[0]


@lru_cache(maxsize=256)
def _grid_topology(spec: str):
    """Parse a grid's topology spec once; ``None`` for the star baseline.

    ``None`` keeps every star cell on the exact legacy code paths (the
    bitwise-compatibility contract); a non-``None`` topology reroutes the
    scalar rung and disqualifies the batch engines.
    """
    topo = make_topology(spec)
    return None if topo.kind == "star" else topo


def _grid_supports_batch(grid: ExperimentGrid) -> bool:
    """Whether the batch engines implement this grid's cells.

    The batch engine draws truncated-normal multiplicative factors — the
    ``normal`` kind (and trivially ``none``).  ``uniform`` and ``drifting``
    grids fall back to the scalar path for every algorithm, as do
    non-star topology grids (the batch engines model only the paper's
    serialized star; chains, trees and shared-bandwidth stars take the
    scalar/DES rung via the routing ladder).
    """
    return grid.error_kind in ("normal", "none") and (
        _grid_topology(grid.topology) is None
    )


def _batch_eligible(grid: ExperimentGrid, scheduler) -> bool:
    """Whether one scheduler's cells may take a batch path on this grid.

    Fault grids additionally require the scheduler to declare
    :attr:`~repro.core.base.Scheduler.batch_supports_faults` — the explicit
    opt-in mirroring ``is_batch_dynamic``.  Every in-tree scheduler sets
    it, so fault cells normally batch; the gate still guards third-party
    schedulers that have not made the claim.
    """
    return not grid.has_faults or scheduler.batch_supports_faults


def _cell_seeds(grid: ExperimentGrid, p_idx: int, e_idx: int) -> list[int]:
    """The per-repetition stream keys of one (platform, error) cell.

    One seed per repetition, shared by all algorithms (paired comparisons)
    and by both engines; simulate_fast and simulate_static_batch spawn the
    same independent comm/comp streams from it.  Memoized on the grid's
    seed coordinates — every engine path re-derives the same cell seeds,
    and spawning the underlying PCG64 streams dominates an otherwise
    cheap lookup.
    """
    return list(_cell_seeds_cached(grid.seed, grid.repetitions, p_idx, e_idx))


@lru_cache(maxsize=4096)
def _cell_seeds_cached(
    grid_seed: int, repetitions: int, p_idx: int, e_idx: int
) -> tuple[int, ...]:
    return tuple(
        int(stream_for(grid_seed, p_idx, e_idx, rep).integers(0, 2**63 - 1))
        for rep in range(repetitions)
    )


def _scalar_cell(
    platform, grid: ExperimentGrid, scheduler, error: float, seeds, fault_model
) -> np.ndarray:
    """One (platform, error, algorithm) cell on the scalar engine.

    The shared bottom rung of the engine-fallback ladder: exactly the
    computation ``batch_static=False`` performs for the cell, so a
    fallen-back cell is bitwise identical to a ``--no-batch`` run's.
    Topology grids route here too: chains and trees keep the fast
    engine's closed-form recurrences, shared-bandwidth stars (which have
    none) run on the DES engine.
    """
    topo = _grid_topology(grid.topology)
    out = np.empty(len(seeds))
    for rep, seed in enumerate(seeds):
        model = make_error_model(grid.error_kind, error, mode=grid.error_mode)
        if topo is not None and topo.kind == "sharedbw":
            out[rep] = simulate_des(
                platform,
                grid.total_work,
                scheduler,
                model,
                seed=seed,
                faults=fault_model,
                topology=topo,
            ).makespan
        else:
            out[rep] = simulate_fast(
                platform,
                grid.total_work,
                scheduler,
                model,
                seed=seed,
                collect_records=False,
                faults=fault_model,
                topology=topo,
            ).makespan
    return out


def _run_platform(
    grid: ExperimentGrid,
    point: PlatformPoint,
    p_idx: int,
    algorithms: tuple[str, ...],
    batch_static: bool = True,
    batch_dynamic: bool = True,
    stats=None,
    supervisor: CellSupervisor | None = None,
) -> np.ndarray:
    """Worker: the *scalar-engine* simulations for one platform.

    Returns an array of shape (num_errors, repetitions, num_algorithms).
    Algorithms covered by a global batch pass — static algorithms under
    ``batch_static`` (the grid pass) and batch-dynamic algorithms under
    ``batch_dynamic`` (the lockstep pass) — are *skipped* here: their
    slots hold garbage until the caller's pass overwrites them.  Because
    every in-tree scheduler takes one of the batch paths, this loop only
    has work when a flag is off, the grid's error model is unsupported,
    or a third-party scheduler declines a batch contract.

    Every cell runs through ``supervisor`` (retry → NaN quarantine; a
    fresh default supervisor is built when none is given), so no cell
    failure escapes this function.  ``stats`` (a
    :class:`repro.obs.SweepStats`) receives per-cell wall times; only the
    in-process path passes it — pool workers cannot share the parent's
    collector.
    """
    if supervisor is None:
        supervisor = CellSupervisor()
    platform = point.build()
    out = np.empty((len(grid.errors), grid.repetitions, len(algorithms)))
    fault_model = make_fault_model(grid.fault) if grid.has_faults else None

    skipped: set[int] = set()
    if _grid_supports_batch(grid):
        for a_idx, name in enumerate(algorithms):
            scheduler = make_scheduler(name, 0.0)
            if not _batch_eligible(grid, scheduler):
                continue
            if (batch_static and scheduler.is_static) or (
                batch_dynamic and scheduler.is_batch_dynamic
            ):
                skipped.add(a_idx)

    dynamic_indices = [i for i in range(len(algorithms)) if i not in skipped]
    if not dynamic_indices:
        return out
    for e_idx, error in enumerate(grid.errors):
        seeds = _cell_seeds(grid, p_idx, e_idx)
        schedulers = [(i, make_scheduler(algorithms[i], error)) for i in dynamic_indices]
        for a_idx, scheduler in schedulers:
            t0 = time.perf_counter() if stats is not None else 0.0
            out[e_idx, :, a_idx] = supervisor.run_cell(
                lambda scheduler=scheduler, error=error: _scalar_cell(
                    platform, grid, scheduler, error, seeds, fault_model
                ),
                algorithm=algorithms[a_idx],
                platform_index=p_idx,
                error_index=e_idx,
                engine="scalar",
                seed=seeds[0],
                shape=(grid.repetitions,),
            )
            if stats is not None:
                stats.time_cell(
                    algorithms[a_idx], p_idx, e_idx, "scalar",
                    grid.repetitions, time.perf_counter() - t0,
                )
    return out


# Process-pool plumbing: the grid, platform list, algorithm tuple and
# retry policy are shipped to each worker exactly once via the
# initializer; tasks are then bare platform indices instead of fat
# pickled tuples.
_POOL_CTX: (
    tuple[
        ExperimentGrid, tuple[PlatformPoint, ...], tuple[str, ...],
        bool, bool, RetryPolicy,
    ]
    | None
) = None


def _pool_init(
    grid: ExperimentGrid,
    platforms: tuple[PlatformPoint, ...],
    algorithms: tuple[str, ...],
    batch_static: bool,
    batch_dynamic: bool,
    policy: RetryPolicy,
) -> None:
    global _POOL_CTX
    _POOL_CTX = (grid, platforms, algorithms, batch_static, batch_dynamic, policy)


def _pool_task(p_idx: int):
    """One platform shard in a pool worker.

    Runs under the worker's own :class:`CellSupervisor` (the parent's
    cannot cross the process boundary) and ships the block plus the
    supervisor's ledger entries and counters back for the parent to
    absorb.
    """
    assert _POOL_CTX is not None, "pool worker used without initializer"
    grid, platforms, algorithms, batch_static, batch_dynamic, policy = _POOL_CTX
    supervisor = CellSupervisor(policy=policy)
    block = _run_platform(
        grid, platforms[p_idx], p_idx, algorithms, batch_static, batch_dynamic,
        supervisor=supervisor,
    )
    return block, supervisor.ledger.entries, supervisor.counters()


def _kill_pool_workers(pool) -> None:
    """Forcibly terminate a pool's worker processes.

    Used when a shard overruns its timeout or the pool broke: a plain
    ``shutdown(wait=False)`` leaves hung workers alive, and the
    interpreter would join them at exit.  Reaches into the private
    process map — there is no public kill switch — and tolerates its
    absence.
    """
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.kill()
        except Exception:  # noqa: BLE001 — best-effort cleanup
            pass


def _supervised_pool_run(
    grid: ExperimentGrid,
    platforms: tuple[PlatformPoint, ...],
    algorithms: tuple[str, ...],
    batch_static: bool,
    batch_dynamic: bool,
    n_jobs: int,
    pending: list[int],
    policy: RetryPolicy,
    supervisor: CellSupervisor,
    stats,
    on_block: typing.Callable[[int, np.ndarray], None],
) -> list[int]:
    """Run platform shards on a supervised process pool.

    Shards are harvested in submission order; each waits at most
    ``policy.cell_timeout_s`` from the moment it is polled.  A
    ``BrokenProcessPool`` restarts the pool once (completed shards are
    salvaged first); a second break, or any shard timeout, abandons the
    pool — the returned list holds the shards still pending, which the
    caller must run in-process.
    """
    import concurrent.futures
    from concurrent.futures.process import BrokenProcessPool

    remaining = list(pending)
    restarted = False
    while remaining:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(n_jobs, len(remaining)),
            initializer=_pool_init,
            initargs=(grid, platforms, algorithms, batch_static, batch_dynamic, policy),
        )
        broken = timed_out = False
        futures: dict[int, concurrent.futures.Future] = {}
        try:
            try:
                futures = {p: pool.submit(_pool_task, p) for p in remaining}
            except BrokenProcessPool:
                broken = True
            for p_idx in () if broken else list(remaining):
                try:
                    block, entries, counters = futures[p_idx].result(
                        timeout=policy.cell_timeout_s
                    )
                except BrokenProcessPool:
                    broken = True
                    break
                except TimeoutError:
                    timed_out = True
                    break
                supervisor.absorb(entries, counters)
                on_block(p_idx, block)
                remaining.remove(p_idx)
            if broken or timed_out:
                # Salvage shards that finished before the pool went down.
                for p_idx in list(remaining):
                    fut = futures.get(p_idx)
                    if fut is None or not fut.done() or fut.cancelled():
                        continue
                    try:
                        block, entries, counters = fut.result(timeout=0)
                    except Exception:  # noqa: BLE001 — salvage is best-effort
                        continue
                    supervisor.absorb(entries, counters)
                    on_block(p_idx, block)
                    remaining.remove(p_idx)
        finally:
            if broken or timed_out:
                # Kill before shutdown: shutdown(wait=False) drops the
                # executor's process map, and hung workers it leaves
                # behind would block the interpreter's exit join.
                _kill_pool_workers(pool)
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        if not remaining:
            break
        if timed_out:
            # A hung shard cannot be preempted remotely; finish the rest
            # in-process where the supervisor can at least bound retries.
            if stats is not None:
                stats.pool_timeouts += 1
            break
        if broken:
            if not restarted:
                restarted = True
                if stats is not None:
                    stats.pool_restarts += 1
                continue
            if stats is not None:
                stats.pool_degradations += 1
            break
        break  # unreachable: no failure implies remaining is empty
    return remaining


# The global batch passes share one grow-only arena across every merged
# lockstep call (and across sweeps in the same process, e.g. the fault
# sweep's per-scenario runs): state tensors are reused instead of
# reallocated per cell group.  Only the parent process touches it — the
# platform pool runs scalar cells exclusively.
_SWEEP_ARENA = BatchArena()


def _run_static_batch_pass(
    grid: ExperimentGrid,
    platforms: tuple[PlatformPoint, ...],
    names: list[str],
    tensors: dict[str, np.ndarray],
    supervisor: CellSupervisor | None = None,
    stats=None,
) -> None:
    """Fill the static algorithms' tensors via one whole-grid pass.

    Solves and compiles each plan once per (platform, algorithm), builds
    one :class:`~repro.sim.batch.StaticCell` per (platform, error,
    algorithm) with the *same* per-cell seeds the scalar path would use
    — fault model included — and hands the entire grid to
    :func:`simulate_static_cells` as a single stacked tensor.

    With a ``supervisor``, the merged pass is retried per the policy; if
    it keeps failing, the pass degrades to per-cell grid calls — the
    same computation, one cell per tensor — each under the full ladder
    (retry → scalar fallback → NaN quarantine), so one poisoned cell
    cannot take down every static result.  A plan that fails to *solve*
    never enters the pass: its cells take the scalar engine directly,
    counted as fallbacks.
    """
    fault_model = make_fault_model(grid.fault) if grid.has_faults else None
    cells: list[StaticCell] = []
    targets: list[tuple[str, int, int, float]] = []
    scalar_jobs: list[tuple[str, int, int, float, typing.Any, list[int]]] = []
    for p_idx, point in enumerate(platforms):
        platform = point.build()
        plans: dict[str, typing.Any] = {}
        for name in names:
            scheduler = make_scheduler(name, 0.0)
            try:
                plans[name] = compile_static_plan(
                    platform, scheduler.static_plan(platform, grid.total_work)
                )
            except Exception:  # noqa: BLE001 — first rung of the ladder
                plans[name] = None
                if supervisor is not None:
                    supervisor.count_fallback()
        for e_idx, error in enumerate(grid.errors):
            seeds = _cell_seeds(grid, p_idx, e_idx)
            magnitude = error if grid.error_kind != "none" else 0.0
            for name in names:
                plan = plans[name]
                if plan is None:
                    scalar_jobs.append((name, p_idx, e_idx, error, platform, seeds))
                    continue
                cells.append(
                    StaticCell(
                        platform=platform,
                        plan=plan,
                        error=magnitude,
                        seeds=tuple(seeds),
                        faults=fault_model,
                    )
                )
                targets.append((name, p_idx, e_idx, error))
    perf = {} if stats is not None else None
    if supervisor is None:
        results = simulate_static_cells(cells, mode=grid.error_mode, perf=perf)
    else:
        results, exc = supervisor.attempt(
            lambda: simulate_static_cells(cells, mode=grid.error_mode, perf=perf),
            grid.seed,
        )
        if exc is not None:
            results = [
                supervisor.run_cell(
                    lambda cell=cell: simulate_static_cells(
                        [cell], mode=grid.error_mode
                    )[0],
                    fallback=lambda name=name, error=error, cell=cell: _scalar_cell(
                        cell.platform, grid, make_scheduler(name, error), error,
                        list(cell.seeds), fault_model,
                    ),
                    algorithm=name,
                    platform_index=p_idx,
                    error_index=e_idx,
                    engine="static-batch",
                    seed=cell.seeds[0],
                    shape=(grid.repetitions,),
                )
                for cell, (name, p_idx, e_idx, error) in zip(cells, targets)
            ]
    for (name, p_idx, e_idx, _error), makespans in zip(targets, results):
        tensors[name][p_idx, e_idx, :] = makespans
    for name, p_idx, e_idx, error, platform, seeds in scalar_jobs:
        t0 = time.perf_counter() if stats is not None else 0.0
        cell_result = (
            _scalar_cell(
                platform, grid, make_scheduler(name, error), error, seeds, fault_model
            )
            if supervisor is None
            else supervisor.run_cell(
                lambda name=name, error=error, platform=platform, seeds=seeds:
                    _scalar_cell(
                        platform, grid, make_scheduler(name, error), error, seeds,
                        fault_model,
                    ),
                algorithm=name,
                platform_index=p_idx,
                error_index=e_idx,
                engine="scalar",
                seed=seeds[0],
                shape=(grid.repetitions,),
            )
        )
        tensors[name][p_idx, e_idx, :] = cell_result
        if stats is not None:
            stats.time_cell(
                name, p_idx, e_idx, "scalar",
                grid.repetitions, time.perf_counter() - t0,
            )
    if stats is not None and perf:
        stats.absorb_fault_perf(perf)


def _run_dynamic_batch_pass(
    grid: ExperimentGrid,
    platforms: tuple[PlatformPoint, ...],
    names: list[str],
    tensors: dict[str, np.ndarray],
    supervisor: CellSupervisor | None = None,
    arena: BatchArena | None = None,
    stats=None,
) -> None:
    """Fill the batch-dynamic algorithms' tensors via one lockstep pass.

    Builds one :class:`~repro.sim.dynbatch.DynamicCell` per (platform,
    error, algorithm) with the *same* per-cell seeds the scalar path
    would use — fault model included — then lets
    :func:`simulate_dynamic_cells` merge compatible cells into shared
    lockstep calls drawing their state tensors from ``arena``.

    With a ``supervisor``, the merged pass is retried per the policy;
    if it keeps failing, the pass degrades to per-cell lockstep calls —
    bitwise identical to the merged pass — each under the full ladder
    (retry → scalar fallback → NaN quarantine), so one poisoned cell
    cannot take down every batch-dynamic result.
    """
    fault_model = make_fault_model(grid.fault) if grid.has_faults else None
    cells: list[DynamicCell] = []
    targets: list[tuple[str, int, int, float]] = []
    for p_idx, point in enumerate(platforms):
        platform = point.build()
        for e_idx, error in enumerate(grid.errors):
            seeds = tuple(_cell_seeds(grid, p_idx, e_idx))
            magnitude = error if grid.error_kind != "none" else 0.0
            for name in names:
                cells.append(
                    DynamicCell(
                        platform=platform,
                        scheduler=make_scheduler(name, error),
                        total_work=grid.total_work,
                        error=magnitude,
                        seeds=seeds,
                        faults=fault_model,
                    )
                )
                targets.append((name, p_idx, e_idx, error))
    perf = {} if stats is not None else None
    if supervisor is None:
        results = simulate_dynamic_cells(
            cells, mode=grid.error_mode, arena=arena, perf=perf
        )
    else:
        results, exc = supervisor.attempt(
            lambda: simulate_dynamic_cells(
                cells, mode=grid.error_mode, arena=arena, perf=perf
            ),
            grid.seed,
        )
        if exc is not None:
            results = [
                supervisor.run_cell(
                    lambda cell=cell: simulate_dynamic_cells(
                        [cell], mode=grid.error_mode, arena=arena
                    )[0],
                    fallback=lambda cell=cell, error=error: _scalar_cell(
                        cell.platform, grid, cell.scheduler, error,
                        list(cell.seeds), fault_model,
                    ),
                    algorithm=name,
                    platform_index=p_idx,
                    error_index=e_idx,
                    engine="dynbatch",
                    seed=cell.seeds[0],
                    shape=(grid.repetitions,),
                )
                for cell, (name, p_idx, e_idx, error) in zip(cells, targets)
            ]
    for (name, p_idx, e_idx, _error), makespans in zip(targets, results):
        tensors[name][p_idx, e_idx, :] = makespans
    if stats is not None and perf:
        stats.absorb_fault_perf(perf)


def run_sweep(
    grid: ExperimentGrid,
    algorithms: typing.Sequence[str] = PAPER_ALGORITHMS,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
    batch_static: bool = True,
    batch_dynamic: bool | None = None,
    stats=None,
    retry: RetryPolicy | None = None,
    checkpoint_dir: "str | os.PathLike | None" = None,
    resume: bool = False,
    failures: FailureLedger | None = None,
    tracer=None,
) -> SweepResults:
    """Run the full sweep and return the makespan tensors.

    Parameters
    ----------
    grid:
        The experiment specification.
    algorithms:
        Registry names to run (default: the paper's seven).
    n_jobs:
        Process-pool width; 1 (default) runs in-process, ``-1`` uses one
        worker per CPU.
    progress:
        Optional callback ``(platforms_done, platforms_total)``.  The
        done count is monotone even under retries, pool restarts and
        resume — resumed shards are reported done up front.
    batch_static:
        Route static algorithms through the vectorized batch engine (the
        default; see the module docstring).  ``False`` forces the scalar
        engine — mainly for benchmarking and equivalence tests.
    batch_dynamic:
        Route batch-dynamic algorithms through the lockstep batch engine.
        ``None`` (default) follows ``batch_static``, so ``--no-batch``
        disables both fast paths at once.
    stats:
        Optional :class:`repro.obs.SweepStats` collector: engine-routing
        counts, per-cell wall times (in-process runs only — pool workers
        cannot share the parent's collector), lockstep and total wall
        time, plus resilience tallies (retries, fallbacks, quarantines,
        resumed cells, pool supervision).  Surfaced by ``repro stats``.
    retry:
        The :class:`~repro.experiments.resilient.RetryPolicy` guarding
        every cell (default: three attempts per ladder rung with
        exponential, deterministically jittered backoff).
    checkpoint_dir:
        When given, completed platform shards (and the lockstep pass)
        are flushed to ``<checkpoint_dir>/partial/<key>/`` as atomic,
        content-hashed files; the directory is cleared once the sweep
        finishes.  :func:`~repro.experiments.cache.cached_sweep` passes
        its cache directory automatically.
    resume:
        Load surviving checkpoint shards before running — only the
        unfinished remainder is recomputed (``repro sweep --resume``).
        Shards failing their content hash are discarded and recomputed.
    failures:
        Optional :class:`~repro.experiments.resilient.FailureLedger`
        receiving a :class:`CellFailure` entry per quarantined cell.
    tracer:
        Optional :class:`repro.obs.Tracer` receiving harness-level
        ``engine_fallback`` / ``cell_quarantined`` events.
    """
    sweep_t0 = time.perf_counter()
    algorithms = tuple(algorithms)
    if len(set(algorithms)) != len(algorithms):
        raise ValueError("duplicate algorithm names")
    if n_jobs == -1:
        n_jobs = os.cpu_count() or 1
    elif n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    if batch_dynamic is None:
        batch_dynamic = batch_static
    policy = retry if retry is not None else RetryPolicy()
    ledger = failures if failures is not None else FailureLedger()
    supervisor = CellSupervisor(
        policy=policy, stats=stats, ledger=ledger, tracer=tracer
    )
    platforms = tuple(grid.platforms())
    shape = (len(platforms), len(grid.errors), grid.repetitions)
    tensors = {a: np.empty(shape) for a in algorithms}

    dyn_batch_names = (
        [
            a
            for a in algorithms
            if is_batch_dynamic_algorithm(a)
            and _batch_eligible(grid, make_scheduler(a, 0.0))
        ]
        if batch_dynamic and _grid_supports_batch(grid)
        else []
    )
    dyn_set = set(dyn_batch_names)
    static_batch_names = (
        [
            a
            for a in algorithms
            if make_scheduler(a, 0.0).is_static
            and _batch_eligible(grid, make_scheduler(a, 0.0))
        ]
        if batch_static and _grid_supports_batch(grid)
        else []
    )
    static_set = set(static_batch_names)
    # Columns the per-platform loop is responsible for (the global batch
    # passes overwrite the rest); checkpoint shards record this mask so a
    # shard written under different batch flags is never trusted for
    # columns it did not actually compute.
    loop_valid = np.array(
        [a not in dyn_set and a not in static_set for a in algorithms], dtype=bool
    )
    loop_algo_count = int(loop_valid.sum())
    # When the global passes cover every algorithm — the normal case —
    # the per-platform loop has nothing left to do; skip it (and the
    # pool) entirely.
    if len(dyn_batch_names) + len(static_batch_names) == len(algorithms):
        n_jobs = 0

    if stats is not None:
        # Routing is deterministic from (grid, algorithm, flags), so the
        # counts are derived analytically rather than tallied in the loops
        # — which also makes them exact on the process-pool path.
        num_cells = len(platforms) * len(grid.errors)
        for a in algorithms:
            scheduler = make_scheduler(a, 0.0)
            if a in dyn_batch_names:
                engine = "dynbatch"
            elif (
                batch_static
                and _grid_supports_batch(grid)
                and scheduler.is_static
                and _batch_eligible(grid, scheduler)
            ):
                engine = "static-batch"
            else:
                engine = "scalar"
            stats.count_routing(engine, num_cells, grid.repetitions)

    # -- checkpoint store and resume ---------------------------------------
    key = sweep_key(grid, algorithms)
    ckpt = (
        CheckpointStore(checkpoint_dir, f"sweep-{grid.name}-{key}")
        if checkpoint_dir is not None
        else None
    )
    resumed_blocks: dict[int, np.ndarray] = {}
    lockstep_resumed: np.ndarray | None = None
    staticgrid_resumed: np.ndarray | None = None
    if ckpt is not None and resume:
        block_shape = (len(grid.errors), grid.repetitions, len(algorithms))
        for p_idx in range(len(platforms)):
            shard = ckpt.load(f"platform-{p_idx:05d}")
            if shard is None:
                continue
            block, valid = shard.get("block"), shard.get("valid")
            if (
                block is None
                or valid is None
                or block.shape != block_shape
                or valid.shape != (len(algorithms),)
                or not np.all(valid.astype(bool) | ~loop_valid)
            ):
                continue
            resumed_blocks[p_idx] = block
        if dyn_batch_names:
            shard = ckpt.load("lockstep")
            if shard is not None:
                names = [str(n) for n in shard.get("names", np.array([]))]
                arr = shard.get("block")
                expected = (
                    len(dyn_batch_names), len(platforms),
                    len(grid.errors), grid.repetitions,
                )
                if names == list(dyn_batch_names) and (
                    arr is not None and arr.shape == expected
                ):
                    lockstep_resumed = arr
        if static_batch_names:
            shard = ckpt.load("staticgrid")
            if shard is not None:
                names = [str(n) for n in shard.get("names", np.array([]))]
                arr = shard.get("block")
                expected = (
                    len(static_batch_names), len(platforms),
                    len(grid.errors), grid.repetitions,
                )
                if names == list(static_batch_names) and (
                    arr is not None and arr.shape == expected
                ):
                    staticgrid_resumed = arr
        if stats is not None:
            stats.cells_resumed += (
                len(resumed_blocks) * len(grid.errors) * loop_algo_count
            )
        # Quarantine records of resumed shards would otherwise be lost —
        # their NaNs are being reused, so their ledger entries are too.
        for entry in ckpt.load_ledger():
            if entry.algorithm in dyn_set:
                if lockstep_resumed is not None:
                    ledger.add(entry)
            elif entry.algorithm in static_set:
                if staticgrid_resumed is not None:
                    ledger.add(entry)
            elif entry.platform_index in resumed_blocks:
                ledger.add(entry)

    # -- the per-platform loop ---------------------------------------------
    total = len(platforms)
    done = 0

    def fill(p_idx: int, block: np.ndarray) -> None:
        for a_idx, algo in enumerate(algorithms):
            tensors[algo][p_idx] = block[:, :, a_idx]

    def on_block(p_idx: int, block: np.ndarray) -> None:
        nonlocal done
        fill(p_idx, block)
        if ckpt is not None:
            ckpt.save(f"platform-{p_idx:05d}", block=block, valid=loop_valid)
            ckpt.save_ledger(ledger)
        done += 1
        if progress is not None:
            progress(done, total)

    if n_jobs == 0:
        done = total
        if progress is not None:
            progress(total, total)
    else:
        for p_idx, block in sorted(resumed_blocks.items()):
            fill(p_idx, block)
            done += 1
        if resumed_blocks and progress is not None:
            progress(done, total)
        pending = [p for p in range(total) if p not in resumed_blocks]
        if n_jobs > 1 and pending:
            pending = _supervised_pool_run(
                grid, platforms, algorithms, batch_static, batch_dynamic,
                n_jobs, pending, policy, supervisor, stats, on_block,
            )
        for p_idx in pending:
            block = _run_platform(
                grid, platforms[p_idx], p_idx, algorithms, batch_static,
                batch_dynamic, stats=stats, supervisor=supervisor,
            )
            on_block(p_idx, block)

    # -- the static whole-grid pass ----------------------------------------
    if static_batch_names:
        if staticgrid_resumed is not None:
            for i, name in enumerate(static_batch_names):
                tensors[name][...] = staticgrid_resumed[i]
            if stats is not None:
                stats.cells_resumed += (
                    len(static_batch_names) * len(platforms) * len(grid.errors)
                )
        else:
            t0 = time.perf_counter()
            _run_static_batch_pass(
                grid, platforms, static_batch_names, tensors,
                supervisor=supervisor, stats=stats,
            )
            if stats is not None:
                stats.staticgrid_wall_s += time.perf_counter() - t0
            if ckpt is not None:
                ckpt.save(
                    "staticgrid",
                    block=np.stack([tensors[n] for n in static_batch_names]),
                    names=np.array(static_batch_names),
                )
                ckpt.save_ledger(ledger)

    # -- the merged lockstep pass ------------------------------------------
    if dyn_batch_names:
        if lockstep_resumed is not None:
            for i, name in enumerate(dyn_batch_names):
                tensors[name][...] = lockstep_resumed[i]
            if stats is not None:
                stats.cells_resumed += (
                    len(dyn_batch_names) * len(platforms) * len(grid.errors)
                )
        else:
            t0 = time.perf_counter()
            _run_dynamic_batch_pass(
                grid, platforms, dyn_batch_names, tensors,
                supervisor=supervisor, arena=_SWEEP_ARENA, stats=stats,
            )
            if stats is not None:
                stats.lockstep_wall_s += time.perf_counter() - t0
            if ckpt is not None:
                ckpt.save(
                    "lockstep",
                    block=np.stack([tensors[n] for n in dyn_batch_names]),
                    names=np.array(dyn_batch_names),
                )
                ckpt.save_ledger(ledger)

    # -- completion: persist the ledger, clear the checkpoints --------------
    if ckpt is not None:
        final = pathlib.Path(checkpoint_dir) / f"failures-sweep-{grid.name}-{key}.json"
        if len(ledger):
            tmp = final.with_name(final.name + f".tmp-{os.getpid()}")
            final.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(ledger.to_json())
            os.replace(tmp, final)
        elif final.exists():
            final.unlink()
        ckpt.discard()

    if stats is not None:
        stats.total_wall_s += time.perf_counter() - sweep_t0
    return SweepResults(
        grid=grid, algorithms=algorithms, platforms=platforms, makespans=tensors
    )


@dataclasses.dataclass(frozen=True)
class FaultSweepResults:
    """One sweep per fault scenario, sharing grid, seeds and algorithms.

    ``sweeps[spec]`` holds the :class:`SweepResults` of the grid with
    ``fault=spec``; the first spec is conventionally ``"none"`` so
    degradation metrics have a baseline.  Because each scenario's grid
    shares the base grid's seed, the (platform, error, repetition) cells
    are paired across scenarios — the same common-random-numbers trick the
    algorithm comparisons use, applied to the fault axis.
    """

    base_grid: ExperimentGrid
    fault_specs: tuple[str, ...]
    algorithms: tuple[str, ...]
    sweeps: dict[str, SweepResults]

    def __post_init__(self) -> None:
        missing = [s for s in self.fault_specs if s not in self.sweeps]
        if missing:
            raise ValueError(f"fault specs without results: {missing}")


def run_fault_sweep(
    grid: ExperimentGrid,
    fault_specs: typing.Sequence[str],
    algorithms: typing.Sequence[str] = PAPER_ALGORITHMS,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
    directory: "str | os.PathLike | None" = None,
    resume: bool = False,
) -> FaultSweepResults:
    """Run the same sweep under several fault scenarios.

    ``fault_specs`` are fault spec strings (see
    :func:`repro.errors.make_fault_model`); ``"none"`` is prepended when
    absent so the result always carries a fault-free baseline.  When
    ``directory`` is given each scenario goes through the sweep cache
    (scenarios hash to distinct keys because ``fault`` is part of the
    grid) and, with ``resume=True``, picks up surviving checkpoint
    shards of an interrupted run.
    """
    specs = tuple(fault_specs)
    if "none" not in specs:
        specs = ("none",) + specs
    if len(set(specs)) != len(specs):
        raise ValueError("duplicate fault specs")
    algorithms = tuple(algorithms)
    sweeps: dict[str, SweepResults] = {}
    for spec in specs:
        fault_grid = dataclasses.replace(grid, fault=spec)
        if directory is not None:
            from repro.experiments.cache import cached_sweep

            sweeps[spec] = cached_sweep(
                fault_grid, algorithms, directory, n_jobs=n_jobs,
                progress=progress, resume=resume,
            )
        else:
            sweeps[spec] = run_sweep(
                fault_grid, algorithms=algorithms, n_jobs=n_jobs, progress=progress
            )
    return FaultSweepResults(
        base_grid=grid, fault_specs=specs, algorithms=algorithms, sweeps=sweeps
    )


def eta_progress(stream=None) -> typing.Callable[[int, int], None]:
    """A ready-made progress callback printing rate and ETA lines."""
    import sys

    stream = stream or sys.stderr
    start = time.monotonic()

    def callback(done: int, total: int) -> None:
        elapsed = time.monotonic() - start
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = (total - done) / rate if rate > 0 else float("inf")
        stream.write(
            f"\r[{done}/{total} platforms] {elapsed:6.1f}s elapsed, "
            f"~{remaining:6.1f}s left "
        )
        stream.flush()
        if done == total:
            stream.write("\n")

    return callback
