"""Text and CSV rendering for tables and figures.

Everything renders to plain text (the reproduction is headless): tables as
aligned columns, figures as CSV series plus a compact ASCII line chart so
curve shapes are visible directly in a terminal or in EXPERIMENTS.md.
"""

from __future__ import annotations

import io
import math
import typing

from repro.experiments.figures import FigureResult
from repro.experiments.tables import TableResult

__all__ = ["render_table", "render_figure", "figure_csv", "table_csv", "ascii_chart"]


def render_table(table: TableResult) -> str:
    """Aligned-column text rendering of a Table 2/3 result."""
    out = io.StringIO()
    out.write(table.title + "\n")
    header = ["Algorithm"] + list(table.bucket_labels) + ["overall"]
    widths = [max(10, len(h) + 2) for h in header]
    out.write("".join(h.ljust(w) for h, w in zip(header, widths)) + "\n")
    out.write("-" * sum(widths) + "\n")
    for algo, values in table.rows.items():
        cells = [algo] + [
            "  n/a" if math.isnan(v) else f"{v:6.2f}" for v in values
        ] + [f"{table.overall[algo]:6.2f}"]
        out.write("".join(str(c).ljust(w) for c, w in zip(cells, widths)) + "\n")
    return out.getvalue()


def table_csv(table: TableResult) -> str:
    """CSV rendering of a Table 2/3 result."""
    out = io.StringIO()
    out.write("algorithm," + ",".join(table.bucket_labels) + ",overall\n")
    for algo, values in table.rows.items():
        row = [algo] + [f"{v:.4f}" for v in values] + [f"{table.overall[algo]:.4f}"]
        out.write(",".join(row) + "\n")
    return out.getvalue()


def figure_csv(figure: FigureResult) -> str:
    """CSV rendering: one column per series over the error axis."""
    out = io.StringIO()
    labels = list(figure.series)
    out.write("error," + ",".join(labels) + "\n")
    for i, err in enumerate(figure.errors):
        row = [f"{err:g}"] + [f"{figure.series[lab][i]:.6f}" for lab in labels]
        out.write(",".join(row) + "\n")
    return out.getvalue()


_MARKS = "ox+*#@%&sd"


def ascii_chart(
    figure: FigureResult, width: int = 72, height: int = 20
) -> str:
    """A compact ASCII line chart of all series.

    Each series gets a one-character mark; a horizontal rule marks the
    y = 1.0 reference (parity with RUMR).
    """
    all_values = [v for vs in figure.series.values() for v in vs if not math.isnan(v)]
    if not all_values:
        return "(no data)\n"
    lo = min(min(all_values), 1.0)
    hi = max(max(all_values), 1.0)
    if hi - lo < 1e-9:
        hi = lo + 1e-9
    pad = 0.05 * (hi - lo)
    lo -= pad
    hi += pad

    grid = [[" "] * width for _ in range(height)]

    def to_row(v: float) -> int:
        frac = (v - lo) / (hi - lo)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    def to_col(i: int) -> int:
        if len(figure.errors) == 1:
            return 0
        return int(round(i * (width - 1) / (len(figure.errors) - 1)))

    parity = to_row(1.0)
    for c in range(width):
        grid[parity][c] = "·"

    legend = []
    for k, (label, values) in enumerate(figure.series.items()):
        mark = _MARKS[k % len(_MARKS)]
        legend.append(f"{mark}={label}")
        for i, v in enumerate(values):
            if math.isnan(v):
                continue
            grid[to_row(v)][to_col(i)] = mark

    out = io.StringIO()
    out.write(figure.title + "\n")
    for r, row in enumerate(grid):
        y_lo = hi - (r + 0.5) * (hi - lo) / height
        label = f"{y_lo:7.3f} |" if r % 4 == 0 else "        |"
        out.write(label + "".join(row) + "\n")
    out.write("        +" + "-" * width + "\n")
    x_line = f"        {figure.errors[0]:<8g}" + " " * max(0, width - 18)
    out.write(x_line + f"{figure.errors[-1]:>8g}\n")
    out.write(f"        x: {figure.xlabel}   y: {figure.ylabel}\n")
    out.write("        " + "  ".join(legend) + "\n")
    return out.getvalue()


def render_figure(figure: FigureResult, chart: bool = True) -> str:
    """Chart plus CSV — the default human-readable figure rendering."""
    parts = []
    if chart:
        parts.append(ascii_chart(figure))
    parts.append(figure_csv(figure))
    return "\n".join(parts)


def write_text(path: str, content: str) -> None:
    """Write a report artifact (tiny helper for the CLI)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)


def series_summary(figure: FigureResult) -> dict[str, dict[str, float]]:
    """Min / max / endpoint statistics per series (used by EXPERIMENTS.md)."""
    summary: dict[str, dict[str, float]] = {}
    for label, values in figure.series.items():
        clean = [v for v in values if not math.isnan(v)]
        summary[label] = {
            "first": clean[0],
            "last": clean[-1],
            "min": min(clean),
            "max": max(clean),
        }
    return summary


if typing.TYPE_CHECKING:  # pragma: no cover
    _: typing.Any
