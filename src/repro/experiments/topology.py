"""Cross-topology sweeps: how robustness transfers across interconnects.

The paper evaluates RUMR on a serialized star.  This module reruns the
same grid under several interconnect shapes (:mod:`repro.platform.
topology`) with shared seeds — the common-random-numbers pairing the
fault sweep uses, applied to the topology axis — and derives two views:

* *topology degradation*: per algorithm, the mean ratio of each shape's
  makespan to the star baseline's (how much a chain/tree/shared medium
  costs by itself);
* *robustness transfer*: per (algorithm, shape), the mean ratio of the
  highest-error makespan to the zero-error makespan — the paper's
  robustness claim measured on each shape.  RUMR's claim *transfers* to
  a shape when its ratio stays as flat there as on the star.
"""

from __future__ import annotations

import dataclasses
import os
import typing

from repro.experiments.config import PAPER_ALGORITHMS, ExperimentGrid
from repro.experiments.figures import FigureResult
from repro.experiments.runner import SweepResults, run_sweep
from repro.platform.topology import make_topology

__all__ = [
    "TopologySweepResults",
    "run_topology_sweep",
    "topology_degradation",
    "robustness_transfer",
    "topology_figure",
    "fig_topologies",
    "fig_topologies_algorithms",
]

#: The schedulers compared in the robustness-transfer study: the paper's
#: robust algorithm against the strongest dynamic competitor.
fig_topologies_algorithms = ("RUMR", "Factoring")


@dataclasses.dataclass(frozen=True)
class TopologySweepResults:
    """One sweep per topology spec, sharing grid, seeds and algorithms.

    ``sweeps[spec]`` holds the :class:`SweepResults` of the grid with
    ``topology=spec``; the first spec is conventionally ``"star"`` so
    degradation metrics have a baseline.  All scenario grids share the
    base grid's seed, so the (platform, error, repetition) cells are
    paired across shapes.
    """

    base_grid: ExperimentGrid
    topology_specs: tuple[str, ...]
    algorithms: tuple[str, ...]
    sweeps: dict[str, SweepResults]

    def __post_init__(self) -> None:
        missing = [s for s in self.topology_specs if s not in self.sweeps]
        if missing:
            raise ValueError(f"topology specs without results: {missing}")


def run_topology_sweep(
    grid: ExperimentGrid,
    topology_specs: typing.Sequence[str],
    algorithms: typing.Sequence[str] = PAPER_ALGORITHMS,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
    directory: "str | os.PathLike | None" = None,
    resume: bool = False,
) -> TopologySweepResults:
    """Run the same sweep under several interconnect shapes.

    ``topology_specs`` are topology spec strings (see
    :func:`repro.platform.make_topology`); ``"star"`` is prepended when
    absent so the result always carries the paper-baseline shape.  Specs
    are validated (and canonicalized for duplicate detection) up front.
    When ``directory`` is given each scenario goes through the sweep
    cache (scenarios hash to distinct keys because ``topology`` is part
    of the grid) and, with ``resume=True``, picks up surviving
    checkpoint shards of an interrupted run.
    """
    specs = tuple(topology_specs)
    if not any(make_topology(s).kind == "star" for s in specs):
        specs = ("star",) + specs
    canonical = [str(make_topology(s)) for s in specs]
    if len(set(canonical)) != len(canonical):
        raise ValueError(f"duplicate topology specs: {specs}")
    algorithms = tuple(algorithms)
    sweeps: dict[str, SweepResults] = {}
    for spec in specs:
        topo_grid = dataclasses.replace(grid, topology=spec)
        if directory is not None:
            from repro.experiments.cache import cached_sweep

            sweeps[spec] = cached_sweep(
                topo_grid, algorithms, directory, n_jobs=n_jobs,
                progress=progress, resume=resume,
            )
        else:
            sweeps[spec] = run_sweep(
                topo_grid, algorithms=algorithms, n_jobs=n_jobs, progress=progress
            )
    return TopologySweepResults(
        base_grid=grid, topology_specs=specs, algorithms=algorithms, sweeps=sweeps
    )


def _baseline_spec(results: TopologySweepResults) -> str:
    for spec in results.topology_specs:
        if make_topology(spec).kind == "star":
            return spec
    raise ValueError("no star baseline among the topology specs")


def topology_degradation(
    results: TopologySweepResults,
    algorithm: str,
    baseline_spec: str | None = None,
) -> dict[str, float]:
    """Mean makespan degradation per shape, relative to the star.

    For each topology spec: the per-experiment ratio ``makespan(on
    shape) / makespan(on star)`` averaged over every (platform, error,
    repetition) cell — valid pairing because all scenarios share the
    grid seed.  1.0 means the shape costs nothing for this algorithm.
    """
    if baseline_spec is None:
        baseline_spec = _baseline_spec(results)
    if baseline_spec not in results.sweeps:
        raise ValueError(f"baseline topology spec {baseline_spec!r} not in results")
    base = results.sweeps[baseline_spec].makespans[algorithm]
    out: dict[str, float] = {}
    for spec in results.topology_specs:
        tensor = results.sweeps[spec].makespans[algorithm]
        out[spec] = float((tensor / base).mean())
    return out


def robustness_transfer(
    results: TopologySweepResults, algorithm: str
) -> dict[str, float]:
    """Error-robustness of one algorithm, measured on each shape.

    For each topology spec: the mean ratio of the makespan at the grid's
    *highest* error level to the makespan at its *lowest* (normally 0),
    cells paired by (platform, repetition).  A flat (near-1) value means
    prediction errors cost little on that shape; comparing an
    algorithm's values across shapes shows whether its robustness story
    survives the interconnect change.
    """
    if len(results.base_grid.errors) < 2:
        raise ValueError("robustness transfer needs at least two error levels")
    out: dict[str, float] = {}
    for spec in results.topology_specs:
        tensor = results.sweeps[spec].makespans[algorithm]
        out[spec] = float((tensor[:, -1, :] / tensor[:, 0, :]).mean())
    return out


def topology_figure(
    results: TopologySweepResults,
    title: str = "Topology study: robustness transfer",
) -> FigureResult:
    """Robustness-transfer figure from :class:`TopologySweepResults`.

    One series per algorithm; the x-axis is the topology *index* (0 =
    star baseline by convention) since specs are strings — the title
    lists the spec for each index so the chart stays self-describing.
    Values are each shape's error-robustness ratio (see
    :func:`robustness_transfer`).
    """
    specs = results.topology_specs
    legend = ", ".join(f"{i}={s}" for i, s in enumerate(specs))
    series = {}
    for algo in results.algorithms:
        transfer = robustness_transfer(results, algo)
        series[algo] = tuple(transfer[s] for s in specs)
    return FigureResult(
        title=f"{title} [{legend}]",
        xlabel="topology index",
        ylabel="max-error makespan normalized to the zero-error run",
        errors=tuple(float(i) for i in range(len(specs))),
        series=series,
    )


def fig_topologies(
    base: ExperimentGrid,
    topology_specs: tuple[str, ...],
    algorithms: tuple[str, ...] = fig_topologies_algorithms,
    n_jobs: int = 1,
    directory=None,
) -> FigureResult:
    """Topology study: error-robustness per interconnect shape.

    Runs the base grid once per shape (common random numbers pair the
    cells across shapes) and plots, per algorithm, the mean ratio of the
    highest-error to the zero-error makespan on each shape.  RUMR's
    robustness claim transfers when its series stays flat while the
    error-sensitive competitors' rise.
    """
    results = run_topology_sweep(
        base, topology_specs, algorithms=algorithms, n_jobs=n_jobs,
        directory=directory,
    )
    return topology_figure(results)
