"""FigureResult adapters for the extension studies.

The heterogeneity, adaptive and output/multiport studies print tables from
their own result types; these adapters re-express them as
:class:`~repro.experiments.figures.FigureResult` so the standard report
machinery (ASCII chart + CSV, ``--out`` artifacts) applies uniformly.
The x-axis is reinterpreted per study (heterogeneity level, error level,
output ratio, port count); the normalization reference is stated in the
title.
"""

from __future__ import annotations

import statistics
import typing

from repro.core import RUMR, UMR, AdaptiveRUMR, Factoring
from repro.errors.models import make_error_model
from repro.experiments.figures import FigureResult
from repro.experiments.hetero import HeteroResult, run_hetero_study
from repro.platform.spec import homogeneous_platform
from repro.sim.fastsim import simulate_fast
from repro.sim.output import simulate_with_output

__all__ = [
    "fig_hetero",
    "fig_adaptive",
    "fig_output_ratio",
    "fig_multiport",
    "hetero_to_figure",
]


def hetero_to_figure(study: HeteroResult, reference: str = "UMR") -> FigureResult:
    """Normalize a heterogeneity study's means to one of its algorithms."""
    normalized = study.normalized_to(reference)
    return FigureResult(
        title=f"Heterogeneity study: makespan normalized to {reference} "
        f"(error={study.error:g})",
        xlabel="heterogeneity level (speed/bandwidth spread)",
        ylabel=f"makespan normalized to {reference}",
        errors=study.levels,
        series={k: tuple(v) for k, v in normalized.items()},
    )


def fig_hetero(
    error: float = 0.3,
    n: int = 16,
    repetitions: int = 10,
    levels: typing.Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
) -> FigureResult:
    """The heterogeneity extension study as a figure (reference: UMR)."""
    study = run_hetero_study(
        {
            "UMR": lambda: UMR(),
            "Factoring": lambda: Factoring(),
            "RUMR": lambda: RUMR(known_error=error),
            "RUMR-weighted": lambda: RUMR(known_error=error, phase2_weighted=True),
        },
        levels=tuple(levels),
        n=n,
        error=error,
        repetitions=repetitions,
    )
    return hetero_to_figure(study, reference="UMR")


def _mean_makespan(platform, work, scheduler, error, seeds):
    return statistics.mean(
        simulate_fast(
            platform, work, scheduler, make_error_model("normal", error), seed=s
        ).makespan
        for s in seeds
    )


def fig_adaptive(
    n: int = 20,
    repetitions: int = 15,
    errors: typing.Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
) -> FigureResult:
    """Adaptive study as a figure: makespans normalized to the oracle RUMR."""
    platform = homogeneous_platform(n, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)
    work = 1000.0
    seeds = range(repetitions)
    series: dict[str, list[float]] = {"UMR": [], "AdaptiveRUMR": [], "RUMR_80": []}
    for error in errors:
        oracle = _mean_makespan(platform, work, RUMR(known_error=error), error, seeds)
        series["UMR"].append(
            _mean_makespan(platform, work, UMR(), error, seeds) / oracle
        )
        series["AdaptiveRUMR"].append(
            _mean_makespan(platform, work, AdaptiveRUMR(), error, seeds) / oracle
        )
        series["RUMR_80"].append(
            _mean_makespan(
                platform, work, RUMR(known_error=error, phase1_fraction=0.8), error, seeds
            )
            / oracle
        )
    return FigureResult(
        title="Adaptive study: makespan normalized to RUMR with the true error",
        xlabel="error",
        ylabel="makespan normalized to oracle RUMR",
        errors=tuple(errors),
        series={k: tuple(v) for k, v in series.items()},
    )


def fig_output_ratio(
    error: float = 0.3,
    n: int = 16,
    repetitions: int = 8,
    ratios: typing.Sequence[float] = (0.0, 0.2, 0.5, 1.0),
) -> FigureResult:
    """Output-traffic study as a figure: UMR/Factoring normalized to RUMR."""
    platform = homogeneous_platform(n, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)
    work = 1000.0
    seeds = range(repetitions)

    def mean(sched_factory, ratio):
        return statistics.mean(
            simulate_with_output(
                platform, work, sched_factory(), make_error_model("normal", error),
                output_ratio=ratio, seed=s,
            ).makespan
            for s in seeds
        )

    series: dict[str, list[float]] = {"UMR": [], "Factoring": []}
    for ratio in ratios:
        rumr = mean(lambda: RUMR(known_error=error), ratio)
        series["UMR"].append(mean(UMR, ratio) / rumr)
        series["Factoring"].append(mean(Factoring, ratio) / rumr)
    return FigureResult(
        title=f"Output-traffic study: relative makespan vs output ratio (error={error:g})",
        xlabel="output ratio (result units per input unit)",
        ylabel="makespan normalized to RUMR",
        errors=tuple(ratios),
        series={k: tuple(v) for k, v in series.items()},
    )


def fig_multiport(
    error: float = 0.3,
    n: int = 16,
    repetitions: int = 8,
    ports: typing.Sequence[int] = (1, 2, 4, 8),
) -> FigureResult:
    """Multi-port study as a figure: makespans normalized to one port."""
    platform = homogeneous_platform(n, S=1.0, bandwidth_factor=1.3, cLat=0.2, nLat=0.3)
    work = 1000.0
    seeds = range(repetitions)

    def mean(sched_factory, k):
        return statistics.mean(
            simulate_with_output(
                platform, work, sched_factory(), make_error_model("normal", error),
                output_ratio=0.0, ports=k, seed=s,
            ).makespan
            for s in seeds
        )

    series: dict[str, list[float]] = {"UMR": [], "RUMR": []}
    baselines = {
        "UMR": mean(UMR, 1),
        "RUMR": mean(lambda: RUMR(known_error=error), 1),
    }
    for k in ports:
        series["UMR"].append(mean(UMR, k) / baselines["UMR"])
        series["RUMR"].append(
            mean(lambda: RUMR(known_error=error), k) / baselines["RUMR"]
        )
    return FigureResult(
        title=f"Multi-port study: makespan normalized to the one-port master (error={error:g})",
        xlabel="master ports (simultaneous transfers)",
        ylabel="makespan normalized to 1 port",
        errors=tuple(float(k) for k in ports),
        series={k: tuple(v) for k, v in series.items()},
    )
