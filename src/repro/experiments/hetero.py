"""Heterogeneity extension experiments (beyond the paper's §5).

The paper evaluates the homogeneous case and defers heterogeneity to the
UMR papers.  This module provides the missing sweep: platforms whose
worker speeds and bandwidths are spread by a controllable *heterogeneity
level* ``h`` (rates drawn log-uniformly from ``[rate/(1+h), rate·(1+h)]``
around the homogeneous reference, deterministically from the grid seed),
holding the aggregate compute rate and the full-utilization margin fixed
so results stay comparable with the homogeneous baseline.

Two questions it answers (see ``benchmarks/test_bench_hetero.py``):

* does RUMR keep its advantage over UMR and Factoring as heterogeneity
  grows? (it should: the phase split is orthogonal to per-worker sizing);
* does swapping RUMR's phase 2 for Weighted Factoring pay off at high
  heterogeneity? (plain factoring's equal chunks make slow workers the
  stragglers of every batch).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.core.base import Scheduler
from repro.errors.models import make_error_model
from repro.errors.rng import stream_for
from repro.platform.spec import PlatformSpec, WorkerSpec
from repro.sim.fastsim import simulate_fast

__all__ = ["heterogeneous_platform_family", "HeteroResult", "run_hetero_study"]


def heterogeneous_platform_family(
    n: int,
    heterogeneity: float,
    bandwidth_factor: float = 1.8,
    cLat: float = 0.3,
    nLat: float = 0.1,
    mean_S: float = 1.0,
    seed: int = 0,
) -> PlatformSpec:
    """A platform with controlled speed/bandwidth spread.

    ``heterogeneity = 0`` reproduces the homogeneous Table-1 platform;
    ``h > 0`` draws per-worker speeds log-uniformly in
    ``[mean_S/(1+h), mean_S·(1+h)]`` and then rescales so ``Σ S_i`` equals
    the homogeneous total (results comparable in aggregate capacity).
    Bandwidths are spread the same way around ``bandwidth_factor·n·mean_S``
    and rescaled to preserve ``Σ S_i/B_i`` (the full-utilization margin).
    """
    if heterogeneity < 0:
        raise ValueError(f"heterogeneity must be >= 0, got {heterogeneity}")
    base_b = bandwidth_factor * n * mean_S
    if heterogeneity == 0:
        worker = WorkerSpec(S=mean_S, B=base_b, cLat=cLat, nLat=nLat)
        return PlatformSpec([worker] * n)
    rng = np.random.Generator(np.random.PCG64(stream_for(seed, n).integers(0, 2**63 - 1)))
    spread = 1.0 + heterogeneity
    s = np.exp(rng.uniform(np.log(mean_S / spread), np.log(mean_S * spread), n))
    s *= (mean_S * n) / s.sum()
    b = np.exp(rng.uniform(np.log(base_b / spread), np.log(base_b * spread), n))
    # Rescale bandwidths so the utilization sum matches the homogeneous
    # reference (n*mean_S/base_b = 1/bandwidth_factor).
    target = 1.0 / bandwidth_factor
    b *= (s / b).sum() / target
    return PlatformSpec(
        WorkerSpec(S=float(si), B=float(bi), cLat=cLat, nLat=nLat)
        for si, bi in zip(s, b)
    )


@dataclasses.dataclass(frozen=True)
class HeteroResult:
    """Mean makespans per (heterogeneity level, algorithm)."""

    levels: tuple[float, ...]
    error: float
    means: dict[str, tuple[float, ...]]

    def normalized_to(self, reference: str) -> dict[str, tuple[float, ...]]:
        """Each algorithm's means divided by the reference algorithm's."""
        ref = self.means[reference]
        return {
            name: tuple(v / r for v, r in zip(values, ref))
            for name, values in self.means.items()
            if name != reference
        }


def run_hetero_study(
    schedulers: typing.Mapping[str, typing.Callable[[], Scheduler]],
    levels: typing.Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    n: int = 16,
    total_work: float = 1000.0,
    error: float = 0.3,
    repetitions: int = 10,
    seed: int = 2003,
) -> HeteroResult:
    """Sweep heterogeneity levels for a set of scheduler factories.

    Factories (not instances) because schedulers are bound per platform —
    e.g. ``{"RUMR": lambda: RUMR(known_error=0.3)}``.
    """
    means: dict[str, list[float]] = {name: [] for name in schedulers}
    for level in levels:
        platform = heterogeneous_platform_family(n, level, seed=seed)
        for name, factory in schedulers.items():
            total = 0.0
            for rep in range(repetitions):
                run_seed = int(stream_for(seed, int(level * 1000), rep).integers(0, 2**63 - 1))
                model = make_error_model("normal", error)
                result = simulate_fast(
                    platform, total_work, factory(), model, seed=run_seed
                )
                total += result.makespan
            means[name].append(total / repetitions)
    return HeteroResult(
        levels=tuple(levels),
        error=error,
        means={k: tuple(v) for k, v in means.items()},
    )
