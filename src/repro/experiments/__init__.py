"""Experiment harness reproducing the paper's evaluation (§5).

The pipeline: an :class:`~repro.experiments.config.ExperimentGrid` (Table 1
parameter space × error axis × repetitions) is swept by
:func:`~repro.experiments.runner.run_sweep` into a
:class:`~repro.experiments.runner.SweepResults` tensor of makespans, from
which :mod:`~repro.experiments.tables` and
:mod:`~repro.experiments.figures` derive the paper's Tables 2–3 and
Figures 4(a), 4(b), 5, 6 and 7.  :mod:`~repro.experiments.report` renders
them as text/CSV; :mod:`~repro.experiments.cache` persists sweep tensors.
:mod:`~repro.experiments.resilient` supervises execution — per-cell
retries, an engine-fallback ladder, NaN quarantine with a failure
ledger, and crash-safe resumable checkpoints (see ``docs/resilience.md``).

Three grid presets trade fidelity for runtime: ``paper`` (the full Table 1
cross product — hours), ``small`` (a decimated grid spanning the same
ranges — minutes, used for the shipped EXPERIMENTS.md), and ``smoke``
(seconds, used by tests and the benchmark harness).
"""

from repro.experiments.config import (
    ExperimentGrid,
    PlatformPoint,
    paper_grid,
    preset_grid,
    small_grid,
    smoke_grid,
    sweep_key,
)
from repro.experiments.figures import fig4a, fig4b, fig5, fig6, fig7
from repro.experiments.metrics import (
    error_buckets,
    mean_normalized_makespan,
    outperform_fraction,
)
from repro.experiments.queueing import (
    QueueingMetrics,
    QueueingSweepResults,
    StreamHealthStats,
    queueing_figure,
    queueing_metrics,
    run_queueing_sweep,
)
from repro.experiments.resilient import (
    CellFailure,
    CheckpointStore,
    FailureLedger,
    RetryPolicy,
)
from repro.experiments.runner import SweepResults, run_sweep
from repro.experiments.stats import bootstrap_ci, sign_test_pvalue, win_rate_ci
from repro.experiments.tables import table2, table3
from repro.experiments.topology import (
    TopologySweepResults,
    robustness_transfer,
    run_topology_sweep,
    topology_degradation,
    topology_figure,
)

__all__ = [
    "CellFailure",
    "CheckpointStore",
    "ExperimentGrid",
    "FailureLedger",
    "PlatformPoint",
    "QueueingMetrics",
    "QueueingSweepResults",
    "RetryPolicy",
    "SweepResults",
    "TopologySweepResults",
    "robustness_transfer",
    "run_topology_sweep",
    "topology_degradation",
    "topology_figure",
    "StreamHealthStats",
    "queueing_figure",
    "queueing_metrics",
    "run_queueing_sweep",
    "sweep_key",
    "error_buckets",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig7",
    "mean_normalized_makespan",
    "outperform_fraction",
    "paper_grid",
    "preset_grid",
    "run_sweep",
    "small_grid",
    "smoke_grid",
    "bootstrap_ci",
    "sign_test_pvalue",
    "table2",
    "table3",
    "win_rate_ci",
]
