"""Figure generators: the paper's Figures 4(a), 4(b), 5, 6 and 7.

Each generator returns a :class:`FigureResult` — one labelled series per
algorithm over the error axis — that :mod:`repro.experiments.report`
renders as an ASCII chart or CSV.  Values are mean makespans normalized to
the original RUMR (values above 1.0: RUMR wins).

Figures 4(a)/4(b) reuse the main sweep; Figure 5 runs its own sweep on the
paper's single high-``nLat`` configuration; Figures 6 and 7 sweep the RUMR
variants (fixed phase-1 shares; plain in-order phase 1).
"""

from __future__ import annotations

import dataclasses

from repro.experiments.config import ExperimentGrid
from repro.experiments.metrics import fault_degradation, mean_normalized_makespan
from repro.experiments.runner import (
    FaultSweepResults,
    SweepResults,
    run_fault_sweep,
    run_sweep,
)

__all__ = [
    "FigureResult",
    "fig4a",
    "fig4b",
    "fig5",
    "fig5_grid",
    "fig6",
    "fig6_algorithms",
    "fig7",
    "fig7_algorithms",
    "fault_figure",
    "fig_faults",
    "fig_faults_algorithms",
]

#: RUMR variants for the Fig 6 phase-split ablation.
fig6_algorithms = ("RUMR", "RUMR_50", "RUMR_60", "RUMR_70", "RUMR_80", "RUMR_90")

#: RUMR variants for the Fig 7 out-of-order ablation.
fig7_algorithms = ("RUMR", "RUMR-plain")

#: The recovery-aware schedulers compared in the fault-degradation figure.
fig_faults_algorithms = ("RUMR", "Factoring", "WeightedFactoring")


@dataclasses.dataclass(frozen=True)
class FigureResult:
    """One figure: labelled series over the error axis."""

    title: str
    xlabel: str
    ylabel: str
    errors: tuple[float, ...]
    series: dict[str, tuple[float, ...]]

    def __post_init__(self) -> None:
        for label, values in self.series.items():
            if len(values) != len(self.errors):
                raise ValueError(f"series {label!r} length mismatch")


def _normalized_figure(results: SweepResults, title: str) -> FigureResult:
    reference = results.reference
    series = {}
    for algo in results.algorithms:
        if algo == reference:
            continue
        values = mean_normalized_makespan(results, algo)
        series[algo] = tuple(float(v) for v in values)
    return FigureResult(
        title=title,
        xlabel="error",
        ylabel=f"makespan normalized to {reference}",
        errors=results.grid.errors,
        series=series,
    )


def fig4a(results: SweepResults) -> FigureResult:
    """Fig 4(a): normalized makespan vs error, full parameter space."""
    return _normalized_figure(
        results, "Figure 4(a): relative makespan vs error (all parameters)"
    )


def fig4b(results: SweepResults) -> FigureResult:
    """Fig 4(b): same, restricted to ``cLat < 0.3 and nLat < 0.3``."""
    subset = results.select(lambda p: p.cLat < 0.3 and p.nLat < 0.3)
    return _normalized_figure(
        subset, "Figure 4(b): relative makespan vs error (cLat < 0.3, nLat < 0.3)"
    )


def fig5_grid(base: ExperimentGrid) -> ExperimentGrid:
    """The paper's single Fig-5 configuration: N=20, B=36, cLat=0.3, nLat=0.9."""
    return base.restrict(
        Ns=(20,),
        bandwidth_factors=(1.8,),
        cLats=(0.3,),
        nLats=(0.9,),
        name=f"{base.name}-fig5",
    )


def fig5(base: ExperimentGrid, n_jobs: int = 1) -> FigureResult:
    """Fig 5: the high-nLat single configuration (runs its own sweep).

    The interesting feature is the sharp jump in every competitor's
    relative makespan at the error value where RUMR's threshold first
    admits a phase 2.
    """
    grid = fig5_grid(base)
    results = run_sweep(grid, n_jobs=n_jobs)
    return _normalized_figure(
        results,
        "Figure 5: relative makespan vs error (cLat=0.3, nLat=0.9, N=20, B=36)",
    )


def fig6(base: ExperimentGrid, n_jobs: int = 1) -> FigureResult:
    """Fig 6: fixed phase-1 shares (50–90%) vs the original RUMR heuristic."""
    results = run_sweep(base, algorithms=fig6_algorithms, n_jobs=n_jobs)
    fig = _normalized_figure(
        results,
        "Figure 6: RUMR with fixed phase-1 percentage, normalized to original RUMR",
    )
    return fig


def fig7(base: ExperimentGrid, n_jobs: int = 1) -> FigureResult:
    """Fig 7: plain (in-order) UMR phase 1 vs the out-of-order original."""
    results = run_sweep(base, algorithms=fig7_algorithms, n_jobs=n_jobs)
    return _normalized_figure(
        results,
        "Figure 7: RUMR with plain UMR phase 1, normalized to original RUMR",
    )


def fault_figure(
    results: FaultSweepResults, title: str = "Fault study: makespan degradation"
) -> FigureResult:
    """Degradation figure from an existing :class:`FaultSweepResults`.

    One series per algorithm; the x-axis is the fault-scenario *index*
    (0 = fault-free baseline) since specs are strings — the title lists
    the spec for each index so the chart stays self-describing.
    """
    specs = results.fault_specs
    legend = ", ".join(f"{i}={s}" for i, s in enumerate(specs))
    series = {}
    for algo in results.algorithms:
        degradation = fault_degradation(results, algo)
        series[algo] = tuple(degradation[s] for s in specs)
    return FigureResult(
        title=f"{title} [{legend}]",
        xlabel="fault scenario index",
        ylabel="makespan normalized to the fault-free run",
        errors=tuple(float(i) for i in range(len(specs))),
        series=series,
    )


def fig_faults(
    base: ExperimentGrid,
    fault_specs: tuple[str, ...],
    algorithms: tuple[str, ...] = fig_faults_algorithms,
    n_jobs: int = 1,
    directory=None,
) -> FigureResult:
    """Fault study: mean makespan degradation per fault scenario.

    Runs the base grid once per scenario (common random numbers pair the
    cells across scenarios) and plots, per algorithm, the mean ratio of
    the faulty to the fault-free makespan.  Values near 1 mean the
    scheduler absorbs the fault; for a crash the informed lower bound is
    roughly ``N/(N-1)`` (the lost worker's share redistributed).
    """
    results = run_fault_sweep(
        base, fault_specs, algorithms=algorithms, n_jobs=n_jobs, directory=directory
    )
    return fault_figure(results)
