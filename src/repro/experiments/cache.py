"""On-disk persistence for sweep tensors.

A sweep over the ``small`` grid takes minutes and feeds four different
tables/figures, so results are cached: tensors in a ``.npz``, grid and
algorithm metadata in a sidecar ``.json``.  The cache key is a content
hash of the grid specification plus the algorithm list — any change to
either invalidates the entry automatically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import typing

import numpy as np

from repro.experiments.config import ExperimentGrid, PlatformPoint
from repro.experiments.runner import SweepResults, run_sweep

__all__ = ["sweep_key", "save_sweep", "load_sweep", "cached_sweep"]


def sweep_key(grid: ExperimentGrid, algorithms: typing.Sequence[str]) -> str:
    """Deterministic content hash identifying a sweep."""
    payload = json.dumps(
        {"grid": dataclasses.asdict(grid), "algorithms": list(algorithms)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def save_sweep(results: SweepResults, directory: str | pathlib.Path) -> pathlib.Path:
    """Persist a sweep; returns the ``.npz`` path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    key = sweep_key(results.grid, results.algorithms)
    npz_path = directory / f"sweep-{results.grid.name}-{key}.npz"
    meta_path = npz_path.with_suffix(".json")
    np.savez_compressed(npz_path, **results.makespans)
    meta = {
        "grid": dataclasses.asdict(results.grid),
        "algorithms": list(results.algorithms),
        "platforms": [p.as_dict() for p in results.platforms],
    }
    meta_path.write_text(json.dumps(meta, indent=2))
    return npz_path


def load_sweep(npz_path: str | pathlib.Path) -> SweepResults:
    """Load a persisted sweep."""
    npz_path = pathlib.Path(npz_path)
    meta = json.loads(npz_path.with_suffix(".json").read_text())
    grid = ExperimentGrid(**{**meta["grid"], **{
        k: tuple(v) for k, v in meta["grid"].items() if isinstance(v, list)
    }})
    with np.load(npz_path) as data:
        makespans = {a: data[a] for a in meta["algorithms"]}
    platforms = tuple(PlatformPoint(**p) for p in meta["platforms"])
    return SweepResults(
        grid=grid,
        algorithms=tuple(meta["algorithms"]),
        platforms=platforms,
        makespans=makespans,
    )


def cached_sweep(
    grid: ExperimentGrid,
    algorithms: typing.Sequence[str],
    directory: str | pathlib.Path,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
    batch_static: bool = True,
    batch_dynamic: bool | None = None,
    stats=None,
) -> SweepResults:
    """Run a sweep, or load it if an identical one is already on disk.

    ``batch_static`` / ``batch_dynamic`` are forwarded to
    :func:`run_sweep` on a cache miss; they are deliberately *not* part of
    the cache key, because all paths produce the same distribution under
    the same seeds (and identical tensors at zero error).

    ``stats`` (a :class:`repro.obs.SweepStats`) tallies the hit/miss and,
    on a miss, is forwarded to :func:`run_sweep` so one collector covers
    the whole cached workflow.
    """
    directory = pathlib.Path(directory)
    key = sweep_key(grid, algorithms)
    npz_path = directory / f"sweep-{grid.name}-{key}.npz"
    if npz_path.exists() and npz_path.with_suffix(".json").exists():
        # Guard against a stale or hand-edited sidecar: the entry is only
        # trusted if it loads cleanly and actually holds the requested
        # algorithm list; anything else falls through to a fresh run.
        try:
            loaded = load_sweep(npz_path)
        except (KeyError, TypeError, ValueError, json.JSONDecodeError):
            loaded = None
        if loaded is not None and loaded.algorithms == tuple(algorithms):
            if stats is not None:
                stats.cache_hits += 1
            return loaded
    if stats is not None:
        stats.cache_misses += 1
    results = run_sweep(
        grid,
        algorithms=algorithms,
        n_jobs=n_jobs,
        progress=progress,
        batch_static=batch_static,
        batch_dynamic=batch_dynamic,
        stats=stats,
    )
    save_sweep(results, directory)
    return results
