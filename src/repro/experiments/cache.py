"""On-disk persistence for sweep tensors.

A sweep over the ``small`` grid takes minutes and feeds four different
tables/figures, so results are cached: tensors in a ``.npz``, grid and
algorithm metadata in a sidecar ``.json``.  The cache key is a content
hash of the grid specification plus the algorithm list — any change to
either invalidates the entry automatically.

The cache is hardened against the failure modes a long campaign actually
hits: both files are written atomically (temp file + :func:`os.replace`,
so a crash mid-save can never publish a torn entry), the sidecar carries
a SHA-256 over the tensors (so a mismatched npz/json pair is detected,
not silently served), and any entry that fails to load is quarantined to
``<directory>/corrupt/`` and recomputed — a corrupt cache degrades to a
cache miss, never to an exception or a wrong result.  All load failures
surface as a typed :class:`CacheCorruptionError` naming the offending
path.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import pathlib
import typing
import zipfile

import numpy as np

from repro.experiments.config import ExperimentGrid, PlatformPoint, sweep_key
from repro.experiments.resilient import FailureLedger, RetryPolicy, _array_digest
from repro.experiments.runner import SweepResults, run_sweep

__all__ = [
    "sweep_key",
    "save_sweep",
    "load_sweep",
    "cached_sweep",
    "CacheCorruptionError",
]


class CacheCorruptionError(RuntimeError):
    """A cache entry exists but cannot be trusted.

    Raised by :func:`load_sweep` for every failure mode — missing
    counterpart file, torn or truncated npz, unparsable sidecar, tensors
    that fail the sidecar's content hash — instead of leaking the
    underlying ``FileNotFoundError`` / ``KeyError`` / ``BadZipFile``.
    ``path`` names the offending file.
    """

    def __init__(self, message: str, path: "str | os.PathLike"):
        super().__init__(f"{message} [{path}]")
        self.path = pathlib.Path(path)


def _atomic_write_bytes(path: pathlib.Path, payload: bytes) -> None:
    """Publish ``payload`` at ``path`` via temp-file-then-``os.replace``."""
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_sweep(results: SweepResults, directory: str | pathlib.Path) -> pathlib.Path:
    """Persist a sweep atomically; returns the ``.npz`` path.

    Both files go through temp-then-:func:`os.replace`, and the sidecar
    records a content hash of the tensors, so readers can detect a
    mismatched pair (e.g. one file restored from backup without the
    other) no matter when a crash lands.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    key = sweep_key(results.grid, results.algorithms)
    npz_path = directory / f"sweep-{results.grid.name}-{key}.npz"
    meta_path = npz_path.with_suffix(".json")
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **results.makespans)
    _atomic_write_bytes(npz_path, buffer.getvalue())
    meta = {
        "grid": dataclasses.asdict(results.grid),
        "algorithms": list(results.algorithms),
        "platforms": [p.as_dict() for p in results.platforms],
        "content_sha256": _array_digest(results.makespans),
    }
    _atomic_write_bytes(meta_path, json.dumps(meta, indent=2).encode())
    return npz_path


def load_sweep(npz_path: str | pathlib.Path) -> SweepResults:
    """Load a persisted sweep.

    Raises :class:`CacheCorruptionError` — never a bare
    ``FileNotFoundError`` / ``KeyError`` / ``BadZipFile`` — when the
    entry is missing a file, unreadable, structurally wrong, or fails
    the sidecar's content hash.
    """
    npz_path = pathlib.Path(npz_path)
    meta_path = npz_path.with_suffix(".json")
    try:
        meta = json.loads(meta_path.read_text())
        grid = ExperimentGrid(**{**meta["grid"], **{
            k: tuple(v) for k, v in meta["grid"].items() if isinstance(v, list)
        }})
        algorithms = tuple(meta["algorithms"])
        platforms = tuple(PlatformPoint(**p) for p in meta["platforms"])
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise CacheCorruptionError(
            f"unreadable sweep sidecar ({type(exc).__name__}: {exc})", meta_path
        ) from exc
    try:
        with np.load(npz_path, allow_pickle=False) as data:
            makespans = {a: data[a] for a in algorithms}
    except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise CacheCorruptionError(
            f"unreadable sweep tensors ({type(exc).__name__}: {exc})", npz_path
        ) from exc
    stored = meta.get("content_sha256")
    if stored is not None and _array_digest(makespans) != stored:
        raise CacheCorruptionError(
            "sweep tensors fail the sidecar content hash "
            "(mismatched npz/json pair?)", npz_path
        )
    try:
        return SweepResults(
            grid=grid, algorithms=algorithms, platforms=platforms,
            makespans=makespans,
        )
    except (TypeError, ValueError) as exc:
        raise CacheCorruptionError(
            f"inconsistent sweep entry ({type(exc).__name__}: {exc})", npz_path
        ) from exc


def _quarantine_entry(npz_path: pathlib.Path) -> None:
    """Move a corrupt entry's files to ``<dir>/corrupt/`` for post-mortem."""
    corrupt_dir = npz_path.parent / "corrupt"
    corrupt_dir.mkdir(parents=True, exist_ok=True)
    for path in (npz_path, npz_path.with_suffix(".json")):
        if path.exists():
            try:
                os.replace(path, corrupt_dir / path.name)
            except OSError:  # cross-device or racing cleanup: drop it
                path.unlink(missing_ok=True)


def cached_sweep(
    grid: ExperimentGrid,
    algorithms: typing.Sequence[str],
    directory: str | pathlib.Path,
    n_jobs: int = 1,
    progress: typing.Callable[[int, int], None] | None = None,
    batch_static: bool = True,
    batch_dynamic: bool | None = None,
    stats=None,
    retry: RetryPolicy | None = None,
    resume: bool = False,
    failures: FailureLedger | None = None,
    tracer=None,
) -> SweepResults:
    """Run a sweep, or load it if an identical one is already on disk.

    ``batch_static`` / ``batch_dynamic`` are forwarded to
    :func:`run_sweep` on a cache miss; they are deliberately *not* part of
    the cache key, because all paths produce the same distribution under
    the same seeds (and identical tensors at zero error).

    ``stats`` (a :class:`repro.obs.SweepStats`) tallies the hit/miss and,
    on a miss, is forwarded to :func:`run_sweep` so one collector covers
    the whole cached workflow.

    A corrupt entry (torn file, failed content hash, unparsable sidecar)
    is quarantined to ``<directory>/corrupt/``, counted in
    ``stats.cache_corrupt_quarantined``, and treated as a miss.  On a
    miss the sweep runs with checkpointing into this directory;
    ``resume=True`` additionally picks up surviving shards of an
    interrupted run, and ``retry`` / ``failures`` / ``tracer`` are
    forwarded to :func:`run_sweep`'s supervision layer.
    """
    directory = pathlib.Path(directory)
    key = sweep_key(grid, algorithms)
    npz_path = directory / f"sweep-{grid.name}-{key}.npz"
    if npz_path.exists() and npz_path.with_suffix(".json").exists():
        # Guard against a stale or hand-edited sidecar: the entry is only
        # trusted if it loads cleanly and actually holds the requested
        # algorithm list; anything else falls through to a fresh run.
        try:
            loaded = load_sweep(npz_path)
        except CacheCorruptionError:
            loaded = None
            _quarantine_entry(npz_path)
            if stats is not None:
                stats.cache_corrupt_quarantined += 1
        if loaded is not None and loaded.algorithms == tuple(algorithms):
            if stats is not None:
                stats.cache_hits += 1
            return loaded
    if stats is not None:
        stats.cache_misses += 1
    results = run_sweep(
        grid,
        algorithms=algorithms,
        n_jobs=n_jobs,
        progress=progress,
        batch_static=batch_static,
        batch_dynamic=batch_dynamic,
        stats=stats,
        retry=retry,
        checkpoint_dir=directory,
        resume=resume,
        failures=failures,
        tracer=tracer,
    )
    save_sweep(results, directory)
    return results
