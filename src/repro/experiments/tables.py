"""Table 2 and Table 3 generators.

Both tables bucket the error axis into the paper's five ranges and report,
for each competitor, the percentage of experiments in which RUMR achieves
a strictly smaller makespan (Table 2) or a makespan at least 10% smaller
(Table 3).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.experiments.metrics import (
    PAPER_BUCKETS,
    error_buckets,
    outperform_fraction,
    overall_outperform_fraction,
)
from repro.experiments.runner import SweepResults

__all__ = ["TableResult", "table2", "table3"]

#: Competitor row order used by the paper.
ROW_ORDER = ("UMR", "MI-1", "MI-2", "MI-3", "MI-4", "Factoring")


@dataclasses.dataclass(frozen=True)
class TableResult:
    """A rendered-agnostic table: rows × error buckets of percentages."""

    title: str
    bucket_labels: tuple[str, ...]
    rows: dict[str, tuple[float, ...]]
    overall: dict[str, float]
    margin: float

    def row(self, algorithm: str) -> tuple[float, ...]:
        """Percentages for one competitor across the buckets."""
        return self.rows[algorithm]


def _bucketize(per_error: np.ndarray, errors: tuple[float, ...]) -> tuple[float, ...]:
    values = []
    for idx in error_buckets(errors):
        values.append(float(per_error[idx].mean() * 100.0) if idx.size else float("nan"))
    return tuple(values)


def _build(results: SweepResults, margin: float, title: str) -> TableResult:
    competitors = [a for a in ROW_ORDER if a in results.algorithms]
    competitors += [
        a for a in results.algorithms if a not in competitors and a != results.reference
    ]
    rows = {}
    overall = {}
    for algo in competitors:
        per_error = outperform_fraction(results, algo, margin=margin)
        rows[algo] = _bucketize(per_error, results.grid.errors)
        overall[algo] = overall_outperform_fraction(results, algo, margin=margin) * 100.0
    labels = tuple(f"{lo:g}-{hi:g}" for lo, hi in PAPER_BUCKETS)
    return TableResult(
        title=title, bucket_labels=labels, rows=rows, overall=overall, margin=margin
    )


def table2(results: SweepResults) -> TableResult:
    """Percentage of experiments for which RUMR outperforms each algorithm."""
    return _build(
        results,
        margin=0.0,
        title="Table 2: % of experiments where RUMR outperforms the row algorithm",
    )


def table3(results: SweepResults, margin: float = 0.1) -> TableResult:
    """Same, requiring a ≥10% makespan advantage."""
    return _build(
        results,
        margin=margin,
        title=(
            "Table 3: % of experiments where RUMR outperforms the row "
            f"algorithm by at least {margin:.0%}"
        ),
    )
