"""Resilient sweep execution: retries, engine fallback, checkpoints.

RUMR's thesis is graceful degradation under uncertainty; this module
applies the same principle to the experiment harness itself.  A
multi-hour sweep must survive a flaky engine, a pathological cell, a
crashed pool worker, or a SIGKILL — and resume instead of starting over.
Three cooperating pieces:

:class:`RetryPolicy`
    How hard to try before giving up on a cell: attempt count,
    exponential backoff with *deterministic* jitter (derived from the
    cell seed, so two runs of the same sweep back off identically and
    chaos tests are reproducible), and a wall-clock timeout enforced for
    process-pool shard tasks.

:class:`CellSupervisor`
    The per-cell execution guard implementing the engine-fallback
    ladder: a cell that keeps failing in a vectorized batch engine
    (:mod:`repro.sim.batch` / :mod:`repro.sim.dynbatch`) is retried on
    the scalar engine; a cell that fails *every* rung is quarantined —
    its repetitions become NaN, a structured :class:`CellFailure` lands
    in the :class:`FailureLedger`, and the sweep continues.  No failure
    mode aborts a sweep.  Retry/fallback/quarantine tallies flow into
    :class:`repro.obs.SweepStats`, and ``engine_fallback`` /
    ``cell_quarantined`` events onto an attached
    :class:`~repro.obs.tracer.Tracer`.

:class:`CheckpointStore`
    Crash-safe incremental checkpoints: each completed platform shard is
    flushed to ``<cache-dir>/partial/<key>/`` as an atomic
    write-temp-then-``os.replace`` ``.npz`` carrying a content hash.  A
    killed sweep resumes from the surviving shards
    (``run_sweep(resume=True)`` / ``repro sweep --resume``); a corrupt
    or torn shard fails its hash check and is recomputed, never trusted.

The ladder preserves determinism: a retry re-runs the exact same seeded
computation, so a cell that eventually succeeds contributes a tensor
bitwise identical to an unperturbed run's; a scalar fallback produces
exactly what ``batch_static=False`` would have (the engines share
per-cell seed streams).  The chaos suite in
``tests/experiments/test_resilient.py`` pins both properties.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import shutil
import time
import typing

import numpy as np

__all__ = [
    "RetryPolicy",
    "CellFailure",
    "FailureLedger",
    "CellSupervisor",
    "CheckpointStore",
]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How persistently to re-attempt a failing unit of sweep work.

    Attributes
    ----------
    max_attempts:
        Attempts per ladder rung (primary engine and fallback engine
        each get this many), >= 1.  ``1`` disables retries.
    backoff_base_s:
        Sleep before the first re-attempt; ``0`` retries immediately
        (the chaos tests use this).
    backoff_multiplier:
        Exponential growth factor between consecutive re-attempts.
    jitter_fraction:
        Relative jitter applied to each backoff, drawn *deterministically*
        from the cell seed and attempt number — reproducible, yet
        decorrelated across cells like conventional random jitter.
    cell_timeout_s:
        Wall-clock budget for one process-pool shard task.  ``None``
        (default) waits forever.  Enforced only on the pool path — the
        in-process path cannot preempt a running cell; a pool task that
        overruns is abandoned (its worker killed) and its shard is
        recomputed in-process.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.25
    cell_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1), got {self.jitter_fraction}"
            )
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError(
                f"cell_timeout_s must be > 0 or None, got {self.cell_timeout_s}"
            )

    def backoff_s(self, attempt: int, seed: int) -> float:
        """Sleep before re-attempt ``attempt`` (1-based) of cell ``seed``.

        The jitter is a pure function of ``(seed, attempt)``: the same
        cell backs off identically on every run of the sweep.
        """
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if base == 0.0 or self.jitter_fraction == 0.0:
            return base
        digest = hashlib.blake2b(
            f"{seed}:{attempt}".encode(), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "big") / 2.0**64  # in [0, 1)
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """One quarantined (platform, error, algorithm) cell, for the ledger."""

    algorithm: str
    platform_index: int
    error_index: int
    engine: str
    fallback_engine: str | None
    attempts: int
    exc_type: str
    message: str

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class FailureLedger:
    """An append-only record of every quarantined cell of a sweep."""

    def __init__(self, entries: typing.Iterable[CellFailure] = ()):
        self.entries: list[CellFailure] = list(entries)

    def add(self, failure: CellFailure) -> None:
        self.entries.append(failure)

    def extend(self, failures: typing.Iterable[CellFailure]) -> None:
        self.entries.extend(failures)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> typing.Iterator[CellFailure]:
        return iter(self.entries)

    def for_platform(self, platform_index: int) -> list[CellFailure]:
        return [e for e in self.entries if e.platform_index == platform_index]

    def to_json(self) -> str:
        return json.dumps([e.as_dict() for e in self.entries], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FailureLedger":
        return cls(CellFailure(**d) for d in json.loads(text))


class CellSupervisor:
    """Per-cell execution guard: retry → engine fallback → quarantine.

    One supervisor rides through a whole sweep (or one pool worker's
    shard of it).  It owns a :class:`FailureLedger` and local counters;
    when a :class:`~repro.obs.SweepStats` collector or a
    :class:`~repro.obs.tracer.Tracer` is attached, tallies and
    ``engine_fallback`` / ``cell_quarantined`` events are forwarded as
    they happen.  Pool workers run their own supervisor and ship
    ``(ledger entries, counters)`` back for :meth:`absorb` by the
    parent's.

    Only :class:`Exception` is caught — ``KeyboardInterrupt`` and other
    ``BaseException``\\ s still propagate, so Ctrl-C stops a sweep
    promptly (checkpoints make that cheap to undo).
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        stats=None,
        ledger: FailureLedger | None = None,
        tracer=None,
        sleep: typing.Callable[[float], None] = time.sleep,
    ):
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = stats
        self.ledger = ledger if ledger is not None else FailureLedger()
        self.tracer = tracer
        self.sleep = sleep
        self.retries = 0
        self.engine_fallbacks = 0
        self.cells_quarantined = 0

    # -- bookkeeping --------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Local tallies, for shipping across a process boundary."""
        return {
            "retries": self.retries,
            "engine_fallbacks": self.engine_fallbacks,
            "cells_quarantined": self.cells_quarantined,
        }

    def absorb(
        self, entries: typing.Iterable[CellFailure], counters: dict[str, int]
    ) -> None:
        """Merge a pool worker's ledger entries and counters into this one."""
        entries = list(entries)
        self.ledger.extend(entries)
        self.retries += counters.get("retries", 0)
        self.engine_fallbacks += counters.get("engine_fallbacks", 0)
        self.cells_quarantined += counters.get("cells_quarantined", 0)
        if self.stats is not None:
            self.stats.retries += counters.get("retries", 0)
            self.stats.engine_fallbacks += counters.get("engine_fallbacks", 0)
            self.stats.cells_quarantined += counters.get("cells_quarantined", 0)

    def _count_retry(self) -> None:
        self.retries += 1
        if self.stats is not None:
            self.stats.retries += 1

    def count_fallback(self) -> None:
        """Tally one engine fallback (ladder steps taken outside run_cell,
        e.g. a static plan that fails to compile and reroutes to scalar)."""
        self.engine_fallbacks += 1
        if self.stats is not None:
            self.stats.engine_fallbacks += 1

    # -- execution ----------------------------------------------------------
    def attempt(
        self, fn: typing.Callable[[], typing.Any], seed: int
    ) -> tuple[typing.Any, Exception | None]:
        """Run ``fn`` under the retry policy; return ``(value, last_error)``.

        ``(value, None)`` on success; ``(None, exc)`` after exhausting
        ``max_attempts``.
        """
        last: Exception | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            try:
                return fn(), None
            except Exception as exc:  # noqa: BLE001 — the whole point
                last = exc
                if attempt < self.policy.max_attempts:
                    self._count_retry()
                    delay = self.policy.backoff_s(attempt, seed)
                    if delay > 0:
                        self.sleep(delay)
        return None, last

    def run_cell(
        self,
        primary: typing.Callable[[], np.ndarray],
        *,
        algorithm: str,
        platform_index: int,
        error_index: int,
        engine: str,
        seed: int,
        shape: tuple[int, ...],
        fallback: typing.Callable[[], np.ndarray] | None = None,
        fallback_engine: str = "scalar",
    ) -> np.ndarray:
        """Execute one cell through the full ladder; never raises.

        ``primary`` is attempted under the retry policy; on exhaustion,
        ``fallback`` (when given) gets its own round of attempts; when
        that too is exhausted, the cell is quarantined — a NaN tensor of
        ``shape`` is returned and a :class:`CellFailure` recorded.
        """
        value, exc = self.attempt(primary, seed)
        if exc is None:
            return value
        attempts = self.policy.max_attempts
        used_fallback = fallback is not None
        if used_fallback:
            self.count_fallback()
            if self.tracer is not None:
                self.tracer.emit(
                    0.0, "engine_fallback", -1, phase=algorithm,
                    detail=f"platform={platform_index} error={error_index} "
                    f"{engine}->{fallback_engine}: {type(exc).__name__}",
                )
            value, exc = self.attempt(fallback, seed)
            if exc is None:
                return value
            attempts += self.policy.max_attempts
        self.cells_quarantined += 1
        if self.stats is not None:
            self.stats.cells_quarantined += 1
        self.ledger.add(
            CellFailure(
                algorithm=algorithm,
                platform_index=platform_index,
                error_index=error_index,
                engine=engine,
                fallback_engine=fallback_engine if used_fallback else None,
                attempts=attempts,
                exc_type=type(exc).__name__,
                message=str(exc),
            )
        )
        if self.tracer is not None:
            self.tracer.emit(
                0.0, "cell_quarantined", -1, phase=algorithm,
                detail=f"platform={platform_index} error={error_index} "
                f"engine={engine}: {type(exc).__name__}",
            )
        return np.full(shape, np.nan)


def _array_digest(arrays: dict[str, np.ndarray]) -> str:
    """Content hash of a named array set (order-insensitive by name)."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


class CheckpointStore:
    """Atomic, content-hashed shard checkpoints for one sweep.

    Shards live under ``<directory>/partial/<key>/<name>.npz``; ``key``
    is the sweep's cache key, so checkpoints of different grids or
    algorithm lists can never collide.  Every write goes to a temp file
    in the same directory and is published with :func:`os.replace` — a
    crash mid-write leaves at worst an ignorable temp file, never a torn
    shard.  Every shard embeds a SHA-256 over its arrays; a shard that
    fails the hash (or cannot be read at all) is deleted and reported as
    missing, forcing recomputation rather than silent corruption.
    """

    #: Filename of the failure-ledger sidecar kept next to the shards.
    LEDGER_NAME = "failures.json"

    def __init__(self, directory: "str | os.PathLike", key: str):
        self.root = pathlib.Path(directory) / "partial" / key

    def shard_path(self, name: str) -> pathlib.Path:
        return self.root / f"{name}.npz"

    def save(self, name: str, **arrays: np.ndarray) -> pathlib.Path:
        """Atomically persist named arrays as one shard."""
        if not arrays:
            raise ValueError("a shard needs at least one array")
        if "sha256" in arrays:
            raise ValueError("'sha256' is reserved for the content hash")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(name)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        digest = _array_digest(arrays)
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, sha256=np.frombuffer(
                    bytes.fromhex(digest), dtype=np.uint8
                ), **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # publish failed; never leave temp litter
                tmp.unlink()
        return path

    def load(self, name: str) -> dict[str, np.ndarray] | None:
        """Load a shard, or ``None`` if absent, torn, or hash-corrupt.

        A shard that exists but fails validation is deleted on the spot
        so a later resume does not re-read it.
        """
        path = self.shard_path(name)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {k: data[k] for k in data.files if k != "sha256"}
                stored = bytes(data["sha256"]).hex()
        except Exception:
            self._discard_shard(path)
            return None
        if not arrays or _array_digest(arrays) != stored:
            self._discard_shard(path)
            return None
        return arrays

    @staticmethod
    def _discard_shard(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- failure ledger persistence -----------------------------------------
    def save_ledger(self, ledger: FailureLedger) -> None:
        """Atomically persist the ledger next to the shards."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / self.LEDGER_NAME
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        tmp.write_text(ledger.to_json())
        os.replace(tmp, path)

    def load_ledger(self) -> FailureLedger:
        """The persisted ledger (empty when absent or unreadable)."""
        path = self.root / self.LEDGER_NAME
        try:
            return FailureLedger.from_json(path.read_text())
        except (OSError, ValueError, TypeError, KeyError):
            return FailureLedger()

    def discard(self) -> None:
        """Remove every shard — called once a sweep completes cleanly."""
        shutil.rmtree(self.root, ignore_errors=True)
