"""Metrics over sweep tensors: the quantities the paper reports.

* :func:`outperform_fraction` — "percentage of experiments for which RUMR
  outperforms X (by at least a margin)", Tables 2 and 3;
* :func:`error_buckets` — the paper's five error ranges (0–0.08, 0.1–0.18,
  …, 0.4–0.48);
* :func:`mean_normalized_makespan` — per-error mean of ``makespan(X) /
  makespan(RUMR)``, the quantity plotted in Figs 4–7 (values above 1 mean
  RUMR wins).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import FaultSweepResults, SweepResults

__all__ = [
    "PAPER_BUCKETS",
    "error_buckets",
    "fault_degradation",
    "mean_normalized_makespan",
    "outperform_fraction",
    "overall_outperform_fraction",
]

#: The paper's Table 2/3 error ranges, as (low, high) inclusive bounds.
PAPER_BUCKETS = ((0.0, 0.08), (0.1, 0.18), (0.2, 0.28), (0.3, 0.38), (0.4, 0.48))


def error_buckets(
    errors: tuple[float, ...],
    buckets: tuple[tuple[float, float], ...] = PAPER_BUCKETS,
) -> list[np.ndarray]:
    """Index arrays grouping the error axis into the paper's ranges.

    Error values falling in none of the ranges (possible with a coarse
    axis) are dropped, matching the paper's bucket gaps (e.g. 0.09).
    """
    arr = np.asarray(errors)
    out = []
    for low, high in buckets:
        out.append(np.nonzero((arr >= low - 1e-12) & (arr <= high + 1e-12))[0])
    return out


def outperform_fraction(
    results: SweepResults,
    competitor: str,
    margin: float = 0.0,
    reference: str | None = None,
) -> np.ndarray:
    """Per-error fraction of experiments where the reference beats ``competitor``.

    An experiment is one (platform, repetition) cell.  "Beats by margin"
    means ``makespan(competitor) > (1 + margin) · makespan(reference)`` —
    ``margin=0.1`` reproduces Table 3's "by at least 10%".

    Returns an array over the grid's error axis with values in [0, 1].
    """
    reference = reference or results.reference
    ref = results.makespans[reference]
    comp = results.makespans[competitor]
    wins = comp > (1.0 + margin) * ref
    return wins.mean(axis=(0, 2))


def overall_outperform_fraction(
    results: SweepResults, competitor: str, margin: float = 0.0
) -> float:
    """Fraction over *all* experiments (the paper's "79% overall" number)."""
    ref = results.makespans[results.reference]
    comp = results.makespans[competitor]
    return float((comp > (1.0 + margin) * ref).mean())


def mean_normalized_makespan(
    results: SweepResults,
    competitor: str,
    reference: str | None = None,
) -> np.ndarray:
    """Per-error mean of ``makespan(competitor) / makespan(reference)``.

    The ratio is taken per experiment (same platform, same repetition,
    common random numbers), then averaged — the natural reading of the
    paper's "average makespan … normalized to that achieved by RUMR".
    """
    reference = reference or results.reference
    ratio = results.makespans[competitor] / results.makespans[reference]
    return ratio.mean(axis=(0, 2))


def fault_degradation(
    results: FaultSweepResults,
    algorithm: str,
    baseline_spec: str = "none",
) -> dict[str, float]:
    """Mean makespan degradation per fault scenario, relative to fault-free.

    For each fault spec: the per-experiment ratio ``makespan(under fault) /
    makespan(fault-free)`` averaged over every (platform, error,
    repetition) cell — valid pairing because all scenarios share the grid
    seed.  1.0 means the scenario costs nothing; a recovery-aware
    scheduler's value under crashes measures how much of the lost worker's
    throughput it manages to re-absorb.
    """
    if baseline_spec not in results.sweeps:
        raise ValueError(f"baseline fault spec {baseline_spec!r} not in results")
    base = results.sweeps[baseline_spec].makespans[algorithm]
    out: dict[str, float] = {}
    for spec in results.fault_specs:
        tensor = results.sweeps[spec].makespans[algorithm]
        out[spec] = float((tensor / base).mean())
    return out
