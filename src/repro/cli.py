"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
::

    python -m repro table2 --preset smoke
    python -m repro fig4a --preset small --results results/
    python -m repro all --preset small --results results/ --out results/
    python -m repro sweep --preset smoke --results results/
    python -m repro sweep --preset small --resume --retries 5
    python -m repro gantt --scheduler RUMR --error 0.3
    python -m repro figfaults --preset smoke --faults crash:p=0.3,tmax=200
    python -m repro sweep --preset smoke --fault crash:p=0.2,tmax=400
    python -m repro multijob --arrivals poisson:rate=0.02,jobs=8,work=200
    python -m repro multijob --policy interleaved:slices=4 --fault crash:p=0.3,tmax=100
    python -m repro sweep --preset smoke --topology chain:relay=sf
    python -m repro figtopo --preset smoke --topologies tree:fanout=2
    python -m repro topo --topology chain:n=8,relay=sf --json topo.json
    python -m repro hetero
    python -m repro adaptive
    python -m repro list

Sweep tensors are cached under ``--results`` and reused across commands;
rendered artifacts (``.txt`` with an ASCII chart + CSV) go to ``--out``
when given, otherwise to stdout.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.core.registry import available_schedulers
from repro.experiments.cache import cached_sweep
from repro.experiments.config import PAPER_ALGORITHMS, preset_grid
from repro.experiments.figures import (
    fig4a,
    fig4b,
    fig5,
    fig5_grid,
    fig6,
    fig6_algorithms,
    fig7,
    fig7_algorithms,
)
from repro.experiments.report import render_figure, render_table, table_csv
from repro.experiments.runner import eta_progress
from repro.experiments.tables import table2, table3

__all__ = ["main"]

FIGURE_COMMANDS = ("fig4a", "fig4b", "fig5", "fig6", "fig7")
TABLE_COMMANDS = ("table2", "table3")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rumr",
        description="Reproduce the evaluation of 'RUMR: Robust Scheduling for "
        "Divisible Workloads' (HPDC 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--preset",
            default="smoke",
            choices=("smoke", "small", "paper", "paper-sample"),
            help="experiment grid preset (default: smoke)",
        )
        p.add_argument(
            "--results",
            default="results",
            help="directory for cached sweep tensors (default: results/)",
        )
        p.add_argument("--out", default=None, help="write artifacts to this directory")
        p.add_argument(
            "--jobs", type=int, default=1,
            help="process-pool width (-1 = one worker per CPU)",
        )
        p.add_argument("--seed", type=int, default=None, help="override the grid seed")
        p.add_argument(
            "--error-mode",
            default=None,
            choices=("multiply", "divide"),
            help="perturbation direction (see repro.errors.models)",
        )
        p.add_argument(
            "--fault",
            default=None,
            metavar="SPEC",
            help="worker fault scenario applied to every run "
            "(e.g. 'crash:p=0.2,tmax=400'; see repro.errors.make_fault_model)",
        )
        p.add_argument(
            "--topology",
            default=None,
            metavar="SPEC",
            help="interconnect shape applied to every run "
            "(e.g. 'chain:relay=sf', 'tree:fanout=2', 'sharedbw:cap=36'; "
            "see repro.platform.make_topology)",
        )
        p.add_argument("--quiet", action="store_true", help="suppress progress output")
        p.add_argument(
            "--resume",
            action="store_true",
            help="resume an interrupted sweep from its checkpoint shards "
            "under <results>/partial/ (completed platforms are not re-run)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            metavar="N",
            help="attempts per engine rung before falling back / quarantining "
            "a cell (default: 3; 1 disables retries)",
        )
        p.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget per process-pool platform task; an "
            "overrunning task is abandoned and recomputed in-process "
            "(default: unlimited)",
        )
        p.add_argument(
            "--no-batch",
            action="store_true",
            help="force the scalar engine for every algorithm "
            "(disables both the static-plan and lockstep-dynamic "
            "vectorized sweep fast paths)",
        )

    for name in TABLE_COMMANDS + FIGURE_COMMANDS + ("all", "sweep"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        add_common(p)

    sub.add_parser("list", help="list registered scheduling algorithms")

    def add_scenario(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scheduler", default="RUMR", help="registered algorithm name")
        p.add_argument("--n", type=int, default=10, help="number of workers")
        p.add_argument("--bandwidth-factor", type=float, default=1.8)
        p.add_argument("--clat", type=float, default=0.3)
        p.add_argument("--nlat", type=float, default=0.1)
        p.add_argument("--work", type=float, default=1000.0)
        p.add_argument("--error", type=float, default=0.0)
        p.add_argument("--seed", type=int, default=0)

    g = sub.add_parser("gantt", help="simulate one scenario and print its Gantt chart")
    add_scenario(g)
    g.add_argument("--width", type=int, default=96)

    t = sub.add_parser(
        "trace",
        help="simulate one scenario and export its typed event trace",
    )
    add_scenario(t)
    t.add_argument(
        "--fault",
        default=None,
        metavar="SPEC",
        help="worker fault scenario (e.g. 'crash:p=0.3,tmax=200')",
    )
    t.add_argument(
        "--engine", default="fast", choices=("fast", "des"),
        help="simulation engine emitting the stream (default: fast)",
    )
    t.add_argument(
        "--format",
        default="chrome",
        choices=("chrome", "jsonl", "both"),
        help="chrome: trace_event JSON for chrome://tracing / ui.perfetto.dev; "
        "jsonl: one canonical event per line (default: chrome)",
    )
    t.add_argument(
        "--out",
        default="trace",
        metavar="STEM",
        help="output path stem — writes STEM.trace.json and/or STEM.jsonl "
        "(default: trace)",
    )

    m = sub.add_parser(
        "multijob",
        help="simulate a stream of jobs contending for the star and print "
        "per-job queueing metrics",
    )
    add_scenario(m)
    m.add_argument(
        "--arrivals",
        default=None,
        metavar="SPEC",
        help="arrival process spec: 'poisson:rate=,jobs=,work=[,work_cv=]', "
        "'bursty:bursts=,size=,gap=,work=[,spread=,work_cv=]' or "
        "'trace:PATH' (default: poisson:rate=0.02,jobs=8,work=<--work>)",
    )
    m.add_argument(
        "--policy",
        default="fcfs",
        metavar="SPEC",
        help="inter-job policy: 'fcfs', 'partitioned[:parts=K]' or "
        "'interleaved[:slices=S]' (default: fcfs)",
    )
    m.add_argument(
        "--engine", default="fast", choices=("fast", "des"),
        help="per-job simulation engine (default: fast)",
    )
    m.add_argument(
        "--fault",
        default=None,
        metavar="SPEC",
        help="worker fault scenario for the stream "
        "(e.g. 'crash:p=0.3,tmax=100')",
    )
    m.add_argument(
        "--fault-frame",
        default="stream",
        choices=("stream", "job"),
        help="'stream' (default): one fault timeline on the absolute "
        "stream clock — crashes persist across jobs; 'job': legacy "
        "per-job re-realization (a crashed worker resurrects)",
    )
    m.add_argument(
        "--failure-policy",
        default="drop",
        metavar="SPEC",
        help="what to do with jobs that cannot finish: 'drop', "
        "'retry[:attempts=,backoff=,mult=,jitter=]' or "
        "'resubmit[:attempts=]' (default: drop)",
    )
    m.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the queueing-metrics JSON to PATH",
    )

    s = sub.add_parser(
        "stats",
        help="run (or load) the main sweep and print engine-routing, "
        "per-cell timing, and cache statistics",
    )
    add_common(s)

    h = sub.add_parser("hetero", help="run the heterogeneity extension study")
    h.add_argument("--error", type=float, default=0.3)
    h.add_argument("--n", type=int, default=16)
    h.add_argument("--repetitions", type=int, default=10)

    a = sub.add_parser("adaptive", help="compare AdaptiveRUMR against the oracle")
    a.add_argument("--n", type=int, default=20)
    a.add_argument("--repetitions", type=int, default=15)

    e = sub.add_parser(
        "extfigs",
        help="render the extension-study figures (hetero, adaptive, output, multiport)",
    )
    e.add_argument("--out", default=None, help="write artifacts to this directory")
    e.add_argument("--repetitions", type=int, default=8)

    f = sub.add_parser(
        "figfaults",
        help="fault study: makespan degradation per fault scenario",
    )
    add_common(f)
    f.add_argument(
        "--faults",
        action="append",
        default=None,
        metavar="SPEC",
        help="fault scenario to sweep (repeatable; 'none' is always included; "
        "default: a crash/pause/slowdown/spike quartet)",
    )
    f.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated algorithm names "
        "(default: RUMR,Factoring,WeightedFactoring)",
    )

    ft = sub.add_parser(
        "figtopo",
        help="topology study: error robustness per interconnect shape",
    )
    add_common(ft)
    ft.add_argument(
        "--topologies",
        action="append",
        default=None,
        metavar="SPEC",
        help="topology spec to sweep (repeatable; 'star' is always included; "
        "default: a chain/tree/sharedbw trio)",
    )
    ft.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated algorithm names (default: RUMR,Factoring)",
    )

    tp = sub.add_parser(
        "topo",
        help="parse a topology spec and print its effective per-worker view",
    )
    tp.add_argument(
        "--topology",
        default="chain:relay=sf",
        metavar="SPEC",
        help="topology spec to summarize (default: chain:relay=sf)",
    )
    tp.add_argument("--n", type=int, default=8, help="number of workers")
    tp.add_argument("--bandwidth-factor", type=float, default=1.8)
    tp.add_argument("--clat", type=float, default=0.3)
    tp.add_argument("--nlat", type=float, default=0.1)
    tp.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the summary as canonical (byte-deterministic) JSON",
    )
    return parser


def _retry_policy(args: argparse.Namespace):
    """A RetryPolicy from the CLI knobs, or None for the default."""
    if getattr(args, "retries", None) is None and (
        getattr(args, "cell_timeout", None) is None
    ):
        return None
    from repro.experiments.resilient import RetryPolicy

    kwargs = {}
    if args.retries is not None:
        kwargs["max_attempts"] = args.retries
    if args.cell_timeout is not None:
        kwargs["cell_timeout_s"] = args.cell_timeout
    return RetryPolicy(**kwargs)


def _grid(args: argparse.Namespace):
    grid = preset_grid(args.preset)
    updates = {}
    if args.seed is not None:
        updates["seed"] = args.seed
    if args.error_mode is not None:
        updates["error_mode"] = args.error_mode
    if getattr(args, "fault", None) is not None:
        updates["fault"] = args.fault
    if getattr(args, "topology", None) is not None:
        updates["topology"] = args.topology
    if updates:
        grid = grid.restrict(**updates)
    return grid


def _emit(args: argparse.Namespace, name: str, content: str) -> None:
    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{name}-{args.preset}.txt"
        path.write_text(content)
        print(f"wrote {path}")
    else:
        print(content)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro`` / ``repro-rumr``).

    Returns a process exit code; see the module docstring for commands.
    """
    args = _parser().parse_args(argv)

    if args.command == "list":
        for name in available_schedulers():
            print(name)
        return 0

    if args.command == "gantt":
        return _cmd_gantt(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "multijob":
        return _cmd_multijob(args)
    if args.command == "hetero":
        return _cmd_hetero(args)
    if args.command == "adaptive":
        return _cmd_adaptive(args)
    if args.command == "extfigs":
        return _cmd_extfigs(args)
    if args.command == "figfaults":
        return _cmd_figfaults(args)
    if args.command == "figtopo":
        return _cmd_figtopo(args)
    if args.command == "topo":
        return _cmd_topo(args)

    grid = _grid(args)
    progress = None if args.quiet else eta_progress()

    batch_static = not args.no_batch
    retry = _retry_policy(args)

    def main_sweep():
        return cached_sweep(
            grid, PAPER_ALGORITHMS, args.results, n_jobs=args.jobs,
            progress=progress, batch_static=batch_static,
            retry=retry, resume=args.resume,
        )

    if args.command == "sweep":
        from repro.experiments.resilient import FailureLedger

        ledger = FailureLedger()
        results = cached_sweep(
            grid, PAPER_ALGORITHMS, args.results, n_jobs=args.jobs,
            progress=progress, batch_static=batch_static,
            retry=retry, resume=args.resume, failures=ledger,
        )
        total = grid.num_simulations(len(results.algorithms))
        print(f"sweep complete: {total} simulations cached in {args.results}")
        if len(ledger):
            print(
                f"warning: {len(ledger)} cell(s) quarantined as NaN "
                f"(ledger in {args.results}); first: "
                f"{ledger.entries[0].algorithm} platform="
                f"{ledger.entries[0].platform_index} "
                f"[{ledger.entries[0].exc_type}]"
            )
        return 0

    if args.command == "stats":
        from repro.obs import SweepStats

        stats = SweepStats()
        cached_sweep(
            grid, PAPER_ALGORITHMS, args.results, n_jobs=args.jobs,
            progress=progress, batch_static=batch_static, stats=stats,
            retry=retry, resume=args.resume,
        )
        print(stats.summary())
        return 0

    if args.command in ("table2", "all"):
        _emit(args, "table2", render_table(table2(main_sweep())))
        _emit(args, "table2-csv", table_csv(table2(main_sweep())))
    if args.command in ("table3", "all"):
        _emit(args, "table3", render_table(table3(main_sweep())))
        _emit(args, "table3-csv", table_csv(table3(main_sweep())))
    if args.command in ("fig4a", "all"):
        _emit(args, "fig4a", render_figure(fig4a(main_sweep())))
    if args.command in ("fig4b", "all"):
        _emit(args, "fig4b", render_figure(fig4b(main_sweep())))
    if args.command in ("fig5", "all"):
        # Fig 5 is a single configuration: bump repetitions to the paper's 40
        # and reuse the cache machinery.
        base = grid.restrict(repetitions=max(grid.repetitions, 40))
        results = cached_sweep(
            fig5_grid(base), PAPER_ALGORITHMS, args.results, n_jobs=args.jobs,
            progress=progress, batch_static=batch_static,
            retry=retry, resume=args.resume,
        )
        from repro.experiments.figures import _normalized_figure

        fig = _normalized_figure(
            results,
            "Figure 5: relative makespan vs error (cLat=0.3, nLat=0.9, N=20, B=36)",
        )
        _emit(args, "fig5", render_figure(fig))
    if args.command in ("fig6", "all"):
        results = cached_sweep(
            grid, fig6_algorithms, args.results, n_jobs=args.jobs,
            progress=progress, batch_static=batch_static,
            retry=retry, resume=args.resume,
        )
        from repro.experiments.figures import _normalized_figure

        fig = _normalized_figure(
            results,
            "Figure 6: RUMR with fixed phase-1 percentage, normalized to original RUMR",
        )
        _emit(args, "fig6", render_figure(fig))
    if args.command in ("fig7", "all"):
        results = cached_sweep(
            grid, fig7_algorithms, args.results, n_jobs=args.jobs,
            progress=progress, batch_static=batch_static,
            retry=retry, resume=args.resume,
        )
        from repro.experiments.figures import _normalized_figure

        fig = _normalized_figure(
            results,
            "Figure 7: RUMR with plain UMR phase 1, normalized to original RUMR",
        )
        _emit(args, "fig7", render_figure(fig))
    return 0


#: Default scenarios for ``figfaults``: one of each fault kind, sized so
#: the smoke/small grids (W=1000, makespans of order 100–600s) see them.
DEFAULT_FAULT_SPECS = (
    "crash:p=0.3,tmax=200",
    "pause:p=0.5,tmax=200,dur=50",
    "slow:p=0.5,tmax=200,factor=3",
    "spike:p=0.2,delay=5",
)


def _cmd_figfaults(args: argparse.Namespace) -> int:
    from repro.experiments.figures import fault_figure, fig_faults_algorithms
    from repro.experiments.runner import run_fault_sweep

    grid = _grid(args)
    specs = tuple(args.faults) if args.faults else DEFAULT_FAULT_SPECS
    algorithms = (
        tuple(a.strip() for a in args.algorithms.split(","))
        if args.algorithms
        else fig_faults_algorithms
    )
    progress = None if args.quiet else eta_progress()
    results = run_fault_sweep(
        grid, specs, algorithms=algorithms, n_jobs=args.jobs,
        progress=progress, directory=args.results, resume=args.resume,
    )
    _emit(args, "figfaults", render_figure(fault_figure(results)))
    return 0


#: Default scenarios for ``figtopo``: one of each non-star shape.  The
#: sharedbw cap is sized against the presets' Table-1 bandwidths
#: (``B = factor × N``, so 36 matches the N=20, factor=1.8 point).
DEFAULT_TOPOLOGY_SPECS = (
    "chain:relay=sf",
    "tree:fanout=2",
    "sharedbw:cap=36",
)


def _cmd_figtopo(args: argparse.Namespace) -> int:
    from repro.experiments.topology import (
        fig_topologies_algorithms,
        run_topology_sweep,
        topology_figure,
    )

    grid = _grid(args)
    specs = tuple(args.topologies) if args.topologies else DEFAULT_TOPOLOGY_SPECS
    algorithms = (
        tuple(a.strip() for a in args.algorithms.split(","))
        if args.algorithms
        else fig_topologies_algorithms
    )
    progress = None if args.quiet else eta_progress()
    results = run_topology_sweep(
        grid, specs, algorithms=algorithms, n_jobs=args.jobs,
        progress=progress, directory=args.results, resume=args.resume,
    )
    _emit(args, "figtopo", render_figure(topology_figure(results)))
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    import json
    import math

    from repro.platform import homogeneous_platform, make_topology

    topo = make_topology(args.topology)
    platform = homogeneous_platform(
        args.n, S=1.0, bandwidth_factor=args.bandwidth_factor,
        cLat=args.clat, nLat=args.nlat,
    )
    bound = topo.bind(platform)
    effective = topo.effective_platform(platform)
    cap = None if math.isinf(bound.cap) else bound.cap
    print(f"topology: {topo}  (kind={topo.kind}, N={platform.N}, "
          f"relay links={bound.num_relay_links}"
          + (f", shared cap={cap:g})" if cap is not None else ")"))
    print(f"{'worker':>6} {'B':>10} {'B_eff':>10} {'nLat_eff':>9} "
          f"{'tLat_eff':>9} {'hops':>5}")
    for i in range(platform.N):
        w, e = platform[i], effective[i]
        b_eff = "inf" if math.isinf(e.B) else f"{e.B:.6g}"
        print(
            f"{i:>6} {w.B:>10.6g} {b_eff:>10} {e.nLat:>9.6g} "
            f"{e.tLat:>9.6g} {len(bound.paths[i].hops):>5}"
        )
    if args.json:
        payload = {
            "spec": str(topo),
            "kind": topo.kind,
            "N": platform.N,
            "relay_links": bound.num_relay_links,
            "cap": cap,
            "workers": [
                {
                    "worker": i,
                    "B": platform[i].B,
                    "B_eff": None if math.isinf(effective[i].B) else effective[i].B,
                    "nLat_eff": effective[i].nLat,
                    "tLat_eff": effective[i].tLat,
                    "hops": len(bound.paths[i].hops),
                }
                for i in range(platform.N)
            ],
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        path = pathlib.Path(args.json)
        path.write_text(text)
        print(f"wrote {path}")
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.core.registry import make_scheduler
    from repro.errors.models import make_error_model
    from repro.platform.spec import homogeneous_platform
    from repro.sim import simulate
    from repro.sim.gantt import render_gantt

    platform = homogeneous_platform(
        args.n, S=1.0, bandwidth_factor=args.bandwidth_factor,
        cLat=args.clat, nLat=args.nlat,
    )
    scheduler = make_scheduler(args.scheduler, args.error)
    model = make_error_model("normal", args.error)
    result = simulate(platform, args.work, scheduler, model, seed=args.seed)
    print(render_gantt(result, width=args.width))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.registry import make_scheduler
    from repro.errors.models import make_error_model
    from repro.obs import Tracer, events_to_jsonl, write_chrome_trace
    from repro.platform.spec import homogeneous_platform
    from repro.sim import simulate

    platform = homogeneous_platform(
        args.n, S=1.0, bandwidth_factor=args.bandwidth_factor,
        cLat=args.clat, nLat=args.nlat,
    )
    scheduler = make_scheduler(args.scheduler, args.error)
    model = make_error_model("normal", args.error)
    tracer = Tracer()
    result = simulate(
        platform, args.work, scheduler, model, seed=args.seed,
        engine=args.engine, faults=args.fault, tracer=tracer,
    )
    events = tracer.canonical()
    stem = pathlib.Path(args.out)
    if args.format in ("chrome", "both"):
        path = write_chrome_trace(events, stem.with_suffix(".trace.json"))
        print(f"wrote {path} (open at chrome://tracing or ui.perfetto.dev)")
    if args.format in ("jsonl", "both"):
        path = stem.with_suffix(".jsonl")
        path.write_text(events_to_jsonl(events))
        print(f"wrote {path}")
    kinds: dict[str, int] = {}
    for e in events:
        kinds[e.kind] = kinds.get(e.kind, 0) + 1
    breakdown = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    print(
        f"{scheduler.name}: {len(events)} events ({breakdown}); "
        f"makespan={result.makespan:.3f}s, work_lost={result.work_lost:g}"
    )
    return 0


def _cmd_multijob(args: argparse.Namespace) -> int:
    from repro.experiments.queueing import metrics_to_json, queueing_metrics
    from repro.platform.spec import homogeneous_platform
    from repro.sim.multijob import simulate_stream

    platform = homogeneous_platform(
        args.n, S=1.0, bandwidth_factor=args.bandwidth_factor,
        cLat=args.clat, nLat=args.nlat,
    )
    arrivals = args.arrivals or f"poisson:rate=0.02,jobs=8,work={args.work:g}"
    stream = simulate_stream(
        platform, arrivals, scheduler=args.scheduler, error=args.error,
        seed=args.seed, policy=args.policy, engine=args.engine,
        faults=args.fault, fault_frame=args.fault_frame,
        failure_policy=args.failure_policy,
    )
    print(f"{'job':>4} {'arrival':>10} {'start':>10} {'finish':>10} "
          f"{'wait':>8} {'response':>10} {'slowdown':>9} {'work':>9}")
    for rec in stream.jobs:
        status = f"  FAILED ({rec.failure})" if rec.failed else ""
        print(
            f"{rec.job.job_id:>4} {rec.job.time:>10.2f} {rec.start:>10.2f} "
            f"{rec.finish:>10.2f} {rec.wait:>8.2f} {rec.response:>10.2f} "
            f"{rec.slowdown:>9.3f} {rec.job.work:>9.1f}{status}"
        )
    metrics = queueing_metrics(stream)
    print(
        f"\n{stream.policy} · {stream.scheduler_name} · {stream.num_jobs} jobs: "
        f"horizon={metrics.horizon:.2f}s, mean response={metrics.mean_response:.2f}s, "
        f"mean slowdown={metrics.mean_slowdown:.3f}, "
        f"utilization={metrics.utilization:.3f}, "
        f"peak queue depth={metrics.max_queue_depth}"
    )
    if metrics.work_lost > 0:
        print(f"work lost to faults: {metrics.work_lost:g} units (re-dispatched)")
    if metrics.health is not None:
        h = metrics.health
        print(
            f"stream health [{stream.failure_policy}]: "
            f"{h.jobs_failed} job(s) failed, "
            f"{h.jobs_resubmitted} job(s) resubmitted, "
            f"{h.workers_excluded} worker(s) excluded; "
            f"goodput={h.goodput:.3f} work/s, "
            f"live utilization={h.live_utilization:.3f}"
        )
    if args.json:
        path = pathlib.Path(args.json)
        path.write_text(metrics_to_json(metrics) + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_hetero(args: argparse.Namespace) -> int:
    from repro.core import RUMR, UMR, Factoring
    from repro.experiments.hetero import run_hetero_study

    error = args.error
    study = run_hetero_study(
        {
            "UMR": lambda: UMR(),
            "Factoring": lambda: Factoring(),
            "RUMR": lambda: RUMR(known_error=error),
            "RUMR-weighted": lambda: RUMR(known_error=error, phase2_weighted=True),
        },
        n=args.n,
        error=error,
        repetitions=args.repetitions,
    )
    print(f"{'level':>6} " + " ".join(f"{k:>14}" for k in study.means))
    for i, level in enumerate(study.levels):
        print(
            f"{level:>6.1f} "
            + " ".join(f"{study.means[k][i]:>14.2f}" for k in study.means)
        )
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    import statistics

    from repro.core import RUMR, UMR, AdaptiveRUMR
    from repro.errors.models import make_error_model
    from repro.platform.spec import homogeneous_platform
    from repro.sim.fastsim import simulate_fast

    platform = homogeneous_platform(
        args.n, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1
    )
    w = 1000.0
    print(f"{'error':>6} {'UMR':>10} {'RUMR(oracle)':>13} {'AdaptiveRUMR':>13}")
    for error in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        def mean(sched):
            return statistics.mean(
                simulate_fast(
                    platform, w, sched, make_error_model("normal", error), seed=s
                ).makespan
                for s in range(args.repetitions)
            )
        print(
            f"{error:>6.2f} {mean(UMR()):>10.2f} "
            f"{mean(RUMR(known_error=error)):>13.2f} {mean(AdaptiveRUMR()):>13.2f}"
        )
    return 0


def _cmd_extfigs(args: argparse.Namespace) -> int:
    from repro.experiments.extension_figures import (
        fig_adaptive,
        fig_hetero,
        fig_multiport,
        fig_output_ratio,
    )

    figures = {
        "ext-hetero": fig_hetero(repetitions=args.repetitions),
        "ext-adaptive": fig_adaptive(repetitions=args.repetitions),
        "ext-output": fig_output_ratio(repetitions=args.repetitions),
        "ext-multiport": fig_multiport(repetitions=args.repetitions),
    }
    for name, figure in figures.items():
        content = render_figure(figure)
        if args.out:
            out_dir = pathlib.Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"{name}.txt"
            path.write_text(content)
            print(f"wrote {path}")
        else:
            print(content)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
