"""repro — reproduction of *RUMR: Robust Scheduling for Divisible Workloads*.

Yang Yang and Henri Casanova, HPDC 2003.

The package provides:

* :mod:`repro.core` — the RUMR scheduler and every baseline it is compared
  against (UMR, Multi-Installment, Factoring, FSC, one-round DLT);
* :mod:`repro.sim` — two cross-validated master-worker simulators of the
  paper's platform model (a fast specialized engine and a reference engine
  on the generic DES kernel in :mod:`repro.des`);
* :mod:`repro.platform` / :mod:`repro.errors` — the platform and
  prediction-error models of §3.1 and §4.1;
* :mod:`repro.workloads` — the divisible applications the paper motivates
  (image feature extraction, signal scan, sequence matching);
* :mod:`repro.experiments` — the full evaluation harness regenerating
  Tables 2–3 and Figures 4–7 (also via ``python -m repro``).

Quickstart::

    from repro import RUMR, UMR, Factoring, NormalErrorModel
    from repro import homogeneous_platform, simulate

    platform = homogeneous_platform(20, S=1.0, bandwidth_factor=1.8,
                                    cLat=0.3, nLat=0.1)
    result = simulate(platform, 1000.0, RUMR(known_error=0.3),
                      NormalErrorModel(0.3), seed=0)
    print(result.makespan)
"""

from repro.core import (
    RUMR,
    UMR,
    AdaptiveRUMR,
    EqualSplit,
    Factoring,
    FixedSizeChunking,
    MultiInstallment,
    OneRound,
    Scheduler,
    WeightedFactoring,
    available_schedulers,
    make_scheduler,
    select_workers,
    solve_umr,
)
from repro.errors import (
    DriftingErrorModel,
    ErrorModel,
    NoError,
    NormalErrorModel,
    UniformErrorModel,
    make_error_model,
)
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim import (
    SimResult,
    analytic_makespan,
    render_gantt,
    simulate,
    utilization_profile,
    validate_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveRUMR",
    "DriftingErrorModel",
    "EqualSplit",
    "ErrorModel",
    "Factoring",
    "FixedSizeChunking",
    "MultiInstallment",
    "NoError",
    "NormalErrorModel",
    "OneRound",
    "PlatformSpec",
    "RUMR",
    "Scheduler",
    "SimResult",
    "UMR",
    "UniformErrorModel",
    "WeightedFactoring",
    "WorkerSpec",
    "__version__",
    "analytic_makespan",
    "available_schedulers",
    "homogeneous_platform",
    "make_error_model",
    "make_scheduler",
    "render_gantt",
    "select_workers",
    "simulate",
    "solve_umr",
    "utilization_profile",
    "validate_schedule",
]
