"""Multi-Installment (MI) divisible-load scheduling.

The classic multi-installment strategy (Bharadwaj, Ghose, Mani &
Robertazzi, *Scheduling Divisible Loads in Parallel and Distributed
Systems*, ch. 10) dispatches ``x`` installments to each of the ``N``
workers under an idealized platform model *without latencies*:
transferring ``a`` units takes ``a/B_i`` and computing them takes
``a/S_i``; workers have communication front-ends.

The installment sizes are fixed by three families of conditions:

1. **No idling** — worker ``i`` finishes receiving installment ``j+1``
   exactly when it finishes computing installment ``j``;
2. **Simultaneous completion** — all workers finish their last
   installment at the same instant (the classic DLT optimality principle);
3. **Conservation** — the installments sum to the total workload.

With the master dispatching round-major (installment 0 to workers
``0..N-1``, then installment 1, …) these are ``N·x`` linear equations in
the ``N·x`` unknown sizes, solved here exactly with NumPy.  ``x = 1``
degenerates to the classic single-installment schedule with decreasing
geometric chunks.

Because MI's model ignores ``cLat``/``nLat``/``tLat``, its schedules are
increasingly wrong as latencies grow — this is precisely the gap UMR was
built to close, and the reason MI-x needs the round count ``x`` supplied
by hand (the paper instantiates MI-1 … MI-4).

For some platform/round combinations the no-idle equalities force
*negative* sizes (the model is infeasible for that ``x``).  The solver
then retries with fewer rounds and reports the round count actually used
(:attr:`MISchedule.rounds_used`).
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.core.base import Dispatch, Scheduler, StaticPlanSource
from repro.core.chunks import ChunkPlan, PlannedChunk
from repro.platform.spec import PlatformSpec

__all__ = ["MultiInstallment", "MISchedule", "solve_multi_installment", "MIInfeasibleError"]


class MIInfeasibleError(ValueError):
    """The no-idle system has no non-negative solution for any round count."""


@dataclasses.dataclass(frozen=True)
class MISchedule:
    """A solved multi-installment schedule.

    ``sizes[j][i]`` is the load worker ``i`` receives in installment ``j``.
    """

    sizes: tuple[tuple[float, ...], ...]
    rounds_requested: int
    rounds_used: int

    @property
    def total_work(self) -> float:
        """Sum of all installments."""
        return float(sum(sum(row) for row in self.sizes))

    def to_chunk_plan(self) -> ChunkPlan:
        """Round-major dispatch order."""
        return ChunkPlan(
            PlannedChunk(worker=i, size=s, round_index=j)
            for j, row in enumerate(self.sizes)
            for i, s in enumerate(row)
            if s > 0.0
        )


def _solve_exact(platform: PlatformSpec, total_work: float, rounds: int) -> np.ndarray | None:
    """Solve the MI linear system; None when any size is negative."""
    n = platform.N
    x = rounds
    m = n * x  # unknowns a[j*n + i]
    A = np.zeros((m, m))
    b = np.zeros(m)
    inv_b = np.array([0.0 if np.isinf(w.B) else 1.0 / w.B for w in platform])
    inv_s = np.array([1.0 / w.S for w in platform])

    def var(j: int, i: int) -> int:
        return j * n + i

    row = 0
    # recv_end(j, i) = sum of a[j', i']/B_{i'} over dispatch order up to (j, i).
    # comp_end(j, i) = recv_end(0, i) + sum_{j'<=j} a[j', i]/S_i   (no idling).
    # (1) No idling: recv_end(j, i) == comp_end(j-1, i)  for j >= 1.
    for j in range(1, x):
        for i in range(n):
            coeff = np.zeros(m)
            # recv_end(j, i): all chunks with dispatch position <= (j, i)
            for jj in range(j + 1):
                last_i = i if jj == j else n - 1
                for ii in range(last_i + 1):
                    coeff[var(jj, ii)] += inv_b[ii]
            # minus comp_end(j-1, i)
            for jj in range(j):
                coeff[var(jj, i)] -= inv_s[i]
            # minus recv_end(0, i)
            for ii in range(i + 1):
                coeff[var(0, ii)] -= inv_b[ii]
            A[row] = coeff
            b[row] = 0.0
            row += 1
    # (2) Simultaneous completion: comp_end(x-1, i) == comp_end(x-1, 0).
    for i in range(1, n):
        coeff = np.zeros(m)
        for ii in range(i + 1):
            coeff[var(0, ii)] += inv_b[ii]
        for jj in range(x):
            coeff[var(jj, i)] += inv_s[i]
        coeff[var(0, 0)] -= inv_b[0]
        for jj in range(x):
            coeff[var(jj, 0)] -= inv_s[0]
        A[row] = coeff
        b[row] = 0.0
        row += 1
    # (3) Conservation.
    A[row] = 1.0
    b[row] = total_work
    row += 1
    assert row == m

    try:
        sol = np.linalg.solve(A, b)
    except np.linalg.LinAlgError:
        return None
    if np.any(sol < -1e-9 * total_work):
        return None
    sol = np.clip(sol, 0.0, None)
    # Renormalize the numerical residual onto the last installment row.
    residual = total_work - sol.sum()
    sol[-n:] += residual / n
    if np.any(sol < 0):
        return None
    return sol.reshape(x, n)


@functools.lru_cache(maxsize=16384)
def solve_multi_installment(
    platform: PlatformSpec, total_work: float, rounds: int
) -> MISchedule:
    """Solve MI-``rounds``; falls back to fewer rounds when infeasible.

    Memoized: schedules are immutable and depend only on the hashable
    arguments, while the harness re-solves each configuration for every
    error level and repetition.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not total_work > 0:
        raise ValueError(f"total_work must be > 0, got {total_work}")
    for x in range(rounds, 0, -1):
        sol = _solve_exact(platform, total_work, x)
        if sol is not None:
            sizes = tuple(tuple(float(v) for v in rowvals) for rowvals in sol)
            return MISchedule(sizes=sizes, rounds_requested=rounds, rounds_used=x)
    raise MIInfeasibleError(
        f"multi-installment infeasible for N={platform.N} even with a single round"
    )


class MultiInstallment(Scheduler):
    """MI-x scheduler (see module docstring).

    Parameters
    ----------
    rounds:
        The installment count ``x``.  The paper evaluates x = 1 … 4.
    """

    def __init__(self, rounds: int):
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self.name = f"MI-{rounds}"

    is_static = True
    batch_supports_faults = True

    def schedule(self, platform: PlatformSpec, total_work: float) -> MISchedule:
        """Solve and return the full installment table."""
        return solve_multi_installment(platform, total_work, self.rounds)

    def static_plan(self, platform: PlatformSpec, total_work: float) -> ChunkPlan:
        return self.schedule(platform, total_work).to_chunk_plan()

    def create_source(self, platform: PlatformSpec, total_work: float) -> StaticPlanSource:
        schedule = self.schedule(platform, total_work)
        dispatches = [
            Dispatch(worker=c.worker, size=c.size, phase=f"mi-round{c.round_index}")
            for c in schedule.to_chunk_plan()
        ]
        return StaticPlanSource(dispatches)
