"""Weighted Factoring: heterogeneity-aware decreasing chunks.

Plain Factoring hands every worker the same ``remaining/(factor·N)`` chunk
regardless of its speed — on heterogeneous platforms the slow workers then
gate every batch.  Weighted Factoring (after Flynn Hummel et al.'s
follow-up to [14], adapted to the paper's platform model) sizes the chunk
for worker ``i`` proportionally to its compute rate:

    chunk_i = (remaining_now / factor) · S_i / Σ S_j

so every worker's chunk costs roughly the same *time*.  The size is
computed from the remaining workload at dispatch time (continuous decay)
rather than frozen per batch: a fixed per-batch allocation would force a
barrier — the master idling although a fast worker is starved, just
because the batch's slow-worker share is still outstanding — which
measures ~10% worse than plain factoring even on homogeneous platforms.
The chunk floor is weighted the same way (``min_chunk·S_i·N/ΣS``), keeping
its time semantics.

On homogeneous platforms the behaviour coincides with plain Factoring up
to the batch-versus-continuous decay profile (mean makespans agree within
a couple of percent; verified by tests); on heterogeneous platforms it is
strictly better.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import WAIT, Dispatch, DispatchSource, MasterView, Scheduler, Wait
from repro.core.lockstep import (
    DISPATCH,
    DONE,
    PAD_PENDING,
    WAIT_FOR_COMPLETION,
    KernelSpec,
    LockstepKernel,
    expand_rows,
    starved_argmin,
)
from repro.platform.spec import PlatformSpec

__all__ = [
    "WeightedFactoring",
    "WeightedFactoringSource",
    "WeightedFactoringKernel",
    "WeightedFactoringKernelSpec",
]


class WeightedFactoringSource(DispatchSource):
    """Per-run state: starved-first dispatch with speed-weighted sizes."""

    def __init__(
        self,
        platform: PlatformSpec,
        total_work: float,
        factor: float,
        min_chunk: float,
        phase: str = "weighted-factoring",
        lookahead: int = 1,
    ):
        if factor <= 1.0:
            raise ValueError(f"factoring factor must be > 1, got {factor}")
        if min_chunk < 0:
            raise ValueError(f"min_chunk must be >= 0, got {min_chunk}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self._n = platform.N
        s_tot = platform.total_compute_rate()
        self._weights = [w.S / s_tot for w in platform]
        self._remaining = total_work
        self._epsilon = 1e-12 * max(total_work, 1.0)
        self._factor = factor
        self._min_chunk = min_chunk
        self._phase = phase
        self._lookahead = lookahead
        self._loss_cursor = 0

    @property
    def remaining(self) -> float:
        """Workload not yet dispatched."""
        return self._remaining

    def _size_for(self, worker: int, weight: float, n_live: int) -> float:
        # The batch-equivalent share is remaining/factor split over the
        # live platform in proportion to speed; for worker i that is
        # remaining/factor * w_i (live weights sum to 1).
        share = (self._remaining / self._factor) * weight
        floor = self._min_chunk * weight * n_live
        return min(max(share, floor), self._remaining)

    def _absorb_losses(self, view: MasterView) -> None:
        losses = view.observed_losses()
        while self._loss_cursor < len(losses):
            self._remaining += losses[self._loss_cursor].size
            self._loss_cursor += 1

    def next_dispatch(self, view: MasterView) -> "Dispatch | Wait | None":
        # Recovery path mirrors FactoringSource: absorb announced losses,
        # drop observed-crashed workers from the candidate set, and
        # renormalize the speed weights over the survivors.
        crashed: tuple[int, ...] = ()
        if view.faults_possible:
            self._absorb_losses(view)
            crashed = view.crashed_workers()
        if self._remaining <= self._epsilon:
            if view.faults_possible and any(
                view.pending_chunks(i) for i in range(self._n)
            ):
                return WAIT
            return None
        if crashed:
            crashed_set = set(crashed)
            live = [i for i in range(self._n) if i not in crashed_set]
            if not live:
                return None
            candidates = [
                (view.pending_chunks(i), view.pending_work(i), i) for i in live
            ]
            pending, _, worker = min(candidates)
            if pending >= self._lookahead:
                return WAIT
            live_weight = sum(self._weights[i] for i in live)
            weight = self._weights[worker] / live_weight
            size = self._size_for(worker, weight, len(live))
        else:
            candidates = [
                (view.pending_chunks(i), view.pending_work(i), i) for i in range(self._n)
            ]
            pending, _, worker = min(candidates)
            if pending >= self._lookahead:
                return WAIT
            size = self._size_for(worker, self._weights[worker], self._n)
        self._remaining = max(0.0, self._remaining - size)
        return Dispatch(worker=worker, size=size, phase=self._phase)


@dataclasses.dataclass(frozen=True)
class WeightedFactoringKernelSpec(KernelSpec):
    """One cell's :class:`WeightedFactoringSource` parameters, lockstep form."""

    n: int = 0
    total_work: float = 0.0
    factor: float = 2.0
    min_chunk: float = 1.0
    lookahead: int = 1
    weights: tuple = ()

    group_key = ("weighted-factoring",)
    handles_crashes = True

    def make_kernel(self, specs, reps, n_max):
        return WeightedFactoringKernel(specs, reps, n_max)


class WeightedFactoringKernel(LockstepKernel):
    """Lockstep rows of weighted-factoring state.

    The size rule keeps the scalar source's exact evaluation order:
    ``(remaining / factor) · w_i``, ``min_chunk · w_i · n``,
    ``min(max(share, floor), remaining)``.  Padded worker slots carry
    weight 0 and are never selected (the caller reports them as
    maximally pending).

    Crash recovery mirrors :class:`WeightedFactoringSource` bit for bit:
    observed losses are re-absorbed into the pool *before* the finished
    test, observed-crashed workers are excluded from the starved-worker
    scan (their pending count is forced to the pad sentinel), the speed
    weights are renormalized over the survivors — summed worker 0..n-1
    like the scalar ``sum`` so the float is identical — and a row whose
    workers all crashed finishes immediately.  Non-crash fault rows only
    need the scalar drain rule: once the pool is empty, wait out the
    pending set instead of finishing.
    """

    def __init__(self, specs, reps, n_max):
        rows = int(np.sum(reps))
        self._rows = np.arange(rows)
        self._n_float = expand_rows([float(s.n) for s in specs], reps, dtype=float)
        self._remaining = expand_rows([s.total_work for s in specs], reps, dtype=float)
        self._epsilon = np.array(
            [1e-12 * max(s.total_work, 1.0) for s in specs]
        ).repeat(reps)
        self._factor = expand_rows([s.factor for s in specs], reps, dtype=float)
        self._min_chunk = expand_rows([s.min_chunk for s in specs], reps, dtype=float)
        self._lookahead = expand_rows([s.lookahead for s in specs], reps, dtype=np.int64)
        padded = np.zeros((len(specs), n_max))
        for i, s in enumerate(specs):
            padded[i, : s.n] = s.weights
        self._weights = np.repeat(padded, reps, axis=0)

    def compact(self, keep) -> None:
        self._rows = np.arange(keep.size)
        self._n_float = self._n_float[keep]
        self._remaining = self._remaining[keep]
        self._epsilon = self._epsilon[keep]
        self._factor = self._factor[keep]
        self._min_chunk = self._min_chunk[keep]
        self._lookahead = self._lookahead[keep]
        self._weights = self._weights[keep]

    def decide(self, counts, works, action, worker, size, mask=None, ctx=None):
        if ctx is not None:
            # Observed losses re-enter the pool before anything else, in
            # the scalar observation order (the engine delivers them
            # per-row sorted by (time, chunk_index), and += left-folds
            # exactly like the scalar cursor loop).
            for r, s in ctx.losses:
                self._remaining[r] += s
        fin = self._remaining <= self._epsilon
        if mask is None:
            live = ~fin
        else:
            live = mask & ~fin
            fin = mask & fin
        drain = None
        if ctx is not None and ctx.fault_rows is not None:
            pending_any = ((counts > 0) & (counts < PAD_PENDING)).any(axis=1)
            drain = fin & ctx.fault_rows & pending_any
            fin = fin & ~drain
        counts_eff = counts
        crashed = ctx.crashed if ctx is not None else None
        has_crash = None
        n_live = None
        if crashed is not None and crashed.any():
            # Crashed workers leave the candidate set exactly like the
            # scalar live-list scan: a pad-sized pending count can never
            # win the argmin nor look below the lookahead.
            counts_eff = np.where(crashed, PAD_PENDING, counts)
            n_live = self._n_float - crashed.sum(axis=1)
            has_crash = live & crashed.any(axis=1)
            dead = has_crash & (n_live <= 0.0)
            if dead.any():
                live = live & ~dead
                has_crash = has_crash & ~dead
                action[dead] = DONE
        w = starved_argmin(counts_eff, works)
        wait = live & (counts_eff[self._rows, w] >= self._lookahead)
        disp = live & ~wait
        if drain is not None:
            wait = wait | drain
        action[fin] = DONE
        action[wait] = WAIT_FOR_COMPLETION
        action[disp] = DISPATCH
        worker[disp] = w[disp]
        wgt = self._weights[self._rows, w]
        n_eff = self._n_float
        if has_crash is not None and has_crash.any():
            # live_weight = sum of surviving weights, accumulated worker
            # 0..n-1 — the same left fold (from +0.0) as the scalar sum,
            # so the renormalized weight matches bitwise.  Crashed and
            # padded slots contribute an exact +0.0.
            lw = np.zeros(len(self._rows))
            for j in range(self._weights.shape[1]):
                lw = lw + np.where(crashed[:, j], 0.0, self._weights[:, j])
            lw = np.where(lw > 0.0, lw, 1.0)
            wgt = np.where(has_crash, wgt / lw, wgt)
            n_eff = np.where(has_crash, n_live, self._n_float)
        share = (self._remaining / self._factor) * wgt
        floor = self._min_chunk * wgt * n_eff
        sz = np.minimum(np.maximum(share, floor), self._remaining)
        size[disp] = sz[disp]
        np.copyto(
            self._remaining, np.maximum(0.0, self._remaining - sz), where=disp
        )


class WeightedFactoring(Scheduler):
    """Weighted Factoring scheduler (see module docstring)."""

    is_batch_dynamic = True
    batch_supports_faults = True

    def __init__(self, factor: float = 2.0, min_chunk: float = 1.0):
        if factor <= 1.0:
            raise ValueError(f"factoring factor must be > 1, got {factor}")
        self.factor = factor
        self.min_chunk = min_chunk
        self.name = "WeightedFactoring"

    def create_source(self, platform: PlatformSpec, total_work: float) -> WeightedFactoringSource:
        return WeightedFactoringSource(
            platform=platform,
            total_work=total_work,
            factor=self.factor,
            min_chunk=self.min_chunk,
        )

    def batch_kernel(
        self, platform: PlatformSpec, total_work: float
    ) -> WeightedFactoringKernelSpec:
        s_tot = platform.total_compute_rate()
        return WeightedFactoringKernelSpec(
            n=platform.N,
            total_work=total_work,
            factor=self.factor,
            min_chunk=self.min_chunk,
            lookahead=1,
            weights=tuple(w.S / s_tot for w in platform),
        )
