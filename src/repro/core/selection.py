"""Resource selection for multi-round divisible-load scheduling.

Multi-round schedules with increasing chunks require the master's link to
outpace the aggregate consumption of the selected workers:
``Σ S_i/B_i < 1``.  When a platform violates this, the UMR papers
prescribe using only a subset of workers — the extra processors could not
be kept busy anyway.

:func:`select_workers` implements the greedy selection the paper alludes
to ("an effective resource selection technique"): consider workers in
decreasing order of a desirability score and keep adding them while the
utilization condition (with a configurable safety margin) still holds.
The default score is the worker's bandwidth (the dispatch bottleneck),
with compute rate as a tie-breaker.
"""

from __future__ import annotations

import math
import typing

from repro.platform.spec import PlatformSpec

__all__ = ["select_workers"]


def select_workers(
    platform: PlatformSpec,
    margin: float = 1.0,
    score: "typing.Callable[[int, PlatformSpec], float] | None" = None,
) -> list[int]:
    """Pick a worker subset satisfying ``Σ S_i/B_i < margin``.

    Parameters
    ----------
    platform:
        The candidate platform.
    margin:
        Right-hand side of the utilization condition (1.0 = the exact
        full-utilization bound; smaller values leave headroom).
    score:
        Desirability function ``(index, platform) -> float`` (higher is
        better).  Defaults to ``B_i`` with ``S_i`` as tie-breaker.

    Returns
    -------
    list[int]
        Selected worker indices in *original platform order* (so the
        calling scheduler's dispatch order is preserved).  At least one
        worker is always selected — the single best one even if it alone
        violates the condition (some work must happen somewhere).
    """
    if margin <= 0:
        raise ValueError(f"margin must be > 0, got {margin}")
    n = platform.N

    def default_score(i: int, p: PlatformSpec) -> float:
        w = p[i]
        b = w.B if not math.isinf(w.B) else float("1e300")
        return b + 1e-9 * w.S

    scorer = score or default_score
    order = sorted(range(n), key=lambda i: (-scorer(i, platform), i))

    chosen: list[int] = []
    used = 0.0
    for i in order:
        w = platform[i]
        cost = 0.0 if math.isinf(w.B) else w.S / w.B
        if not chosen:
            chosen.append(i)
            used += cost
            continue
        if used + cost < margin:
            chosen.append(i)
            used += cost
    return sorted(chosen)
