"""The scheduler / engine contract.

Both simulation engines (:mod:`repro.sim.fastsim` and the DES-based
:mod:`repro.sim.engine`) drive schedulers through the same interface:

1. A :class:`Scheduler` is a configured, reusable algorithm object.  Calling
   :meth:`Scheduler.create_source` binds it to one run (platform + total
   workload) and returns a fresh stateful :class:`DispatchSource`.
2. Whenever the master's serialized link is free, the engine calls
   :meth:`DispatchSource.next_dispatch` with a :class:`MasterView` of the
   *observable* state (current time, what has been sent, which completions
   have been announced).  The source answers with

   * a :class:`Dispatch` — send ``size`` units to ``worker`` now;
   * :data:`WAIT` — do nothing until the next completion is announced
     (self-scheduled algorithms block here when no worker is requesting);
   * ``None`` — the whole workload has been dispatched.

The view deliberately exposes only information a real master would have:
its own dispatch history and completion notifications with timestamps in
the past.  It never exposes in-flight durations, so dynamic schedulers
cannot peek at future randomness.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.platform.spec import PlatformSpec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.chunks import ChunkPlan

__all__ = [
    "CompletionNote",
    "LossNote",
    "Dispatch",
    "WAIT",
    "Wait",
    "MasterView",
    "DispatchSource",
    "StaticPlanSource",
    "Scheduler",
    "DeadlockError",
]


class DeadlockError(RuntimeError):
    """A source WAITed while nothing was pending — the run cannot progress."""


@dataclasses.dataclass(frozen=True, slots=True, order=True)
class CompletionNote:
    """One observed completion: when which chunk finished on which worker."""

    time: float
    chunk_index: int
    worker: int
    size: float


@dataclasses.dataclass(frozen=True, slots=True, order=True)
class LossNote:
    """One observed chunk loss: a crashed worker's chunk returned to the pool.

    The master observes a loss at ``max(crash_time, arrival)``: chunks
    already queued on the worker are reported when its crash is detected,
    chunks still in flight when their delivery fails.  Lost chunks leave
    the pending set at :attr:`time`, exactly like completions, but deliver
    no work — recovery-aware sources re-add :attr:`size` to their
    remaining pool.
    """

    time: float
    chunk_index: int
    worker: int
    size: float


@dataclasses.dataclass(frozen=True, slots=True)
class Dispatch:
    """An instruction to send ``size`` workload units to ``worker`` now."""

    worker: int
    size: float
    phase: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"dispatch size must be > 0, got {self.size}")


class Wait:
    """Singleton sentinel: 'ask me again after the next completion'."""

    _instance: "Wait | None" = None

    def __new__(cls) -> "Wait":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "WAIT"


#: The sentinel instance sources return to block on the next completion.
WAIT = Wait()


class MasterView:
    """Observable master state handed to dispatch sources.

    Engines implement the two abstract accessors; everything else is
    derived.  All quantities are as *observed at* :attr:`now`: a chunk
    counts as pending from the moment it is dispatched until its completion
    notification timestamp is ``<= now``.
    """

    @property
    def now(self) -> float:
        """Current decision time."""
        raise NotImplementedError

    @property
    def num_workers(self) -> int:
        """Number of workers on the platform."""
        raise NotImplementedError

    def pending_chunks(self, worker: int) -> int:
        """Chunks dispatched to ``worker`` and not yet observed complete."""
        raise NotImplementedError

    def pending_work(self, worker: int) -> float:
        """Total size of those pending chunks."""
        raise NotImplementedError

    def observed_completions(self) -> "tuple[CompletionNote, ...]":
        """All completion announcements observed so far.

        Sorted by ``(time, chunk_index)`` — identical in both engines
        regardless of internal announcement mechanics.  This is the raw
        material for *online* error estimation (the paper's future-work
        APST integration): consecutive completions of a never-idle worker
        bound the effective compute duration of each chunk.
        """
        raise NotImplementedError

    # -- fault observability ------------------------------------------------
    #
    # Defaults describe a fault-free world, so views (and tests) that
    # predate fault injection keep working unchanged.  Engines running with
    # a fault schedule override all three.

    @property
    def faults_possible(self) -> bool:
        """Whether this run may experience worker faults at all.

        Recovery-aware sources only pay the bookkeeping (loss absorption,
        crash filtering, end-of-work WAITs) when this is true, keeping the
        fault-free decision arithmetic bit-identical to before.
        """
        return False

    def crashed_workers(self) -> "tuple[int, ...]":
        """Workers whose crash the master has detected (``crash <= now``)."""
        return ()

    def observed_losses(self) -> "tuple[LossNote, ...]":
        """All loss announcements observed so far, sorted like completions.

        Sorted by ``(time, chunk_index)``; append-only over the run, so
        sources may keep a cursor into it.
        """
        return ()

    # -- derived helpers ----------------------------------------------------
    def is_idle(self, worker: int) -> bool:
        """True when the worker has nothing dispatched-and-unfinished."""
        return self.pending_chunks(worker) == 0

    def idle_workers(self) -> list[int]:
        """Indices of idle workers, ascending."""
        return [i for i in range(self.num_workers) if self.is_idle(i)]

    def least_loaded_worker(self) -> int:
        """Worker with the least pending work (ties: fewest chunks, lowest index)."""
        return min(
            range(self.num_workers),
            key=lambda i: (self.pending_work(i), self.pending_chunks(i), i),
        )


class DispatchSource:
    """Stateful per-run decision maker (see module docstring)."""

    def next_dispatch(self, view: MasterView) -> "Dispatch | Wait | None":
        raise NotImplementedError


class StaticPlanSource(DispatchSource):
    """Replays a precomputed ordered plan as fast as the link allows."""

    def __init__(self, plan: typing.Iterable[Dispatch]):
        self._plan = list(plan)
        self._cursor = 0

    @property
    def remaining_dispatches(self) -> int:
        """Number of plan entries not yet handed to the engine."""
        return len(self._plan) - self._cursor

    def next_dispatch(self, view: MasterView) -> "Dispatch | None":
        if self._cursor >= len(self._plan):
            return None
        dispatch = self._plan[self._cursor]
        self._cursor += 1
        return dispatch


class Scheduler:
    """A configured scheduling algorithm.

    Subclasses must implement :meth:`create_source` and set :attr:`name`.
    Scheduler objects hold only configuration — all per-run state lives in
    the source — so one scheduler instance can be reused across thousands
    of simulations.
    """

    #: Human-readable algorithm name (used in reports and plots).
    name: str = "scheduler"

    #: Whether the dispatch sequence is fixed before the run starts
    #: (independent of observed completions *and* of the error magnitude).
    #: Static schedulers additionally implement :meth:`static_plan` and are
    #: eligible for the vectorized batch engine
    #: (:func:`repro.sim.batch.simulate_static_batch`); dynamic schedulers
    #: go through a scalar engine — or, when they also declare
    #: :attr:`is_batch_dynamic`, through the lockstep batch engine.
    is_static: bool = False

    #: Whether the scheduler's *decision rule* is pure arithmetic over
    #: master-observable state, so many runs can advance in lockstep as
    #: array operations (:func:`repro.sim.dynbatch.simulate_dynamic_batch`).
    #: Such schedulers additionally implement :meth:`batch_kernel`.  The
    #: lockstep trajectory must match the scalar engine bit-for-bit when
    #: fed the same perturbation factors.
    is_batch_dynamic: bool = False

    #: Whether the batch engines (static or lockstep-dynamic) implement the
    #: fault semantics for this scheduler.  The sweep runner only routes a
    #: fault cell through a batch path when this is true; otherwise the
    #: cell falls back to the scalar engine.  Every in-tree scheduler now
    #: opts in — the static grid pass replays plans obliviously, and the
    #: lockstep engine either handles crashes in-kernel (Factoring, FSC)
    #: or defers crash rows to the scalar engine internally — but the
    #: default stays ``False`` so a new scheduler must make the claim
    #: explicitly, mirroring :attr:`is_batch_dynamic`.
    batch_supports_faults: bool = False

    def create_source(self, platform: PlatformSpec, total_work: float) -> DispatchSource:
        """Bind to one run and return a fresh dispatch source."""
        raise NotImplementedError

    def static_plan(self, platform: PlatformSpec, total_work: float) -> "ChunkPlan":
        """The fixed dispatch sequence of a static scheduler.

        Only meaningful when :attr:`is_static` is true; the default raises.
        The plan depends on nothing but ``(platform, total_work)``, so
        callers may solve it once and reuse it across error levels and
        repetitions (the sweep fast path does exactly that).
        """
        raise NotImplementedError(f"{self.name} is not a static scheduler")

    def batch_kernel(self, platform: PlatformSpec, total_work: float):
        """The lockstep decision-rule spec of a batch-dynamic scheduler.

        Only meaningful when :attr:`is_batch_dynamic` is true; the default
        raises.  Returns a :class:`repro.core.lockstep.KernelSpec` bound
        to ``(platform, total_work)`` — and, through the scheduler's own
        configuration, to the cell's error magnitude where the algorithm
        consumes it (RUMR's phase split).  Specs with equal ``group_key``
        can be merged into one kernel spanning many cells.
        """
        raise NotImplementedError(f"{self.name} has no lockstep batch kernel")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
