"""Factoring self-scheduling (Flynn Hummel, CACM 1992).

Factoring allocates work in *batches*: each batch hands every worker one
chunk of ``remaining / (factor · N)`` units (the canonical factor is 2, so
half the remaining work is scheduled per batch), then the next batch is
computed from what is left.  Chunks therefore *decrease* geometrically,
which bounds the absolute uncertainty of the final chunks — the property
that makes the strategy robust to prediction errors.

In the paper's master-worker setting the algorithm is *self-scheduled*:
a worker receives its next chunk only when the master has observed it go
idle, so the dispatch order adapts to effective speeds.  That greedy
behaviour is also why Factoring overlaps communication and computation
poorly at start-up (motivating RUMR's phase 1).

Chunk sizes are bounded below by ``min_chunk`` (default: one workload
unit — the indivisible task of the original, integral formulation) so the
tail does not degenerate into infinitely many vanishing transfers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import WAIT, Dispatch, DispatchSource, MasterView, Scheduler, Wait
from repro.core.lockstep import (
    DISPATCH,
    DONE,
    PAD_PENDING,
    WAIT_FOR_COMPLETION,
    KernelSpec,
    LockstepKernel,
    expand_rows,
    starved_argmin,
)
from repro.platform.spec import PlatformSpec

__all__ = ["Factoring", "FactoringSource", "FactoringKernel", "FactoringKernelSpec"]


class FactoringSource(DispatchSource):
    """Per-run state of the factoring self-scheduler.

    The batch rule: while work remains, produce ``N`` chunks of size
    ``max(min_chunk, remaining_at_batch_start / (factor · N))`` (capped by
    what is actually left).

    ``lookahead`` controls how far the master may run ahead of worker
    demand: with the classic self-scheduling value 1, a chunk is only sent
    to an *idle* worker — faithful to Hummel's model, but on a platform
    with transfer costs the worker then idles for the whole ``nLat + c/B``
    transfer (exactly the overlap weakness the paper attributes to
    factoring).  With ``lookahead = 2`` the master keeps one chunk
    buffered per worker (double-buffering), restoring overlap while the
    chunk-size rule stays adaptive; RUMR's phase 2 uses this setting.
    """

    def __init__(
        self,
        n: int,
        total_work: float,
        factor: float,
        min_chunk: float,
        phase: str,
        lookahead: int = 1,
    ):
        if factor <= 1.0:
            raise ValueError(f"factoring factor must be > 1, got {factor}")
        if min_chunk < 0:
            raise ValueError(f"min_chunk must be >= 0, got {min_chunk}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self._n = n
        self._remaining = total_work
        self._epsilon = 1e-12 * max(total_work, 1.0)
        self._factor = factor
        self._min_chunk = min_chunk
        self._phase = phase
        self._lookahead = lookahead
        self._batch_left = 0  # chunks still to issue in the current batch
        self._batch_size = 0.0
        # Recovery state, touched only when the run's view reports
        # faults_possible: a cursor into view.observed_losses() (lost work
        # re-enters the remaining pool exactly once).
        self._loss_cursor = 0

    @property
    def remaining(self) -> float:
        """Workload not yet dispatched."""
        return self._remaining

    def _next_size(self, n_live: int) -> float:
        if self._batch_left == 0:
            self._batch_size = max(
                self._remaining / (self._factor * n_live), self._min_chunk
            )
            self._batch_left = n_live
        self._batch_left -= 1
        return min(self._batch_size, self._remaining)

    def _absorb_losses(self, view: MasterView) -> None:
        losses = view.observed_losses()
        while self._loss_cursor < len(losses):
            self._remaining += losses[self._loss_cursor].size
            self._loss_cursor += 1

    def next_dispatch(self, view: MasterView) -> "Dispatch | Wait | None":
        # Recovery path (fault runs only): lost chunks rejoin the pool, and
        # workers whose crash the master has observed stop being candidates
        # — their batch share flows to the survivors because the batch rule
        # divides by the live count.
        crashed: tuple[int, ...] = ()
        if view.faults_possible:
            self._absorb_losses(view)
            crashed = view.crashed_workers()
        if self._remaining <= self._epsilon:
            if view.faults_possible and any(
                view.pending_chunks(i) for i in range(self._n)
            ):
                # Outstanding chunks may yet be lost and need re-dispatch;
                # wake on each resolution until the pending set drains.
                return WAIT
            return None
        # Serve the most starved worker (fewest buffered chunks, then least
        # pending work, then lowest index for determinism) — but only while
        # it has fewer than `lookahead` chunks outstanding.
        if crashed:
            crashed_set = set(crashed)
            live = [i for i in range(self._n) if i not in crashed_set]
            if not live:
                return None  # every worker is gone; the rest is undeliverable
            candidates = [
                (view.pending_chunks(i), view.pending_work(i), i) for i in live
            ]
            n_live = len(live)
        else:
            candidates = [
                (view.pending_chunks(i), view.pending_work(i), i) for i in range(self._n)
            ]
            n_live = self._n
        pending, _, worker = min(candidates)
        if pending >= self._lookahead:
            return WAIT
        size = self._next_size(n_live)
        self._remaining = max(0.0, self._remaining - size)
        return Dispatch(worker=worker, size=size, phase=self._phase)


@dataclasses.dataclass(frozen=True)
class FactoringKernelSpec(KernelSpec):
    """One cell's :class:`FactoringSource` parameters, lockstep form.

    ``total_work = 0`` is a valid degenerate spec whose rows are DONE
    from the first decision — RUMR uses it for a skipped phase 2.
    """

    n: int = 0
    total_work: float = 0.0
    factor: float = 2.0
    min_chunk: float = 1.0
    lookahead: int = 1

    group_key = ("factoring",)
    handles_crashes = True

    def make_kernel(self, specs, reps, n_max):
        return FactoringKernel(specs, reps, n_max)


class FactoringKernel(LockstepKernel):
    """Lockstep rows of factoring state (see :class:`FactoringSource`).

    Every formula is evaluated with the scalar source's exact operation
    order — ``remaining / (factor · n)``, ``max(·, min_chunk)``,
    ``min(batch_size, remaining)``, ``max(0, remaining − size)`` — so a
    row's dispatch sequence is bit-identical to the scalar run's.

    Fault rows follow :class:`FactoringSource`'s recovery path through
    the step context: newly observed losses rejoin the remaining pool in
    observation order, observed-crashed workers drop out of the starved
    argmin (their batch share flows to survivors because the batch rule
    divides by the live count), a drained pool waits while chunks are
    still outstanding (they may yet be lost and need re-dispatch), and a
    row whose workers have all crashed finishes undeliverable.
    """

    def __init__(self, specs, reps, n_max):
        self._rows = np.arange(int(np.sum(reps)))
        self._n = expand_rows([s.n for s in specs], reps, dtype=np.int64)
        self._n_float = self._n.astype(float)
        self._remaining = expand_rows([s.total_work for s in specs], reps, dtype=float)
        self._epsilon = np.array(
            [1e-12 * max(s.total_work, 1.0) for s in specs]
        ).repeat(reps)
        self._factor = expand_rows([s.factor for s in specs], reps, dtype=float)
        self._factor_n = expand_rows(
            [s.factor * s.n for s in specs], reps, dtype=float
        )
        self._min_chunk = expand_rows([s.min_chunk for s in specs], reps, dtype=float)
        self._lookahead = expand_rows([s.lookahead for s in specs], reps, dtype=np.int64)
        self._batch_left = np.zeros(len(self._rows), dtype=np.int64)
        self._batch_size = np.zeros(len(self._rows))

    def compact(self, keep) -> None:
        self._rows = np.arange(keep.size)
        self._n = self._n[keep]
        self._n_float = self._n_float[keep]
        self._remaining = self._remaining[keep]
        self._epsilon = self._epsilon[keep]
        self._factor = self._factor[keep]
        self._factor_n = self._factor_n[keep]
        self._min_chunk = self._min_chunk[keep]
        self._lookahead = self._lookahead[keep]
        self._batch_left = self._batch_left[keep]
        self._batch_size = self._batch_size[keep]

    def activate_row(self, row: int, total_work: float, min_chunk: float) -> None:
        """Re-arm one row as a fresh source over ``total_work``.

        AdaptiveRUMR builds its kernel around degenerate zero-workload
        factoring rows and calls this at the moment a row's online
        estimate triggers the switch — the lockstep equivalent of
        constructing a new :class:`FactoringSource` mid-run.
        """
        self._remaining[row] = total_work
        self._epsilon[row] = 1e-12 * max(total_work, 1.0)
        self._min_chunk[row] = min_chunk
        self._batch_left[row] = 0
        self._batch_size[row] = 0.0

    def absorb_loss(self, row: int, size: float) -> None:
        """Return one lost chunk to a row's pool (scalar ``+=`` order).

        Composite kernels that withhold losses from the step context —
        AdaptiveRUMR's plan phase ignores them until its switch — replay
        them through this, one at a time in observation order, so the
        left fold matches the scalar loss cursor bitwise.
        """
        self._remaining[row] += size

    def decide(self, counts, works, action, worker, size, mask=None, ctx=None):
        crashed = None
        fault_rows = None
        if ctx is not None:
            for r, s in ctx.losses:
                self._remaining[r] += s
            crashed = ctx.crashed
            fault_rows = ctx.fault_rows
        fin = self._remaining <= self._epsilon
        if mask is None:
            live = ~fin
        else:
            live = mask & ~fin
            fin = mask & fin
        drain = None
        if fault_rows is not None:
            # A drained pool on a fault row waits for the pending set: an
            # outstanding chunk may still be lost and re-enter the pool.
            pending_any = ((counts > 0) & (counts < PAD_PENDING)).any(axis=1)
            drain = fin & fault_rows & pending_any
            fin = fin & ~drain
        if crashed is not None and crashed.any():
            counts_eff = np.where(crashed, PAD_PENDING, counts)
            n_live = self._n - crashed.sum(axis=1)
            dead = live & (n_live == 0)
            fin = fin | dead
            live = live & ~dead
            w = starved_argmin(counts_eff, works)
            factor_n = self._factor * n_live.astype(float)
            n_batch = n_live
        else:
            w = starved_argmin(counts, works)
            factor_n = self._factor_n
            n_batch = self._n
        wait = live & (counts[self._rows, w] >= self._lookahead)
        disp = live & ~wait
        if drain is not None:
            wait = wait | drain
        action[fin] = DONE
        action[wait] = WAIT_FOR_COMPLETION
        action[disp] = DISPATCH
        worker[disp] = w[disp]
        new_batch = disp & (self._batch_left == 0)
        if new_batch.any():
            np.copyto(
                self._batch_size,
                np.maximum(self._remaining / factor_n, self._min_chunk),
                where=new_batch,
            )
            np.copyto(self._batch_left, n_batch, where=new_batch)
        self._batch_left[disp] -= 1
        sz = np.minimum(self._batch_size, self._remaining)
        size[disp] = sz[disp]
        np.copyto(
            self._remaining, np.maximum(0.0, self._remaining - sz), where=disp
        )


class Factoring(Scheduler):
    """Factoring scheduler (see module docstring).

    Parameters
    ----------
    factor:
        Fraction denominator per batch (2 = schedule half the remainder).
    min_chunk:
        Smallest chunk the master will send (default 1 workload unit).
    """

    is_batch_dynamic = True
    batch_supports_faults = True

    def __init__(self, factor: float = 2.0, min_chunk: float = 1.0):
        if factor <= 1.0:
            raise ValueError(f"factoring factor must be > 1, got {factor}")
        self.factor = factor
        self.min_chunk = min_chunk
        self.name = "Factoring"

    def create_source(self, platform: PlatformSpec, total_work: float) -> FactoringSource:
        return FactoringSource(
            n=platform.N,
            total_work=total_work,
            factor=self.factor,
            min_chunk=self.min_chunk,
            phase="factoring",
        )

    def batch_kernel(self, platform: PlatformSpec, total_work: float) -> FactoringKernelSpec:
        return FactoringKernelSpec(
            n=platform.N,
            total_work=total_work,
            factor=self.factor,
            min_chunk=self.min_chunk,
            lookahead=1,
        )
