"""Factoring self-scheduling (Flynn Hummel, CACM 1992).

Factoring allocates work in *batches*: each batch hands every worker one
chunk of ``remaining / (factor · N)`` units (the canonical factor is 2, so
half the remaining work is scheduled per batch), then the next batch is
computed from what is left.  Chunks therefore *decrease* geometrically,
which bounds the absolute uncertainty of the final chunks — the property
that makes the strategy robust to prediction errors.

In the paper's master-worker setting the algorithm is *self-scheduled*:
a worker receives its next chunk only when the master has observed it go
idle, so the dispatch order adapts to effective speeds.  That greedy
behaviour is also why Factoring overlaps communication and computation
poorly at start-up (motivating RUMR's phase 1).

Chunk sizes are bounded below by ``min_chunk`` (default: one workload
unit — the indivisible task of the original, integral formulation) so the
tail does not degenerate into infinitely many vanishing transfers.
"""

from __future__ import annotations

from repro.core.base import WAIT, Dispatch, DispatchSource, MasterView, Scheduler, Wait
from repro.platform.spec import PlatformSpec

__all__ = ["Factoring", "FactoringSource"]


class FactoringSource(DispatchSource):
    """Per-run state of the factoring self-scheduler.

    The batch rule: while work remains, produce ``N`` chunks of size
    ``max(min_chunk, remaining_at_batch_start / (factor · N))`` (capped by
    what is actually left).

    ``lookahead`` controls how far the master may run ahead of worker
    demand: with the classic self-scheduling value 1, a chunk is only sent
    to an *idle* worker — faithful to Hummel's model, but on a platform
    with transfer costs the worker then idles for the whole ``nLat + c/B``
    transfer (exactly the overlap weakness the paper attributes to
    factoring).  With ``lookahead = 2`` the master keeps one chunk
    buffered per worker (double-buffering), restoring overlap while the
    chunk-size rule stays adaptive; RUMR's phase 2 uses this setting.
    """

    def __init__(
        self,
        n: int,
        total_work: float,
        factor: float,
        min_chunk: float,
        phase: str,
        lookahead: int = 1,
    ):
        if factor <= 1.0:
            raise ValueError(f"factoring factor must be > 1, got {factor}")
        if min_chunk < 0:
            raise ValueError(f"min_chunk must be >= 0, got {min_chunk}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self._n = n
        self._remaining = total_work
        self._epsilon = 1e-12 * max(total_work, 1.0)
        self._factor = factor
        self._min_chunk = min_chunk
        self._phase = phase
        self._lookahead = lookahead
        self._batch_left = 0  # chunks still to issue in the current batch
        self._batch_size = 0.0

    @property
    def remaining(self) -> float:
        """Workload not yet dispatched."""
        return self._remaining

    def _next_size(self) -> float:
        if self._batch_left == 0:
            self._batch_size = max(self._remaining / (self._factor * self._n), self._min_chunk)
            self._batch_left = self._n
        self._batch_left -= 1
        return min(self._batch_size, self._remaining)

    def next_dispatch(self, view: MasterView) -> "Dispatch | Wait | None":
        if self._remaining <= self._epsilon:
            return None
        # Serve the most starved worker (fewest buffered chunks, then least
        # pending work, then lowest index for determinism) — but only while
        # it has fewer than `lookahead` chunks outstanding.
        candidates = [
            (view.pending_chunks(i), view.pending_work(i), i) for i in range(self._n)
        ]
        pending, _, worker = min(candidates)
        if pending >= self._lookahead:
            return WAIT
        size = self._next_size()
        self._remaining = max(0.0, self._remaining - size)
        return Dispatch(worker=worker, size=size, phase=self._phase)


class Factoring(Scheduler):
    """Factoring scheduler (see module docstring).

    Parameters
    ----------
    factor:
        Fraction denominator per batch (2 = schedule half the remainder).
    min_chunk:
        Smallest chunk the master will send (default 1 workload unit).
    """

    def __init__(self, factor: float = 2.0, min_chunk: float = 1.0):
        if factor <= 1.0:
            raise ValueError(f"factoring factor must be > 1, got {factor}")
        self.factor = factor
        self.min_chunk = min_chunk
        self.name = "Factoring"

    def create_source(self, platform: PlatformSpec, total_work: float) -> FactoringSource:
        return FactoringSource(
            n=platform.N,
            total_work=total_work,
            factor=self.factor,
            min_chunk=self.min_chunk,
            phase="factoring",
        )
