"""Chunk plans and dispatch records.

A :class:`ChunkPlan` is the static part of a schedule: an ordered list of
``(worker, size)`` assignments, optionally grouped into rounds.  A
:class:`DispatchRecord` is what a simulation produces for every chunk that
was actually sent: the full timeline of its transfer and computation.
"""

from __future__ import annotations

import dataclasses
import math
import typing

__all__ = ["PlannedChunk", "ChunkPlan", "DispatchRecord"]


@dataclasses.dataclass(frozen=True, slots=True)
class PlannedChunk:
    """One planned assignment: ``size`` workload units for ``worker``.

    ``round_index`` groups chunks into dispatch rounds (-1 when the notion
    of a round does not apply, e.g. for self-scheduled chunks).
    """

    worker: int
    size: float
    round_index: int = -1

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker index must be >= 0, got {self.worker}")
        if self.size < 0 or math.isnan(self.size):
            raise ValueError(f"chunk size must be >= 0, got {self.size}")


@dataclasses.dataclass(frozen=True)
class ChunkPlan:
    """An ordered sequence of planned chunks (master dispatch order)."""

    chunks: tuple[PlannedChunk, ...]

    def __init__(self, chunks: typing.Iterable[PlannedChunk]):
        object.__setattr__(self, "chunks", tuple(chunks))

    def __len__(self) -> int:
        return len(self.chunks)

    def __iter__(self) -> typing.Iterator[PlannedChunk]:
        return iter(self.chunks)

    def __getitem__(self, index: int) -> PlannedChunk:
        return self.chunks[index]

    @property
    def total_work(self) -> float:
        """Sum of all planned chunk sizes."""
        return sum(c.size for c in self.chunks)

    @property
    def num_rounds(self) -> int:
        """Number of distinct round indices (0 when unrounded)."""
        rounds = {c.round_index for c in self.chunks if c.round_index >= 0}
        return len(rounds)

    def round_sizes(self) -> list[list[float]]:
        """Chunk sizes grouped by round, rounds in ascending order."""
        by_round: dict[int, list[float]] = {}
        for c in self.chunks:
            by_round.setdefault(c.round_index, []).append(c.size)
        return [by_round[r] for r in sorted(by_round)]

    def for_worker(self, worker: int) -> list[PlannedChunk]:
        """All chunks planned for one worker, in dispatch order."""
        return [c for c in self.chunks if c.worker == worker]


@dataclasses.dataclass(frozen=True, slots=True)
class DispatchRecord:
    """The realized timeline of one dispatched chunk.

    Attributes
    ----------
    index:
        Dispatch sequence number (0-based).
    worker:
        Receiving worker.
    size:
        Chunk size in workload units.
    send_start / send_end:
        Interval during which the chunk occupied the master's link.
    arrival:
        When the worker held the complete chunk (``send_end + tLat``).
    comp_start / comp_end:
        The worker's computation interval for the chunk.
    phase:
        Free-form label set by the scheduler (e.g. ``"umr"``,
        ``"factoring"``, ``"rumr-phase1"``).
    lost:
        True when the receiving worker crashed before the computation
        finished.  The timeline fields then hold the *would-have-been*
        values (the times the chunk would have seen had the worker
        survived); the chunk delivers no work and is excluded from the
        makespan.
    loss_time:
        When the master observed the chunk lost: ``max(crash_time,
        arrival)`` for lost chunks, -1.0 otherwise.  (-1.0 rather than
        NaN so records stay equality-comparable.)
    """

    index: int
    worker: int
    size: float
    send_start: float
    send_end: float
    arrival: float
    comp_start: float
    comp_end: float
    phase: str = ""
    lost: bool = False
    loss_time: float = -1.0

    @property
    def link_time(self) -> float:
        """Exclusive master-link occupancy."""
        return self.send_end - self.send_start

    @property
    def comp_time(self) -> float:
        """Computation duration (including start-up latency)."""
        return self.comp_end - self.comp_start
