"""Fixed-Size Chunking (FSC) self-scheduling.

FSC (studied experimentally by Hagerup, JPDC 1997, building on Kruskal &
Weiss) sends equal-sized chunks to workers on demand.  The single tuning
knob is the chunk size, which trades scheduling overhead (small chunks)
against end-of-run imbalance (large chunks).

Kruskal & Weiss give the classic near-optimal size for ``R`` remaining
units, per-chunk overhead ``h`` and per-unit duration noise ``σ``::

    c_opt = ( √2 · R · h / (σ · N · √(ln N)) )^(2/3)

We adopt this with ``h = cLat + nLat`` (the non-overlappable latencies a
chunk pays) and ``σ = error / S`` (the paper's multiplicative error applied
to the per-unit compute time).  Degenerate inputs (``σ = 0``, ``N = 1`` or
missing error knowledge) fall back to an equal split ``W/N``; the result is
always clamped to ``[min_chunk, W/N]``.

The paper ran FSC, found it consistently worse than Factoring, and omitted
it from the result tables; it is included here for completeness and used in
the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.base import WAIT, Dispatch, DispatchSource, MasterView, Scheduler, Wait
from repro.core.lockstep import (
    DISPATCH,
    DONE,
    WAIT_FOR_COMPLETION,
    KernelSpec,
    LockstepKernel,
    expand_rows,
)
from repro.platform.spec import PlatformSpec

__all__ = [
    "FSCKernel",
    "FSCKernelSpec",
    "FixedSizeChunking",
    "kruskal_weiss_chunk_size",
]


def kruskal_weiss_chunk_size(
    total_work: float,
    n: int,
    overhead: float,
    sigma_per_unit: float,
) -> float:
    """The Kruskal–Weiss chunk size (see module docstring).

    Returns ``total_work / n`` when the formula degenerates (no noise, a
    single worker, or zero overhead — in which case smaller is always
    better and the caller's ``min_chunk`` floor takes over).
    """
    if n <= 1 or sigma_per_unit <= 0:
        return total_work / max(n, 1)
    if overhead <= 0:
        return 0.0
    log_n = math.log(n)
    if log_n <= 0:
        return total_work / n
    raw = (math.sqrt(2.0) * total_work * overhead / (sigma_per_unit * n * math.sqrt(log_n))) ** (
        2.0 / 3.0
    )
    return min(raw, total_work / n)


class FixedSizeChunkingSource(DispatchSource):
    """Per-run state: equal chunks served to idle workers on demand."""

    def __init__(self, n: int, total_work: float, chunk: float, phase: str = "fsc"):
        if chunk <= 0:
            raise ValueError(f"chunk size must be > 0, got {chunk}")
        self._remaining = total_work
        self._epsilon = 1e-12 * max(total_work, 1.0)
        self._chunk = chunk
        self._phase = phase
        self._n = n

    @property
    def remaining(self) -> float:
        """Workload not yet dispatched."""
        return self._remaining

    def next_dispatch(self, view: MasterView) -> "Dispatch | Wait | None":
        if self._remaining <= self._epsilon:
            return None
        idle = view.idle_workers()
        if not idle:
            return WAIT
        size = min(self._chunk, self._remaining)
        self._remaining = max(0.0, self._remaining - size)
        return Dispatch(worker=idle[0], size=size, phase=self._phase)


@dataclasses.dataclass(frozen=True)
class FSCKernelSpec(KernelSpec):
    """Mergeable lockstep configuration for one FSC cell."""

    n: int = 0
    total_work: float = 0.0
    chunk: float = 1.0

    group_key = ("fsc",)
    # FSC ignores faults entirely: the scalar source never re-dispatches
    # lost work and keeps serving crashed-but-idle workers, so the
    # oblivious kernel below already matches it decision for decision.
    handles_crashes = True

    def make_kernel(
        self, specs: "list[FSCKernelSpec]", reps: "list[int]", n_max: int
    ) -> "FSCKernel":
        return FSCKernel(specs, reps, n_max)


class FSCKernel(LockstepKernel):
    """Row-wise FSC: serve the lowest-index idle worker an equal chunk.

    Mirrors :class:`FixedSizeChunkingSource` exactly: a row is finished
    once its undispatched remainder drops to the epsilon floor (lost
    chunks are never re-dispatched, matching the scalar source even
    under faults), it waits while no worker is idle, and otherwise sends
    ``min(chunk, remaining)`` to the first idle worker.  Crashed workers
    stay eligible — the scalar idle scan does not consult crash state.
    """

    def __init__(self, specs, reps, n_max):
        del n_max
        self._remaining = expand_rows([s.total_work for s in specs], reps, float)
        self._epsilon = expand_rows(
            [1e-12 * max(s.total_work, 1.0) for s in specs], reps, float
        )
        self._chunk = expand_rows([s.chunk for s in specs], reps, float)
        self._rows = np.arange(len(self._remaining))

    def compact(self, keep) -> None:
        self._rows = np.arange(keep.size)
        self._remaining = self._remaining[keep]
        self._epsilon = self._epsilon[keep]
        self._chunk = self._chunk[keep]

    def decide(self, counts, works, action, worker, size, mask=None, ctx=None):
        del works, ctx
        fin = self._remaining <= self._epsilon
        if mask is not None:
            fin = fin & mask
            live = ~fin & mask
        else:
            live = ~fin
        action[fin] = DONE
        idle = counts == 0
        w = idle.argmax(axis=1)
        has_idle = idle.any(axis=1)
        wait = live & ~has_idle
        disp = live & has_idle
        action[wait] = WAIT_FOR_COMPLETION
        action[disp] = DISPATCH
        worker[disp] = w[disp]
        sz = np.minimum(self._chunk, self._remaining)
        size[disp] = sz[disp]
        np.copyto(
            self._remaining,
            np.maximum(0.0, self._remaining - sz),
            where=disp,
        )


class FixedSizeChunking(Scheduler):
    """FSC scheduler.

    Parameters
    ----------
    chunk_size:
        Explicit chunk size; when ``None`` (default) the Kruskal–Weiss
        formula is evaluated per run from the platform and ``known_error``.
    known_error:
        Error-magnitude estimate used by the size formula (the same
        "is *error* known" question as RUMR's, §4.1).
    min_chunk:
        Floor applied to the computed size (default 1 workload unit).
    """

    is_batch_dynamic = True
    batch_supports_faults = True

    def __init__(
        self,
        chunk_size: float | None = None,
        known_error: float = 0.0,
        min_chunk: float = 1.0,
    ):
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
        self.chunk_size = chunk_size
        self.known_error = known_error
        self.min_chunk = min_chunk
        self.name = "FSC"

    def _chunk_for(self, platform: PlatformSpec, total_work: float) -> float:
        if self.chunk_size is not None:
            chunk = self.chunk_size
        else:
            # Homogeneous-style aggregates; heterogeneous platforms use means.
            n = platform.N
            overhead = sum(w.cLat + w.nLat for w in platform) / n
            mean_s = sum(w.S for w in platform) / n
            sigma = self.known_error / mean_s
            chunk = kruskal_weiss_chunk_size(total_work, n, overhead, sigma)
        chunk = max(chunk, self.min_chunk)
        return min(chunk, total_work)

    def create_source(self, platform: PlatformSpec, total_work: float) -> FixedSizeChunkingSource:
        chunk = self._chunk_for(platform, total_work)
        return FixedSizeChunkingSource(platform.N, total_work, chunk)

    def batch_kernel(self, platform: PlatformSpec, total_work: float) -> FSCKernelSpec:
        return FSCKernelSpec(
            n=platform.N,
            total_work=total_work,
            chunk=self._chunk_for(platform, total_work),
        )
