"""Scheduler registry: names → factories.

The experiment harness and the CLI refer to algorithms by name.  Because
RUMR (and FSC) consume the error-magnitude estimate, factories take the
per-cell error value and may use or ignore it.
"""

from __future__ import annotations

import typing

from repro.core.adaptive import AdaptiveRUMR
from repro.core.base import Scheduler
from repro.core.factoring import Factoring
from repro.core.fsc import FixedSizeChunking
from repro.core.multi_installment import MultiInstallment
from repro.core.one_round import EqualSplit, OneRound
from repro.core.rumr import RUMR
from repro.core.umr import UMR
from repro.core.weighted_factoring import WeightedFactoring

__all__ = [
    "available_schedulers",
    "is_batch_dynamic_algorithm",
    "is_static_algorithm",
    "make_scheduler",
    "SchedulerFactory",
]

#: A factory mapping the cell's error magnitude to a configured scheduler.
SchedulerFactory = typing.Callable[[float], Scheduler]

_FACTORIES: dict[str, SchedulerFactory] = {
    "RUMR": lambda error: RUMR(known_error=error),
    "RUMR-plain": lambda error: RUMR(known_error=error, out_of_order=False),
    "RUMR_50": lambda error: RUMR(known_error=error, phase1_fraction=0.5),
    "RUMR_60": lambda error: RUMR(known_error=error, phase1_fraction=0.6),
    "RUMR_70": lambda error: RUMR(known_error=error, phase1_fraction=0.7),
    "RUMR_80": lambda error: RUMR(known_error=error, phase1_fraction=0.8),
    "RUMR_90": lambda error: RUMR(known_error=error, phase1_fraction=0.9),
    "UMR": lambda error: UMR(),
    "AdaptiveRUMR": lambda error: AdaptiveRUMR(),
    "MI-1": lambda error: MultiInstallment(1),
    "MI-2": lambda error: MultiInstallment(2),
    "MI-3": lambda error: MultiInstallment(3),
    "MI-4": lambda error: MultiInstallment(4),
    "Factoring": lambda error: Factoring(),
    "WeightedFactoring": lambda error: WeightedFactoring(),
    "FSC": lambda error: FixedSizeChunking(known_error=error),
    "OneRound": lambda error: OneRound(),
    "EqualSplit": lambda error: EqualSplit(),
}


def available_schedulers() -> list[str]:
    """All registered algorithm names."""
    return sorted(_FACTORIES)


def is_static_algorithm(name: str) -> bool:
    """Whether the named algorithm replays a fixed plan (is batchable).

    A static algorithm's dispatch sequence depends only on the platform and
    the workload — never on the error magnitude or on observed completions
    — so the sweep fast path can run it through the vectorized batch
    engine.  The answer is a property of the algorithm, not of any one
    error level: the registry factory is probed at ``error = 0``.
    """
    return make_scheduler(name, 0.0).is_static


def is_batch_dynamic_algorithm(name: str) -> bool:
    """Whether the named algorithm has a lockstep batch kernel.

    Batch-dynamic algorithms (Factoring, WeightedFactoring, FSC, the RUMR
    variants, AdaptiveRUMR — every in-tree dynamic scheduler) decide from
    pure arithmetic over master-observable state, so
    the sweep can advance all repetitions of a cell in lockstep through
    :func:`repro.sim.dynbatch.simulate_dynamic_cells`.  Like
    :func:`is_static_algorithm` this is a property of the algorithm
    itself, probed at ``error = 0``.
    """
    return make_scheduler(name, 0.0).is_batch_dynamic


def make_scheduler(name: str, error: float = 0.0) -> Scheduler:
    """Instantiate a registered scheduler for a given error magnitude."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    return factory(error)
