"""Single-installment (one-round) divisible-load schedules.

Two baselines:

* :class:`OneRound` — the classic optimal single-installment schedule
  under the latency-free linear model (the setting of Rosenberg, Cluster
  2001, and Bharadwaj et al. ch. 3): the master sends each worker exactly
  one chunk, sized so that every worker finishes at the same instant given
  sequential distribution.  Identical to MI-1 and implemented as such.
* :class:`EqualSplit` — the naive ``W/N`` equal partition, one chunk per
  worker; a useful lower bar in examples and tests.
"""

from __future__ import annotations

from repro.core.base import Dispatch, Scheduler, StaticPlanSource
from repro.core.chunks import ChunkPlan, PlannedChunk
from repro.core.multi_installment import solve_multi_installment
from repro.platform.spec import PlatformSpec

__all__ = ["OneRound", "EqualSplit"]


class OneRound(Scheduler):
    """Optimal single-installment schedule (simultaneous finish). ≡ MI-1."""

    def __init__(self) -> None:
        self.name = "OneRound"

    is_static = True
    batch_supports_faults = True

    def chunk_sizes(self, platform: PlatformSpec, total_work: float) -> tuple[float, ...]:
        """Per-worker loads, in dispatch order (decreasing on homogeneous)."""
        return solve_multi_installment(platform, total_work, 1).sizes[0]

    def static_plan(self, platform: PlatformSpec, total_work: float) -> ChunkPlan:
        return ChunkPlan(
            PlannedChunk(worker=i, size=s, round_index=0)
            for i, s in enumerate(self.chunk_sizes(platform, total_work))
            if s > 0.0
        )

    def create_source(self, platform: PlatformSpec, total_work: float) -> StaticPlanSource:
        sizes = self.chunk_sizes(platform, total_work)
        return StaticPlanSource(
            Dispatch(worker=i, size=s, phase="one-round")
            for i, s in enumerate(sizes)
            if s > 0.0
        )


class EqualSplit(Scheduler):
    """Naive baseline: every worker gets ``W / N`` in a single round."""

    def __init__(self) -> None:
        self.name = "EqualSplit"

    is_static = True
    batch_supports_faults = True

    def static_plan(self, platform: PlatformSpec, total_work: float) -> ChunkPlan:
        return self.plan(platform, total_work)

    def plan(self, platform: PlatformSpec, total_work: float) -> ChunkPlan:
        """The (trivial) plan, exposed for inspection."""
        share = total_work / platform.N
        return ChunkPlan(
            PlannedChunk(worker=i, size=share, round_index=0) for i in range(platform.N)
        )

    def create_source(self, platform: PlatformSpec, total_work: float) -> StaticPlanSource:
        return StaticPlanSource(
            Dispatch(worker=c.worker, size=c.size, phase="equal-split")
            for c in self.plan(platform, total_work)
        )
