"""UMR — Uniform Multi-Round scheduling (Yang & Casanova, IPDPS'03).

UMR dispatches the workload in ``M`` rounds.  Within a round every worker
receives one chunk; chunk sizes are uniform within a round (per worker on
heterogeneous platforms: scaled so all workers compute a round in the same
time) and grow geometrically between rounds so that the master finishes
dispatching round ``j+1`` exactly when the workers finish computing round
``j`` ("no-idle" condition).

Homogeneous recurrence (paper §3.2, with θ = B/(N·S))::

    N·(nLat + chunk_{j+1}/B) = cLat + chunk_j/S
    chunk_{j+1} = θ·chunk_j + γ,     γ = B·cLat/N − B·nLat

The free parameters are the number of rounds ``M`` and the first chunk size
``chunk_0``; they minimize the predicted makespan

    F(M, chunk_0) = N·(nLat + chunk_0/B) + tLat + M·cLat + W/(N·S)

subject to the chunks summing to the workload.  The paper solves the
Lagrange system numerically by bisection; this module implements that
(:func:`solve_umr_lagrange`) and an exact search over integer round counts
(:func:`solve_umr_search`) which is the default because it is immune to the
degenerate corners of the parameter space (e.g. ``cLat = nLat = 0``, where
the Lagrange condition has no finite root).

The heterogeneous generalization replaces the per-round chunk size with the
per-round *compute time* ``T_j`` (uniform across workers within a round,
``chunk_{j,i} = S_i·(T_j − cLat_i)``), giving

    T_{j+1} = θ_h·(T_j − A),   θ_h = 1/Σ(S_i/B_i),   A = Σ nLat_i − Σ S_i·cLat_i/B_i

with the analogous objective.  On a homogeneous platform it reduces exactly
to the homogeneous solution (verified by the test suite).
"""

from __future__ import annotations

import dataclasses
import functools
import math

from repro.core.base import Dispatch, Scheduler, StaticPlanSource
from repro.core.chunks import ChunkPlan, PlannedChunk
from repro.platform.spec import PlatformSpec

__all__ = [
    "UMR",
    "UMRPlan",
    "UMRInfeasibleError",
    "solve_umr",
    "solve_umr_search",
    "solve_umr_lagrange",
    "umr_predicted_makespan",
]

#: Round-count cap for the integer search.  θ ≥ 1.2 makes chunk_0 shrink as
#: θ^-M, so anything beyond ~50 rounds is numerically indistinguishable.
MAX_ROUNDS = 50


class UMRInfeasibleError(ValueError):
    """No valid UMR schedule exists for the given platform and workload."""


@dataclasses.dataclass(frozen=True)
class UMRPlan:
    """A solved UMR schedule.

    Attributes
    ----------
    num_rounds:
        The integer round count ``M``.
    round_times:
        Per-round uniform compute time ``T_j`` (seconds), length ``M``.
    chunk_sizes:
        ``chunk_sizes[j][i]`` — workload units for worker ``i`` in round
        ``j``.  Uniform across ``i`` on homogeneous platforms.
    predicted_makespan:
        The model's objective value ``F`` for this plan.
    theta:
        The geometric growth ratio (``B/(N·S)`` homogeneous).
    method:
        ``"search"`` or ``"lagrange"`` — which solver produced the plan.
    """

    num_rounds: int
    round_times: tuple[float, ...]
    chunk_sizes: tuple[tuple[float, ...], ...]
    predicted_makespan: float
    theta: float
    method: str

    @property
    def chunk0(self) -> float:
        """First-round chunk size of worker 0 (the paper's ``chunk_0``)."""
        return self.chunk_sizes[0][0]

    @property
    def total_work(self) -> float:
        """Sum of all chunks."""
        return sum(sum(row) for row in self.chunk_sizes)

    def to_chunk_plan(self) -> ChunkPlan:
        """Round-major dispatch order: round 0 to workers 0..N-1, then 1, …"""
        chunks = [
            PlannedChunk(worker=i, size=size, round_index=j)
            for j, row in enumerate(self.chunk_sizes)
            for i, size in enumerate(row)
            if size > 0.0
        ]
        return ChunkPlan(chunks)


# ---------------------------------------------------------------------------
# Heterogeneous-capable helpers (homogeneous is the N-identical special case)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _Derived:
    """Aggregate quantities of the UMR recurrence for a platform."""

    n: int
    beta: float        # Σ S_i/B_i  (= 1/θ)
    theta: float       # growth ratio
    A: float           # Σ nLat_i − Σ S_i·cLat_i/B_i
    t_star: float      # fixed point of the T recurrence (nan when θ == 1)
    s_tot: float       # Σ S_i
    c_sum: float       # Σ S_i·cLat_i
    d_sum: float       # Σ S_i·cLat_i/B_i
    nlat_sum: float    # Σ nLat_i
    clat_max: float    # max_i cLat_i
    tlat_max: float    # max_i tLat_i


def _derive(platform: PlatformSpec) -> _Derived:
    beta = platform.utilization_sum()
    if beta <= 0:
        # All links infinitely fast: chunks can be arbitrarily small; treat
        # as a very large growth ratio so the search degenerates sanely.
        beta = 1e-12
    theta = 1.0 / beta
    A = sum(w.nLat for w in platform) - sum(
        0.0 if math.isinf(w.B) else w.S * w.cLat / w.B for w in platform
    )
    t_star = theta * A / (theta - 1.0) if not math.isclose(theta, 1.0) else math.nan
    return _Derived(
        n=platform.N,
        beta=beta,
        theta=theta,
        A=A,
        t_star=t_star,
        s_tot=sum(w.S for w in platform),
        c_sum=sum(w.S * w.cLat for w in platform),
        d_sum=sum(0.0 if math.isinf(w.B) else w.S * w.cLat / w.B for w in platform),
        nlat_sum=sum(w.nLat for w in platform),
        clat_max=max(w.cLat for w in platform),
        tlat_max=max(w.tLat for w in platform),
    )


def _pow(theta: float, m: float) -> float:
    """θ^m guarded against overflow (returns inf instead of raising)."""
    try:
        return math.pow(theta, m)
    except OverflowError:
        return math.inf


def _t0_for_rounds(d: _Derived, total_work: float, m: int) -> float | None:
    """Round-0 compute time T_0 for an M-round schedule, or None if θ^M blew up."""
    sum_t = (total_work + m * d.c_sum) / d.s_tot
    if math.isclose(d.theta, 1.0):
        # T_j = T_0 − j·A ; Σ = M·T_0 − A·M(M−1)/2
        return (sum_t + d.A * m * (m - 1) / 2.0) / m
    tm = _pow(d.theta, m)
    if math.isinf(tm):
        return None
    return d.t_star + (sum_t - m * d.t_star) * (d.theta - 1.0) / (tm - 1.0)


def _round_times(d: _Derived, t0: float, m: int) -> list[float]:
    """Materialize T_0 … T_{M−1} from the recurrence."""
    times = [t0]
    for _ in range(m - 1):
        times.append(d.theta * (times[-1] - d.A))
    return times


def _objective(d: _Derived, t0: float, sum_t: float) -> float:
    """Predicted makespan F(M, T_0) (see module docstring)."""
    return d.nlat_sum + d.beta * t0 - d.d_sum + d.tlat_max + sum_t


def _plan_from_t0(
    platform: PlatformSpec,
    d: _Derived,
    t0: float,
    m: int,
    method: str,
    total_work: float,
    allow_decreasing: bool = False,
) -> UMRPlan | None:
    """Build and validate a concrete plan.

    Returns None when the plan is invalid: a negative chunk somewhere
    (``T_j < cLat_i``); round sizes *decreasing* (unless
    ``allow_decreasing``) — UMR is defined by nondecreasing chunks, and
    this rejection reproduces the paper's observation that UMR degrades to
    a single round in high-latency configurations; or the materialized
    chunk total drifting from the workload constraint.  The latter happens
    at large round counts where ``T_0`` sits within float-epsilon of the
    recurrence fixed point — the correction term underflows and the
    replayed geometric sequence no longer honours the constraint
    (catastrophic cancellation in θ^M).
    """
    times = _round_times(d, t0, m)
    # Validity: every worker's chunk in every round must be non-negative,
    # i.e. T_j >= cLat_i wherever S_i > 0.  The sequence is monotone, so
    # checking both ends suffices, but rounds are few — check all.
    tol = -1e-12 * max(1.0, abs(t0))
    if any(t - d.clat_max < tol for t in times):
        return None
    if not allow_decreasing:
        mono_tol = 1e-9 * max(1.0, abs(t0))
        if any(b < a - mono_tol for a, b in zip(times, times[1:])):
            return None
    chunk_rows = [
        tuple(max(0.0, w.S * (t - w.cLat)) for w in platform) for t in times
    ]
    total = sum(sum(row) for row in chunk_rows)
    if not math.isclose(total, total_work, rel_tol=1e-7):
        return None
    return UMRPlan(
        num_rounds=m,
        round_times=tuple(times),
        chunk_sizes=tuple(chunk_rows),
        predicted_makespan=_objective(d, t0, sum(times)),
        theta=d.theta,
        method=method,
    )


def _normalize_plan(plan: UMRPlan, platform: PlatformSpec, total_work: float) -> UMRPlan:
    """Adjust the last round so chunks sum to exactly ``total_work``.

    The numerical residual (from the θ^M power arithmetic) is spread over
    the last round in proportion to compute rate, which keeps the round's
    compute time uniform; the predicted makespan shifts by exactly
    ``residual / Σ S_i``.  Workers with a zero chunk (dropped by the
    feasibility fallback) do not participate.
    """
    rows = [list(row) for row in plan.chunk_sizes]
    current = sum(sum(row) for row in rows)
    residual = total_work - current
    if residual == 0.0:
        return plan
    last = rows[-1]
    active = [(i, w) for i, w in enumerate(platform) if last[i] > 0.0 or plan.num_rounds == 1]
    if not active:
        active = list(enumerate(platform))
    s_tot = sum(w.S for _, w in active)
    for i, w in active:
        last[i] = max(0.0, last[i] + residual * w.S / s_tot)
    rows[-1] = last
    # Re-check the invariant; give up on pathological residuals.
    new_total = sum(sum(row) for row in rows)
    if not math.isclose(new_total, total_work, rel_tol=1e-9, abs_tol=1e-9):
        raise UMRInfeasibleError(
            f"could not normalize plan to total work {total_work} (got {new_total})"
        )
    return dataclasses.replace(
        plan,
        chunk_sizes=tuple(tuple(row) for row in rows),
        predicted_makespan=plan.predicted_makespan + residual / s_tot,
    )


def _search_subset(
    platform: PlatformSpec,
    total_work: float,
    max_rounds: int,
    allow_decreasing: bool,
) -> UMRPlan | None:
    """Best valid plan over integer round counts, or None if none exists."""
    d = _derive(platform)
    best: UMRPlan | None = None
    for m in range(1, max_rounds + 1):
        t0 = _t0_for_rounds(d, total_work, m)
        if t0 is None:
            break
        plan = _plan_from_t0(platform, d, t0, m, "search", total_work, allow_decreasing)
        if plan is None:
            continue
        # Strict-improvement threshold: prefer fewer rounds when extra
        # rounds buy only a vanishing (sub-relative-epsilon) improvement,
        # as happens when cLat = nLat = 0 and F(M) is asymptotically flat.
        if best is None or plan.predicted_makespan < best.predicted_makespan * (1.0 - 1e-9):
            best = plan
    return best


def _expand_plan(plan: UMRPlan, indices: list[int], n_full: int) -> UMRPlan:
    """Map a subset plan back to full platform width (zeros for dropped)."""
    rows = []
    for row in plan.chunk_sizes:
        full = [0.0] * n_full
        for sub_i, orig_i in enumerate(indices):
            full[orig_i] = row[sub_i]
        rows.append(tuple(full))
    return dataclasses.replace(plan, chunk_sizes=tuple(rows))


def solve_umr_search(
    platform: PlatformSpec,
    total_work: float,
    max_rounds: int = MAX_ROUNDS,
    allow_decreasing: bool = False,
) -> UMRPlan:
    """Exact minimization of the UMR objective over integer round counts.

    Evaluates ``F(M)`` with ``T_0`` eliminated through the workload
    constraint for every ``M`` in ``1..max_rounds`` and returns the best
    *valid* plan (all chunks non-negative).

    When no round count is feasible for the full worker set — the workload
    is too small to cover the per-round latency of every worker — the
    worker with the largest ``cLat`` is dropped and the search repeats (the
    paper's resource-selection idea applied to the start-up-cost regime).
    A single worker is always feasible, so the search always succeeds.
    """
    if not total_work > 0:
        raise ValueError(f"total_work must be > 0, got {total_work}")
    indices = list(range(platform.N))
    while True:
        sub = platform.subset(indices) if len(indices) < platform.N else platform
        best = _search_subset(sub, total_work, max_rounds, allow_decreasing)
        if best is not None:
            normalized = _normalize_plan(best, sub, total_work)
            if len(indices) < platform.N:
                normalized = _expand_plan(normalized, indices, platform.N)
            return normalized
        if len(indices) == 1:
            raise UMRInfeasibleError(
                "no valid UMR schedule even on a single worker; "
                f"total_work={total_work} cannot cover the latencies"
            )
        drop = max(indices, key=lambda i: (platform[i].cLat, -platform[i].S, i))
        indices.remove(drop)


def _lagrange_phi(d: _Derived, total_work: float, m: float) -> float:
    """The stationarity residual φ(M) of the Lagrange system (paper §3.2).

    φ(M) = ∂F/∂M − λ·∂G/∂M with λ eliminated through the ∂/∂T_0 pair;
    a root of φ is a candidate optimal (continuous) round count.
    """
    theta = d.theta
    tm = _pow(theta, m)
    if math.isinf(tm):
        return math.nan
    e = (tm - 1.0) / (theta - 1.0)
    sum_t = (total_work + m * d.c_sum) / d.s_tot
    t0 = d.t_star + (sum_t - m * d.t_star) / e
    # ∂(Σ T_j)/∂M at fixed T_0:
    dsum_dm = (t0 - d.t_star) * tm * math.log(theta) / (theta - 1.0) + d.t_star
    # λ = (β + E) / (S_tot · E);  stationarity: dsum_dm = λ·(S_tot·dsum_dm − C)
    lam = (d.beta + e) / (d.s_tot * e)
    return dsum_dm - lam * (d.s_tot * dsum_dm - d.c_sum)


def solve_umr_lagrange(
    platform: PlatformSpec,
    total_work: float,
    max_rounds: int = MAX_ROUNDS,
    allow_decreasing: bool = False,
) -> UMRPlan:
    """The paper's solver: bisection on the Lagrange stationarity condition.

    Falls back to :func:`solve_umr_search` when the condition has no root
    in ``(0, max_rounds]`` (which happens at degenerate parameter corners
    such as ``cLat = nLat = 0``, where the continuous optimum is M → ∞).
    """
    if not total_work > 0:
        raise ValueError(f"total_work must be > 0, got {total_work}")
    d = _derive(platform)
    if math.isclose(d.theta, 1.0):
        return solve_umr_search(platform, total_work, max_rounds, allow_decreasing)

    # Bracket a sign change of φ on a geometric grid of M values.
    from scipy.optimize import brentq

    grid = [0.05 * 1.35**k for k in range(40)]
    grid = [m for m in grid if m <= max_rounds] + [float(max_rounds)]
    prev_m, prev_phi = None, None
    root: float | None = None
    for m in grid:
        phi = _lagrange_phi(d, total_work, m)
        if math.isnan(phi):
            break
        if prev_phi is not None and phi == 0.0:
            root = m
            break
        if prev_phi is not None and (prev_phi < 0) != (phi < 0):
            root = float(
                brentq(lambda x: _lagrange_phi(d, total_work, x), prev_m, m, xtol=1e-10)
            )
            break
        prev_m, prev_phi = m, phi
    if root is None:
        return solve_umr_search(platform, total_work, max_rounds, allow_decreasing)

    candidates = sorted({max(1, math.floor(root)), max(1, math.ceil(root))})
    best: UMRPlan | None = None
    for m in candidates:
        t0 = _t0_for_rounds(d, total_work, m)
        if t0 is None:
            continue
        plan = _plan_from_t0(platform, d, t0, m, "lagrange", total_work, allow_decreasing)
        if plan is None:
            continue
        if best is None or plan.predicted_makespan < best.predicted_makespan:
            best = plan
    if best is None:
        return solve_umr_search(platform, total_work, max_rounds, allow_decreasing)
    return _normalize_plan(best, platform, total_work)


@functools.lru_cache(maxsize=16384)
def solve_umr(
    platform: PlatformSpec,
    total_work: float,
    max_rounds: int = MAX_ROUNDS,
    method: str = "search",
    allow_decreasing: bool = False,
) -> UMRPlan:
    """Solve for the UMR schedule; ``method`` is ``"search"`` or ``"lagrange"``.

    ``allow_decreasing=True`` lifts the nondecreasing-rounds restriction
    and admits the (sometimes better) decreasing-chunk solutions of the
    no-idle recurrence — not UMR as published, but a useful upper baseline
    (see the ablation benchmarks).

    Results are memoized: plans are immutable and depend only on the
    (hashable) platform, the workload and the solver options, while the
    experiment harness re-solves the same configuration for every error
    level and repetition.
    """
    if method == "search":
        return solve_umr_search(platform, total_work, max_rounds, allow_decreasing)
    if method == "lagrange":
        return solve_umr_lagrange(platform, total_work, max_rounds, allow_decreasing)
    raise ValueError(f"unknown UMR solver method {method!r}")


def umr_predicted_makespan(platform: PlatformSpec, plan: UMRPlan) -> float:
    """Closed-form predicted makespan for a homogeneous UMR plan.

    ``F = N·(nLat + chunk_0/B) + tLat + M·cLat + W/(N·S)`` — the paper's
    objective.  Used by the test suite as an oracle against the simulators.
    """
    if not platform.is_homogeneous:
        raise ValueError("closed form applies to homogeneous platforms only")
    w = platform[0]
    n = platform.N
    per_worker = plan.total_work / n
    return (
        n * (w.nLat + plan.chunk0 / w.B)
        + w.tLat
        + plan.num_rounds * w.cLat
        + per_worker / w.S
    )


class UMR(Scheduler):
    """The UMR scheduler: a precomputed increasing-chunk multi-round plan.

    Parameters
    ----------
    method:
        ``"search"`` (exact integer optimization, default) or
        ``"lagrange"`` (the paper's bisection on the Lagrange condition).
    max_rounds:
        Upper bound for the round count.
    allow_decreasing:
        Admit decreasing-chunk no-idle schedules (not UMR as published;
        see :func:`solve_umr`).
    """

    def __init__(
        self,
        method: str = "search",
        max_rounds: int = MAX_ROUNDS,
        allow_decreasing: bool = False,
    ):
        if method not in ("search", "lagrange"):
            raise ValueError(f"unknown UMR solver method {method!r}")
        self.method = method
        self.max_rounds = max_rounds
        self.allow_decreasing = allow_decreasing
        self.name = "UMR"

    is_static = True
    batch_supports_faults = True

    def plan(self, platform: PlatformSpec, total_work: float) -> UMRPlan:
        """Solve and return the full :class:`UMRPlan`."""
        return solve_umr(
            platform, total_work, self.max_rounds, self.method, self.allow_decreasing
        )

    def static_plan(self, platform: PlatformSpec, total_work: float) -> ChunkPlan:
        return self.plan(platform, total_work).to_chunk_plan()

    def create_source(self, platform: PlatformSpec, total_work: float) -> StaticPlanSource:
        plan = self.plan(platform, total_work)
        dispatches = [
            Dispatch(worker=c.worker, size=c.size, phase=f"umr-round{c.round_index}")
            for c in plan.to_chunk_plan()
        ]
        return StaticPlanSource(dispatches)
