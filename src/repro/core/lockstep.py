"""Lockstep kernels: dynamic scheduling decisions as row-wise array ops.

The scalar engine asks a :class:`~repro.core.base.DispatchSource` one
decision at a time.  A *lockstep kernel* answers the same question for R
independent runs at once: given the master-observable state of every row
(pending chunk counts and pending work per worker, as observed at each
row's own clock), fill per-row ``action``/``worker``/``size`` arrays.
Rows proceed through their *own* trajectories — different rows may be in
different rounds, batches, or phases — the kernel merely evaluates all of
their next decisions in one pass of NumPy arithmetic.

This is possible because the batchable dynamic schedulers (Factoring,
WeightedFactoring, FSC, RUMR, AdaptiveRUMR) decide from pure arithmetic
over master state: no data-dependent control flow survives except
per-row branches, which become masks.  The contract mirrors the scalar
sources bit-for-bit: the same tie-breaks (fewest pending chunks, then
least pending work, then lowest index), the same batch/size formulas
evaluated with the same operation order and associativity, so a lockstep
row reproduces the scalar engine's trajectory exactly when fed the same
perturbation factors.

Kernels are built from :class:`KernelSpec` objects (one per simulated
cell) by :meth:`KernelSpec.make_kernel`; specs with equal ``group_key``
may be merged into one kernel spanning many cells, padded to a common
worker count.  Padded worker slots must be made unselectable by the
*caller*: the engine reports a huge pending-chunk count for them, which
excludes them from every starved-worker argmin and idle test.

Fault-aware decisions travel through a :class:`KernelStepContext`: the
engine hands each merged group the crash state it would observe through
the scalar :class:`~repro.core.base.MasterView` (which workers' crash
times have passed each row's clock) plus the losses and completions that
became observable since the previous decision, in the scalar view's
``(time, chunk_index)`` order.  A spec advertises crash literacy with
:attr:`KernelSpec.handles_crashes`; rows whose sampled fault schedule
contains a crash and whose kernel does *not* handle crashes are routed
back to the scalar engine by ``repro.sim.dynbatch`` rather than risking
a divergent recovery trajectory.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "DISPATCH",
    "WAIT_FOR_COMPLETION",
    "DONE",
    "PAD_PENDING",
    "KernelSpec",
    "KernelStepContext",
    "LockstepKernel",
    "expand_rows",
    "starved_argmin",
]

#: Per-row action codes written into the engine's ``action`` array.
DISPATCH = 0
WAIT_FOR_COMPLETION = 1
DONE = 2

#: Pending-chunk count reported for padded (nonexistent) worker slots.
#: Large enough that a pad can never win a fewest-pending tie or look
#: idle, small enough to stay exact in int64 arithmetic.
PAD_PENDING = 1 << 40


def expand_rows(values, reps, dtype=None) -> np.ndarray:
    """Repeat one per-spec value per repetition row (``np.repeat`` sugar)."""
    return np.repeat(np.asarray(values, dtype=dtype), reps, axis=0)


def starved_argmin(counts: np.ndarray, works: np.ndarray) -> np.ndarray:
    """Row-wise ``min((pending_chunks(i), pending_work(i), i))`` worker.

    Vectorizes the scalar sources' lexicographic candidate rule: fewest
    pending chunks first, least pending work among those, lowest index as
    the final tie-break (``argmin`` of the masked work row returns the
    first index attaining the minimum).
    """
    cmin = counts.min(axis=1, keepdims=True)
    masked = np.where(counts == cmin, works, np.inf)
    return masked.argmin(axis=1)


@dataclasses.dataclass(slots=True)
class KernelStepContext:
    """Observable fault/completion state for one decision step.

    Built by the lockstep engine for a merged kernel group whenever any
    of its rows carries a fault schedule or its kernel asked for
    completion notes.  All row indices are local to the group slice.

    ``crashed`` is the (R, n_max) boolean mask of workers whose crash
    time lies at or before the row's current clock — exactly the scalar
    view's ``crashed_workers()``.  ``losses`` lists newly observed lost
    chunks as ``(row, size)`` and ``notes`` newly observed completions
    as ``(row, time, worker, size)``; both are sorted by the scalar
    observation order ``(time, chunk_index)`` within each row, and each
    event is delivered exactly once across the run (cursor semantics,
    mirroring ``observed_losses`` / ``observed_completions``).
    """

    crashed: "np.ndarray | None" = None
    #: (R,) boolean — rows carrying any sampled fault schedule (the scalar
    #: view's ``faults_possible``); such rows drain their pending set
    #: before finishing because outstanding chunks may still be lost.
    fault_rows: "np.ndarray | None" = None
    losses: "list[tuple[int, float]]" = dataclasses.field(default_factory=list)
    notes: "list[tuple[int, float, int, float]]" = dataclasses.field(
        default_factory=list
    )


class KernelSpec:
    """One cell's decision-rule configuration, mergeable by ``group_key``.

    Produced by :meth:`repro.core.base.Scheduler.batch_kernel`.  Specs
    whose ``group_key`` match describe the same decision-rule *family*
    (identical code path, different parameters) and may be handed
    together to :meth:`make_kernel`, which expands them into per-row
    state — ``reps[i]`` consecutive rows per spec — padded to ``n_max``
    workers.
    """

    #: Hashable family identifier; equal keys merge into one kernel.
    group_key: tuple = ()
    #: Real worker count of this spec's platform.
    n: int = 0
    #: Whether the kernel reproduces the scalar source's crash-recovery
    #: trajectory.  Specs that leave this False have crash-bearing rows
    #: routed to the scalar engine by ``repro.sim.dynbatch``; non-crash
    #: faults (pause / slowdown / link spike) only shift observation
    #: times and need no kernel support at all.
    handles_crashes: bool = False
    #: Whether the kernel consumes completion notes
    #: (:attr:`KernelStepContext.notes`) even on fault-free rows —
    #: AdaptiveRUMR's online error estimator needs them.
    wants_notes: bool = False

    def make_kernel(
        self, specs: "list[KernelSpec]", reps: "list[int]", n_max: int
    ) -> "LockstepKernel":
        raise NotImplementedError

    def deferred_rows(self, crash_time: np.ndarray) -> "np.ndarray | None":
        """Rows the kernel cannot replay bitwise, given realized crashes.

        ``crash_time`` is this cell's ``(reps, n)`` slice of the fault
        plane (``inf`` = never).  The returned boolean mask selects rows
        the engine must hand to the scalar reference engine instead; the
        default defers every crash-bearing row when the spec lacks crash
        support and nothing otherwise.  Specs whose kernel covers *some*
        crash patterns override this to shrink the deferral to the
        genuinely inexpressible rows (see ``RUMRKernelSpec``).
        """
        if self.handles_crashes:
            return None
        return np.isfinite(crash_time).any(axis=1)


class LockstepKernel:
    """Per-row decision state for one merged group of cells."""

    def decide(
        self,
        counts: np.ndarray,
        works: np.ndarray,
        action: np.ndarray,
        worker: np.ndarray,
        size: np.ndarray,
        mask: "np.ndarray | None" = None,
        ctx: "KernelStepContext | None" = None,
    ) -> None:
        """Write each row's next decision into the output arrays.

        ``counts``/``works`` are (R, n_max) observed pending chunks and
        pending work; ``action``/``worker``/``size`` are (R,) outputs.
        With ``mask`` (boolean (R,)), only masked rows are decided and
        mutated — used by composite kernels (RUMR's phase-2 tail) to
        delegate a row subset; rows outside the mask are left untouched.
        ``ctx`` carries crash masks and newly observed losses /
        completions when the engine simulates fault cells (or the spec
        set :attr:`KernelSpec.wants_notes`); fault-oblivious kernels may
        ignore it.  Rows whose workload is exhausted write :data:`DONE`
        and must keep doing so on every later call (finished rows stay
        frozen).
        """
        raise NotImplementedError

    def compact(self, keep: np.ndarray) -> None:
        """Drop every row not in ``keep`` (sorted local row indices).

        The lockstep engine periodically compacts finished rows out of
        its state so late iterations stop paying for them; kernels must
        re-index all per-row state the same way.  Kernels that do not
        implement this simply opt their groups out of compaction.
        """
        raise NotImplementedError
