"""Lockstep kernels: dynamic scheduling decisions as row-wise array ops.

The scalar engine asks a :class:`~repro.core.base.DispatchSource` one
decision at a time.  A *lockstep kernel* answers the same question for R
independent runs at once: given the master-observable state of every row
(pending chunk counts and pending work per worker, as observed at each
row's own clock), fill per-row ``action``/``worker``/``size`` arrays.
Rows proceed through their *own* trajectories — different rows may be in
different rounds, batches, or phases — the kernel merely evaluates all of
their next decisions in one pass of NumPy arithmetic.

This is possible because the batchable dynamic schedulers (Factoring,
WeightedFactoring, RUMR) decide from pure arithmetic over master state:
no data-dependent control flow survives except per-row branches, which
become masks.  The contract mirrors the scalar sources bit-for-bit: the
same tie-breaks (fewest pending chunks, then least pending work, then
lowest index), the same batch/size formulas evaluated with the same
operation order and associativity, so a lockstep row reproduces the
scalar engine's trajectory exactly when fed the same perturbation
factors.

Kernels are built from :class:`KernelSpec` objects (one per simulated
cell) by :meth:`KernelSpec.make_kernel`; specs with equal ``group_key``
may be merged into one kernel spanning many cells, padded to a common
worker count.  Padded worker slots must be made unselectable by the
*caller*: the engine reports a huge pending-chunk count for them, which
excludes them from every starved-worker argmin and idle test.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DISPATCH",
    "WAIT_FOR_COMPLETION",
    "DONE",
    "PAD_PENDING",
    "KernelSpec",
    "LockstepKernel",
    "expand_rows",
    "starved_argmin",
]

#: Per-row action codes written into the engine's ``action`` array.
DISPATCH = 0
WAIT_FOR_COMPLETION = 1
DONE = 2

#: Pending-chunk count reported for padded (nonexistent) worker slots.
#: Large enough that a pad can never win a fewest-pending tie or look
#: idle, small enough to stay exact in int64 arithmetic.
PAD_PENDING = 1 << 40


def expand_rows(values, reps, dtype=None) -> np.ndarray:
    """Repeat one per-spec value per repetition row (``np.repeat`` sugar)."""
    return np.repeat(np.asarray(values, dtype=dtype), reps, axis=0)


def starved_argmin(counts: np.ndarray, works: np.ndarray) -> np.ndarray:
    """Row-wise ``min((pending_chunks(i), pending_work(i), i))`` worker.

    Vectorizes the scalar sources' lexicographic candidate rule: fewest
    pending chunks first, least pending work among those, lowest index as
    the final tie-break (``argmax`` of a boolean row returns the first
    ``True``).
    """
    cmin = counts.min(axis=1, keepdims=True)
    tie = counts == cmin
    masked = np.where(tie, works, np.inf)
    wmin = masked.min(axis=1, keepdims=True)
    return (tie & (masked == wmin)).argmax(axis=1)


class KernelSpec:
    """One cell's decision-rule configuration, mergeable by ``group_key``.

    Produced by :meth:`repro.core.base.Scheduler.batch_kernel`.  Specs
    whose ``group_key`` match describe the same decision-rule *family*
    (identical code path, different parameters) and may be handed
    together to :meth:`make_kernel`, which expands them into per-row
    state — ``reps[i]`` consecutive rows per spec — padded to ``n_max``
    workers.
    """

    #: Hashable family identifier; equal keys merge into one kernel.
    group_key: tuple = ()
    #: Real worker count of this spec's platform.
    n: int = 0

    def make_kernel(
        self, specs: "list[KernelSpec]", reps: "list[int]", n_max: int
    ) -> "LockstepKernel":
        raise NotImplementedError


class LockstepKernel:
    """Per-row decision state for one merged group of cells."""

    def decide(
        self,
        counts: np.ndarray,
        works: np.ndarray,
        action: np.ndarray,
        worker: np.ndarray,
        size: np.ndarray,
        mask: "np.ndarray | None" = None,
    ) -> None:
        """Write each row's next decision into the output arrays.

        ``counts``/``works`` are (R, n_max) observed pending chunks and
        pending work; ``action``/``worker``/``size`` are (R,) outputs.
        With ``mask`` (boolean (R,)), only masked rows are decided and
        mutated — used by composite kernels (RUMR's phase-2 tail) to
        delegate a row subset; rows outside the mask are left untouched.
        Rows whose workload is exhausted write :data:`DONE` and must keep
        doing so on every later call (finished rows stay frozen).
        """
        raise NotImplementedError
