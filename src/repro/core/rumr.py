"""RUMR — Robust Uniform Multi-Round scheduling (the paper's contribution).

RUMR splits the workload into two consecutive phases:

* **Phase 1** (performance): a UMR schedule over ``W_total − W_phase2`` —
  small chunks first, growing geometrically, precomputed.  Chunks are
  dispatched eagerly (the serialized link paces them onto the no-idle
  timeline), and — unless ``out_of_order=False`` — the master may deviate
  from the planned worker order *within a round*, preferring a worker it
  has observed to be idle (§4.2 question (ii): "send a new chunk of data to
  a worker if it finishes prematurely", a greedy component that preserves
  the increasing-chunk-size property).
* **Phase 2** (robustness): Factoring over ``W_phase2``, self-scheduled,
  with decreasing chunks so late prediction errors have small absolute
  impact.

Design choices (§4.2), all reproduced here:

(i) **Phase split.**  With a known error magnitude ``e``:
    ``e ≤ 0`` → pure UMR; ``e ≥ 1`` → pure Factoring; otherwise
    ``W_phase2 = e·W_total`` *unless* the phase-2 share per worker would
    not cover one round of dispatch overhead:
    ``e·W/N < cLat + nLat·N  ⇒  no phase 2``  (homogeneous form; the
    heterogeneous generalization uses the mean ``cLat`` and ``Σ nLat_i``).
    The paper restates this threshold in §5.1 without the ``/N`` — both
    variants are implemented (``threshold_rule="per_worker"`` (default) /
    ``"total"``).  When ``e`` is unknown, a fixed phase-1 fraction is used
    instead (the paper finds 80 % a good practical choice).
(ii) **Out-of-order dispatch** in phase 1 (ablated by Fig 7).
(iii) **Phase-2 chunk floor**: ``(cLat + nLat·N)/e`` when ``e`` is known,
    ``cLat + nLat·N`` otherwise (the Hagerup rule), never below one
    workload unit.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.base import Dispatch, DispatchSource, MasterView, Scheduler, Wait
from repro.core.factoring import FactoringKernelSpec, FactoringSource
from repro.core.lockstep import DISPATCH, KernelSpec, LockstepKernel, expand_rows
from repro.core.umr import MAX_ROUNDS, UMRPlan, solve_umr
from repro.platform.spec import PlatformSpec

__all__ = [
    "RUMR",
    "RUMRSource",
    "RUMRKernel",
    "RUMRKernelSpec",
    "round_overhead",
    "phase2_workload",
    "phase2_min_chunk",
]


def round_overhead(platform: PlatformSpec) -> float:
    """Overhead of one round of (empty) chunks: ``cLat + nLat·N`` homog.

    The non-hidden latencies to send N messages plus the computation
    start-up of the last processor.  Heterogeneous platforms use the mean
    ``cLat`` and the sum of per-worker ``nLat``.
    """
    mean_clat = sum(w.cLat for w in platform) / platform.N
    return mean_clat + sum(w.nLat for w in platform)


def phase2_workload(
    platform: PlatformSpec,
    total_work: float,
    error: float,
    threshold_rule: str = "per_worker",
) -> float:
    """Workload reserved for phase 2 under the §4.2 heuristic."""
    if error <= 0.0:
        return 0.0
    if error >= 1.0:
        return total_work
    w2 = error * total_work
    overhead = round_overhead(platform)
    if threshold_rule == "per_worker":
        if w2 / platform.N < overhead:
            return 0.0
    elif threshold_rule == "total":
        if w2 < overhead:
            return 0.0
    else:
        raise ValueError(f"unknown threshold_rule {threshold_rule!r}")
    return w2


def phase2_min_chunk(
    platform: PlatformSpec,
    error: float | None,
    absolute_floor: float = 1.0,
    phase2_work: float | None = None,
) -> float:
    """Phase-2 chunk floor (§4.2 question (iii)).

    ``(cLat + nLat·N)/error`` when ``error`` is known, ``cLat + nLat·N``
    otherwise, but never below one workload unit.

    When ``phase2_work`` is given the floor is additionally capped at the
    per-worker phase-2 share ``phase2_work / N``.  This cap is an
    implementation-necessary clarification of the paper: at small error the
    uncapped floor ``overhead/error`` can exceed the whole phase-2 pool,
    collapsing phase 2 into one giant tail chunk on a single worker — the
    exact imbalance phase 2 exists to avoid, and contradicting Fig 4(a)'s
    RUMR ≈ UMR behaviour at small error.  See DESIGN.md.
    """
    overhead = round_overhead(platform)
    if error is not None and error > 0:
        floor = overhead / error
    else:
        floor = overhead
    if phase2_work is not None and phase2_work > 0:
        floor = min(floor, phase2_work / platform.N)
    return max(floor, absolute_floor)


class RUMRSource(DispatchSource):
    """Per-run state: an eager phase-1 plan chained into a factoring tail.

    Fault recovery (active only when the run's view reports
    ``faults_possible``, and only when the binding ``scheduler`` /
    ``platform`` / ``total_work`` references were provided):

    * A crash observed *before anything was dispatched* rebuilds the whole
      schedule on the surviving sub-platform — the run is then equivalent
      to starting on a platform without the dead worker.
    * A crash observed mid-phase-1 abandons the remaining UMR rounds (the
      no-idle construction they implement is void once a worker is gone)
      and falls back to crash-aware factoring over everything not yet
      dispatched — the paper's own robustness mechanism, promoted to the
      whole tail.
    * Crashes observed in phase 2 are handled by the phase-2 source
      itself (:class:`FactoringSource` filters crashed workers and
      re-absorbs announced losses, including losses of phase-1 chunks).
    """

    def __init__(
        self,
        plan: UMRPlan | None,
        phase2: DispatchSource | None,
        out_of_order: bool,
        scheduler: "RUMR | None" = None,
        platform: PlatformSpec | None = None,
        total_work: float = 0.0,
    ):
        self._out_of_order = out_of_order
        self._phase2 = phase2
        # Phase-1 rounds as mutable [round][worker -> size] maps, so the
        # greedy variant can reorder sends within the current round.
        self._rounds: list[dict[int, float]] = []
        if plan is not None:
            for j, row in enumerate(plan.chunk_sizes):
                entries = {i: size for i, size in enumerate(row) if size > 0.0}
                if entries:
                    self._rounds.append(entries)
        self._round_cursor = 0
        self.plan = plan
        self._scheduler = scheduler
        self._platform = platform
        self._total_work = total_work
        self._dispatched_gross = 0.0  # every dispatch, delivered or lost
        self._known_crashed: tuple[int, ...] = ()
        self._fallback: FactoringSource | None = None

    @property
    def in_phase1(self) -> bool:
        """True while phase-1 chunks remain to dispatch."""
        return self._round_cursor < len(self._rounds)

    def _pick_phase1_worker(self, view: MasterView, pending: dict[int, float]) -> int:
        ordered = sorted(pending)
        if not self._out_of_order:
            return ordered[0]
        idle = [i for i in ordered if view.is_idle(i)]
        if idle:
            # Prefer the idle worker with the least outstanding work (all
            # zero by definition of idle) — lowest index for determinism.
            return idle[0]
        return ordered[0]

    def _make_recovery_tail(self, pool: float, live: "list[int]") -> FactoringSource:
        scheduler = self._scheduler
        assert scheduler is not None and self._platform is not None
        sub = self._platform.subset(live) if live else self._platform
        return FactoringSource(
            n=self._platform.N,
            total_work=pool,
            factor=scheduler.factor,
            min_chunk=scheduler.min_chunk(sub, phase2_work=pool if pool > 0 else None),
            phase="rumr-recovery",
            lookahead=1,
        )

    def _on_crash(self, view: MasterView, crashed: tuple[int, ...]) -> None:
        self._known_crashed = crashed
        if not self.in_phase1 or self._scheduler is None or self._platform is None:
            # Phase-2 / fallback sources handle crashes themselves.
            return
        crashed_set = set(crashed)
        live = [i for i in range(self._platform.N) if i not in crashed_set]
        if self._dispatched_gross == 0.0:
            # Nothing committed yet: replan from scratch on the survivors,
            # as if the platform never had the dead workers.
            self._rounds = []
            self._round_cursor = 0
            self._phase2 = None
            if not live:
                return
            sub = self._platform.subset(live)
            scheduler = self._scheduler
            w1, w2 = scheduler.split(sub, self._total_work)
            if w1 > 0:
                plan = solve_umr(sub, w1, scheduler.max_rounds, scheduler.umr_method)
                self.plan = plan
                for row in plan.chunk_sizes:
                    entries = {
                        live[j]: size for j, size in enumerate(row) if size > 0.0
                    }
                    if entries:
                        self._rounds.append(entries)
            if w2 > 0:
                self._phase2 = FactoringSource(
                    n=self._platform.N,
                    total_work=w2,
                    factor=scheduler.factor,
                    min_chunk=scheduler.min_chunk(sub, phase2_work=w2),
                    phase="rumr-p2",
                    lookahead=1,
                )
        else:
            # Mid-phase-1 crash: the UMR rounds assumed the dead worker's
            # throughput, so abandon the plan and fall back to factoring
            # over everything not yet dispatched (announced losses rejoin
            # the fallback's pool as they are observed).
            self._rounds = []
            self._round_cursor = 0
            self._phase2 = None
            pool = max(0.0, self._total_work - self._dispatched_gross)
            self._fallback = self._make_recovery_tail(pool, live)

    def next_dispatch(self, view: MasterView) -> "Dispatch | Wait | None":
        if view.faults_possible:
            crashed = view.crashed_workers()
            if crashed != self._known_crashed:
                self._on_crash(view, crashed)
            if self._fallback is not None:
                action = self._fallback.next_dispatch(view)
                if isinstance(action, Dispatch):
                    self._dispatched_gross += action.size
                return action
        while self._round_cursor < len(self._rounds):
            pending = self._rounds[self._round_cursor]
            if not pending:
                self._round_cursor += 1
                continue
            worker = self._pick_phase1_worker(view, pending)
            size = pending.pop(worker)
            self._dispatched_gross += size
            return Dispatch(
                worker=worker, size=size, phase=f"rumr-p1-round{self._round_cursor}"
            )
        if self._phase2 is not None:
            action = self._phase2.next_dispatch(view)
            if isinstance(action, Dispatch):
                self._dispatched_gross += action.size
            return action
        if view.faults_possible and self._scheduler is not None and self._platform is not None:
            # Pure-UMR tail under faults: keep a zero-pool recovery source
            # alive so work lost after the last planned dispatch is still
            # re-dispatched rather than abandoned.
            crashed_set = set(view.crashed_workers())
            live = [i for i in range(self._platform.N) if i not in crashed_set]
            self._fallback = self._make_recovery_tail(0.0, live)
            action = self._fallback.next_dispatch(view)
            if isinstance(action, Dispatch):
                self._dispatched_gross += action.size
            return action
        return None


@dataclasses.dataclass(frozen=True)
class RUMRKernelSpec(KernelSpec):
    """One cell's RUMR state in lockstep form.

    ``rounds`` holds the phase-1 plan as dense per-round size rows
    (zeros for workers with nothing in that round); ``phase2`` is always
    present — a zero-workload factoring spec stands in for a skipped
    phase 2, so the skip condition does not fracture the group.
    ``total_work`` / ``clats`` / ``nlats`` / ``known_error`` carry the
    scheduler binding the scalar source uses for crash recovery (the
    undispatched pool and the survivor-platform chunk floor).
    """

    n: int = 0
    rounds: tuple = ()
    out_of_order: bool = True
    phase2: "KernelSpec | None" = None
    total_work: float = 0.0
    clats: tuple = ()
    nlats: tuple = ()
    known_error: "float | None" = None

    @property
    def group_key(self):
        return ("rumr", self.phase2.group_key)

    @property
    def handles_crashes(self):
        # The kernelized recovery re-arms the embedded phase-2 rows as
        # plain factoring tails — exactly what the scalar source builds.
        # A weighted phase 2 cannot be re-armed that way, so its crash
        # rows still defer to the scalar engine.
        return isinstance(self.phase2, FactoringKernelSpec)

    def deferred_rows(self, crash_time):
        if not self.handles_crashes:
            return np.isfinite(crash_time).any(axis=1)
        if not self.rounds:
            # No phase 1: every crash lands in the factoring tail, which
            # the embedded kernel replays exactly.
            return None
        # A crash already observable at the first decision (t = 0) hits
        # the scalar source's replan-from-scratch path (nothing was
        # dispatched yet): a fresh UMR solve on the survivors, which is
        # per-row by nature — defer those rows.
        defer = crash_time.min(axis=1) <= 0.0
        return defer if defer.any() else None

    def make_kernel(self, specs, reps, n_max):
        return RUMRKernel(specs, reps, n_max)


class RUMRKernel(LockstepKernel):
    """Lockstep rows of RUMR state: eager phase-1 rounds + factoring tail.

    Phase-1 rows always dispatch (matching :class:`RUMRSource`): the
    worker is the lowest-index one with a chunk left in the current
    round, or — with out-of-order dispatch — the lowest-index such
    worker the master observes idle.  When a row's round empties, its
    cursor advances; past the last round the row is delegated to the
    embedded phase-2 kernel (whose rows with zero workload answer DONE
    immediately — the skipped-phase-2 case).

    Crash recovery follows :class:`RUMRSource` bit for bit on the paths
    a merged group can express.  A crash observed mid-phase-1 abandons
    the row's remaining rounds and re-arms its slot in the embedded
    factoring kernel over everything not yet dispatched, with the chunk
    floor evaluated on the surviving sub-platform — the scalar source's
    fallback tail, built through :meth:`FactoringKernel.activate_row`.
    A fault row that outlives a pure-UMR plan arms the same tail with a
    zero pool, so work lost after the last planned dispatch is still
    re-dispatched.  Only the replan-from-scratch path (a crash already
    observable at ``t = 0``) stays per-row: the spec's
    :meth:`~RUMRKernelSpec.deferred_rows` routes those rows to the
    scalar engine.  Non-crash fault rows only shift observation times,
    which the engine already simulates exactly.
    """

    def __init__(self, specs, reps, n_max):
        rows = int(np.sum(reps))
        m_max = max(max((len(s.rounds) for s in specs), default=0), 1)
        sizes = np.zeros((len(specs), m_max, n_max))
        for i, s in enumerate(specs):
            for j, row in enumerate(s.rounds):
                sizes[i, j, : s.n] = row
        self._sizes = np.repeat(sizes, reps, axis=0)
        self._avail = self._sizes > 0.0
        self._num_rounds = expand_rows(
            [len(s.rounds) for s in specs], reps, dtype=np.int64
        )
        self._ooo = expand_rows([s.out_of_order for s in specs], reps, dtype=bool)
        self._any_ooo = bool(self._ooo.any())
        self._cursor = np.zeros(rows, dtype=np.int64)
        self._specs = list(specs)
        self._spec_of = np.repeat(np.arange(len(specs)), reps)
        self._total = expand_rows([s.total_work for s in specs], reps, dtype=float)
        self._zero_p2 = expand_rows(
            [s.phase2.total_work <= 0.0 for s in specs], reps, dtype=bool
        )
        # Gross phase-1 dispatch per row (delivered or lost), the scalar
        # source's ``_dispatched_gross`` at any point where it is read.
        self._gross = np.zeros(rows)
        # Rows whose factoring slot was re-armed as a recovery tail.
        self._armed = np.zeros(rows, dtype=bool)
        self._phase2 = specs[0].phase2.make_kernel(
            [s.phase2 for s in specs], reps, n_max
        )

    def compact(self, keep) -> None:
        self._sizes = self._sizes[keep]
        self._avail = self._avail[keep]
        self._num_rounds = self._num_rounds[keep]
        self._ooo = self._ooo[keep]
        self._any_ooo = bool(self._ooo.any())
        self._cursor = self._cursor[keep]
        self._spec_of = self._spec_of[keep]
        self._total = self._total[keep]
        self._zero_p2 = self._zero_p2[keep]
        self._gross = self._gross[keep]
        self._armed = self._armed[keep]
        self._phase2.compact(keep)

    def _recovery_min_chunk(self, r, crashed_row, pool):
        """``phase2_min_chunk`` on the survivors, scalar operation order.

        Reproduces ``RUMRSource._make_recovery_tail``'s floor: the round
        overhead of ``platform.subset(live)`` (the full platform when
        every worker is gone), divided by the known error when given,
        capped at the per-survivor pool share when ``pool`` is positive.
        """
        spec = self._specs[self._spec_of[r]]
        live = [
            j for j in range(spec.n) if crashed_row is None or not crashed_row[j]
        ]
        idxs = live if live else range(spec.n)
        n_sub = len(live) if live else spec.n
        mean_clat = sum(spec.clats[j] for j in idxs) / n_sub
        overhead = mean_clat + sum(spec.nlats[j] for j in idxs)
        e = spec.known_error
        floor = overhead / e if (e is not None and e > 0) else overhead
        if pool is not None and pool > 0:
            floor = min(floor, pool / n_sub)
        return max(floor, 1.0)

    def decide(self, counts, works, action, worker, size, mask=None, ctx=None):
        if ctx is not None and ctx.crashed is not None and ctx.crashed.any():
            # Mid-phase-1 crash: abandon the remaining rounds and fall
            # back to factoring over everything not yet dispatched —
            # the scalar source's recovery tail, observed at the same
            # decision point with the same survivor set.
            hit = (self._cursor < self._num_rounds) & ctx.crashed.any(axis=1)
            if mask is not None:
                hit &= mask
            for r in np.flatnonzero(hit):
                pool = max(0.0, float(self._total[r]) - float(self._gross[r]))
                mc = self._recovery_min_chunk(
                    r, ctx.crashed[r], pool if pool > 0 else None
                )
                self._phase2.activate_row(int(r), pool, mc)
                self._cursor[r] = self._num_rounds[r]
                self._armed[r] = True
        in_p1 = self._cursor < self._num_rounds
        if mask is None:
            p2_mask = ~in_p1
        else:
            p2_mask = mask & ~in_p1
            in_p1 = mask & in_p1
        if ctx is not None and ctx.fault_rows is not None:
            # Pure-UMR tail under faults: the scalar source keeps a
            # zero-pool recovery tail alive past the last planned
            # dispatch, so late losses are re-dispatched (with the chunk
            # floor of the then-surviving sub-platform) instead of
            # abandoned.  Armed exactly once, like the scalar source.
            arm = p2_mask & ctx.fault_rows & self._zero_p2 & ~self._armed
            if arm.any():
                crashed = ctx.crashed
                for r in np.flatnonzero(arm):
                    row = crashed[r] if crashed is not None else None
                    mc = self._recovery_min_chunk(r, row, None)
                    self._phase2.activate_row(int(r), 0.0, mc)
                    self._armed[r] = True
        if in_p1.any():
            rows = np.flatnonzero(in_p1)
            cur = self._cursor[rows]
            avail = self._avail[rows, cur]
            pick = avail.argmax(axis=1)
            if self._any_ooo:
                idle = avail & (counts[rows] == 0)
                use_idle = idle.any(axis=1) & self._ooo[rows]
                pick = np.where(use_idle, idle.argmax(axis=1), pick)
            action[rows] = DISPATCH
            worker[rows] = pick
            sz = self._sizes[rows, cur, pick]
            size[rows] = sz
            self._gross[rows] += sz
            self._avail[rows, cur, pick] = False
            exhausted = ~self._avail[rows, cur].any(axis=1)
            self._cursor[rows[exhausted]] += 1
        if p2_mask.any() or (ctx is not None and ctx.losses):
            self._phase2.decide(
                counts, works, action, worker, size, mask=p2_mask, ctx=ctx
            )


class RUMR(Scheduler):
    """The RUMR scheduler (see module docstring).

    Parameters
    ----------
    known_error:
        The error magnitude RUMR assumes (§4.1: estimated from history or
        monitoring services).  ``None`` means unknown: the phase split
        falls back to ``unknown_phase1_fraction`` and the chunk floor to
        the Hagerup rule.
    phase1_fraction:
        Force a fixed phase-1 share (0–1), bypassing the error heuristic
        *and* its threshold — the RUMR_50 … RUMR_90 variants of Fig 6.
    out_of_order:
        Allow greedy within-round reordering in phase 1 (Fig 7 ablates
        this with ``False``).
    threshold_rule:
        ``"per_worker"`` (§4.2, default) or ``"total"`` (§5.1 restatement).
    factor:
        Factoring denominator for phase 2 (2 = halve remaining per batch).
    umr_method / max_rounds:
        Passed through to the UMR solver for phase 1.
    unknown_phase1_fraction:
        Phase-1 share when ``known_error`` is ``None`` (default 0.8, the
        paper's recommended practical choice).
    """

    is_batch_dynamic = True
    batch_supports_faults = True

    def __init__(
        self,
        known_error: float | None = None,
        phase1_fraction: float | None = None,
        out_of_order: bool = True,
        threshold_rule: str = "per_worker",
        factor: float = 2.0,
        umr_method: str = "search",
        max_rounds: int = MAX_ROUNDS,
        unknown_phase1_fraction: float = 0.8,
        phase2_weighted: bool = False,
    ):
        if known_error is not None and (known_error < 0 or math.isnan(known_error)):
            raise ValueError(f"known_error must be >= 0, got {known_error}")
        if phase1_fraction is not None and not 0.0 <= phase1_fraction <= 1.0:
            raise ValueError(f"phase1_fraction must be in [0,1], got {phase1_fraction}")
        if not 0.0 <= unknown_phase1_fraction <= 1.0:
            raise ValueError(
                f"unknown_phase1_fraction must be in [0,1], got {unknown_phase1_fraction}"
            )
        if threshold_rule not in ("per_worker", "total"):
            raise ValueError(f"unknown threshold_rule {threshold_rule!r}")
        self.known_error = known_error
        self.phase1_fraction = phase1_fraction
        self.out_of_order = out_of_order
        self.threshold_rule = threshold_rule
        self.factor = factor
        self.umr_method = umr_method
        self.max_rounds = max_rounds
        self.unknown_phase1_fraction = unknown_phase1_fraction
        self.phase2_weighted = phase2_weighted
        if phase1_fraction is not None:
            self.name = f"RUMR_{int(round(phase1_fraction * 100))}"
        elif not out_of_order:
            self.name = "RUMR-plain"
        else:
            self.name = "RUMR"

    def split(self, platform: PlatformSpec, total_work: float) -> tuple[float, float]:
        """Return ``(W_phase1, W_phase2)`` for a run."""
        if self.phase1_fraction is not None:
            w1 = self.phase1_fraction * total_work
            return w1, total_work - w1
        if self.known_error is None:
            w1 = self.unknown_phase1_fraction * total_work
            return w1, total_work - w1
        w2 = phase2_workload(platform, total_work, self.known_error, self.threshold_rule)
        return total_work - w2, w2

    def min_chunk(self, platform: PlatformSpec, phase2_work: float | None = None) -> float:
        """The phase-2 chunk floor for a platform (optionally pool-capped)."""
        return phase2_min_chunk(platform, self.known_error, phase2_work=phase2_work)

    def create_source(self, platform: PlatformSpec, total_work: float) -> RUMRSource:
        w1, w2 = self.split(platform, total_work)
        plan = None
        if w1 > 0:
            plan = solve_umr(platform, w1, self.max_rounds, self.umr_method)
        phase2 = None
        if w2 > 0:
            # Classic self-scheduling lookahead of 1: committing chunks to
            # workers early (double-buffering) was measured to cost more in
            # lost adaptivity than it recovers in overlap — see the
            # lookahead ablation benchmark.
            if self.phase2_weighted:
                from repro.core.weighted_factoring import WeightedFactoringSource

                phase2 = WeightedFactoringSource(
                    platform=platform,
                    total_work=w2,
                    factor=self.factor,
                    min_chunk=self.min_chunk(platform, phase2_work=w2),
                    phase="rumr-p2",
                    lookahead=1,
                )
            else:
                phase2 = FactoringSource(
                    n=platform.N,
                    total_work=w2,
                    factor=self.factor,
                    min_chunk=self.min_chunk(platform, phase2_work=w2),
                    phase="rumr-p2",
                    lookahead=1,
                )
        return RUMRSource(
            plan=plan,
            phase2=phase2,
            out_of_order=self.out_of_order,
            scheduler=self,
            platform=platform,
            total_work=total_work,
        )

    def batch_kernel(self, platform: PlatformSpec, total_work: float) -> RUMRKernelSpec:
        w1, w2 = self.split(platform, total_work)
        rounds = []
        if w1 > 0:
            plan = solve_umr(platform, w1, self.max_rounds, self.umr_method)
            for row in plan.chunk_sizes:
                if any(s > 0.0 for s in row):
                    rounds.append(tuple(s if s > 0.0 else 0.0 for s in row))
        if w2 > 0:
            if self.phase2_weighted:
                from repro.core.weighted_factoring import WeightedFactoringKernelSpec

                s_tot = platform.total_compute_rate()
                phase2 = WeightedFactoringKernelSpec(
                    n=platform.N,
                    total_work=w2,
                    factor=self.factor,
                    min_chunk=self.min_chunk(platform, phase2_work=w2),
                    lookahead=1,
                    weights=tuple(w.S / s_tot for w in platform),
                )
            else:
                phase2 = FactoringKernelSpec(
                    n=platform.N,
                    total_work=w2,
                    factor=self.factor,
                    min_chunk=self.min_chunk(platform, phase2_work=w2),
                    lookahead=1,
                )
        else:
            # Skipped phase 2: a zero-workload factoring slot that crash
            # recovery can re-arm as the scalar source's fallback tail —
            # it must carry the scheduler's factor for that.
            phase2 = FactoringKernelSpec(
                n=platform.N, total_work=0.0, factor=self.factor
            )
        return RUMRKernelSpec(
            n=platform.N,
            rounds=tuple(rounds),
            out_of_order=self.out_of_order,
            phase2=phase2,
            total_work=total_work,
            clats=tuple(w.cLat for w in platform),
            nlats=tuple(w.nLat for w in platform),
            known_error=self.known_error,
        )
