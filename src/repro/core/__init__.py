"""Divisible-load scheduling algorithms.

This package contains the paper's contribution (:class:`~repro.core.rumr.RUMR`)
and every algorithm it is evaluated against:

* :class:`~repro.core.umr.UMR` — Uniform Multi-Round (Yang & Casanova,
  IPDPS'03): increasing chunk sizes, optimal round count, latency-aware.
* :class:`~repro.core.multi_installment.MultiInstallment` — MI-x
  (Bharadwaj et al.): increasing chunks, fixed round count, latency-blind.
* :class:`~repro.core.factoring.Factoring` — (Hummel): decreasing chunks,
  self-scheduled, prediction-free.
* :class:`~repro.core.fsc.FixedSizeChunking` — FSC (Hagerup / Kruskal &
  Weiss): optimal fixed chunk size, self-scheduled.
* :class:`~repro.core.one_round.OneRound` — classic single-installment
  divisible-load schedules (Rosenberg-style baseline; equals MI-1).

All schedulers share one runtime contract (:mod:`repro.core.base`): they are
*dispatch sources* that the simulation engines query whenever the master's
link is free.  Static algorithms replay a precomputed plan; dynamic ones
decide from the observable master state (and may wait for completions).
"""

from repro.core.adaptive import AdaptiveRUMR, OnlineErrorEstimator
from repro.core.base import (
    WAIT,
    DeadlockError,
    Dispatch,
    DispatchSource,
    MasterView,
    Scheduler,
    StaticPlanSource,
)
from repro.core.chunks import ChunkPlan, DispatchRecord
from repro.core.factoring import Factoring
from repro.core.fsc import FixedSizeChunking
from repro.core.multi_installment import MultiInstallment
from repro.core.one_round import EqualSplit, OneRound
from repro.core.registry import available_schedulers, is_static_algorithm, make_scheduler
from repro.core.rumr import RUMR
from repro.core.selection import select_workers
from repro.core.umr import UMR, UMRPlan, solve_umr
from repro.core.weighted_factoring import WeightedFactoring

__all__ = [
    "WAIT",
    "AdaptiveRUMR",
    "OnlineErrorEstimator",
    "ChunkPlan",
    "DeadlockError",
    "Dispatch",
    "DispatchRecord",
    "DispatchSource",
    "EqualSplit",
    "Factoring",
    "FixedSizeChunking",
    "MasterView",
    "MultiInstallment",
    "OneRound",
    "RUMR",
    "Scheduler",
    "StaticPlanSource",
    "UMR",
    "UMRPlan",
    "WeightedFactoring",
    "available_schedulers",
    "is_static_algorithm",
    "make_scheduler",
    "select_workers",
    "solve_umr",
]
