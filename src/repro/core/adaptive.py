"""Adaptive RUMR: online error estimation (the paper's future work, §6).

The paper's closing plan for the APST integration: *"This implementation
will make it possible to determine empirical performance prediction error
distributions … as the application runs.  Such information will be used
on-the-fly by RUMR to make relevant scheduling decisions."*  This module
implements that loop inside the simulator:

1. start dispatching the UMR plan for the **whole** workload (as if
   ``error = 0``), out-of-order like RUMR's phase 1;
2. after every observed completion, update an *online error estimate*:
   for a worker that received chunks back to back (never idled — which
   UMR's no-idle construction guarantees under small error), the interval
   between consecutive completion announcements equals the later chunk's
   effective compute duration.  The ratio of that interval to the
   predicted duration ``cLat + size/S`` is a sample of the perturbation
   factor; the estimate is the running standard deviation of the samples;
3. before dispatching each chunk, re-apply RUMR's phase-split heuristic
   with the current estimate: if the not-yet-dispatched plan work has
   shrunk to ``ê · W_total`` (and the threshold admits a phase 2), abandon
   the remaining plan and switch to a factoring tail over exactly the
   remaining workload, with the usual chunk floor evaluated at ``ê``.

The estimator is deliberately simple (no distribution fitting); the
adaptive benchmark compares it against RUMR given the true error and
against UMR, showing it recovers most of the oracle gap without being told
anything.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.base import Dispatch, DispatchSource, MasterView, Scheduler, Wait
from repro.core.factoring import FactoringKernelSpec, FactoringSource
from repro.core.lockstep import (
    DISPATCH,
    DONE,
    KernelSpec,
    LockstepKernel,
    expand_rows,
)
from repro.core.rumr import phase2_min_chunk, round_overhead
from repro.core.umr import MAX_ROUNDS, solve_umr
from repro.platform.spec import PlatformSpec

__all__ = [
    "AdaptiveRUMR",
    "AdaptiveRUMRKernel",
    "AdaptiveRUMRKernelSpec",
    "AdaptiveRUMRSource",
    "OnlineErrorEstimator",
]


class OnlineErrorEstimator:
    """Running estimate of the error magnitude from completion intervals.

    Consumes :class:`~repro.core.base.CompletionNote` streams; per worker,
    the interval between consecutive notes is the effective compute
    duration of the later chunk *provided the worker never idled in
    between* — guaranteed while the UMR plan holds, and detected (and the
    sample skipped) otherwise by comparing against the known dispatch
    history isn't possible from timing alone, so intervals longer than
    ``outlier_factor`` times the prediction are discarded as idle-gapped.
    """

    def __init__(self, platform: PlatformSpec, outlier_factor: float = 3.0):
        self._platform = platform
        self._outlier_factor = outlier_factor
        self._last_time: dict[int, float] = {}
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._seen = 0  # notes consumed so far

    @property
    def samples(self) -> int:
        """Number of ratio samples accumulated."""
        return self._count

    def estimate(self) -> float | None:
        """Current error-magnitude estimate (None before 2 samples)."""
        if self._count < 2:
            return None
        return math.sqrt(self._m2 / (self._count - 1))

    def _add_sample(self, ratio: float) -> None:
        # Welford's online variance around the *model* mean of 1.
        self._count += 1
        delta = ratio - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (ratio - self._mean)

    def consume(self, view: MasterView, chunk_sizes: dict[int, float]) -> None:
        """Fold all newly observed completions into the estimate.

        ``chunk_sizes`` maps chunk index → size (the source's dispatch
        history; the timing stream itself does not carry sizes for chunks
        the estimator has not seen).
        """
        notes = view.observed_completions()
        for note in notes[self._seen:]:
            size = chunk_sizes.get(note.chunk_index, note.size)
            spec = self._platform[note.worker]
            predicted = spec.compute_time(size)
            last = self._last_time.get(note.worker)
            self._last_time[note.worker] = note.time
            if last is None or predicted <= 0:
                continue
            interval = note.time - last
            ratio = interval / predicted
            if 0 < ratio <= self._outlier_factor:
                self._add_sample(ratio)
        self._seen = len(notes)


class AdaptiveRUMRSource(DispatchSource):
    """Per-run state of the adaptive scheduler (see module docstring)."""

    def __init__(
        self,
        platform: PlatformSpec,
        total_work: float,
        plan_rounds: list[dict[int, float]],
        factor: float,
        min_samples: int,
    ):
        self._platform = platform
        self._total_work = total_work
        self._rounds = plan_rounds
        self._round_cursor = 0
        self._factor = factor
        self._min_samples = min_samples
        self._dispatched = 0.0
        self._chunk_sizes: dict[int, float] = {}
        self._next_index = 0
        self._estimator = OnlineErrorEstimator(platform)
        self._phase2: FactoringSource | None = None
        self.switched_at: float | None = None  # diagnostics
        self.final_estimate: float | None = None

    def _remaining_plan_work(self) -> float:
        return self._total_work - self._dispatched

    def _should_switch(self, estimate: float) -> bool:
        remaining = self._remaining_plan_work()
        if remaining <= 0:
            return False
        if estimate <= 0:
            return False
        target_tail = min(estimate, 1.0) * self._total_work
        if remaining > target_tail:
            return False
        # RUMR's threshold, evaluated with the estimate.
        overhead = round_overhead(self._platform)
        return remaining / self._platform.N >= overhead or overhead == 0.0

    def _switch_to_phase2(self, view: MasterView, estimate: float) -> None:
        remaining = self._remaining_plan_work()
        self._rounds = []
        self._round_cursor = 0
        self._phase2 = FactoringSource(
            n=self._platform.N,
            total_work=remaining,
            factor=self._factor,
            min_chunk=phase2_min_chunk(self._platform, estimate, phase2_work=remaining),
            phase="adaptive-p2",
        )
        self.switched_at = view.now
        self.final_estimate = estimate

    def next_dispatch(self, view: MasterView) -> "Dispatch | Wait | None":
        if self._phase2 is not None:
            return self._phase2.next_dispatch(view)
        self._estimator.consume(view, self._chunk_sizes)
        estimate = self._estimator.estimate()
        if (
            estimate is not None
            and self._estimator.samples >= self._min_samples
            and self._should_switch(estimate)
        ):
            self._switch_to_phase2(view, estimate)
            return self._phase2.next_dispatch(view)

        while self._round_cursor < len(self._rounds):
            pending = self._rounds[self._round_cursor]
            if not pending:
                self._round_cursor += 1
                continue
            ordered = sorted(pending)
            idle = [i for i in ordered if view.is_idle(i)]
            worker = idle[0] if idle else ordered[0]
            size = pending.pop(worker)
            self._chunk_sizes[self._next_index] = size
            self._next_index += 1
            self._dispatched += size
            return Dispatch(
                worker=worker, size=size, phase=f"adaptive-p1-round{self._round_cursor}"
            )
        self.final_estimate = estimate
        return None


@dataclasses.dataclass(frozen=True)
class AdaptiveRUMRKernelSpec(KernelSpec):
    """One cell's adaptive-RUMR configuration in lockstep form.

    ``rounds`` is the dense UMR plan over the *whole* workload;
    ``clats`` / ``speeds`` carry the per-worker prediction model the
    online estimator evaluates; ``overhead`` is the platform's
    ``round_overhead`` (needed by the switch threshold and chunk floor).
    ``phase2`` is a degenerate zero-workload factoring spec re-armed per
    row at switch time via :meth:`FactoringKernel.activate_row`.
    """

    n: int = 0
    total_work: float = 0.0
    rounds: tuple = ()
    factor: float = 2.0
    min_samples: int = 8
    clats: tuple = ()
    speeds: tuple = ()
    overhead: float = 0.0
    phase2: "KernelSpec | None" = None

    group_key = ("adaptive-rumr",)
    wants_notes = True
    handles_crashes = True

    def make_kernel(self, specs, reps, n_max):
        return AdaptiveRUMRKernel(specs, reps, n_max)


class AdaptiveRUMRKernel(LockstepKernel):
    """Lockstep rows of adaptive-RUMR state.

    Phase 1 mirrors :class:`AdaptiveRUMRSource` exactly: each decision
    first folds the newly observed completion notes (delivered by the
    engine through the step context in scalar observation order) into
    the per-row Welford estimator, then evaluates the switch condition,
    and otherwise dispatches the next planned chunk to the lowest-index
    idle worker holding one (falling back to the lowest-index holder).
    A row that switches re-arms its slot in the embedded factoring
    kernel over exactly the undispatched remainder, with the chunk floor
    evaluated at the estimate — and never consumes notes again.

    Crash behaviour mirrors the scalar source exactly: phase 1 ignores
    crashes outright (the plan keeps dispatching, and a row that
    exhausts it unswitched finishes even with chunks outstanding), so
    losses observed before the switch are *queued* per row and replayed
    into the factoring slot at switch time — the scalar equivalent is
    the fresh :class:`FactoringSource`, whose loss cursor starts at zero
    and therefore absorbs every loss observed since the run began.
    Post-switch rows inherit :class:`FactoringKernel`'s full recovery
    path.  The estimator itself is timing-based and follows pause /
    slowdown / spike faults through the engine's shifted completion
    times.
    """

    _OUTLIER_FACTOR = 3.0

    def __init__(self, specs, reps, n_max):
        rows = int(np.sum(reps))
        m_max = max(max((len(s.rounds) for s in specs), default=0), 1)
        sizes = np.zeros((len(specs), m_max, n_max))
        clats = np.zeros((len(specs), n_max))
        speeds = np.ones((len(specs), n_max))
        for i, s in enumerate(specs):
            for j, row in enumerate(s.rounds):
                sizes[i, j, : s.n] = row
            clats[i, : s.n] = s.clats
            speeds[i, : s.n] = s.speeds
        self._sizes = np.repeat(sizes, reps, axis=0)
        self._avail = self._sizes > 0.0
        self._clat = np.repeat(clats, reps, axis=0)
        self._speed = np.repeat(speeds, reps, axis=0)
        self._num_rounds = expand_rows(
            [len(s.rounds) for s in specs], reps, dtype=np.int64
        )
        self._cursor = np.zeros(rows, dtype=np.int64)
        self._total = expand_rows([s.total_work for s in specs], reps, dtype=float)
        self._n_float = expand_rows([float(s.n) for s in specs], reps, dtype=float)
        self._overhead = expand_rows([s.overhead for s in specs], reps, dtype=float)
        self._min_samples = expand_rows(
            [s.min_samples for s in specs], reps, dtype=np.int64
        )
        self._dispatched = np.zeros(rows)
        # Welford state around the model mean of 1, one estimator per row.
        self._est_count = np.zeros(rows, dtype=np.int64)
        self._est_mean = np.zeros(rows)
        self._est_m2 = np.zeros(rows)
        self._last_time = np.full((rows, n_max), np.nan)
        self._switched = np.zeros(rows, dtype=bool)
        # Losses observed while a row is still on the plan (which ignores
        # them, like the scalar phase 1); replayed in observation order
        # into the factoring slot if and when the row switches.
        self._queued_losses: dict[int, list[float]] = {}
        self._phase2 = specs[0].phase2.make_kernel(
            [s.phase2 for s in specs], reps, n_max
        )

    def compact(self, keep) -> None:
        self._sizes = self._sizes[keep]
        self._avail = self._avail[keep]
        self._clat = self._clat[keep]
        self._speed = self._speed[keep]
        self._num_rounds = self._num_rounds[keep]
        self._cursor = self._cursor[keep]
        self._total = self._total[keep]
        self._n_float = self._n_float[keep]
        self._overhead = self._overhead[keep]
        self._min_samples = self._min_samples[keep]
        self._dispatched = self._dispatched[keep]
        self._est_count = self._est_count[keep]
        self._est_mean = self._est_mean[keep]
        self._est_m2 = self._est_m2[keep]
        self._last_time = self._last_time[keep]
        self._switched = self._switched[keep]
        if self._queued_losses:
            remap = {int(old): new for new, old in enumerate(keep)}
            self._queued_losses = {
                remap[r]: sizes
                for r, sizes in self._queued_losses.items()
                if r in remap
            }
        self._phase2.compact(keep)

    def _consume_notes(self, notes) -> None:
        # Sequential per-note Welford updates in observation order —
        # bit-compatible with OnlineErrorEstimator.consume.
        switched = self._switched
        clat = self._clat
        speed = self._speed
        last = self._last_time
        count = self._est_count
        mean = self._est_mean
        m2 = self._est_m2
        for r, time, w, sz in notes:
            if switched[r]:
                continue
            predicted = clat[r, w] + sz / speed[r, w]
            prev = last[r, w]
            last[r, w] = time
            if np.isnan(prev) or predicted <= 0:
                continue
            ratio = (time - prev) / predicted
            if 0 < ratio <= self._OUTLIER_FACTOR:
                c = count[r] + 1
                count[r] = c
                delta = ratio - mean[r]
                mean[r] += delta / c
                m2[r] += delta * (ratio - mean[r])

    def decide(self, counts, works, action, worker, size, mask=None, ctx=None):
        if ctx is not None and ctx.notes:
            self._consume_notes(ctx.notes)
        if ctx is not None and ctx.losses:
            # The plan ignores losses; hold them back from the factoring
            # slots (whose absorption is unmasked) and replay at switch
            # time.  Losses of already-switched rows pass through.
            kept = []
            for r, s in ctx.losses:
                if self._switched[r]:
                    kept.append((r, s))
                else:
                    self._queued_losses.setdefault(int(r), []).append(s)
            ctx.losses = kept
        p1 = ~self._switched
        if mask is not None:
            p1 = p1 & mask
        if p1.any():
            remaining = self._total - self._dispatched
            est = np.sqrt(self._est_m2 / np.maximum(self._est_count - 1, 1))
            switch = (
                p1
                & (self._est_count >= 2)
                & (self._est_count >= self._min_samples)
                & (remaining > 0)
                & (est > 0)
                & (remaining <= np.minimum(est, 1.0) * self._total)
                & (
                    (remaining / self._n_float >= self._overhead)
                    | (self._overhead == 0.0)
                )
            )
            for r in np.flatnonzero(switch):
                estimate = float(est[r])
                pool = float(remaining[r])
                floor = self._overhead[r] / estimate
                floor = min(floor, pool / self._n_float[r])
                self._phase2.activate_row(r, pool, max(floor, 1.0))
                # The scalar switch builds a fresh FactoringSource whose
                # loss cursor starts at zero: every loss observed since
                # the run began rejoins the pool, in observation order.
                for s in self._queued_losses.pop(int(r), ()):
                    self._phase2.absorb_loss(int(r), s)
            self._switched |= switch
            p1 = p1 & ~switch
            act = p1 & (self._cursor < self._num_rounds)
            action[p1 & ~act] = DONE
            rows = np.flatnonzero(act)
            if rows.size:
                cur = self._cursor[rows]
                avail = self._avail[rows, cur]
                pick = avail.argmax(axis=1)
                idle = avail & (counts[rows] == 0)
                use_idle = idle.any(axis=1)
                pick = np.where(use_idle, idle.argmax(axis=1), pick)
                action[rows] = DISPATCH
                worker[rows] = pick
                sz = self._sizes[rows, cur, pick]
                size[rows] = sz
                self._dispatched[rows] += sz
                self._avail[rows, cur, pick] = False
                exhausted = ~self._avail[rows, cur].any(axis=1)
                self._cursor[rows[exhausted]] += 1
        p2_mask = self._switched if mask is None else self._switched & mask
        if p2_mask.any():
            self._phase2.decide(
                counts, works, action, worker, size, mask=p2_mask, ctx=ctx
            )


class AdaptiveRUMR(Scheduler):
    """RUMR without a priori error knowledge: estimate online, switch late.

    Parameters
    ----------
    factor:
        Factoring denominator for the tail.
    min_samples:
        Completion-interval samples required before the estimate is
        trusted (default 8).
    umr_method / max_rounds:
        Passed to the UMR solver for the initial plan.
    """

    is_batch_dynamic = True
    batch_supports_faults = True

    def __init__(
        self,
        factor: float = 2.0,
        min_samples: int = 8,
        umr_method: str = "search",
        max_rounds: int = MAX_ROUNDS,
    ):
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        self.factor = factor
        self.min_samples = min_samples
        self.umr_method = umr_method
        self.max_rounds = max_rounds
        self.name = "AdaptiveRUMR"

    def create_source(self, platform: PlatformSpec, total_work: float) -> AdaptiveRUMRSource:
        plan = solve_umr(platform, total_work, self.max_rounds, self.umr_method)
        rounds = [
            {i: size for i, size in enumerate(row) if size > 0.0}
            for row in plan.chunk_sizes
        ]
        rounds = [r for r in rounds if r]
        return AdaptiveRUMRSource(
            platform=platform,
            total_work=total_work,
            plan_rounds=rounds,
            factor=self.factor,
            min_samples=self.min_samples,
        )

    def batch_kernel(
        self, platform: PlatformSpec, total_work: float
    ) -> AdaptiveRUMRKernelSpec:
        plan = solve_umr(platform, total_work, self.max_rounds, self.umr_method)
        rounds = []
        for row in plan.chunk_sizes:
            if any(s > 0.0 for s in row):
                rounds.append(tuple(s if s > 0.0 else 0.0 for s in row))
        return AdaptiveRUMRKernelSpec(
            n=platform.N,
            total_work=total_work,
            rounds=tuple(rounds),
            factor=self.factor,
            min_samples=self.min_samples,
            clats=tuple(w.cLat for w in platform),
            speeds=tuple(w.S for w in platform),
            overhead=round_overhead(platform),
            phase2=FactoringKernelSpec(
                n=platform.N, total_work=0.0, factor=self.factor
            ),
        )
