"""Feasibility checks for multi-round divisible-load scheduling.

The central condition (from the UMR paper, referenced as the "full platform
utilization conditions" in §5 of the RUMR paper) is bandwidth sufficiency:
the master must be able to feed all workers faster than they consume work,

    Σ_i  S_i / B_i  <  1 .

For a homogeneous platform this reads ``N·S < B``; Table 1 enforces it by
construction with ``B = (1.2 … 2.0)·N·S``.  When the condition fails, chunk
sizes in a no-idle multi-round schedule would have to *shrink* geometrically
(θ < 1) and the platform cannot be fully utilized — the paper prescribes
dropping workers until the condition holds (see
:func:`repro.core.selection.select_workers`).
"""

from __future__ import annotations

from repro.platform.spec import PlatformSpec

__all__ = [
    "PlatformError",
    "full_utilization_fraction",
    "satisfies_full_utilization",
    "validate_platform",
]


class PlatformError(ValueError):
    """Raised when a platform cannot support a requested schedule."""


def full_utilization_fraction(platform: PlatformSpec) -> float:
    """Return ``Σ S_i/B_i``; values below 1 allow increasing-chunk rounds."""
    return platform.utilization_sum()


def satisfies_full_utilization(platform: PlatformSpec) -> bool:
    """True when the master link can keep every worker busy (θ > 1)."""
    return full_utilization_fraction(platform) < 1.0


def validate_platform(platform: PlatformSpec, require_full_utilization: bool = False) -> None:
    """Sanity-check a platform, optionally enforcing bandwidth sufficiency.

    Raises
    ------
    PlatformError
        If the platform has no workers with positive rates (impossible by
        construction of :class:`~repro.platform.spec.WorkerSpec`) or, when
        ``require_full_utilization`` is set, if ``Σ S_i/B_i >= 1``.
    """
    if platform.N < 1:
        raise PlatformError("platform has no workers")
    if require_full_utilization and not satisfies_full_utilization(platform):
        raise PlatformError(
            "platform violates the full-utilization condition: "
            f"sum(S_i/B_i) = {full_utilization_fraction(platform):.4f} >= 1; "
            "reduce the worker set (see repro.core.selection.select_workers)"
        )
