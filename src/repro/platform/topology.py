"""Interconnect topologies between the master and its workers.

The paper derives everything on a one-level *star*: the master owns one
serialized link and each worker hangs directly off it.  The strongest
related work lives on other shapes — divisible loads on linear daisy
chains (Gallet/Robert/Vivien) and on resource-sharing networks with
bandwidth contention (Wu/Cao/Robertazzi) — so this module makes the
interconnect a pluggable axis:

``star``
    The degenerate case.  Binding a :class:`StarTopology` leaves both
    engines on their legacy code paths, so a star-topology run is
    *bitwise identical* to a run with no topology at all.
``chain:n=8,relay=sf|ct``
    A linear daisy chain: the master feeds worker 0, worker 0 forwards
    to worker 1, and so on.  ``relay=sf`` (store-and-forward, the
    default) serializes each hop — a chunk fully occupies link ``j``
    (cost ``nLat_j + c/B_j``) before entering link ``j+1`` — while
    ``relay=ct`` (cut-through) models wormhole forwarding: only the
    first link is a contended resource and the rest of the chain is a
    contention-free latency/rate pipe.
``tree:fanout=R``
    A two-level tree of sub-stars: the workers are split into
    ``min(R, N)`` contiguous groups, the first worker of each group is
    its *relay root* (it computes **and** forwards), and the master
    reaches a non-root worker through its root's link followed by one
    serialized relay hop.  ``fanout=N`` makes every group a singleton —
    exactly the star.
``sharedbw:cap=C``
    A star whose outbound link is a shared medium: concurrent transfers
    split the total capacity ``C`` max-min fairly (each additionally
    capped by its worker's ``B_i``); the master pays only ``nLat_i``
    serially per dispatch.  Genuine fluid bandwidth sharing needs an
    event calendar, so this shape is DES-only (see
    :mod:`repro.sim.engine`); the fast engine declines it.

Two artifacts come out of a topology:

* :meth:`Topology.bind` compiles per-worker :class:`LinkPath` transport
  recipes (master-link occupancy + serialized relay hops + a
  contention-free tail) that *both* engines evaluate with the same float
  expressions — the basis of the cross-topology conformance suite;
* :meth:`Topology.effective_platform` folds the end-to-end transport
  cost into a per-worker ``(rate, latency)`` view — an ordinary
  :class:`~repro.platform.spec.PlatformSpec` — so UMR/RUMR/Factoring
  plan against the topology without knowing it exists.  Workers whose
  path is relay-free keep their *original* :class:`WorkerSpec` object,
  which is what makes the degenerate cases bitwise exact.

The spec grammar mirrors the fault/arrival grammars
(:func:`repro.errors.faults.make_fault_model`); ``str(topology)`` is the
canonical spelling and round-trips through :func:`make_topology`.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.platform.spec import PlatformSpec, WorkerSpec

__all__ = [
    "TopologyError",
    "RelayHop",
    "LinkPath",
    "BoundTopology",
    "Topology",
    "StarTopology",
    "ChainTopology",
    "TreeTopology",
    "SharedBandwidthTopology",
    "make_topology",
    "TOPOLOGY_KINDS",
]

#: The closed set of topology kinds this module parses.
TOPOLOGY_KINDS = ("star", "chain", "tree", "sharedbw")


class TopologyError(ValueError):
    """Raised for malformed topology specs or platform/topology mismatches."""


@dataclasses.dataclass(frozen=True, slots=True)
class RelayHop:
    """One serialized relay link on a chunk's path.

    ``resource`` indexes the bound topology's relay-link busy array —
    chunks crossing the same resource are FIFO-serialized, exactly like
    the master's own link.
    """

    resource: int
    nLat: float
    B: float

    def hop_time(self, chunk: float) -> float:
        """Occupancy of this relay link for ``chunk`` units.

        The same expression as :meth:`WorkerSpec.link_time`, so a hop
        over a worker's own link costs exactly what the star would have
        charged on the master link.
        """
        return self.nLat + (0.0 if math.isinf(self.B) else chunk / self.B)


@dataclasses.dataclass(frozen=True, slots=True)
class LinkPath:
    """The transport recipe from the master to one worker.

    A chunk's journey decomposes into three stages, each evaluated with
    identical float expressions by the fast engine (closed form) and the
    DES engine (process realization):

    * *occupancy* — the exclusive master-link hold,
      ``occ_nLat + c/occ_B`` (perturbed by the communication error
      model, like the star's link time);
    * *hops* — zero or more serialized :class:`RelayHop` crossings, each
      starting at ``max(chunk available, link free)``;
    * *tail* — a contention-free latency/rate pipe,
      ``tail_lat + c/tail_B`` (cut-through chains; ``tail_B = inf``
      means latency only, ``tail_lat = 0`` and ``tail_B = inf`` mean no
      tail at all).

    The worker's ``tLat`` is *not* part of the path — engines add it
    after the path ends, exactly as on the star.
    """

    occ_nLat: float
    occ_B: float
    hops: tuple[RelayHop, ...] = ()
    tail_lat: float = 0.0
    tail_B: float = math.inf

    def occupancy_time(self, chunk: float) -> float:
        """Exclusive master-link occupancy for ``chunk`` units.

        Bitwise identical to :meth:`WorkerSpec.link_time` when the path
        uses the worker's own link — the star-degeneracy anchor.
        """
        return self.occ_nLat + (0.0 if math.isinf(self.occ_B) else chunk / self.occ_B)

    @property
    def has_tail(self) -> bool:
        """Whether the contention-free tail stage is non-trivial."""
        return self.tail_lat > 0.0 or not math.isinf(self.tail_B)

    def tail_time(self, chunk: float) -> float:
        """Duration of the contention-free tail for ``chunk`` units."""
        return self.tail_lat + (0.0 if math.isinf(self.tail_B) else chunk / self.tail_B)

    def traverse(
        self,
        chunk: float,
        send_end: float,
        relay_busy: list[float],
        hop_ends: "list[tuple[int, float]] | None" = None,
    ) -> float:
        """Advance a chunk from link release to the end of its path.

        Mutates ``relay_busy`` (the per-resource busy chain) and returns
        the path-end time; ``arrival = traverse(...) + tLat``.  The DES
        engine's relay processes realize the exact same ``max``/``+``
        float operations, so this prediction is what the calendar lands
        on.  ``hop_ends`` (when given) collects ``(resource, end_time)``
        per hop for ``link_hop`` event emission.
        """
        t = send_end
        for hop in self.hops:
            busy = relay_busy[hop.resource]
            start = busy if busy > t else t
            t = start + hop.hop_time(chunk)
            relay_busy[hop.resource] = t
            if hop_ends is not None:
                hop_ends.append((hop.resource, t))
        if self.has_tail:
            t = t + self.tail_time(chunk)
        return t


@dataclasses.dataclass(frozen=True)
class BoundTopology:
    """A topology compiled against one concrete platform.

    ``paths[i]`` is worker ``i``'s :class:`LinkPath`; ``num_relay_links``
    sizes the per-resource busy arrays; ``cap`` is the shared-medium
    capacity (``inf`` for every kind except ``sharedbw``).
    """

    kind: str
    topology: "Topology"
    platform: PlatformSpec
    paths: tuple[LinkPath, ...]
    num_relay_links: int = 0
    cap: float = math.inf


class Topology:
    """Base class of interconnect topologies (see the module docstring)."""

    kind: typing.ClassVar[str] = ""
    #: Expected worker count (``None`` = any); validated at bind time.
    n: int | None = None

    def bind(self, platform: PlatformSpec) -> BoundTopology:
        """Compile per-worker transport paths against ``platform``."""
        raise NotImplementedError

    def effective_platform(self, platform: PlatformSpec) -> PlatformSpec:
        """The per-worker (rate, latency) view schedulers plan against.

        A *heuristic* summary — relay contention is invisible to it; the
        simulation truth lives in the engines.  Relay-free workers keep
        their original :class:`WorkerSpec` so degenerate topologies plan
        bitwise identically to the star.
        """
        raise NotImplementedError

    def _check_n(self, platform: PlatformSpec) -> None:
        if self.n is not None and platform.N != self.n:
            raise TopologyError(
                f"{self} declares n={self.n} workers but the platform has "
                f"N={platform.N}"
            )


def _num(value: float) -> str:
    """Canonical spec spelling of a number (round-trips through float)."""
    return repr(value) if value != int(value) else str(int(value))


def _harmonic_B(rates: typing.Iterable[float]) -> float:
    """End-to-end rate of serial links: ``1 / Σ 1/B_j`` (inf-safe)."""
    inv = sum(0.0 if math.isinf(b) else 1.0 / b for b in rates)
    return math.inf if inv <= 0.0 else 1.0 / inv


@dataclasses.dataclass(frozen=True)
class StarTopology(Topology):
    """The paper's one-level star — the degenerate topology."""

    kind: typing.ClassVar[str] = "star"
    n: int | None = None

    def bind(self, platform: PlatformSpec) -> BoundTopology:
        self._check_n(platform)
        paths = tuple(LinkPath(w.nLat, w.B) for w in platform.workers)
        return BoundTopology("star", self, platform, paths)

    def effective_platform(self, platform: PlatformSpec) -> PlatformSpec:
        self._check_n(platform)
        # The very same object: schedulers (and their identity-keyed plan
        # caches) cannot tell a star topology from no topology at all.
        return platform

    def __str__(self) -> str:
        return "star" if self.n is None else f"star:n={self.n}"


@dataclasses.dataclass(frozen=True)
class ChainTopology(Topology):
    """A linear daisy chain: master → w0 → w1 → … → w_{N-1}.

    The master's serialized link carries every chunk over the first hop
    (worker 0's ``nLat``/``B``); deeper workers are reached through
    their predecessors.  ``relay`` picks the forwarding discipline:
    ``"sf"`` (store-and-forward) serializes each intermediate link,
    ``"ct"`` (cut-through) treats the chain beyond the first link as a
    contention-free pipe running at the path's bottleneck rate.
    """

    kind: typing.ClassVar[str] = "chain"
    n: int | None = None
    relay: str = "sf"

    def __post_init__(self) -> None:
        if self.relay not in ("sf", "ct"):
            raise TopologyError(
                f"chain relay must be 'sf' or 'ct', got {self.relay!r}"
            )
        if self.n is not None and self.n < 1:
            raise TopologyError(f"chain n must be >= 1, got {self.n}")

    def bind(self, platform: PlatformSpec) -> BoundTopology:
        self._check_n(platform)
        w = platform.workers
        paths: list[LinkPath] = []
        for i in range(platform.N):
            if self.relay == "sf":
                hops = tuple(
                    RelayHop(resource=j - 1, nLat=w[j].nLat, B=w[j].B)
                    for j in range(1, i + 1)
                )
                paths.append(LinkPath(w[0].nLat, w[0].B, hops=hops))
            else:
                tail_lat = sum(w[j].nLat for j in range(1, i + 1))
                # The pipe adds the bottleneck's per-unit cost beyond what
                # the first link already charged: 1/B_eff = 1/minB - 1/B_0.
                min_b = min(w[j].B for j in range(i + 1))
                inv = (0.0 if math.isinf(min_b) else 1.0 / min_b) - (
                    0.0 if math.isinf(w[0].B) else 1.0 / w[0].B
                )
                tail_b = math.inf if inv <= 0.0 else 1.0 / inv
                paths.append(
                    LinkPath(w[0].nLat, w[0].B, tail_lat=tail_lat, tail_B=tail_b)
                )
        num_links = platform.N - 1 if self.relay == "sf" else 0
        return BoundTopology("chain", self, platform, tuple(paths), num_links)

    def effective_platform(self, platform: PlatformSpec) -> PlatformSpec:
        self._check_n(platform)
        w = platform.workers
        out: list[WorkerSpec] = [w[0]]  # relay-free: the original object
        for i in range(1, platform.N):
            if self.relay == "sf":
                b_eff = _harmonic_B(w[j].B for j in range(i + 1))
            else:
                b_eff = min(w[j].B for j in range(i + 1))
            t_lat = w[i].tLat + sum(w[j].nLat for j in range(1, i + 1))
            out.append(
                WorkerSpec(
                    S=w[i].S, B=b_eff, cLat=w[i].cLat, nLat=w[0].nLat, tLat=t_lat
                )
            )
        return PlatformSpec(out)

    def __str__(self) -> str:
        parts = [] if self.n is None else [f"n={self.n}"]
        parts.append(f"relay={self.relay}")
        return "chain:" + ",".join(parts)


@dataclasses.dataclass(frozen=True)
class TreeTopology(Topology):
    """A two-level tree of sub-stars.

    Workers are split into ``min(fanout, N)`` contiguous groups of
    near-equal size (earlier groups take the remainder).  The first
    worker of each group is the *relay root*: the master reaches any
    group member over the root's link, and non-root members cost one
    additional serialized hop over the root's outbound relay link (one
    relay resource per group).  Roots compute like ordinary workers —
    ``fanout >= N`` therefore degenerates to the exact star.
    """

    kind: typing.ClassVar[str] = "tree"
    fanout: int = 2
    n: int | None = None

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise TopologyError(f"tree fanout must be >= 1, got {self.fanout}")
        if self.n is not None and self.n < 1:
            raise TopologyError(f"tree n must be >= 1, got {self.n}")

    def groups(self, num_workers: int) -> tuple[tuple[int, ...], ...]:
        """The contiguous worker groups for an ``num_workers`` platform."""
        r = min(self.fanout, num_workers)
        base, extra = divmod(num_workers, r)
        out: list[tuple[int, ...]] = []
        start = 0
        for g in range(r):
            size = base + (1 if g < extra else 0)
            out.append(tuple(range(start, start + size)))
            start += size
        return tuple(out)

    def bind(self, platform: PlatformSpec) -> BoundTopology:
        self._check_n(platform)
        w = platform.workers
        groups = self.groups(platform.N)
        paths: list[LinkPath | None] = [None] * platform.N
        for g, members in enumerate(groups):
            root = members[0]
            paths[root] = LinkPath(w[root].nLat, w[root].B)
            for child in members[1:]:
                paths[child] = LinkPath(
                    w[root].nLat,
                    w[root].B,
                    hops=(RelayHop(resource=g, nLat=w[child].nLat, B=w[child].B),),
                )
        return BoundTopology(
            "tree", self, platform, tuple(paths), num_relay_links=len(groups)
        )

    def effective_platform(self, platform: PlatformSpec) -> PlatformSpec:
        self._check_n(platform)
        w = platform.workers
        out: list[WorkerSpec | None] = [None] * platform.N
        for members in self.groups(platform.N):
            root = members[0]
            out[root] = w[root]  # relay-free: the original object
            for child in members[1:]:
                out[child] = WorkerSpec(
                    S=w[child].S,
                    B=_harmonic_B((w[root].B, w[child].B)),
                    cLat=w[child].cLat,
                    nLat=w[root].nLat,
                    tLat=w[child].tLat + w[child].nLat,
                )
        return PlatformSpec(out)

    def __str__(self) -> str:
        parts = [f"fanout={self.fanout}"]
        if self.n is not None:
            parts.append(f"n={self.n}")
        return "tree:" + ",".join(parts)


@dataclasses.dataclass(frozen=True)
class SharedBandwidthTopology(Topology):
    """A star whose outbound link is a shared medium of capacity ``cap``.

    Concurrent transfers split ``cap`` max-min fairly (water-filling),
    each additionally limited by its worker's ``B_i``; the master pays
    only the per-transfer ``nLat_i`` serially, then the chunk's bytes
    flow under fair sharing.  Fluid rate reallocation on every
    join/leave needs an event calendar, so this shape is implemented by
    the DES engine only; :func:`repro.sim.fastsim.simulate_fast` raises
    and :func:`repro.sim.result.simulate` routes it to DES.  Fault
    injection is unsupported (loss classification needs a completion
    time predictable at dispatch, which bandwidth sharing forbids).
    """

    kind: typing.ClassVar[str] = "sharedbw"
    cap: float = 1.0
    n: int | None = None

    def __post_init__(self) -> None:
        if not (self.cap > 0 and math.isfinite(self.cap)):
            raise TopologyError(
                f"sharedbw cap must be finite and > 0, got {self.cap}"
            )
        if self.n is not None and self.n < 1:
            raise TopologyError(f"sharedbw n must be >= 1, got {self.n}")

    def bind(self, platform: PlatformSpec) -> BoundTopology:
        self._check_n(platform)
        paths = tuple(LinkPath(w.nLat, w.B) for w in platform.workers)
        return BoundTopology("sharedbw", self, platform, paths, cap=self.cap)

    def effective_platform(self, platform: PlatformSpec) -> PlatformSpec:
        self._check_n(platform)
        # Pessimistic equal-share view: every worker sees cap/N unless its
        # own link is slower still.
        share = self.cap / platform.N
        return PlatformSpec(
            WorkerSpec(
                S=w.S, B=min(w.B, share), cLat=w.cLat, nLat=w.nLat, tLat=w.tLat
            )
            for w in platform.workers
        )

    def __str__(self) -> str:
        parts = [f"cap={_num(self.cap)}"]
        if self.n is not None:
            parts.append(f"n={self.n}")
        return "sharedbw:" + ",".join(parts)


def _parse_params(body: str, kind: str) -> dict[str, str]:
    params: dict[str, str] = {}
    body = body.strip()
    if not body:
        return params
    for item in body.split(","):
        key, sep, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not key or not value:
            raise TopologyError(
                f"malformed parameter {item!r} in topology spec kind {kind!r}"
            )
        if key in params:
            raise TopologyError(f"duplicate parameter {key!r} in {kind!r} spec")
        params[key] = value
    return params


def _take_int(params: dict[str, str], kind: str, name: str) -> int | None:
    raw = params.pop(name, None)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise TopologyError(
            f"{kind} parameter {name}={raw!r} is not an integer"
        ) from None


def _take_float(params: dict[str, str], kind: str, name: str) -> float | None:
    raw = params.pop(name, None)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise TopologyError(f"{kind} parameter {name}={raw!r} is not a number") from None


def make_topology(spec: "str | Topology | None") -> Topology:
    """Parse a topology spec string (or pass a :class:`Topology` through).

    The grammar mirrors the fault grammar: ``kind:key=value,key=value``.
    ``None``, ``""`` and ``"star"`` all mean the plain star.  Examples::

        star                 chain:n=8,relay=sf     chain:relay=ct
        tree:fanout=4        sharedbw:cap=30        star:n=20

    ``str(topology)`` round-trips: ``make_topology(str(t)) == t``.
    """
    if isinstance(spec, Topology):
        return spec
    if spec is None:
        return StarTopology()
    if not isinstance(spec, str):
        raise TopologyError(f"expected a topology spec string, got {spec!r}")
    text = spec.strip()
    if not text:
        return StarTopology()
    kind, _, body = text.partition(":")
    kind = kind.strip().lower()
    params = _parse_params(body, kind)
    if kind == "star":
        topo: Topology = StarTopology(n=_take_int(params, kind, "n"))
    elif kind == "chain":
        n = _take_int(params, kind, "n")
        relay = params.pop("relay", "sf")
        topo = ChainTopology(n=n, relay=relay)
    elif kind == "tree":
        fanout = _take_int(params, kind, "fanout")
        if fanout is None:
            raise TopologyError("tree topology requires fanout=<int>")
        topo = TreeTopology(fanout=fanout, n=_take_int(params, kind, "n"))
    elif kind == "sharedbw":
        cap = _take_float(params, kind, "cap")
        if cap is None:
            raise TopologyError("sharedbw topology requires cap=<rate>")
        topo = SharedBandwidthTopology(cap=cap, n=_take_int(params, kind, "n"))
    else:
        raise TopologyError(
            f"unknown topology kind {kind!r}; known: {', '.join(TOPOLOGY_KINDS)}"
        )
    if params:
        raise TopologyError(
            f"unknown {kind} parameter(s): {', '.join(sorted(params))}"
        )
    return topo
