"""Platform model for master-worker divisible-load computing.

Implements the paper's §3.1 model: ``N`` workers, each described by a
compute rate ``S`` (workload units per second), a transfer rate ``B``
(workload units per second on the master's serialized link), a computation
start-up latency ``cLat`` (seconds), a transfer start-up latency ``nLat``
(seconds), and an overlappable network pipeline tail ``tLat`` (seconds).

:mod:`repro.platform.topology` generalizes the interconnect beyond the
paper's star: linear daisy chains, two-level trees of sub-stars, and
shared-bandwidth stars, all behind one :class:`Topology` abstraction with
a spec grammar (``"chain:n=8,relay=sf"``) mirroring the fault grammar.
"""

from repro.platform.spec import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.platform.topology import (
    BoundTopology,
    ChainTopology,
    LinkPath,
    RelayHop,
    SharedBandwidthTopology,
    StarTopology,
    Topology,
    TopologyError,
    TreeTopology,
    make_topology,
)
from repro.platform.validation import (
    PlatformError,
    full_utilization_fraction,
    satisfies_full_utilization,
    validate_platform,
)

__all__ = [
    "BoundTopology",
    "ChainTopology",
    "LinkPath",
    "PlatformError",
    "PlatformSpec",
    "RelayHop",
    "SharedBandwidthTopology",
    "StarTopology",
    "Topology",
    "TopologyError",
    "TreeTopology",
    "WorkerSpec",
    "full_utilization_fraction",
    "homogeneous_platform",
    "make_topology",
    "satisfies_full_utilization",
    "validate_platform",
]
