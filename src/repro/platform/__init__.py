"""Platform model for master-worker divisible-load computing.

Implements the paper's §3.1 model: ``N`` workers, each described by a
compute rate ``S`` (workload units per second), a transfer rate ``B``
(workload units per second on the master's serialized link), a computation
start-up latency ``cLat`` (seconds), a transfer start-up latency ``nLat``
(seconds), and an overlappable network pipeline tail ``tLat`` (seconds).
"""

from repro.platform.spec import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.platform.validation import (
    PlatformError,
    full_utilization_fraction,
    satisfies_full_utilization,
    validate_platform,
)

__all__ = [
    "PlatformError",
    "PlatformSpec",
    "WorkerSpec",
    "full_utilization_fraction",
    "homogeneous_platform",
    "satisfies_full_utilization",
    "validate_platform",
]
