"""Dataclasses describing a master-worker platform (paper §3.1).

Time models (Eq. 1 and Eq. 2 of the paper), for a chunk of ``c`` workload
units on worker ``i``:

* computation: ``Tcomp_i = cLat_i + c / S_i`` (overlappable with receiving);
* communication: ``Tcomm_i = nLat_i + c / B_i + tLat_i``, of which
  ``nLat_i + c/B_i`` occupies the master's serialized link exclusively and
  ``tLat_i`` is an overlappable pipeline tail.

Pre-staged or replicated input data is modelled with ``B_i = math.inf``.
"""

from __future__ import annotations

import dataclasses
import math
import typing

__all__ = ["WorkerSpec", "PlatformSpec", "homogeneous_platform"]


@dataclasses.dataclass(frozen=True, slots=True)
class WorkerSpec:
    """One worker processor and its link from the master.

    Attributes
    ----------
    S:
        Compute rate, workload units per second.  Must be positive.
    B:
        Transfer rate from the master, workload units per second.  May be
        ``math.inf`` to model pre-staged data.  Must be positive.
    cLat:
        Fixed overhead (seconds) to start one chunk's computation.
    nLat:
        Fixed overhead (seconds) the master pays to initiate one transfer
        to this worker (e.g. TCP connection set-up).
    tLat:
        Delay (seconds) between the master pushing the last byte and the
        worker holding it; overlappable with the master's next transfer.
    """

    S: float
    B: float
    cLat: float = 0.0
    nLat: float = 0.0
    tLat: float = 0.0

    def __post_init__(self) -> None:
        if not self.S > 0:
            raise ValueError(f"worker compute rate S must be > 0, got {self.S}")
        if not self.B > 0:
            raise ValueError(f"worker transfer rate B must be > 0, got {self.B}")
        for name in ("cLat", "nLat", "tLat"):
            value = getattr(self, name)
            if value < 0 or math.isnan(value):
                raise ValueError(f"{name} must be >= 0, got {value}")

    # -- paper's Eq. 1 / Eq. 2 --------------------------------------------
    def compute_time(self, chunk: float) -> float:
        """Predicted time to compute ``chunk`` units (Eq. 1)."""
        return self.cLat + chunk / self.S

    def link_time(self, chunk: float) -> float:
        """Predicted exclusive master-link occupancy for ``chunk`` units."""
        return self.nLat + (0.0 if math.isinf(self.B) else chunk / self.B)

    def comm_time(self, chunk: float) -> float:
        """Predicted end-to-end transfer time (Eq. 2), including ``tLat``."""
        return self.link_time(chunk) + self.tLat


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """A master plus an ordered collection of workers.

    The worker order is the master's default dispatch order; the paper's
    resource-selection step (see :mod:`repro.core.selection`) sorts workers
    by decreasing bandwidth before scheduling.
    """

    workers: tuple[WorkerSpec, ...]

    def __init__(self, workers: typing.Iterable[WorkerSpec]):
        object.__setattr__(self, "workers", tuple(workers))
        if not self.workers:
            raise ValueError("a platform needs at least one worker")

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self) -> typing.Iterator[WorkerSpec]:
        return iter(self.workers)

    def __getitem__(self, index: int) -> WorkerSpec:
        return self.workers[index]

    @property
    def N(self) -> int:
        """Number of workers."""
        return len(self.workers)

    @property
    def is_homogeneous(self) -> bool:
        """True when all workers are identical."""
        return all(w == self.workers[0] for w in self.workers[1:])

    def subset(self, indices: typing.Sequence[int]) -> "PlatformSpec":
        """A new platform restricted to ``indices`` (in the given order)."""
        return PlatformSpec(self.workers[i] for i in indices)

    # -- aggregate rates ----------------------------------------------------
    def total_compute_rate(self) -> float:
        """Sum of worker compute rates (units/second)."""
        return sum(w.S for w in self.workers)

    def utilization_sum(self) -> float:
        """``Σ S_i / B_i`` — the key quantity of the full-utilization test.

        For a homogeneous platform this equals ``N·S/B = 1/θ`` where θ is
        the UMR chunk growth ratio; multi-round schedules need θ > 1.
        """
        return sum(0.0 if math.isinf(w.B) else w.S / w.B for w in self.workers)


def homogeneous_platform(
    N: int,
    S: float = 1.0,
    B: float | None = None,
    cLat: float = 0.0,
    nLat: float = 0.0,
    tLat: float = 0.0,
    bandwidth_factor: float | None = None,
) -> PlatformSpec:
    """Build the paper's homogeneous platform.

    Parameters
    ----------
    N:
        Number of workers.
    S:
        Per-worker compute rate (Table 1 uses 1).
    B:
        Master link rate per transfer.  Mutually exclusive with
        ``bandwidth_factor``.
    bandwidth_factor:
        If given, sets ``B = bandwidth_factor * N * S`` — the Table 1
        parameterization (factors 1.2 … 2.0), which keeps the platform
        inside the full-utilization region for any ``N``.
    cLat, nLat, tLat:
        Shared latencies.
    """
    if N < 1:
        raise ValueError(f"N must be >= 1, got {N}")
    if (B is None) == (bandwidth_factor is None):
        raise ValueError("specify exactly one of B and bandwidth_factor")
    if bandwidth_factor is not None:
        B = bandwidth_factor * N * S
    assert B is not None
    worker = WorkerSpec(S=S, B=B, cLat=cLat, nLat=nLat, tLat=tLat)
    return PlatformSpec([worker] * N)
