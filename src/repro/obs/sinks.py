"""Pluggable event sinks: in-memory ring, JSONL, Chrome trace_event.

A sink is anything with ``emit(event)`` and ``close()``.  Three are
provided:

* :class:`RingSink` — a bounded in-memory ring buffer holding the most
  recent events, for always-on tracing with capped memory;
* :class:`JsonlSink` — streams one JSON object per line to a file, the
  byte-deterministic format the golden-trace regressions pin;
* :class:`ChromeTraceSink` — buffers the run and writes a Chrome
  ``trace_event`` JSON on close.  Open the file at ``chrome://tracing``
  (or https://ui.perfetto.dev): workers render as threads with their
  compute intervals, the master's link as thread 0 with transfer
  intervals, and faults / recovery decisions / round boundaries as
  instant markers.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import pathlib
import typing

from repro.obs.events import SimEvent

__all__ = ["RingSink", "JsonlSink", "ChromeTraceSink", "write_chrome_trace"]


class RingSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: collections.deque[SimEvent] = collections.deque(maxlen=capacity)

    def emit(self, event: SimEvent) -> None:
        self._ring.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events(self) -> tuple[SimEvent, ...]:
        """Retained events, oldest first."""
        return tuple(self._ring)


class JsonlSink:
    """Stream events to a file as JSON lines, in emission order."""

    def __init__(self, path: "str | pathlib.Path"):
        self.path = pathlib.Path(path)
        self._fh: typing.TextIO | None = self.path.open("w")
        self.count = 0

    def emit(self, event: SimEvent) -> None:
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        self._fh.write(
            json.dumps(dataclasses.asdict(event), sort_keys=True, separators=(",", ":"))
        )
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: Simulation seconds → trace microseconds (Chrome's ts/dur unit).
_US = 1e6

#: Thread id of the master's serialized link in the Chrome trace.
_LINK_TID = 0


def _chrome_trace_events(events: typing.Iterable[SimEvent]) -> list[dict]:
    """Lower a stream to Chrome ``trace_event`` dicts.

    Start/end pairs (matched per chunk) become complete ``"X"`` duration
    events; unpaired and scalar kinds become instant ``"i"`` events.
    Workers map to tids ``worker + 1``; the link is tid 0.
    """
    dispatch_open: dict[int, SimEvent] = {}
    comp_open: dict[tuple[int, int], SimEvent] = {}
    out: list[dict] = []

    def duration(name: str, cat: str, tid: int, start: SimEvent, end_time: float) -> dict:
        return {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start.time * _US,
            "dur": (end_time - start.time) * _US,
            "pid": 0,
            "tid": tid,
            "args": {"chunk": start.chunk, "size": start.size, "phase": start.phase},
        }

    for e in events:
        if e.kind == "dispatch_start":
            dispatch_open[e.chunk] = e
        elif e.kind == "dispatch_end":
            start = dispatch_open.pop(e.chunk, None)
            if start is not None:
                out.append(
                    duration(f"send->w{e.worker}", "link", _LINK_TID, start, e.time)
                )
        elif e.kind == "comp_start":
            comp_open[(e.worker, e.chunk)] = e
        elif e.kind == "comp_end":
            start = comp_open.pop((e.worker, e.chunk), None)
            if start is not None:
                name = start.phase or f"chunk {e.chunk}"
                out.append(duration(name, "compute", e.worker + 1, start, e.time))
        else:
            out.append(
                {
                    "name": f"{e.kind}:{e.detail}" if e.detail else e.kind,
                    "cat": e.kind,
                    "ph": "i",
                    "s": "g",
                    "ts": e.time * _US,
                    "pid": 0,
                    "tid": _LINK_TID if e.worker < 0 else e.worker + 1,
                    "args": {"chunk": e.chunk, "phase": e.phase},
                }
            )
    return out


def write_chrome_trace(
    events: typing.Iterable[SimEvent], path: "str | pathlib.Path"
) -> pathlib.Path:
    """Write a stream as a Chrome-loadable ``trace_event`` JSON file."""
    path = pathlib.Path(path)
    payload = {
        "traceEvents": _chrome_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "unit": "1 trace us = 1 sim us"},
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


class ChromeTraceSink:
    """Buffer a run's events; write the Chrome trace JSON on close."""

    def __init__(self, path: "str | pathlib.Path"):
        self.path = pathlib.Path(path)
        self._events: list[SimEvent] = []
        self._closed = False

    def emit(self, event: SimEvent) -> None:
        if self._closed:
            raise ValueError(f"sink for {self.path} is closed")
        self._events.append(event)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            write_chrome_trace(self._events, self.path)
