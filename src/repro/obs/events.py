"""The simulation event schema and canonical stream derivations.

A :class:`SimEvent` is one observable instant of a simulated run.  The
seven simulation kinds mirror what the paper's multi-round schedules make
one reason about: link occupancy (``dispatch_start``/``dispatch_end``),
per-worker computation (``comp_start``/``comp_end``), worker faults and
chunk losses (``fault``), the scheduler reacting to an observed crash
(``recovery_decision``), and phase/round transitions (``round_boundary``).
Two further *harness-level* kinds are emitted by the resilient sweep
supervisor (:mod:`repro.experiments.resilient`) rather than by an engine:
``engine_fallback`` (a failing cell was rerouted down the engine ladder)
and ``cell_quarantined`` (a cell exhausted the ladder and became NaN).
They carry ``time=0.0`` and ``worker=-1`` — they describe the harness,
not simulated time.

One *topology-level* kind, ``link_hop``, marks a chunk clearing one
serialized relay link on a non-star topology (chains and trees; see
:mod:`repro.platform.topology`).  It is chunk-scoped like the dispatch
pair, with ``detail="link=<resource>"`` naming the relay resource; it is
emitted only by live tracers (relay traversal is not reconstructible
from :class:`~repro.core.chunks.DispatchRecord` alone).

Six *stream-level* kinds describe multi-job streams
(:mod:`repro.sim.multijob`): ``job_arrival``, ``job_start`` and
``job_done`` mark one job entering the system, receiving its first
service grant, and completing.  They carry ``worker=-1``,
``chunk=job_id``, ``size`` equal to the job's workload and ``phase``
naming the inter-job policy; their times live on the stream's absolute
timeline.  Three further kinds describe the stream-level fault plane:
``worker_excluded`` (the health tracker observed a worker's permanent
crash — ``worker`` is the *global* index, ``detail="crash"``; the
worker receives no further admissions), ``job_failed`` (a job's
failure policy gave up — ``detail`` names the reason:
``"no-live-workers"``, ``"delivery-shortfall"`` or
``"attempts-exhausted"``) and ``job_resubmitted`` (a failed service
grant was re-attempted on the surviving workers,
``detail="attempt=<k>"``).

Engines emit events in *engine order* (the fast engine in dispatch order,
the DES engine in simulation-time order).  Cross-engine comparisons and
golden files therefore use :func:`canonical_order`, a total order on
events that is identical for both engines because the underlying floats
are — the differential harness's oracle is the canonically sorted stream.

:func:`events_from_result` derives the *record-implied* substream (all
kinds except worker-crash ``fault`` events and ``recovery_decision``,
which are not reconstructible from :class:`~repro.core.chunks.
DispatchRecord` alone) from a finished result, making every
``SimResult`` a trace source even when no tracer was attached.
"""

from __future__ import annotations

import dataclasses
import json
import typing

__all__ = [
    "EVENT_KINDS",
    "SimEvent",
    "canonical_order",
    "events_from_result",
    "events_to_jsonl",
]

#: The closed set of event kinds (see module docstring).
EVENT_KINDS = frozenset(
    {
        "dispatch_start",
        "dispatch_end",
        "link_hop",
        "comp_start",
        "comp_end",
        "fault",
        "recovery_decision",
        "round_boundary",
        "engine_fallback",
        "cell_quarantined",
        "job_arrival",
        "job_start",
        "job_done",
        "worker_excluded",
        "job_failed",
        "job_resubmitted",
    }
)

#: Tie-break rank for events sharing a timestamp: completions and fault
#: observations are ordered before the decisions and dispatches they
#: enable, matching how the master observes then acts at one instant.
#: Job-level stream events follow the same observe-then-act shape:
#: ``job_done`` (a completion) sorts before ``job_arrival`` and
#: ``job_start`` (the admissions it may enable) at one timestamp.
#: The stream-fault kinds slot into the same shape: ``worker_excluded``
#: is an observation (right after ``job_done``, before the admissions it
#: constrains), ``job_failed``/``job_resubmitted`` are admission
#: outcomes (after ``job_arrival``, before ``job_start``).  Rank values
#: are internal — only the *relative* order is contractual, so the old
#: kinds keep their relative ranks and golden traces stand.
_KIND_RANK = {
    "comp_end": 0,
    "fault": 1,
    "recovery_decision": 2,
    "job_done": 3,
    "worker_excluded": 4,
    "job_arrival": 5,
    "job_failed": 6,
    "job_resubmitted": 7,
    "job_start": 8,
    "round_boundary": 9,
    "dispatch_start": 10,
    "dispatch_end": 11,
    "link_hop": 12,
    "comp_start": 13,
    "engine_fallback": 14,
    "cell_quarantined": 15,
}


@dataclasses.dataclass(frozen=True, slots=True)
class SimEvent:
    """One observable instant of a simulated run.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        One of :data:`EVENT_KINDS`.
    worker:
        Worker index the event concerns (-1 for worker-agnostic events
        such as ``round_boundary``).
    chunk:
        Dispatch sequence number of the chunk involved (-1 when the event
        is not chunk-scoped, e.g. a worker-crash ``fault``).
    size:
        Chunk size in workload units (0.0 when not chunk-scoped).
    phase:
        Scheduler phase label of the involved dispatch ("" when unknown).
    detail:
        Free-form qualifier; ``fault`` events use ``"crash"`` (the worker
        died) and ``"loss"`` (the master observed a chunk lost to a
        crash), ``recovery_decision`` uses ``"crash-observed"``.
    """

    time: float
    kind: str
    worker: int
    chunk: int = -1
    size: float = 0.0
    phase: str = ""
    detail: str = ""

    def sort_key(self) -> tuple:
        """Key of the canonical total order (see :func:`canonical_order`)."""
        return (
            self.time,
            _KIND_RANK.get(self.kind, len(_KIND_RANK)),
            self.worker,
            self.chunk,
            self.detail,
        )


def canonical_order(events: typing.Iterable[SimEvent]) -> tuple[SimEvent, ...]:
    """Sort an event stream into the canonical cross-engine order.

    Two engines that realized the same trajectory produce the same
    canonical stream regardless of their internal emission order; the
    differential harness compares exactly this.
    """
    return tuple(sorted(events, key=SimEvent.sort_key))


def events_from_result(result) -> tuple[SimEvent, ...]:
    """Derive the record-implied canonical event stream of a result.

    ``result`` is a :class:`~repro.sim.result.SimResult` (typed loosely to
    avoid an import cycle: anything with ``records`` works).  Delivered
    chunks yield ``dispatch_start``/``dispatch_end``/``comp_start``/
    ``comp_end``; lost chunks yield their dispatch pair plus a
    ``fault``/``loss`` event at the master's loss-observation time
    (``DispatchRecord.loss_time``) instead of fictitious compute events;
    phase-label changes along the dispatch order yield ``round_boundary``
    events.  Worker-crash ``fault`` and ``recovery_decision`` events are
    *not* derivable from records — a live :class:`~repro.obs.tracer.
    Tracer` stream is a strict superset of this one.
    """
    events: list[SimEvent] = []
    last_phase: str | None = None
    for r in result.records:
        if r.phase != last_phase:
            events.append(
                SimEvent(r.send_start, "round_boundary", -1, chunk=r.index, phase=r.phase)
            )
            last_phase = r.phase
        events.append(
            SimEvent(
                r.send_start, "dispatch_start", r.worker,
                chunk=r.index, size=r.size, phase=r.phase,
            )
        )
        events.append(
            SimEvent(
                r.send_end, "dispatch_end", r.worker,
                chunk=r.index, size=r.size, phase=r.phase,
            )
        )
        if r.lost:
            events.append(
                SimEvent(
                    r.loss_time, "fault", r.worker,
                    chunk=r.index, size=r.size, phase=r.phase, detail="loss",
                )
            )
        else:
            events.append(
                SimEvent(
                    r.comp_start, "comp_start", r.worker,
                    chunk=r.index, size=r.size, phase=r.phase,
                )
            )
            events.append(
                SimEvent(
                    r.comp_end, "comp_end", r.worker,
                    chunk=r.index, size=r.size, phase=r.phase,
                )
            )
    return canonical_order(events)


def events_to_jsonl(events: typing.Iterable[SimEvent]) -> str:
    """Serialize events as one JSON object per line (byte-deterministic).

    Keys are sorted and floats use Python's shortest-roundtrip repr, so
    the same event stream always serializes to the same bytes — the
    golden-trace regression tests pin these files.
    """
    lines = [
        json.dumps(dataclasses.asdict(e), sort_keys=True, separators=(",", ":"))
        for e in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")
