"""Unified simulation observability: typed event streams and sinks.

Every engine in :mod:`repro.sim` can emit one structured stream of
:class:`SimEvent` records — dispatches, computations, faults, recovery
decisions, round boundaries — through a :class:`Tracer`.  The stream is

* a **debugging timeline**: pluggable sinks render it as an in-memory
  ring, a JSONL file, or a Chrome ``trace_event`` JSON loadable in
  ``chrome://tracing`` (:mod:`repro.obs.sinks`);
* the **test oracle**: the cross-engine differential harness compares
  canonical event streams and reports the *first divergent event*
  instead of a bare result inequality (:mod:`repro.obs.diff`);
* the **timeline of record**: :func:`events_from_result` derives the
  record-implied substream from any :class:`~repro.sim.result.SimResult`,
  and both the Gantt renderer and ``validate_schedule`` consume it.

Sweep-level observability (engine routing counts, per-cell wall time,
cache tallies) lives in :mod:`repro.obs.stats` and is surfaced by the
``repro stats`` CLI command.

The hook is zero-cost when disabled: engines take ``tracer=None`` by
default and guard every emission behind a single ``is not None`` test,
so the batched sweep hot paths are untouched.
"""

from repro.obs.diff import TraceDivergence, first_divergence
from repro.obs.events import (
    EVENT_KINDS,
    SimEvent,
    canonical_order,
    events_from_result,
    events_to_jsonl,
)
from repro.obs.sinks import ChromeTraceSink, JsonlSink, RingSink, write_chrome_trace
from repro.obs.stats import SweepStats
from repro.obs.tracer import Tracer

__all__ = [
    "EVENT_KINDS",
    "ChromeTraceSink",
    "JsonlSink",
    "RingSink",
    "SimEvent",
    "SweepStats",
    "TraceDivergence",
    "Tracer",
    "canonical_order",
    "events_from_result",
    "events_to_jsonl",
    "first_divergence",
    "write_chrome_trace",
]
