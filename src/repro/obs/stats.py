"""Sweep-level observability: engine routing, per-cell wall time, cache.

A :class:`SweepStats` rides through :func:`repro.experiments.runner.
run_sweep` and :func:`repro.experiments.cache.cached_sweep` and collects

* **routing** — how many (platform, error, algorithm) cells each engine
  family handled (``static-batch`` / ``dynbatch`` / ``scalar``), and how
  many individual simulations that represents;
* **cell timings** — wall time of each batched cell and each scalar
  (cell, algorithm) loop; the merged lockstep pass reports one aggregate
  wall time (its cells share one call by design);
* **cache tallies** — hits and misses of the on-disk sweep cache, plus
  corrupt entries quarantined to ``<dir>/corrupt/``;
* **resilience tallies** — retries, engine fallbacks, quarantined cells,
  cells resumed from checkpoints, and process-pool supervision outcomes
  (restarts, timeouts, degradations to serial), fed by
  :class:`repro.experiments.resilient.CellSupervisor` and the runner's
  pool supervisor.

Collection piggybacks on the in-process path; a process-pool run
(``n_jobs > 1``) still records routing and total wall time but not
per-cell timings (they happen in pool workers).  Everything is surfaced
by ``repro stats`` on the CLI.
"""

from __future__ import annotations

import dataclasses

__all__ = ["CellTiming", "SweepStats"]

#: Engine-routing families a cell can take.
ENGINES = ("static-batch", "dynbatch", "scalar")

#: Fault-engine wall-time buckets (see the batch engines' ``perf``
#: mappings): schedule realization, scalar-deferral replays, and the
#: per-kind timeline transforms.
FAULT_KINDS = ("sample", "defer", "crash", "pause", "slow", "spike")


@dataclasses.dataclass(frozen=True, slots=True)
class CellTiming:
    """Wall time of one timed unit of sweep work."""

    algorithm: str
    platform_index: int
    error_index: int
    engine: str
    runs: int
    wall_s: float


@dataclasses.dataclass
class SweepStats:
    """Mutable collector for one or more sweeps (see module docstring)."""

    cells: dict[str, int] = dataclasses.field(
        default_factory=lambda: {e: 0 for e in ENGINES}
    )
    runs: dict[str, int] = dataclasses.field(
        default_factory=lambda: {e: 0 for e in ENGINES}
    )
    cell_timings: list[CellTiming] = dataclasses.field(default_factory=list)
    lockstep_wall_s: float = 0.0
    staticgrid_wall_s: float = 0.0
    total_wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt_quarantined: int = 0
    retries: int = 0
    engine_fallbacks: int = 0
    cells_quarantined: int = 0
    cells_resumed: int = 0
    pool_restarts: int = 0
    pool_timeouts: int = 0
    pool_degradations: int = 0
    rows_deferred_scalar: int = 0
    jobs_failed: int = 0
    jobs_resubmitted: int = 0
    workers_excluded: int = 0
    fault_wall_s: dict[str, float] = dataclasses.field(
        default_factory=lambda: {k: 0.0 for k in FAULT_KINDS}
    )

    # -- collection hooks ---------------------------------------------------
    def count_routing(self, engine: str, cells: int, runs_per_cell: int) -> None:
        """Account ``cells`` cells of ``engine`` routing."""
        if engine not in self.cells:
            raise ValueError(f"unknown engine family {engine!r}")
        self.cells[engine] += cells
        self.runs[engine] += cells * runs_per_cell

    def time_cell(
        self,
        algorithm: str,
        platform_index: int,
        error_index: int,
        engine: str,
        runs: int,
        wall_s: float,
    ) -> None:
        self.cell_timings.append(
            CellTiming(algorithm, platform_index, error_index, engine, runs, wall_s)
        )

    def count_stream(self, result) -> None:
        """Fold one multi-job stream's health counters into the totals.

        ``result`` is a :class:`~repro.sim.multijob.MultiJobResult`
        (typed loosely to avoid an import cycle): ``jobs_failed``/
        ``jobs_resubmitted`` count jobs, ``workers_excluded`` counts
        workers the stream's health tracker declared dead.
        """
        self.jobs_failed += int(result.jobs_failed)
        self.jobs_resubmitted += int(result.jobs_resubmitted)
        self.workers_excluded += len(result.workers_excluded)

    def absorb_fault_perf(self, perf: dict) -> None:
        """Fold one batch pass's fault counters into the totals.

        ``perf`` is the mutable mapping the batch engines accumulate into
        (``rows_deferred_scalar`` plus ``fault_<kind>_s`` wall times).
        """
        self.rows_deferred_scalar += int(perf.get("rows_deferred_scalar", 0))
        for kind in self.fault_wall_s:
            self.fault_wall_s[kind] += float(perf.get(f"fault_{kind}_s", 0.0))

    # -- reporting ----------------------------------------------------------
    @property
    def total_cells(self) -> int:
        return sum(self.cells.values())

    @property
    def total_runs(self) -> int:
        return sum(self.runs.values())

    def slowest_cells(self, count: int = 5) -> list[CellTiming]:
        return sorted(self.cell_timings, key=lambda c: -c.wall_s)[:count]

    def summary(self, top: int = 5) -> str:
        """Human-readable multi-line report for the CLI."""
        lines = [
            f"sweep stats: {self.total_runs} simulations in "
            f"{self.total_cells} cells, {self.total_wall_s:.3f}s wall",
            "engine routing:",
        ]
        for engine in ENGINES:
            cells = self.cells[engine]
            runs = self.runs[engine]
            share = runs / self.total_runs if self.total_runs else 0.0
            lines.append(
                f"  {engine:>12}: {cells:5d} cells, {runs:7d} runs ({share:5.1%})"
            )
        if self.staticgrid_wall_s:
            lines.append(f"static grid pass wall: {self.staticgrid_wall_s:.3f}s")
        if self.lockstep_wall_s:
            lines.append(f"lockstep pass wall: {self.lockstep_wall_s:.3f}s")
        fault_total = sum(self.fault_wall_s.values())
        if fault_total or self.rows_deferred_scalar:
            parts = ", ".join(
                f"{kind} {wall * 1e3:.1f}ms"
                for kind, wall in self.fault_wall_s.items()
                if wall
            )
            lines.append(
                f"fault engine: {fault_total:.3f}s"
                + (f" ({parts})" if parts else "")
            )
            lines.append(
                f"rows deferred to scalar engine: {self.rows_deferred_scalar}"
            )
        cache_line = (
            f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)"
        )
        if self.cache_corrupt_quarantined:
            cache_line += (
                f", {self.cache_corrupt_quarantined} corrupt entr(ies) quarantined"
            )
        lines.append(cache_line)
        lines.append(
            f"resilience: {self.retries} retr(ies), "
            f"{self.engine_fallbacks} engine fallback(s), "
            f"{self.cells_quarantined} cell(s) quarantined, "
            f"{self.cells_resumed} cell(s) resumed from checkpoints"
        )
        if self.jobs_failed or self.jobs_resubmitted or self.workers_excluded:
            lines.append(
                f"stream health: {self.jobs_failed} job(s) failed, "
                f"{self.jobs_resubmitted} job(s) resubmitted, "
                f"{self.workers_excluded} worker(s) excluded"
            )
        if self.pool_restarts or self.pool_timeouts or self.pool_degradations:
            lines.append(
                f"pool supervision: {self.pool_restarts} restart(s), "
                f"{self.pool_timeouts} timeout(s), "
                f"{self.pool_degradations} degradation(s) to serial"
            )
        slowest = self.slowest_cells(top)
        if slowest:
            lines.append(f"slowest timed cells (top {len(slowest)}):")
            for c in slowest:
                lines.append(
                    f"  {c.wall_s * 1e3:9.2f} ms  {c.algorithm:<18} "
                    f"platform={c.platform_index} error={c.error_index} "
                    f"[{c.engine}, {c.runs} runs]"
                )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (used by tests and tooling)."""
        return {
            "cells": dict(self.cells),
            "runs": dict(self.runs),
            "lockstep_wall_s": self.lockstep_wall_s,
            "staticgrid_wall_s": self.staticgrid_wall_s,
            "total_wall_s": self.total_wall_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corrupt_quarantined": self.cache_corrupt_quarantined,
            "retries": self.retries,
            "engine_fallbacks": self.engine_fallbacks,
            "cells_quarantined": self.cells_quarantined,
            "cells_resumed": self.cells_resumed,
            "pool_restarts": self.pool_restarts,
            "pool_timeouts": self.pool_timeouts,
            "pool_degradations": self.pool_degradations,
            "rows_deferred_scalar": self.rows_deferred_scalar,
            "jobs_failed": self.jobs_failed,
            "jobs_resubmitted": self.jobs_resubmitted,
            "workers_excluded": self.workers_excluded,
            "fault_wall_s": dict(self.fault_wall_s),
            "cell_timings": [dataclasses.asdict(c) for c in self.cell_timings],
        }
