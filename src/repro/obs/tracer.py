"""The engine-facing emission hook.

A :class:`Tracer` is handed to an engine (``simulate(...,
tracer=Tracer())``); the engine calls :meth:`Tracer.emit` at every
observable instant.  The tracer retains the stream in memory (unless
``keep=False``) and forwards each event to any attached sinks.

Engines guard every emission behind ``if tracer is not None`` — passing
no tracer costs one pointer test per dispatch, which is what keeps the
sweep hot paths at their benchmarked speed (see the trace-overhead guard
in ``scripts/bench_sweep.py``).
"""

from __future__ import annotations

import typing

from repro.obs.events import EVENT_KINDS, SimEvent, canonical_order

__all__ = ["Tracer"]


class Tracer:
    """Collects :class:`SimEvent` records and fans them out to sinks.

    Parameters
    ----------
    sinks:
        Objects with ``emit(event)`` and ``close()`` (see
        :mod:`repro.obs.sinks`); every emitted event is forwarded to each.
    keep:
        Retain events in memory (default).  ``keep=False`` makes the
        tracer a pure fan-out shim for long streaming runs.
    """

    __slots__ = ("_events", "_sinks", "_keep")

    def __init__(self, sinks: typing.Sequence = (), keep: bool = True):
        self._events: list[SimEvent] = []
        self._sinks = tuple(sinks)
        self._keep = keep

    def emit(
        self,
        time: float,
        kind: str,
        worker: int,
        chunk: int = -1,
        size: float = 0.0,
        phase: str = "",
        detail: str = "",
    ) -> None:
        """Record one event (kind must be in :data:`EVENT_KINDS`)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = SimEvent(time, kind, worker, chunk, size, phase, detail)
        if self._keep:
            self._events.append(event)
        for sink in self._sinks:
            sink.emit(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> tuple[SimEvent, ...]:
        """The stream in emission order (engine-dependent)."""
        return tuple(self._events)

    def canonical(self) -> tuple[SimEvent, ...]:
        """The stream in canonical order — the cross-engine oracle."""
        return canonical_order(self._events)

    def of_kind(self, kind: str) -> tuple[SimEvent, ...]:
        """Events of one kind, in emission order."""
        return tuple(e for e in self._events if e.kind == kind)

    def close(self) -> None:
        """Close all attached sinks (flushes file-backed ones)."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
