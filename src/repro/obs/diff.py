"""Trace comparison: find and describe the first divergent event.

The cross-engine differential harness's oracle.  Two trajectory-identical
runs produce identical canonical event streams; when they do not, a bare
``makespan_a != makespan_b`` hides *where* the trajectories forked — a
one-float drift in an early UMR round compounds through every later
chunk.  :func:`first_divergence` walks two canonical streams and returns
the first position where they disagree, carrying both engines' events so
the failure message names the engine, event kind, timestamp, worker and
chunk of the fork point.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.obs.events import SimEvent

__all__ = ["TraceDivergence", "first_divergence"]


def _fmt(event: SimEvent | None) -> str:
    if event is None:
        return "<no event (stream ended)>"
    parts = [
        f"kind={event.kind}",
        f"time={event.time!r}",
        f"worker={event.worker}",
        f"chunk={event.chunk}",
    ]
    if event.size:
        parts.append(f"size={event.size!r}")
    if event.phase:
        parts.append(f"phase={event.phase!r}")
    if event.detail:
        parts.append(f"detail={event.detail!r}")
    return "SimEvent(" + ", ".join(parts) + ")"


@dataclasses.dataclass(frozen=True)
class TraceDivergence:
    """The first position where two canonical event streams disagree.

    ``left``/``right`` are the events at ``index`` in each stream (None
    when that stream ended early); ``left_label``/``right_label`` name
    the producers (e.g. engine names).
    """

    index: int
    left_label: str
    right_label: str
    left: SimEvent | None
    right: SimEvent | None

    def describe(self) -> str:
        """A multi-line report naming the fork point for both engines."""
        lines = [
            f"event traces diverge at canonical event #{self.index}:",
            f"  {self.left_label:>8}: {_fmt(self.left)}",
            f"  {self.right_label:>8}: {_fmt(self.right)}",
        ]
        if self.left is not None and self.right is not None:
            diffs = [
                f
                for f in ("time", "kind", "worker", "chunk", "size", "phase", "detail")
                if getattr(self.left, f) != getattr(self.right, f)
            ]
            lines.append(f"  differing fields: {', '.join(diffs)}")
            if "time" in diffs:
                lines.append(
                    f"  time delta: {self.right.time - self.left.time!r}"
                )
        else:
            short = self.left_label if self.left is None else self.right_label
            lines.append(f"  ({short} emitted fewer events)")
        return "\n".join(lines)


def first_divergence(
    left: typing.Sequence[SimEvent],
    right: typing.Sequence[SimEvent],
    labels: tuple[str, str] = ("left", "right"),
) -> TraceDivergence | None:
    """First index where two canonical streams differ, or None if equal.

    Streams must already be in canonical order (compare
    ``tracer.canonical()`` outputs, not raw emission-order streams — the
    engines legitimately emit in different internal orders).
    """
    for i, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return TraceDivergence(i, labels[0], labels[1], a, b)
    if len(left) != len(right):
        i = min(len(left), len(right))
        return TraceDivergence(
            i,
            labels[0],
            labels[1],
            left[i] if i < len(left) else None,
            right[i] if i < len(right) else None,
        )
    return None
