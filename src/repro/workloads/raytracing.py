"""Ray tracing: spatially correlated, data-dependent pixel costs.

§4 of the paper motivates prediction errors with exactly this
application: *"in a ray-tracing application the time taken to trace
through one pixel depends greatly on the complexity of the scene."*

Unlike the iid models in the sibling modules, scene complexity is
*spatially correlated*: adjacent pixel tiles look into the same geometry,
so expensive tiles cluster.  The model generates a 1-D complexity field
along the tile scan order as a mean-reverting AR(1) process in
log-space, with per-tile lognormal jitter on top.  Correlation matters
for scheduling because a chunk of adjacent tiles does **not** average its
costs down like iid tiles would — the effective chunk-level error decays
much more slowly with chunk size, which is precisely the regime where
RUMR's decreasing tail earns its keep (and what
:meth:`~repro.workloads.base.DivisibleWorkload.estimate_error` measures).
"""

from __future__ import annotations

import math

import numpy as np

from repro.workloads.base import DivisibleWorkload

__all__ = ["RayTracing"]


class RayTracing(DivisibleWorkload):
    """Tile-based ray tracing of a ``width × height`` frame.

    Parameters
    ----------
    width, height:
        Frame dimensions in pixels.
    tile:
        Square tile side (one workload unit = one tile).
    sigma:
        Stationary standard deviation of the log-complexity field.
    correlation:
        AR(1) coefficient between consecutive tiles in scan order
        (0 = iid, → 1 = a single complexity level for the whole frame).
    jitter_sigma:
        Per-tile lognormal jitter independent of the field.
    base_cost:
        Seconds per average tile on a 1-unit/s reference worker.
    seed:
        Seed of the complexity field (the field is part of the scene, so
        it is fixed per workload instance, not per simulation run).
    """

    def __init__(
        self,
        width: int = 1920,
        height: int = 1080,
        tile: int = 32,
        sigma: float = 0.7,
        correlation: float = 0.95,
        jitter_sigma: float = 0.2,
        base_cost: float = 1.0,
        seed: int = 0,
    ):
        if width < 1 or height < 1 or tile < 1:
            raise ValueError("frame dimensions and tile size must be positive")
        if sigma < 0 or jitter_sigma < 0:
            raise ValueError("sigma values must be >= 0")
        if not 0.0 <= correlation < 1.0:
            raise ValueError(f"correlation must be in [0, 1), got {correlation}")
        if base_cost <= 0:
            raise ValueError(f"base_cost must be > 0, got {base_cost}")
        self.tile = tile
        self.sigma = sigma
        self.correlation = correlation
        self.jitter_sigma = jitter_sigma
        self.base_cost = base_cost
        tiles_x = math.ceil(width / tile)
        tiles_y = math.ceil(height / tile)
        self.total_units = float(tiles_x * tiles_y)
        self.name = f"raytracing-{width}x{height}"

        # Materialize the scene's complexity field once (scan order).
        n = int(self.total_units)
        rng = np.random.default_rng(seed)
        innovations = rng.normal(0.0, 1.0, n)
        field = np.empty(n)
        rho = correlation
        scale = sigma * math.sqrt(1.0 - rho * rho)
        field[0] = sigma * innovations[0]
        for k in range(1, n):
            field[k] = rho * field[k - 1] + scale * innovations[k]
        # Normalize to mean multiplier 1 (lognormal mean correction).
        self._field = np.exp(field - 0.5 * sigma * sigma)
        self._cursor = 0

    @property
    def complexity_field(self) -> np.ndarray:
        """The per-tile complexity multipliers, scan order (read-only)."""
        return self._field.copy()

    def tile_cost(self, index: int, rng: np.random.Generator) -> float:
        """Cost of a specific tile (field multiplier × jitter)."""
        base = self.base_cost * float(self._field[index % len(self._field)])
        if self.jitter_sigma == 0:
            return base
        js = self.jitter_sigma
        return base * rng.lognormal(mean=-0.5 * js * js, sigma=js)

    def unit_cost(self, rng: np.random.Generator) -> float:
        # Sequential scan through the field — consecutive draws are
        # correlated, matching how a chunk of adjacent tiles behaves.
        cost = self.tile_cost(self._cursor, rng)
        self._cursor = (self._cursor + 1) % len(self._field)
        return cost

    def mean_unit_cost(self) -> float:
        # The field is normalized to mean 1 in expectation; use the
        # realized field mean for exactness on this scene.
        return self.base_cost * float(self._field.mean())

    def reset_scan(self) -> None:
        """Restart the scan cursor (e.g. between estimate_error calls)."""
        self._cursor = 0
