"""Base class for divisible-workload application models.

A workload model answers three questions the schedulers care about:

1. *How big is it?* — ``total_units`` in the scheduler's abstract units
   (one unit = the "minimal unit of computation", §5: a sequence in a
   dictionary file, a block of pixels, …).
2. *How expensive is a unit?* — the per-unit compute cost distribution on
   a reference worker, possibly data-dependent.  ``unit_cost`` draws from
   it; ``mean_unit_cost`` is its expectation.
3. *How predictable is it?* — the application's inherent prediction-error
   magnitude: the coefficient of variation of a chunk's total cost around
   the linear model the schedulers assume.  :meth:`estimate_error` measures
   it empirically (the "past experience with the application" estimator of
   §4.1), and :meth:`calibrated_platform` folds the mean cost into worker
   compute rates so the scheduler's ``S`` is expressed in units/second.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.platform.spec import PlatformSpec, WorkerSpec

__all__ = ["DivisibleWorkload", "UnitCostSample"]


@dataclasses.dataclass(frozen=True)
class UnitCostSample:
    """Empirical per-unit cost statistics from a calibration run."""

    mean: float
    std: float
    samples: int

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean — the natural error-magnitude estimate."""
        return self.std / self.mean if self.mean > 0 else 0.0


class DivisibleWorkload:
    """Abstract divisible application (see module docstring).

    Subclasses implement :meth:`unit_cost` (seconds of compute one unit
    costs on a 1-unit/s reference worker) and set :attr:`total_units`.
    """

    #: Human-readable name for reports.
    name: str = "workload"
    #: Total workload, in units.
    total_units: float = 0.0

    def unit_cost(self, rng: np.random.Generator) -> float:
        """Draw the (data-dependent) cost of processing one unit."""
        raise NotImplementedError

    def mean_unit_cost(self) -> float:
        """Expected per-unit cost (analytic where possible)."""
        raise NotImplementedError

    # -- derived -------------------------------------------------------------
    def estimate_error(
        self, chunk_units: float, samples: int = 200, seed: int | None = None
    ) -> float:
        """Empirical prediction-error magnitude for chunks of a given size.

        Simulates ``samples`` chunks of ``chunk_units`` units, sums their
        per-unit costs, and returns the coefficient of variation of the
        chunk cost — exactly the *error* quantity RUMR consumes.  By the
        CLT this shrinks as ``1/sqrt(chunk_units)`` for iid unit costs;
        heavy-tailed applications (ray tracing, sequence matching) retain
        much larger values.
        """
        if chunk_units < 1:
            raise ValueError(f"chunk_units must be >= 1, got {chunk_units}")
        rng = np.random.default_rng(seed)
        n_units = max(1, int(round(chunk_units)))
        totals = np.empty(samples)
        for k in range(samples):
            totals[k] = sum(self.unit_cost(rng) for _ in range(n_units))
        mean = float(totals.mean())
        if mean == 0:
            return 0.0
        return float(totals.std() / mean)

    def sample_unit_costs(self, samples: int = 1000, seed: int | None = None) -> UnitCostSample:
        """Per-unit cost statistics from a calibration run."""
        rng = np.random.default_rng(seed)
        costs = np.array([self.unit_cost(rng) for _ in range(samples)])
        return UnitCostSample(mean=float(costs.mean()), std=float(costs.std()), samples=samples)

    def calibrated_platform(self, platform: PlatformSpec) -> PlatformSpec:
        """Re-express worker compute rates in workload units per second.

        A worker whose hardware rate is ``S`` reference-units/second
        processes ``S / mean_unit_cost`` workload units per second.
        """
        mean_cost = self.mean_unit_cost()
        if not mean_cost > 0 or math.isnan(mean_cost):
            raise ValueError(f"mean unit cost must be > 0, got {mean_cost}")
        return PlatformSpec(
            WorkerSpec(
                S=w.S / mean_cost, B=w.B, cLat=w.cLat, nLat=w.nLat, tLat=w.tLat
            )
            for w in platform
        )
