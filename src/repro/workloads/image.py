"""Image feature extraction: a big image cut into pixel-block units.

The paper's first motivating application (§1): "a big image is segmented,
and each segment is transferred to a worker and processed locally."  The
unit of workload is one block of pixels; the per-block cost depends on the
local scene complexity, modelled here as a lognormal multiplier around the
nominal cost — flat background blocks are cheap, feature-dense blocks
(edges, texture) are expensive.  This is the same data-dependence argument
the paper makes for ray tracing in §4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.workloads.base import DivisibleWorkload

__all__ = ["ImageFeatureExtraction"]


class ImageFeatureExtraction(DivisibleWorkload):
    """Feature extraction over a ``width × height`` image.

    Parameters
    ----------
    width, height:
        Image dimensions in pixels.
    block:
        Side of the square pixel block that forms one workload unit.
    complexity_sigma:
        σ of the lognormal per-block complexity multiplier (0 = perfectly
        uniform image).  The multiplier is normalized to mean 1 so
        ``mean_unit_cost`` is independent of the complexity level.
    base_cost:
        Seconds to process an average block on a 1-unit/s reference worker.
    """

    def __init__(
        self,
        width: int = 8192,
        height: int = 8192,
        block: int = 64,
        complexity_sigma: float = 0.6,
        base_cost: float = 1.0,
    ):
        if width < 1 or height < 1 or block < 1:
            raise ValueError("image dimensions and block size must be positive")
        if complexity_sigma < 0:
            raise ValueError(f"complexity_sigma must be >= 0, got {complexity_sigma}")
        if base_cost <= 0:
            raise ValueError(f"base_cost must be > 0, got {base_cost}")
        self.width = width
        self.height = height
        self.block = block
        self.complexity_sigma = complexity_sigma
        self.base_cost = base_cost
        blocks_x = math.ceil(width / block)
        blocks_y = math.ceil(height / block)
        self.total_units = float(blocks_x * blocks_y)
        self.name = f"feature-extraction-{width}x{height}"

    def unit_cost(self, rng: np.random.Generator) -> float:
        if self.complexity_sigma == 0:
            return self.base_cost
        # Lognormal with mean exactly base_cost: mu = -sigma^2/2.
        sigma = self.complexity_sigma
        return self.base_cost * rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma)

    def mean_unit_cost(self) -> float:
        return self.base_cost

    def bytes_per_unit(self, bytes_per_pixel: int = 3) -> int:
        """Input bytes one block carries (useful to size real bandwidths)."""
        return self.block * self.block * bytes_per_pixel
