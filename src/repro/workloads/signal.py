"""Signal processing: recovering a signal buried in a long recording.

The paper's second motivating application (§1): "tries to recover a signal
buried in a large file recording measurements."  The unit of workload is
one window of samples; the scan cost per window is nearly constant (the
FFT/correlation work depends only on the window size), with a small jitter
from early-exit thresholding when a window is obviously empty.  This is
the most *predictable* of the three models — with it, UMR alone is close
to optimal, which the examples use to show where RUMR's phase 2 is and
is not worth its overhead.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import DivisibleWorkload

__all__ = ["SignalScan"]


class SignalScan(DivisibleWorkload):
    """Matched-filter scan over a long recording.

    Parameters
    ----------
    duration_s:
        Recording length in seconds.
    sample_rate:
        Samples per second.
    window:
        Samples per analysis window (one workload unit).
    early_exit_fraction:
        Fraction of windows that exit early (obviously signal-free),
        costing ``early_exit_cost_ratio`` of the full scan.
    base_cost:
        Seconds to fully scan one window on a 1-unit/s reference worker.
    """

    def __init__(
        self,
        duration_s: float = 3600.0,
        sample_rate: float = 44100.0,
        window: int = 65536,
        early_exit_fraction: float = 0.1,
        early_exit_cost_ratio: float = 0.4,
        base_cost: float = 1.0,
    ):
        if duration_s <= 0 or sample_rate <= 0 or window < 1:
            raise ValueError("recording parameters must be positive")
        if not 0.0 <= early_exit_fraction < 1.0:
            raise ValueError(
                f"early_exit_fraction must be in [0,1), got {early_exit_fraction}"
            )
        if not 0.0 < early_exit_cost_ratio <= 1.0:
            raise ValueError(
                f"early_exit_cost_ratio must be in (0,1], got {early_exit_cost_ratio}"
            )
        self.window = window
        self.early_exit_fraction = early_exit_fraction
        self.early_exit_cost_ratio = early_exit_cost_ratio
        self.base_cost = base_cost
        total_samples = duration_s * sample_rate
        self.total_units = float(max(1, int(total_samples // window)))
        self.name = f"signal-scan-{int(duration_s)}s"

    def unit_cost(self, rng: np.random.Generator) -> float:
        if self.early_exit_fraction > 0 and rng.random() < self.early_exit_fraction:
            return self.base_cost * self.early_exit_cost_ratio
        return self.base_cost

    def mean_unit_cost(self) -> float:
        f, r = self.early_exit_fraction, self.early_exit_cost_ratio
        return self.base_cost * (f * r + (1.0 - f))
