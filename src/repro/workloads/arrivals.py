"""Job arrival processes: streams of divisible loads over time.

The paper schedules one divisible load in isolation; real platforms serve
a *stream* of them.  This module provides the arrival layer: deterministic
seeded processes emitting :class:`JobArrival` records that the multi-job
engine (:mod:`repro.sim.multijob`) runs through the existing scheduler and
engine stack.

Three process families are modelled, mirroring the multi-application DLT
literature (Gallet/Robert/Vivien's *Scheduling multiple divisible loads*
and the Wu/Cao/Robertazzi resource-sharing line):

* **Poisson** — memoryless arrivals at a fixed mean rate, the classic
  open-system queueing assumption;
* **bursty** — clustered arrivals (whole bursts landing together, with an
  optional intra-burst spread), the head-of-line-blocking stress case;
* **trace** — explicit replayed arrivals, either built in code or loaded
  from a JSONL trace file (``arrivals_from_jsonl``), so real cluster
  traces can be replayed once converted.

Determinism contract: ``generate(seed)`` consumes one RNG stream derived
from the seed alone (via :func:`repro.errors.rng.stream_for`), drawing in
a documented per-job order — inter-arrival gap, then the work factor
(only when ``work_cv > 0``), then the job's simulation seed — so the same
seed always reproduces the same trace, and adding a parameter never
perturbs the draws of the ones before it.

Arrival processes are named by compact spec strings so they can ride
through the CLI and sweep grids unchanged, like fault scenarios::

    poisson:rate=0.02,jobs=8,work=200
    poisson:rate=0.05,jobs=20,work=100,work_cv=0.4
    bursty:bursts=3,size=4,gap=300,work=150
    bursty:bursts=2,size=6,gap=400,work=100,spread=1,work_cv=0.2
    trace:path/to/arrivals.jsonl
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import typing

import numpy as np

from repro.errors.rng import stream_for

__all__ = [
    "JobArrival",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "arrivals_from_jsonl",
    "arrivals_to_jsonl",
    "make_arrival_process",
]


@dataclasses.dataclass(frozen=True, slots=True)
class JobArrival:
    """One job of a multi-job stream.

    Attributes
    ----------
    job_id:
        Stream-unique non-negative identifier (also the canonical
        tie-break for simultaneous arrivals).
    time:
        Absolute arrival time, seconds from the stream's origin.
    work:
        The job's total workload, ``W_total`` units.
    seed:
        Simulation seed for this job's run.  ``None`` lets the multi-job
        engine derive one from its stream-level seed and ``job_id``;
        setting it pins the job's trajectory exactly — a one-job stream
        with an explicit seed is bitwise identical to calling
        :func:`repro.sim.simulate` with that seed.
    """

    job_id: int
    time: float
    work: float
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError(f"job_id must be >= 0, got {self.job_id}")
        if not (self.time >= 0 and math.isfinite(self.time)):
            raise ValueError(f"arrival time must be finite and >= 0, got {self.time}")
        if not (self.work > 0 and math.isfinite(self.work)):
            raise ValueError(f"job work must be finite and > 0, got {self.work}")


class ArrivalProcess:
    """Abstract arrival process: configuration only, like a Scheduler.

    Subclasses implement :meth:`generate`, which realizes one arrival
    trace from a seed.  The same (process, seed) pair always produces the
    same trace.
    """

    #: Human-readable name for reports and figures.
    name: str = "arrivals"

    def generate(self, seed: int | None = None) -> tuple[JobArrival, ...]:
        """Realize one arrival trace (sorted by arrival time)."""
        raise NotImplementedError


def _work_factor(rng: np.random.Generator, work_cv: float) -> float:
    """A mean-1 lognormal size factor with coefficient of variation ``work_cv``."""
    sigma2 = math.log1p(work_cv * work_cv)
    return float(rng.lognormal(mean=-0.5 * sigma2, sigma=math.sqrt(sigma2)))


def _job_seed(rng: np.random.Generator) -> int:
    return int(rng.integers(0, 2**63 - 1))


@dataclasses.dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps at ``rate``.

    Parameters
    ----------
    rate:
        Mean arrival rate, jobs per second (> 0).
    jobs:
        Number of jobs in the stream (> 0).
    work:
        Mean per-job workload in units (> 0).
    work_cv:
        Coefficient of variation of the per-job workload around ``work``
        (mean-1 lognormal factor); 0 (default) makes every job ``work``
        units exactly.
    """

    rate: float
    jobs: int
    work: float
    work_cv: float = 0.0

    name = "poisson"

    def __post_init__(self) -> None:
        _validate_process(self.rate > 0, f"rate must be > 0, got {self.rate}")
        _validate_process(self.jobs >= 1, f"jobs must be >= 1, got {self.jobs}")
        _validate_process(self.work > 0, f"work must be > 0, got {self.work}")
        _validate_process(self.work_cv >= 0, f"work_cv must be >= 0, got {self.work_cv}")

    def generate(self, seed: int | None = None) -> tuple[JobArrival, ...]:
        rng = stream_for(seed)
        out: list[JobArrival] = []
        t = 0.0
        for job_id in range(self.jobs):
            t += float(rng.exponential(1.0 / self.rate))
            work = self.work
            if self.work_cv > 0:
                work *= _work_factor(rng, self.work_cv)
            out.append(JobArrival(job_id=job_id, time=t, work=work, seed=_job_seed(rng)))
        return tuple(out)


@dataclasses.dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Clustered arrivals: ``bursts`` bursts of ``size`` jobs each.

    Burst origins are separated by exponential gaps of mean ``gap``; jobs
    within one burst arrive ``spread`` seconds apart (0 — the default —
    lands the whole burst at one instant, the maximal head-of-line-blocking
    case).  Per-job workloads follow the same ``work``/``work_cv`` scheme
    as :class:`PoissonArrivals`.
    """

    bursts: int
    size: int
    gap: float
    work: float
    spread: float = 0.0
    work_cv: float = 0.0

    name = "bursty"

    def __post_init__(self) -> None:
        _validate_process(self.bursts >= 1, f"bursts must be >= 1, got {self.bursts}")
        _validate_process(self.size >= 1, f"size must be >= 1, got {self.size}")
        _validate_process(self.gap > 0, f"gap must be > 0, got {self.gap}")
        _validate_process(self.work > 0, f"work must be > 0, got {self.work}")
        _validate_process(self.spread >= 0, f"spread must be >= 0, got {self.spread}")
        _validate_process(self.work_cv >= 0, f"work_cv must be >= 0, got {self.work_cv}")

    def generate(self, seed: int | None = None) -> tuple[JobArrival, ...]:
        rng = stream_for(seed)
        drawn: list[tuple[float, float, int]] = []
        origin = 0.0
        for _ in range(self.bursts):
            origin += float(rng.exponential(self.gap))
            for j in range(self.size):
                work = self.work
                if self.work_cv > 0:
                    work *= _work_factor(rng, self.work_cv)
                drawn.append((origin + j * self.spread, work, _job_seed(rng)))
        # A burst's spread tail can overshoot the next burst's origin;
        # job_ids are assigned in time order after the (stable) sort so a
        # trace is always id- and time-sorted at once.
        drawn.sort(key=lambda d: d[0])
        return tuple(
            JobArrival(job_id=i, time=t, work=w, seed=s)
            for i, (t, w, s) in enumerate(drawn)
        )


@dataclasses.dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Explicit replayed arrivals (built in code or loaded from JSONL)."""

    arrivals: tuple[JobArrival, ...]

    name = "trace"

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", tuple(self.arrivals))
        ids = [a.job_id for a in self.arrivals]
        if len(set(ids)) != len(ids):
            raise ValueError("trace contains duplicate job_ids")

    def generate(self, seed: int | None = None) -> tuple[JobArrival, ...]:
        # A replayed trace is already fully realized; the seed is unused.
        return tuple(sorted(self.arrivals, key=lambda a: (a.time, a.job_id)))


def _validate_process(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"arrival process: {message}")


# -- JSONL trace files --------------------------------------------------------

def arrivals_to_jsonl(arrivals: typing.Iterable[JobArrival]) -> str:
    """Serialize arrivals as one JSON object per line (byte-deterministic).

    Keys are sorted and floats use Python's shortest-roundtrip repr, so
    ``arrivals_from_jsonl(arrivals_to_jsonl(a)) == a`` exactly — the
    trace-file round-trip property the test suite pins.
    """
    lines = [
        json.dumps(dataclasses.asdict(a), sort_keys=True, separators=(",", ":"))
        for a in arrivals
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def arrivals_from_jsonl(text: str) -> tuple[JobArrival, ...]:
    """Parse a JSONL arrival trace (inverse of :func:`arrivals_to_jsonl`)."""
    out: list[JobArrival] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"arrival trace line {lineno} is not JSON: {exc}") from None
        unknown = set(payload) - {"job_id", "time", "work", "seed"}
        if unknown:
            raise ValueError(
                f"arrival trace line {lineno} has unknown fields: {sorted(unknown)}"
            )
        try:
            out.append(
                JobArrival(
                    job_id=int(payload["job_id"]),
                    time=float(payload["time"]),
                    work=float(payload["work"]),
                    seed=None if payload.get("seed") is None else int(payload["seed"]),
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"arrival trace line {lineno} is missing field {exc.args[0]!r}"
            ) from None
    return tuple(out)


# -- spec-string grammar ------------------------------------------------------

def _parse_kv(body: str, kind: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed arrival parameter {part!r} in {kind!r} spec")
        try:
            out[key.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"arrival parameter {key.strip()!r} needs a number, got {value!r}"
            ) from None
    return out


def _take(params: dict[str, float], kind: str, *names: str, **defaults) -> list[float]:
    values = []
    for name in names:
        if name in params:
            values.append(params.pop(name))
        elif name in defaults:
            values.append(defaults[name])
        else:
            raise ValueError(f"arrival spec {kind!r} is missing parameter {name!r}")
    if params:
        extra = ", ".join(sorted(params))
        raise ValueError(f"unknown parameter(s) for arrival kind {kind!r}: {extra}")
    return values


def make_arrival_process(spec: "str | ArrivalProcess") -> ArrivalProcess:
    """Parse an arrival spec string (see module docstring) into a process.

    Accepts an already-constructed :class:`ArrivalProcess` unchanged, so
    callers can be agnostic about which form they hold.
    """
    if isinstance(spec, ArrivalProcess):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"arrival spec must be a string, got {type(spec).__name__}")
    kind, sep, body = spec.strip().partition(":")
    kind = kind.strip()
    if not sep:
        raise ValueError(f"arrival spec {spec!r} has no parameters (expected kind:k=v,…)")
    if kind == "trace":
        path = body.strip()
        if not os.path.exists(path):
            raise ValueError(f"arrival trace file not found: {path!r}")
        with open(path, encoding="utf-8") as fh:
            return TraceArrivals(arrivals_from_jsonl(fh.read()))
    params = _parse_kv(body, kind)
    if kind == "poisson":
        rate, jobs, work, work_cv = _take(
            params, kind, "rate", "jobs", "work", "work_cv", work_cv=0.0
        )
        if jobs != int(jobs):
            raise ValueError(f"poisson jobs must be integral, got {jobs}")
        return PoissonArrivals(rate=rate, jobs=int(jobs), work=work, work_cv=work_cv)
    if kind == "bursty":
        bursts, size, gap, work, spread, work_cv = _take(
            params, kind, "bursts", "size", "gap", "work", "spread", "work_cv",
            spread=0.0, work_cv=0.0,
        )
        if bursts != int(bursts) or size != int(size):
            raise ValueError(f"bursty bursts/size must be integral, got {bursts}/{size}")
        return BurstyArrivals(
            bursts=int(bursts), size=int(size), gap=gap, work=work,
            spread=spread, work_cv=work_cv,
        )
    raise ValueError(
        f"unknown arrival kind {kind!r}; available: poisson, bursty, trace"
    )
