"""Divisible-workload application models.

The paper motivates divisible-load scheduling with three application
families (§1): image feature extraction (a large image cut into segments),
signal processing (scanning a long recording), and sequence matching (one
query against a large dictionary, BLAST-style).  This package models them
as concrete :class:`~repro.workloads.base.DivisibleWorkload` objects that

* define the total workload in the scheduler's abstract *units* and how
  units map to application quantities (pixels, samples, letters);
* characterize the *inherent* prediction error of the application — e.g.
  data-dependent compute costs (§4: "in a ray-tracing application the time
  taken to trace through one pixel depends greatly on the complexity of
  the scene") — as an empirical error magnitude usable by RUMR.

The examples drive the schedulers through these models.

:mod:`repro.workloads.arrivals` adds the *stream* dimension: deterministic
seeded arrival processes (Poisson, bursty, trace replay) that emit
:class:`~repro.workloads.arrivals.JobArrival` records for the multi-job
engine (:mod:`repro.sim.multijob`).
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    JobArrival,
    PoissonArrivals,
    TraceArrivals,
    arrivals_from_jsonl,
    arrivals_to_jsonl,
    make_arrival_process,
)
from repro.workloads.base import DivisibleWorkload, UnitCostSample
from repro.workloads.image import ImageFeatureExtraction
from repro.workloads.raytracing import RayTracing
from repro.workloads.sequence import SequenceMatching
from repro.workloads.signal import SignalScan

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DivisibleWorkload",
    "ImageFeatureExtraction",
    "JobArrival",
    "PoissonArrivals",
    "RayTracing",
    "SequenceMatching",
    "SignalScan",
    "TraceArrivals",
    "UnitCostSample",
    "arrivals_from_jsonl",
    "arrivals_to_jsonl",
    "make_arrival_process",
]
