"""Sequence matching: one query against a large dictionary (BLAST-style).

The paper's third motivating application (§1): "a single sequence is
compared to a big dictionary file, and the running time is proportional to
the letters in that dictionary."  The unit of workload is one dictionary
sequence; the cost of comparing the query against it is proportional to
its length, and dictionary sequence lengths are famously heavy-tailed —
modelled here as a (shifted) Pareto distribution, which gives this
workload the largest inherent prediction error of the three models.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import DivisibleWorkload

__all__ = ["SequenceMatching"]


class SequenceMatching(DivisibleWorkload):
    """Query-vs-dictionary sequence comparison.

    Parameters
    ----------
    num_sequences:
        Dictionary size — one sequence is one workload unit.
    mean_length:
        Mean sequence length in letters.
    tail_index:
        Pareto tail index of the length distribution (must be > 2 so the
        variance exists; smaller = heavier tail = larger inherent error).
    cost_per_letter:
        Seconds per letter on a 1-unit/s reference worker.
    """

    def __init__(
        self,
        num_sequences: int = 100000,
        mean_length: float = 350.0,
        tail_index: float = 2.5,
        cost_per_letter: float = 1.0 / 350.0,
    ):
        if num_sequences < 1:
            raise ValueError(f"num_sequences must be >= 1, got {num_sequences}")
        if mean_length <= 0:
            raise ValueError(f"mean_length must be > 0, got {mean_length}")
        if tail_index <= 2.0:
            raise ValueError(
                f"tail_index must be > 2 for a finite variance, got {tail_index}"
            )
        if cost_per_letter <= 0:
            raise ValueError(f"cost_per_letter must be > 0, got {cost_per_letter}")
        self.num_sequences = num_sequences
        self.mean_length = mean_length
        self.tail_index = tail_index
        self.cost_per_letter = cost_per_letter
        self.total_units = float(num_sequences)
        self.name = f"sequence-matching-{num_sequences}"
        # Pareto(a) with scale x_m has mean a*x_m/(a-1); pick x_m for the
        # requested mean length.
        self._x_m = mean_length * (tail_index - 1.0) / tail_index

    def sequence_length(self, rng: np.random.Generator) -> float:
        """Draw one dictionary sequence length (letters)."""
        # numpy's pareto is the Lomax form; (1 + pareto(a)) * x_m is the
        # classic Pareto with scale x_m.
        return float((1.0 + rng.pareto(self.tail_index)) * self._x_m)

    def unit_cost(self, rng: np.random.Generator) -> float:
        return self.sequence_length(rng) * self.cost_per_letter

    def mean_unit_cost(self) -> float:
        return self.mean_length * self.cost_per_letter
