"""The simulation environment: virtual clock plus event calendar.

The calendar is a binary heap of ``(time, priority, sequence, event)``
entries.  The ``sequence`` counter makes ordering total and deterministic:
simultaneous events fire in the order they were scheduled (within the same
priority class), so repeated runs of an identical model are bit-identical.
"""

from __future__ import annotations

import heapq
import typing

from repro.des.events import Event, Timeout
from repro.des.process import Process

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


#: Priority classes for simultaneous events.  URGENT is used internally by
#: resources so that releases are observed before same-time acquisitions.
URGENT = 0
NORMAL = 1


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(2.5)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    2.5
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- factory helpers ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put ``event`` on the calendar ``delay`` time units from now."""
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Fire the next event, advancing the clock to its time."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        event._fire()

    def run(self, until: "float | Event | None" = None) -> object:
        """Run until the calendar drains, a deadline, or an event fires.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain.
            a number
                run until the clock reaches that time (events scheduled
                exactly at the deadline do fire).
            an :class:`Event`
                run until that event fires and return its value; raises
                ``RuntimeError`` if the calendar drains first.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._queue:
                    raise RuntimeError(
                        "simulation ended before the awaited event fired"
                    )
                self.step()
            return target.value
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"deadline {deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = max(self._now, deadline) if not self._queue else deadline
        return None
