"""Trace recording for simulations.

A :class:`Monitor` is an append-only log of :class:`TraceRecord` entries.
The master-worker simulator emits records for every dispatch, arrival,
compute start and compute end, which the test suite uses to check causality
invariants and which examples use to print Gantt-style timelines.
"""

from __future__ import annotations

import dataclasses
import typing

__all__ = ["Monitor", "TraceRecord"]


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One event in a simulation trace.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        Event category, e.g. ``"send_start"``, ``"send_end"``,
        ``"arrival"``, ``"compute_start"``, ``"compute_end"``.
    actor:
        Which entity the event concerns (e.g. worker index, or -1 for the
        master).
    detail:
        Free-form mapping with event specifics (chunk id, size, durations).
    """

    time: float
    kind: str
    actor: int
    detail: typing.Mapping[str, object] = dataclasses.field(default_factory=dict)


class Monitor:
    """Append-only trace with small query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def record(self, time: float, kind: str, actor: int, **detail: object) -> None:
        """Append a record (no-op when disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, kind, actor, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """All records in chronological (insertion) order."""
        return tuple(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one category, in order."""
        return [r for r in self._records if r.kind == kind]

    def for_actor(self, actor: int) -> list[TraceRecord]:
        """All records concerning one actor, in order."""
        return [r for r in self._records if r.actor == actor]

    def last_time(self) -> float:
        """Time of the latest record (0.0 when empty)."""
        return max((r.time for r in self._records), default=0.0)
