"""Generator-based processes.

A process wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.des.events.Event`; the process is suspended until that event
fires and is then resumed with the event's value (or the event's exception is
thrown into it).  A process is itself an event that fires when the generator
returns, carrying the generator's return value — so processes can ``yield``
other processes to join them.
"""

from __future__ import annotations

import typing

from repro.des.events import Event, EventError, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulation process (and the event of its termination)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: typing.Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Kick the process off at the current simulation time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == Event.PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must be alive and waiting on an event (you cannot
        interrupt a process from within itself).
        """
        if not self.is_alive:
            raise EventError("cannot interrupt a terminated process")
        if self.env.active_process is self:
            raise EventError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on, then resume it
        # with the interrupt via an immediate event.
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        wakeup = Event(self.env)
        wakeup._exception = Interrupt(cause)
        wakeup.callbacks.append(self._resume)
        wakeup._state = Event.SCHEDULED
        self.env.schedule(wakeup)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator after ``event`` fired."""
        env = self.env
        previous, env._active_process = env._active_process, self
        self._target = None
        try:
            if event._exception is None:
                result = self._generator.send(event._value)
            else:
                result = self._generator.throw(event._exception)
        except StopIteration as stop:
            env._active_process = previous
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process with a failure.
            env._active_process = previous
            self.fail(exc)
            return
        finally:
            if env._active_process is self:
                env._active_process = previous

        if not isinstance(result, Event):
            raise TypeError(
                f"process {self._generator!r} yielded {result!r}; "
                "processes must yield Event instances"
            )
        if result.env is not env:
            raise ValueError("cannot wait on an event from another environment")
        if result.processed:
            # Already fired: resume immediately (but via the calendar so the
            # kernel stays re-entrant-free and ordering stays deterministic).
            wakeup = Event(env)
            wakeup._value = result._value
            wakeup._exception = result._exception
            wakeup.callbacks.append(self._resume)
            wakeup._state = Event.SCHEDULED
            env.schedule(wakeup)
            self._target = wakeup
        else:
            result.callbacks.append(self._resume)
            self._target = result
