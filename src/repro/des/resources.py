"""Queued resources: a finite-capacity FIFO server and a message store.

``Resource`` models mutually exclusive servers (the master's network
interface is a ``Resource(capacity=1)``): processes ``yield resource.
request()``, hold the grant while using the server, and must ``release`` it.
``Store`` is an unbounded FIFO of items with blocking ``get``.
"""

from __future__ import annotations

import collections
import typing

from repro.des.environment import URGENT
from repro.des.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment

__all__ = ["Request", "Resource", "Store"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Fires (with value ``self``) when the resource grants the claim.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A FIFO resource with ``capacity`` identical servers.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of simultaneous grants (default 1: mutual exclusion).
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: collections.deque[Request] = collections.deque()

    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a server; the returned event fires when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted server, waking the next waiter (if any)."""
        try:
            self._users.remove(request)
        except KeyError:
            raise ValueError(f"{request!r} does not hold this resource") from None
        if self._waiting:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt._value = nxt
            nxt._state = Event.SCHEDULED
            # URGENT so a same-time release is observed before other events.
            self.env.schedule(nxt, priority=URGENT)

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        try:
            self._waiting.remove(request)
        except ValueError:
            raise ValueError(f"{request!r} is not waiting on this resource") from None


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item as soon as one is available.  Waiters are served FIFO.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """A snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter._value = item
            getter._state = Event.SCHEDULED
            self.env.schedule(getter, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
