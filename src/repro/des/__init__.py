"""A small process-oriented discrete-event simulation (DES) kernel.

This package is the reproduction's substitute for the SimGrid toolkit used by
the paper.  It provides the generic machinery — a virtual clock, an event
calendar, generator-based processes, and queued resources — on which the
master-worker platform simulator (:mod:`repro.sim`) is built.

The design follows the classic process-interaction style (as popularized by
SimPy): a *process* is a Python generator that yields :class:`Event` objects
and is resumed when the yielded event fires.  The kernel is deliberately
minimal but complete enough to express arbitrary master-worker protocols:

``Environment``
    owns the clock and the event calendar and runs the simulation.
``Event`` / ``Timeout`` / ``AllOf`` / ``AnyOf``
    one-shot occurrences that processes can wait on.
``Process``
    a running generator; itself an event that fires when the generator
    returns (so processes can wait on each other).
``Resource``
    a FIFO server with finite capacity (used to model the master's
    serialized network interface card).
``Store``
    an unbounded FIFO message queue (used for worker inboxes).
``Monitor``
    an append-only trace recorder with simple querying.

Determinism: event ordering is (time, priority, insertion order).  Two runs
of the same model with the same random seeds produce identical traces.
"""

from repro.des.environment import Environment
from repro.des.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.des.monitor import Monitor, TraceRecord
from repro.des.process import Process
from repro.des.resources import Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Monitor",
    "Process",
    "Request",
    "Resource",
    "Store",
    "Timeout",
    "TraceRecord",
]
