"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence.  It starts *pending*, may be
*scheduled* (given a firing time on the environment's calendar), and finally
*fires*, at which point all registered callbacks run exactly once.  Events
carry an optional ``value`` that is delivered to waiting processes as the
result of their ``yield``.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Interrupt", "EventError"]


class EventError(RuntimeError):
    """Raised on illegal event state transitions (double-fire, re-schedule)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.des.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment this event belongs to.

    Notes
    -----
    ``succeed(value)`` schedules the event to fire *now* (at the current
    simulation time); ``fail(exc)`` does the same but delivers an exception
    to waiters.  An event can be succeeded or failed at most once.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_state")

    PENDING = 0
    SCHEDULED = 1
    FIRED = 2

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[typing.Callable[[Event], None]] = []
        self._value: object = None
        self._exception: BaseException | None = None
        self._state = Event.PENDING

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled or has fired."""
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == Event.FIRED

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (no exception)."""
        if not self.processed:
            raise EventError("event has not been processed yet")
        return self._exception is None

    @property
    def value(self) -> object:
        """The value delivered by the event (only valid once triggered)."""
        if self._state == Event.PENDING:
            raise EventError("value of a pending event is undefined")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Schedule this event to fire immediately with ``value``."""
        if self._state != Event.PENDING:
            raise EventError(f"{self!r} has already been triggered")
        self._value = value
        self._state = Event.SCHEDULED
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire immediately, delivering ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._state != Event.PENDING:
            raise EventError(f"{self!r} has already been triggered")
        self._exception = exception
        self._state = Event.SCHEDULED
        self.env.schedule(self)
        return self

    def _fire(self) -> None:
        """Run callbacks; invoked by the environment at the firing time."""
        if self._state == Event.FIRED:
            raise EventError(f"{self!r} fired twice")
        self._state = Event.FIRED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {0: "pending", 1: "scheduled", 2: "fired"}[self._state]
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = Event.SCHEDULED
        env.schedule(self, delay=delay)


class _Condition(Event):
    """Base for events composed of several child events."""

    __slots__ = ("events", "_outstanding")

    def __init__(self, env: "Environment", events: typing.Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        self._outstanding = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._child_fired(event)
            else:
                event.callbacks.append(self._child_fired)

    def _child_fired(self, event: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> dict[Event, object]:
        return {e: e._value for e in self.events if e.processed and e._exception is None}


class AllOf(_Condition):
    """Fires when *all* child events have fired.

    The value is a dict mapping each child event to its value.  If any child
    fails, the condition fails with that child's exception.
    """

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self._state != Event.PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Fires when *any* child event has fired.

    The value is a dict of the children that have fired so far (usually one).
    """

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self._state != Event.PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect_values())
