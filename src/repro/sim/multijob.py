"""Multi-job stream simulation: divisible loads contending for one star.

The single-run engines (:mod:`repro.sim.fastsim`, :mod:`repro.sim.engine`)
schedule one divisible load on an otherwise idle platform.  This module
layers a *stream* on top: jobs arrive over time (see
:mod:`repro.workloads.arrivals`), contend for the same workers, and are
measured on queueing metrics — wait, response, slowdown, queue depth —
rather than makespan alone (:mod:`repro.experiments.queueing`).

Each job's own scheduling is untouched: a job runs through the existing
scheduler/engine stack via :func:`repro.sim.simulate`, prediction-error
models, fault injection and all.  The *inter-job* layer decides only when
a job gets the star and which workers it gets, through a pluggable
:class:`StreamPolicy`:

* **fcfs** — exclusive service in arrival order: a job takes the whole
  star and the next waits.  The simplest policy, and the conformance
  anchor: a one-job stream is *bitwise identical* to calling
  :func:`~repro.sim.simulate` directly (same engine, same floats, same
  RNG streams), which makes the entire layer differentially testable.
* **partitioned:parts=k** — the star's workers are split into ``k``
  contiguous groups, each serving its own FCFS queue; a job goes to the
  partition that can start it earliest (ties to the lowest index).  Each
  partition is modelled with its own master link — the multi-NIC
  front-end assumption of the resource-sharing DLT literature.
* **interleaved:slices=s** — round-interleaved sharing: each job's load
  is cut into ``s`` equal slices and the master serves the *active* jobs'
  slices round-robin, so small jobs are not stuck behind a long one
  (head-of-line blocking is traded for per-job dilation).  ``slices=1``
  degenerates to FCFS.

Composition semantics: the star is handed over whole between consecutive
service grants — a grant's simulation starts from an idle platform, so
cross-grant communication/computation overlap is conservatively not
modelled.  This is exactly what makes every per-job
:class:`~repro.sim.result.SimResult` engine-native and bitwise
comparable: job timelines are kept in *job-relative* time, and the
stream-level absolute timeline lives in :class:`JobRecord`
(``start``/``finish``/``slice_starts``).

Seeding: a job runs under ``JobArrival.seed`` when set (the arrival
processes pre-assign seeds so traces are self-contained); otherwise the
engine derives one from its stream-level ``seed`` and the ``job_id`` via
the same :func:`~repro.errors.rng.stream_for` discipline the sweep
harness uses.  Multi-slice jobs derive one seed per slice from the job
seed; a single-slice job uses the job seed unchanged (preserving the
bitwise conformance of the degenerate cases).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.base import Scheduler
from repro.errors.models import ErrorModel
from repro.errors.rng import stream_for
from repro.obs.events import SimEvent, canonical_order, events_from_result
from repro.platform.spec import PlatformSpec
from repro.sim.result import SimResult
from repro.workloads.arrivals import ArrivalProcess, JobArrival, make_arrival_process

__all__ = [
    "FCFSPolicy",
    "InterleavedPolicy",
    "JobRecord",
    "MultiJobResult",
    "PartitionedPolicy",
    "StreamPolicy",
    "make_stream_policy",
    "simulate_stream",
]

#: ``run_job(job, work, workers, seed) -> SimResult`` — the callback a
#: policy uses to grant the (sub-)star to one job's slice.
JobRunner = typing.Callable[[JobArrival, float, tuple[int, ...], "int | None"], SimResult]


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """One job's stream-level outcome.

    ``results`` holds the engine-native, job-relative simulation results
    (one per service slice — FCFS and partitioned grant exactly one);
    ``slice_starts`` places each slice on the stream's absolute timeline.
    """

    job: JobArrival
    start: float
    finish: float
    workers: tuple[int, ...]
    results: tuple[SimResult, ...]
    slice_starts: tuple[float, ...]

    # -- queueing quantities --------------------------------------------------
    @property
    def wait(self) -> float:
        """Seconds between arrival and first service (head-of-line delay)."""
        return self.start - self.job.time

    @property
    def response(self) -> float:
        """Seconds between arrival and completion (sojourn time)."""
        return self.finish - self.job.time

    @property
    def service(self) -> float:
        """Pure processing time: the sum of the job's slice makespans."""
        return sum(r.makespan for r in self.results)

    @property
    def slowdown(self) -> float:
        """Response over service — 1.0 means the job never queued."""
        service = self.service
        return self.response / service if service > 0 else 1.0

    # -- work accounting ------------------------------------------------------
    @property
    def dispatched_work(self) -> float:
        """Workload units actually sent across all slices."""
        return sum(r.dispatched_work for r in self.results)

    @property
    def delivered_work(self) -> float:
        """Workload units that finished computing across all slices."""
        return sum(r.delivered_work for r in self.results)

    @property
    def work_lost(self) -> float:
        """Workload units lost to worker crashes across all slices."""
        return sum(r.work_lost for r in self.results)


@dataclasses.dataclass(frozen=True)
class MultiJobResult:
    """Outcome of one simulated job stream.

    ``jobs`` is ordered by service order (arrival order under every
    in-tree policy).  Per-job engine results stay job-relative; the
    stream-level timeline is in each :class:`JobRecord`.
    """

    platform: PlatformSpec
    policy: str
    scheduler_name: str
    engine: str
    seed: int | None
    jobs: tuple[JobRecord, ...]

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def horizon(self) -> float:
        """Completion time of the whole stream (last job's finish)."""
        return max((j.finish for j in self.jobs), default=0.0)

    @property
    def total_work(self) -> float:
        """Sum of the jobs' requested workloads."""
        return sum(j.job.work for j in self.jobs)

    @property
    def delivered_work(self) -> float:
        return sum(j.delivered_work for j in self.jobs)

    @property
    def dispatched_work(self) -> float:
        return sum(j.dispatched_work for j in self.jobs)

    @property
    def work_lost(self) -> float:
        return sum(j.work_lost for j in self.jobs)

    def job_record(self, job_id: int) -> JobRecord:
        """The record of one job by id."""
        for rec in self.jobs:
            if rec.job.job_id == job_id:
                return rec
        raise KeyError(f"no job with id {job_id}")

    def max_queue_depth(self) -> int:
        """Peak number of jobs in the system (arrived, not yet finished).

        Departures at the same instant as an arrival are counted first,
        matching the canonical event order (``job_done`` sorts before
        ``job_arrival`` at one timestamp).
        """
        deltas = []
        for rec in self.jobs:
            deltas.append((rec.job.time, 1))
            deltas.append((rec.finish, -1))
        depth = peak = 0
        for _, delta in sorted(deltas, key=lambda d: (d[0], d[1])):
            depth += delta
            peak = max(peak, depth)
        return peak

    def events(self, include_sim: bool = False) -> tuple[SimEvent, ...]:
        """The stream's canonical event stream.

        Always contains the three job-level kinds — ``job_arrival`` /
        ``job_start`` / ``job_done`` at the job's absolute arrival, first
        service and completion instants (``worker=-1``, ``chunk=job_id``,
        ``size=work``, ``phase=policy``).  With ``include_sim=True`` the
        per-slice engine streams are merged in, shifted onto the absolute
        timeline, with chunk indices renumbered stream-unique and worker
        indices mapped back to the full star's numbering — ready for
        Chrome-trace export and the well-formedness properties.
        """
        events: list[SimEvent] = []
        chunk_offset = 0
        for rec in self.jobs:
            job = rec.job
            events.append(
                SimEvent(job.time, "job_arrival", -1, chunk=job.job_id,
                         size=job.work, phase=self.policy)
            )
            events.append(
                SimEvent(rec.start, "job_start", -1, chunk=job.job_id,
                         size=job.work, phase=self.policy)
            )
            events.append(
                SimEvent(rec.finish, "job_done", -1, chunk=job.job_id,
                         size=job.work, phase=self.policy,
                         detail=self.scheduler_name)
            )
            if include_sim:
                for offset, result in zip(rec.slice_starts, rec.results):
                    for e in events_from_result(result):
                        worker = rec.workers[e.worker] if e.worker >= 0 else e.worker
                        chunk = e.chunk + chunk_offset if e.chunk >= 0 else e.chunk
                        events.append(
                            dataclasses.replace(
                                e, time=e.time + offset, worker=worker, chunk=chunk
                            )
                        )
                    chunk_offset += result.num_chunks
        return canonical_order(events)


# -- inter-job policies -------------------------------------------------------

class StreamPolicy:
    """Abstract inter-job policy: decides when and where each job runs.

    A policy is configuration only.  :meth:`run` receives the arrival
    trace sorted by ``(time, job_id)`` plus a :data:`JobRunner` callback
    and returns one :class:`JobRecord` per job; all simulation goes
    through the callback, so policies never touch engines directly.
    """

    #: Spec-style name (used as the ``phase`` label of job events).
    name: str = "policy"

    def run(
        self,
        platform: PlatformSpec,
        jobs: tuple[JobArrival, ...],
        run_job: JobRunner,
        job_seed: typing.Callable[[JobArrival], "int | None"],
    ) -> tuple[JobRecord, ...]:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class FCFSPolicy(StreamPolicy):
    """Exclusive first-come-first-served service of the whole star."""

    name = "fcfs"

    def run(self, platform, jobs, run_job, job_seed):
        workers = tuple(range(platform.N))
        records: list[JobRecord] = []
        free = 0.0
        for job in jobs:
            start = max(job.time, free)
            result = run_job(job, job.work, workers, job_seed(job))
            finish = start + result.makespan
            records.append(
                JobRecord(
                    job=job, start=start, finish=finish, workers=workers,
                    results=(result,), slice_starts=(start,),
                )
            )
            free = finish
        return tuple(records)


@dataclasses.dataclass(frozen=True)
class PartitionedPolicy(StreamPolicy):
    """Processor-partitioned sharing: ``parts`` independent FCFS queues.

    Workers are split into ``parts`` contiguous, size-balanced groups
    (larger groups first); each job is assigned to the partition that can
    start it earliest, ties to the lowest partition index.  ``parts=1``
    degenerates to :class:`FCFSPolicy`.
    """

    parts: int = 2

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"partitioned:parts={self.parts}"

    def __post_init__(self) -> None:
        if self.parts < 1:
            raise ValueError(f"parts must be >= 1, got {self.parts}")

    def partitions(self, platform: PlatformSpec) -> tuple[tuple[int, ...], ...]:
        """The contiguous worker groups (like ``numpy.array_split``)."""
        n, k = platform.N, self.parts
        if k > n:
            raise ValueError(f"cannot split {n} workers into {k} partitions")
        base, extra = divmod(n, k)
        groups: list[tuple[int, ...]] = []
        cursor = 0
        for i in range(k):
            size = base + (1 if i < extra else 0)
            groups.append(tuple(range(cursor, cursor + size)))
            cursor += size
        return tuple(groups)

    def run(self, platform, jobs, run_job, job_seed):
        groups = self.partitions(platform)
        free = [0.0] * len(groups)
        records: list[JobRecord] = []
        for job in jobs:
            starts = [max(job.time, f) for f in free]
            part = min(range(len(groups)), key=lambda i: (starts[i], i))
            start = starts[part]
            result = run_job(job, job.work, groups[part], job_seed(job))
            finish = start + result.makespan
            records.append(
                JobRecord(
                    job=job, start=start, finish=finish, workers=groups[part],
                    results=(result,), slice_starts=(start,),
                )
            )
            free[part] = finish
        return tuple(records)


@dataclasses.dataclass(frozen=True)
class InterleavedPolicy(StreamPolicy):
    """Round-interleaved sharing: jobs time-share the star in work slices.

    Each job's load is cut into ``slices`` equal slices (the last absorbs
    the float remainder, so the sizes sum to the job's work exactly as
    dispatched).  The master serves the active jobs' next slices in
    round-robin order, admitting newly arrived jobs at the back of the
    rotation; when no job is active, time jumps to the next arrival.
    ``slices=1`` degenerates to :class:`FCFSPolicy`.
    """

    slices: int = 4

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"interleaved:slices={self.slices}"

    def __post_init__(self) -> None:
        if self.slices < 1:
            raise ValueError(f"slices must be >= 1, got {self.slices}")

    def slice_sizes(self, work: float) -> tuple[float, ...]:
        """Cut one job's work into slices (sizes > 0, summing to work)."""
        if self.slices == 1:
            return (work,)
        per = work / self.slices
        tail = work - per * (self.slices - 1)
        if per <= 0 or tail <= 0:
            return (work,)
        return (per,) * (self.slices - 1) + (tail,)

    def run(self, platform, jobs, run_job, job_seed):
        workers = tuple(range(platform.N))
        pending = list(jobs)  # sorted by (time, job_id)
        # Active entry: [job, seed, remaining sizes, next slice index,
        #                start (None until first slice), slice_starts, results]
        active: list[list] = []
        done: dict[int, JobRecord] = {}
        t = 0.0
        rr = 0

        def admit(now: float) -> None:
            while pending and pending[0].time <= now:
                job = pending.pop(0)
                active.append(
                    [job, job_seed(job), list(self.slice_sizes(job.work)), 0,
                     None, [], []]
                )

        admit(t)
        while pending or active:
            if not active:
                t = max(t, pending[0].time)
                admit(t)
                rr = 0
            entry = active[rr % len(active)]
            job, seed, sizes, k, start, slice_starts, results = entry
            size = sizes.pop(0)
            slice_seed = seed if self.slices == 1 else _slice_seed(seed, k)
            result = run_job(job, size, workers, slice_seed)
            if start is None:
                entry[4] = t
            entry[3] = k + 1
            slice_starts.append(t)
            results.append(result)
            t += result.makespan
            idx = rr % len(active)
            if not sizes:
                done[job.job_id] = JobRecord(
                    job=job, start=entry[4], finish=t, workers=workers,
                    results=tuple(results), slice_starts=tuple(slice_starts),
                )
                active.pop(idx)
                rr = idx  # the next entry slid into this slot
            else:
                rr = idx + 1
            admit(t)
        return tuple(done[job.job_id] for job in jobs)


def _slice_seed(job_seed: "int | None", slice_index: int) -> int:
    """Per-slice seed derived from the job seed (multi-slice jobs only)."""
    return int(stream_for(job_seed, slice_index).integers(0, 2**63 - 1))


def make_stream_policy(spec: "str | StreamPolicy") -> StreamPolicy:
    """Parse a policy spec into a :class:`StreamPolicy`.

    Accepted forms: ``fcfs``, ``partitioned`` / ``partitioned:parts=K``,
    ``interleaved`` / ``interleaved:slices=S``; an already-constructed
    policy passes through unchanged.
    """
    if isinstance(spec, StreamPolicy):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"policy spec must be a string, got {type(spec).__name__}")
    kind, _, body = spec.strip().partition(":")
    kind = kind.strip()
    params: dict[str, int] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed policy parameter {part!r} in {spec!r}")
        try:
            number = float(value)
        except ValueError:
            raise ValueError(
                f"policy parameter {key.strip()!r} needs a number, got {value!r}"
            ) from None
        if number != int(number):
            raise ValueError(f"policy parameter {key.strip()!r} must be integral")
        params[key.strip()] = int(number)
    if kind == "fcfs":
        if params:
            raise ValueError(f"fcfs takes no parameters, got {sorted(params)}")
        return FCFSPolicy()
    if kind == "partitioned":
        parts = params.pop("parts", 2)
        if params:
            raise ValueError(f"unknown parameter(s) for partitioned: {sorted(params)}")
        return PartitionedPolicy(parts=parts)
    if kind == "interleaved":
        slices = params.pop("slices", 4)
        if params:
            raise ValueError(f"unknown parameter(s) for interleaved: {sorted(params)}")
        return InterleavedPolicy(slices=slices)
    raise ValueError(
        f"unknown stream policy {kind!r}; available: fcfs, partitioned, interleaved"
    )


# -- the stream front door ----------------------------------------------------

def simulate_stream(
    platform: PlatformSpec,
    arrivals: "typing.Sequence[JobArrival] | ArrivalProcess | str",
    scheduler: "Scheduler | str" = "RUMR",
    error: float = 0.0,
    seed: int | None = None,
    policy: "StreamPolicy | str" = "fcfs",
    engine: str = "fast",
    faults: "typing.Any | None" = None,
    error_model_factory: "typing.Callable[[], ErrorModel] | None" = None,
    tracer: "typing.Any | None" = None,
) -> MultiJobResult:
    """Run a stream of divisible loads through the scheduler/engine stack.

    Parameters
    ----------
    platform:
        The shared master-worker star all jobs contend for.
    arrivals:
        The job stream: a sequence of :class:`~repro.workloads.arrivals.
        JobArrival`, an :class:`~repro.workloads.arrivals.ArrivalProcess`
        (realized with ``seed``), or an arrival spec string like
        ``"poisson:rate=0.02,jobs=8,work=200"``.
    scheduler:
        Per-job divisible-load scheduler: a registry name (instantiated
        with ``make_scheduler(name, error)``) or a configured
        :class:`~repro.core.base.Scheduler` shared by every job.
    error:
        Prediction-error magnitude: each job slice runs under a fresh
        ``make_error_model("normal", error)`` (0 keeps the exact
        :class:`~repro.errors.NoError` legacy path), and registry
        schedulers receive it as their error estimate.
    seed:
        Stream-level seed: realizes an :class:`ArrivalProcess` and
        derives the per-job seeds of arrivals that carry ``seed=None``.
    policy:
        Inter-job policy (see :func:`make_stream_policy`).
    engine / faults:
        Forwarded verbatim to every per-job :func:`~repro.sim.simulate`
        call — streams run under crashes, pauses, slowdowns and link
        spikes exactly like single runs.
    error_model_factory:
        Override the per-slice error model construction (a zero-argument
        callable returning a fresh :class:`~repro.errors.models.
        ErrorModel`); takes precedence over ``error``'s model.
    tracer:
        Optional :class:`repro.obs.Tracer`; receives the stream's
        job-level events plus the merged per-slice simulation events —
        the same stream :meth:`MultiJobResult.events` derives.
    """
    from repro.core.registry import make_scheduler
    from repro.errors.models import make_error_model
    from repro.sim.result import simulate

    if isinstance(arrivals, str):
        arrivals = make_arrival_process(arrivals)
    if isinstance(arrivals, ArrivalProcess):
        arrivals = arrivals.generate(seed)
    jobs = tuple(sorted(arrivals, key=lambda a: (a.time, a.job_id)))
    ids = [a.job_id for a in jobs]
    if len(set(ids)) != len(ids):
        raise ValueError("arrival stream contains duplicate job_ids")
    sched = make_scheduler(scheduler, error) if isinstance(scheduler, str) else scheduler
    stream_policy = make_stream_policy(policy)
    if error_model_factory is None:
        def error_model_factory():
            return make_error_model("normal", error)

    def run_job(job, work, workers, job_run_seed):
        sub = platform if len(workers) == platform.N else platform.subset(workers)
        return simulate(
            sub, work, sched, error_model_factory(), seed=job_run_seed,
            engine=engine, faults=faults,
        )

    def job_seed(job: JobArrival) -> "int | None":
        if job.seed is not None:
            return job.seed
        return int(stream_for(seed, job.job_id).integers(0, 2**63 - 1))

    records = stream_policy.run(platform, jobs, run_job, job_seed)
    result = MultiJobResult(
        platform=platform,
        policy=stream_policy.name,
        scheduler_name=sched.name,
        engine=engine,
        seed=seed,
        jobs=records,
    )
    if tracer is not None:
        for e in result.events(include_sim=True):
            tracer.emit(e.time, e.kind, e.worker, e.chunk, e.size, e.phase, e.detail)
    return result
