"""Multi-job stream simulation: divisible loads contending for one star.

The single-run engines (:mod:`repro.sim.fastsim`, :mod:`repro.sim.engine`)
schedule one divisible load on an otherwise idle platform.  This module
layers a *stream* on top: jobs arrive over time (see
:mod:`repro.workloads.arrivals`), contend for the same workers, and are
measured on queueing metrics — wait, response, slowdown, queue depth —
rather than makespan alone (:mod:`repro.experiments.queueing`).

Each job's own scheduling is untouched: a job runs through the existing
scheduler/engine stack via :func:`repro.sim.simulate`, prediction-error
models, fault injection and all.  The *inter-job* layer decides only when
a job gets the star and which workers it gets, through a pluggable
:class:`StreamPolicy`:

* **fcfs** — exclusive service in arrival order: a job takes the whole
  star and the next waits.  The simplest policy, and the conformance
  anchor: a one-job stream is *bitwise identical* to calling
  :func:`~repro.sim.simulate` directly (same engine, same floats, same
  RNG streams), which makes the entire layer differentially testable.
* **partitioned:parts=k** — the star's workers are split into ``k``
  contiguous groups, each serving its own FCFS queue; a job goes to the
  partition that can start it earliest (ties to the lowest index).  Each
  partition is modelled with its own master link — the multi-NIC
  front-end assumption of the resource-sharing DLT literature.
* **interleaved:slices=s** — round-interleaved sharing: each job's load
  is cut into ``s`` equal slices and the master serves the *active* jobs'
  slices round-robin, so small jobs are not stuck behind a long one
  (head-of-line blocking is traded for per-job dilation).  ``slices=1``
  degenerates to FCFS.

Composition semantics: the star is handed over whole between consecutive
service grants — a grant's simulation starts from an idle platform, so
cross-grant communication/computation overlap is conservatively not
modelled.  This is exactly what makes every per-job
:class:`~repro.sim.result.SimResult` engine-native and bitwise
comparable: job timelines are kept in *job-relative* time, and the
stream-level absolute timeline lives in :class:`JobRecord`
(``start``/``finish``/``slice_starts``).

Seeding: a job runs under ``JobArrival.seed`` when set (the arrival
processes pre-assign seeds so traces are self-contained); otherwise the
engine derives one from its stream-level ``seed`` and the ``job_id`` via
the same :func:`~repro.errors.rng.stream_for` discipline the sweep
harness uses.  Multi-slice jobs derive one seed per slice from the job
seed; a single-slice job uses the job seed unchanged (preserving the
bitwise conformance of the degenerate cases).

Faults in streams
-----------------
Under the default ``fault_frame="stream"`` the fault model is realized
**once** on the absolute stream clock (a :class:`~repro.errors.faults.
StreamFaultSchedule`, sampled from the stream seed's third spawned RNG
child) and each service grant sees the *projection* of that one timeline
into its own frame: crash/pause/slowdown state carries across jobs, and
a worker that crashed during job ``k`` dispatches zero chunks to any job
``j > k``.  A :class:`PlatformHealth` tracker observes the per-grant
loss ledgers (and the master's crash watchers) and excludes dead workers
at admission; a job whose candidate set is wholly dead is *failed* —
never deadlocked — under a pluggable :class:`JobFailurePolicy`
(``drop`` / ``retry`` with deterministic backoff / ``resubmit`` the
undelivered remainder to the surviving workers).

The legacy behavior — each per-job ``simulate()`` call re-realizing the
fault model relative to its *own* start, so a permanently crashed worker
resurrects for the next job, and (with ``policy="partitioned"``) worker
indices are sampled against the per-job *subset* so "worker 3" names a
different machine per job — is kept behind the explicit
``fault_frame="job"`` escape hatch.  Fault-free streams take the exact
pre-fault-plane code path and stay bitwise identical either way.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.base import Scheduler
from repro.errors.faults import FrozenFaults, StreamFaultSchedule
from repro.errors.models import ErrorModel
from repro.errors.rng import stream_for
from repro.obs.events import SimEvent, canonical_order, events_from_result
from repro.platform.spec import PlatformSpec
from repro.sim.result import SimResult
from repro.workloads.arrivals import ArrivalProcess, JobArrival, make_arrival_process

__all__ = [
    "DropFailurePolicy",
    "FCFSPolicy",
    "InterleavedPolicy",
    "JobFailurePolicy",
    "JobRecord",
    "MultiJobResult",
    "PartitionedPolicy",
    "PlatformHealth",
    "ResubmitFailurePolicy",
    "RetryFailurePolicy",
    "StreamPolicy",
    "make_failure_policy",
    "make_stream_policy",
    "simulate_stream",
]

#: ``run_job(job, work, workers, seed, start) -> SimResult`` — the
#: callback a policy uses to grant the (sub-)star to one job's slice.
#: ``start`` is the grant's absolute stream time (the fault plane
#: projects its timeline at that offset; fault-free runs ignore it).
JobRunner = typing.Callable[
    [JobArrival, float, tuple[int, ...], "int | None", float], SimResult
]

#: Relative tolerance for "the grant delivered everything it dispatched".
_DELIVERY_TOL = 1e-9


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """One job's stream-level outcome.

    ``results`` holds the engine-native, job-relative simulation results
    (one per service slice — FCFS and partitioned grant exactly one per
    attempt); ``slice_starts`` places each slice on the stream's
    absolute timeline.  ``slice_workers``, when non-empty, gives the
    *global* worker indices each slice actually ran on (fault-plane
    streams shrink the live set as workers die); when empty, every slice
    ran on ``workers``.  ``failed`` marks a job its failure policy gave
    up on (``failure`` names the reason); ``attempts`` counts service
    grants (including failed ones), ``resubmissions`` counts
    resubmit-to-survivors re-grants.
    """

    job: JobArrival
    start: float
    finish: float
    workers: tuple[int, ...]
    results: tuple[SimResult, ...]
    slice_starts: tuple[float, ...]
    slice_workers: tuple[tuple[int, ...], ...] = ()
    failed: bool = False
    failure: str = ""
    attempts: int = 1
    resubmissions: int = 0

    def workers_for_slice(self, index: int) -> tuple[int, ...]:
        """Global worker indices slice ``index`` ran on."""
        if self.slice_workers:
            return self.slice_workers[index]
        return self.workers

    # -- queueing quantities --------------------------------------------------
    @property
    def wait(self) -> float:
        """Seconds between arrival and first service (head-of-line delay)."""
        return self.start - self.job.time

    @property
    def response(self) -> float:
        """Seconds between arrival and completion (sojourn time)."""
        return self.finish - self.job.time

    @property
    def service(self) -> float:
        """Pure processing time: the sum of the job's slice makespans."""
        return sum(r.makespan for r in self.results)

    @property
    def slowdown(self) -> float:
        """Response over service — 1.0 means the job never queued."""
        service = self.service
        return self.response / service if service > 0 else 1.0

    # -- work accounting ------------------------------------------------------
    @property
    def dispatched_work(self) -> float:
        """Workload units actually sent across all slices."""
        return sum(r.dispatched_work for r in self.results)

    @property
    def delivered_work(self) -> float:
        """Workload units that finished computing across all slices."""
        return sum(r.delivered_work for r in self.results)

    @property
    def work_lost(self) -> float:
        """Workload units lost to worker crashes across all slices."""
        return sum(r.work_lost for r in self.results)


@dataclasses.dataclass(frozen=True)
class MultiJobResult:
    """Outcome of one simulated job stream.

    ``jobs`` is ordered by service order (arrival order under every
    in-tree policy).  Per-job engine results stay job-relative; the
    stream-level timeline is in each :class:`JobRecord`.  Fault-plane
    streams additionally carry the stream-level event substream
    (``stream_events``: ``worker_excluded`` / ``job_failed`` /
    ``job_resubmitted``) and the health tracker's exclusion ledger
    (``excluded``: ``(worker, crash_time)`` pairs, sorted by time).
    """

    platform: PlatformSpec
    policy: str
    scheduler_name: str
    engine: str
    seed: int | None
    jobs: tuple[JobRecord, ...]
    fault_frame: str = "stream"
    failure_policy: str = "drop"
    fault_spec: str = "none"
    stream_events: tuple[SimEvent, ...] = ()
    excluded: tuple[tuple[int, float], ...] = ()

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def horizon(self) -> float:
        """Completion time of the whole stream (last job's finish)."""
        return max((j.finish for j in self.jobs), default=0.0)

    @property
    def total_work(self) -> float:
        """Sum of the jobs' requested workloads."""
        return sum(j.job.work for j in self.jobs)

    @property
    def delivered_work(self) -> float:
        return sum(j.delivered_work for j in self.jobs)

    @property
    def dispatched_work(self) -> float:
        return sum(j.dispatched_work for j in self.jobs)

    @property
    def work_lost(self) -> float:
        return sum(j.work_lost for j in self.jobs)

    # -- fault-plane accounting -----------------------------------------------
    @property
    def completed_jobs(self) -> tuple[JobRecord, ...]:
        """Records of the jobs that completed (``not failed``)."""
        return tuple(j for j in self.jobs if not j.failed)

    @property
    def jobs_failed(self) -> int:
        return sum(1 for j in self.jobs if j.failed)

    @property
    def jobs_resubmitted(self) -> int:
        """Jobs that were resubmitted to survivors at least once."""
        return sum(1 for j in self.jobs if j.resubmissions > 0)

    @property
    def workers_excluded(self) -> tuple[int, ...]:
        """Global indices of workers excluded by health, in exclusion order."""
        return tuple(w for w, _ in self.excluded)

    def job_record(self, job_id: int) -> JobRecord:
        """The record of one job by id."""
        for rec in self.jobs:
            if rec.job.job_id == job_id:
                return rec
        raise KeyError(f"no job with id {job_id}")

    def max_queue_depth(self) -> int:
        """Peak number of jobs in the system (arrived, not yet finished).

        Departures at the same instant as an arrival are counted first,
        matching the canonical event order (``job_done`` sorts before
        ``job_arrival`` at one timestamp).  Failed jobs depart at their
        failure instant.
        """
        deltas = []
        for rec in self.jobs:
            deltas.append((rec.job.time, 1))
            deltas.append((rec.finish, -1))
        depth = peak = 0
        for _, delta in sorted(deltas, key=lambda d: (d[0], d[1])):
            depth += delta
            peak = max(peak, depth)
        return peak

    def events(self, include_sim: bool = False) -> tuple[SimEvent, ...]:
        """The stream's canonical event stream.

        Always contains the job-level kinds — ``job_arrival`` /
        ``job_start`` / ``job_done`` at the job's absolute arrival, first
        service and completion instants (``worker=-1``, ``chunk=job_id``,
        ``size=work``, ``phase=policy``) — plus the stream-fault
        substream (``worker_excluded`` / ``job_failed`` /
        ``job_resubmitted``) when a fault plane was active.  A job that
        never received a grant has no ``job_start``; a failed job has
        ``job_failed`` instead of ``job_done``.  With
        ``include_sim=True`` the per-slice engine streams are merged in,
        shifted onto the absolute timeline, with chunk indices
        renumbered stream-unique and worker indices mapped back to the
        full star's numbering — ready for Chrome-trace export and the
        well-formedness properties.
        """
        events: list[SimEvent] = list(self.stream_events)
        chunk_offset = 0
        for rec in self.jobs:
            job = rec.job
            events.append(
                SimEvent(job.time, "job_arrival", -1, chunk=job.job_id,
                         size=job.work, phase=self.policy)
            )
            if rec.results:
                events.append(
                    SimEvent(rec.start, "job_start", -1, chunk=job.job_id,
                             size=job.work, phase=self.policy)
                )
            if not rec.failed:
                events.append(
                    SimEvent(rec.finish, "job_done", -1, chunk=job.job_id,
                             size=job.work, phase=self.policy,
                             detail=self.scheduler_name)
                )
            if include_sim:
                for i, (offset, result) in enumerate(
                    zip(rec.slice_starts, rec.results)
                ):
                    slice_workers = rec.workers_for_slice(i)
                    for e in events_from_result(result):
                        worker = slice_workers[e.worker] if e.worker >= 0 else e.worker
                        chunk = e.chunk + chunk_offset if e.chunk >= 0 else e.chunk
                        events.append(
                            dataclasses.replace(
                                e, time=e.time + offset, worker=worker, chunk=chunk
                            )
                        )
                    chunk_offset += result.num_chunks
        return canonical_order(events)


# -- platform health ----------------------------------------------------------

class PlatformHealth:
    """Stream-clock worker availability, fed by observed fault evidence.

    The tracker is the stream's memory between grants: the per-grant
    engines each see only their own projected timeline, while the health
    tracker accumulates what the master has *observed* — a worker whose
    permanent crash has been seen (via a grant's loss ledger, the
    engines' upfront crash watchers, or an admission-time check against
    the stream timeline) is **dead** and excluded from every later
    admission; a worker whose slowdown onset has passed is **degraded**
    (still admitted — it computes, just slower — but reported so
    capacity metrics can discount it).

    Exclusions are recorded at the worker's *crash instant* (the truth on
    the stream clock), not at the observation instant, so the exclusion
    ledger is independent of which grant happened to reveal the crash.
    """

    def __init__(
        self,
        num_workers: int,
        plane: "StreamFaultSchedule | None" = None,
    ) -> None:
        self._n = int(num_workers)
        self._plane = plane
        self._dead: dict[int, float] = {}
        self._degraded: dict[int, float] = {}
        #: ``worker_excluded`` events, one per dead worker, in discovery
        #: order (re-sorted canonically by the stream result).
        self.events: list[SimEvent] = []

    @property
    def num_workers(self) -> int:
        return self._n

    @property
    def dead(self) -> frozenset[int]:
        """Global indices of workers observed permanently crashed."""
        return frozenset(self._dead)

    @property
    def degraded(self) -> dict[int, float]:
        """Observed slowdown factors of degraded (but live) workers."""
        return dict(self._degraded)

    def death_time(self, worker: int) -> float:
        """Absolute crash instant of an excluded worker (``inf`` = live)."""
        return self._dead.get(worker, math.inf)

    def excluded_pairs(self) -> tuple[tuple[int, float], ...]:
        """``(worker, crash_time)`` pairs, sorted by (time, worker)."""
        return tuple(sorted(self._dead.items(), key=lambda kv: (kv[1], kv[0])))

    def _mark_dead(self, worker: int, when: float) -> None:
        if worker not in self._dead:
            self._dead[worker] = when
            self.events.append(
                SimEvent(when, "worker_excluded", worker, detail="crash")
            )

    def live(self, workers: typing.Sequence[int], now: float) -> tuple[int, ...]:
        """The subset of ``workers`` admissible at stream time ``now``.

        Consults the stream timeline (a crash at exactly ``now`` counts
        as dead — the loss rule ``comp_end > crash`` makes any new grant
        futile) in addition to previously observed deaths, so a worker
        whose crash fell *between* grants is still excluded.
        """
        out: list[int] = []
        for w in workers:
            if w in self._dead:
                continue
            ct = self._plane.crash_time(w) if self._plane is not None else math.inf
            if ct <= now:
                self._mark_dead(w, ct)
            else:
                out.append(w)
        return tuple(out)

    def observe_slice(
        self,
        workers: typing.Sequence[int],
        offset: float,
        result: SimResult,
    ) -> None:
        """Fold one grant's evidence into the tracker.

        ``workers`` are the global indices the grant ran on, ``offset``
        its absolute start.  Lost records mark their worker dead (at the
        stream timeline's crash instant when known, else at the loss
        observation instant); with a stream timeline attached, crashes
        and slowdown onsets that fell inside the grant's window are
        picked up even when the worker had no chunk in flight.
        """
        horizon = offset + result.makespan
        if self._plane is not None:
            for w in workers:
                ct = self._plane.crash_time(w)
                if ct <= horizon:
                    self._mark_dead(w, ct)
                ss, sf = self._plane.schedule.slowdowns[w]
                if sf > 1.0 and ss <= horizon and w not in self._degraded:
                    self._degraded[w] = sf
        for r in result.records:
            if r.lost:
                w = workers[r.worker]
                when = self._plane.crash_time(w) if self._plane is not None else None
                if when is None or not math.isfinite(when):
                    when = offset + r.loss_time
                self._mark_dead(w, when)


# -- job failure policies -----------------------------------------------------

class JobFailurePolicy:
    """Abstract policy for jobs whose grant cannot run or falls short.

    A grant *fails* when its candidate worker set is wholly dead at
    admission, or when it delivers less than the work it was asked to
    (chunks lost to crashes with no recovering scheduler).  The policy
    is configuration only — the serve loops in this module interpret it:

    * ``max_attempts`` caps the total service attempts per grant
      (admission checks included); exhausting it fails the job.
    * ``backoff(attempt, seed)`` is the delay before re-attempt
      ``attempt + 1`` (exclusive policies only; the interleaved rotation
      provides natural spacing and skips backoff).
    * ``resubmits`` — re-grant only the *undelivered remainder* to the
      surviving workers instead of re-running from scratch.
    """

    #: Spec-style name (recorded on the stream result).
    name: str = "policy"
    max_attempts: int = 1

    @property
    def resubmits(self) -> bool:
        return False

    def backoff(self, attempt: int, seed: "int | None" = None) -> float:
        return 0.0


@dataclasses.dataclass(frozen=True)
class DropFailurePolicy(JobFailurePolicy):
    """Fail a job on its first unsuccessful grant (the default)."""

    name = "drop"
    max_attempts = 1


@dataclasses.dataclass(frozen=True)
class RetryFailurePolicy(JobFailurePolicy):
    """Re-run a failed grant from scratch with deterministic backoff.

    Mirrors the sweep harness's :class:`~repro.experiments.resilient.
    RetryPolicy`: exponential backoff ``base * multiplier**(attempt-1)``
    with an optional multiplicative jitter drawn deterministically from
    the job seed via :func:`~repro.errors.rng.stream_for` — the same
    stream seed always yields the same backoff sequence.  Backoff is
    simulated stream time, not wall time.
    """

    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff_base}")
        if self.backoff_multiplier < 1:
            raise ValueError(
                f"multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0 <= self.jitter_fraction < 1:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter_fraction}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"retry:attempts={self.max_attempts}"

    def backoff(self, attempt: int, seed: "int | None" = None) -> float:
        delay = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        if self.jitter_fraction > 0:
            u = float(stream_for(seed, attempt, 2).random())
            delay *= 1.0 + self.jitter_fraction * (2.0 * u - 1.0)
        return delay


@dataclasses.dataclass(frozen=True)
class ResubmitFailurePolicy(JobFailurePolicy):
    """Immediately re-grant the undelivered remainder to the survivors.

    The remainder shrinks by whatever each attempt delivered, so
    progress is monotone; ``max_attempts`` still bounds the grant count
    (a remainder that makes no progress exhausts it).
    """

    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.max_attempts}")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"resubmit:attempts={self.max_attempts}"

    @property
    def resubmits(self) -> bool:
        return True


def make_failure_policy(spec: "str | JobFailurePolicy") -> JobFailurePolicy:
    """Parse a failure-policy spec into a :class:`JobFailurePolicy`.

    Accepted forms: ``drop``, ``retry`` /
    ``retry:attempts=3,backoff=1,mult=2,jitter=0.25``, ``resubmit`` /
    ``resubmit:attempts=4``; an already-constructed policy passes
    through unchanged.
    """
    if isinstance(spec, JobFailurePolicy):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"failure policy spec must be a string, got {type(spec).__name__}"
        )
    kind, _, body = spec.strip().partition(":")
    kind = kind.strip()
    params: dict[str, float] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed failure-policy parameter {part!r} in {spec!r}")
        try:
            params[key.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"failure-policy parameter {key.strip()!r} needs a number, got {value!r}"
            ) from None
    def _int(name: str, default: int) -> int:
        raw = params.pop(name, float(default))
        if raw != int(raw):
            raise ValueError(f"failure-policy parameter {name!r} must be integral")
        return int(raw)
    if kind == "drop":
        if params:
            raise ValueError(f"drop takes no parameters, got {sorted(params)}")
        return DropFailurePolicy()
    if kind == "retry":
        policy: JobFailurePolicy = RetryFailurePolicy(
            max_attempts=_int("attempts", 3),
            backoff_base=params.pop("backoff", 1.0),
            backoff_multiplier=params.pop("mult", 2.0),
            jitter_fraction=params.pop("jitter", 0.25),
        )
        if params:
            raise ValueError(f"unknown parameter(s) for retry: {sorted(params)}")
        return policy
    if kind == "resubmit":
        policy = ResubmitFailurePolicy(max_attempts=_int("attempts", 4))
        if params:
            raise ValueError(f"unknown parameter(s) for resubmit: {sorted(params)}")
        return policy
    raise ValueError(
        f"unknown failure policy {kind!r}; available: drop, retry, resubmit"
    )


class _StreamRuntime:
    """Per-call coordinator threading the fault plane through a policy.

    Bundles the realized stream timeline, the health tracker, and the
    failure policy; collects the job-level stream-fault events.  With no
    plane (fault-free streams, or ``fault_frame="job"``) it is inert and
    the policies take the exact legacy code path.
    """

    def __init__(
        self,
        plane: "StreamFaultSchedule | None",
        health: PlatformHealth,
        failure: JobFailurePolicy,
        policy_name: str,
    ) -> None:
        self.plane = plane
        self.health = health
        self.failure = failure
        self.policy_name = policy_name
        self.events: list[SimEvent] = []

    @property
    def active(self) -> bool:
        return self.plane is not None

    def fail(self, job: JobArrival, when: float, reason: str) -> None:
        self.events.append(
            SimEvent(when, "job_failed", -1, chunk=job.job_id, size=job.work,
                     phase=self.policy_name, detail=reason)
        )

    def resubmit(
        self, job: JobArrival, when: float, remainder: float, attempt: int
    ) -> None:
        self.events.append(
            SimEvent(when, "job_resubmitted", -1, chunk=job.job_id,
                     size=remainder, phase=self.policy_name,
                     detail=f"attempt={attempt}")
        )


def _attempt_seed(seed: "int | None", attempt: int) -> int:
    """Seed of re-attempt ``attempt`` (1-based) of one service grant.

    Keyed ``(attempt, 1)`` so it can never collide with the
    single-key-tuple per-slice seeds of :func:`_slice_seed`.
    """
    return int(stream_for(seed, attempt, 1).integers(0, 2**63 - 1))


def _serve_exclusive(
    rt: "_StreamRuntime | None",
    job: JobArrival,
    candidates: tuple[int, ...],
    start: float,
    run_job: JobRunner,
    seed0: "int | None",
) -> tuple[JobRecord, float]:
    """Serve one job exclusively on ``candidates`` from ``start``.

    The shared FCFS/partitioned grant loop: admission-time health
    filtering, delivery-shortfall detection, and the failure policy's
    retry/resubmit machinery.  Returns the record plus the instant the
    candidate set becomes free again.  Without an active fault plane
    this is exactly the legacy single-grant path.
    """
    if rt is None or not rt.active:
        result = run_job(job, job.work, candidates, seed0, start)
        finish = start + result.makespan
        record = JobRecord(
            job=job, start=start, finish=finish, workers=candidates,
            results=(result,), slice_starts=(start,),
        )
        return record, finish

    attempts = 0
    resubmissions = 0
    t = start
    first_service: float | None = None
    results: list[SimResult] = []
    starts: list[float] = []
    slice_ws: list[tuple[int, ...]] = []
    outstanding = job.work
    failure = ""
    while True:
        live = rt.health.live(candidates, t)
        if not live:
            attempts += 1
            if attempts < rt.failure.max_attempts:
                t += rt.failure.backoff(attempts, seed0)
                continue
            failure = "no-live-workers"
            break
        attempts += 1
        seed = seed0 if attempts == 1 else _attempt_seed(seed0, attempts - 1)
        result = run_job(job, outstanding, live, seed, t)
        rt.health.observe_slice(live, t, result)
        if first_service is None:
            first_service = t
        starts.append(t)
        results.append(result)
        slice_ws.append(live)
        end = t + result.makespan
        delivered = result.delivered_work
        if delivered + _DELIVERY_TOL * max(1.0, outstanding) >= outstanding:
            record = JobRecord(
                job=job, start=first_service, finish=end, workers=candidates,
                results=tuple(results), slice_starts=tuple(starts),
                slice_workers=tuple(slice_ws), attempts=attempts,
                resubmissions=resubmissions,
            )
            return record, end
        if attempts >= rt.failure.max_attempts:
            failure = "delivery-shortfall" if attempts == 1 else "attempts-exhausted"
            t = end
            break
        if rt.failure.resubmits:
            outstanding -= delivered
            resubmissions += 1
            t = end
            rt.resubmit(job, t, outstanding, attempt=attempts + 1)
        else:
            t = end + rt.failure.backoff(attempts, seed0)
    rt.fail(job, t, failure)
    record = JobRecord(
        job=job, start=first_service if first_service is not None else t,
        finish=t, workers=candidates, results=tuple(results),
        slice_starts=tuple(starts), slice_workers=tuple(slice_ws),
        failed=True, failure=failure, attempts=attempts,
        resubmissions=resubmissions,
    )
    return record, t


# -- inter-job policies -------------------------------------------------------

class StreamPolicy:
    """Abstract inter-job policy: decides when and where each job runs.

    A policy is configuration only.  :meth:`run` receives the arrival
    trace sorted by ``(time, job_id)`` plus a :data:`JobRunner` callback
    and returns one :class:`JobRecord` per job; all simulation goes
    through the callback, so policies never touch engines directly.
    ``stream`` carries the fault-plane runtime (health tracker + failure
    policy); ``None`` or an inactive runtime selects the exact legacy
    fault-free path.
    """

    #: Spec-style name (used as the ``phase`` label of job events).
    name: str = "policy"

    def run(
        self,
        platform: PlatformSpec,
        jobs: tuple[JobArrival, ...],
        run_job: JobRunner,
        job_seed: typing.Callable[[JobArrival], "int | None"],
        stream: "_StreamRuntime | None" = None,
    ) -> tuple[JobRecord, ...]:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class FCFSPolicy(StreamPolicy):
    """Exclusive first-come-first-served service of the whole star."""

    name = "fcfs"

    def run(self, platform, jobs, run_job, job_seed, stream=None):
        workers = tuple(range(platform.N))
        records: list[JobRecord] = []
        free = 0.0
        for job in jobs:
            start = max(job.time, free)
            record, free = _serve_exclusive(
                stream, job, workers, start, run_job, job_seed(job)
            )
            records.append(record)
        return tuple(records)


@dataclasses.dataclass(frozen=True)
class PartitionedPolicy(StreamPolicy):
    """Processor-partitioned sharing: ``parts`` independent FCFS queues.

    Workers are split into ``parts`` contiguous, size-balanced groups
    (larger groups first); each job is assigned to the partition that can
    start it earliest, ties to the lowest partition index.  ``parts=1``
    degenerates to :class:`FCFSPolicy`.  Under an active fault plane,
    partitions whose workers are all dead at their candidate start are
    skipped (degradation-aware admission); if every partition is dead
    the earliest one is nominally assigned and the failure policy fails
    the job there.
    """

    parts: int = 2

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"partitioned:parts={self.parts}"

    def __post_init__(self) -> None:
        if self.parts < 1:
            raise ValueError(f"parts must be >= 1, got {self.parts}")

    def partitions(self, platform: PlatformSpec) -> tuple[tuple[int, ...], ...]:
        """The contiguous worker groups (like ``numpy.array_split``)."""
        n, k = platform.N, self.parts
        if k > n:
            raise ValueError(f"cannot split {n} workers into {k} partitions")
        base, extra = divmod(n, k)
        groups: list[tuple[int, ...]] = []
        cursor = 0
        for i in range(k):
            size = base + (1 if i < extra else 0)
            groups.append(tuple(range(cursor, cursor + size)))
            cursor += size
        return tuple(groups)

    def run(self, platform, jobs, run_job, job_seed, stream=None):
        groups = self.partitions(platform)
        free = [0.0] * len(groups)
        records: list[JobRecord] = []
        faulty = stream is not None and stream.active
        for job in jobs:
            starts = [max(job.time, f) for f in free]
            indices = range(len(groups))
            if faulty:
                viable = [
                    i for i in indices if stream.health.live(groups[i], starts[i])
                ]
                part = min(viable or indices, key=lambda i: (starts[i], i))
            else:
                part = min(indices, key=lambda i: (starts[i], i))
            record, busy = _serve_exclusive(
                stream, job, groups[part], starts[part], run_job, job_seed(job)
            )
            records.append(record)
            free[part] = busy
        return tuple(records)


@dataclasses.dataclass
class _InterleavedEntry:
    """Mutable rotation state of one active interleaved job."""

    job: JobArrival
    seed: "int | None"
    sizes: list
    k: int = 0
    start: "float | None" = None
    slice_starts: list = dataclasses.field(default_factory=list)
    results: list = dataclasses.field(default_factory=list)
    slice_ws: list = dataclasses.field(default_factory=list)
    grants: int = 0
    slice_fails: int = 0
    resubs: int = 0


@dataclasses.dataclass(frozen=True)
class InterleavedPolicy(StreamPolicy):
    """Round-interleaved sharing: jobs time-share the star in work slices.

    Each job's load is cut into ``slices`` equal slices (the last absorbs
    the float remainder, so the sizes sum to the job's work exactly as
    dispatched).  The master serves the active jobs' next slices in
    round-robin order, admitting newly arrived jobs at the back of the
    rotation; when no job is active, time jumps to the next arrival.
    ``slices=1`` degenerates to :class:`FCFSPolicy`.

    Under an active fault plane each slice grant goes to the live
    workers only; a failed slice is re-served at the job's next rotation
    turn (the rotation itself provides the retry spacing, so the failure
    policy's backoff delays are not added), and a wholly dead star fails
    jobs immediately — crashes are permanent, so waiting cannot help and
    the rotation must not idle-spin.
    """

    slices: int = 4

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"interleaved:slices={self.slices}"

    def __post_init__(self) -> None:
        if self.slices < 1:
            raise ValueError(f"slices must be >= 1, got {self.slices}")

    def slice_sizes(self, work: float) -> tuple[float, ...]:
        """Cut one job's work into slices (sizes > 0, summing to work)."""
        if self.slices == 1:
            return (work,)
        per = work / self.slices
        tail = work - per * (self.slices - 1)
        if per <= 0 or tail <= 0:
            return (work,)
        return (per,) * (self.slices - 1) + (tail,)

    def run(self, platform, jobs, run_job, job_seed, stream=None):
        if stream is not None and stream.active:
            return self._run_faulty(platform, jobs, run_job, job_seed, stream)
        workers = tuple(range(platform.N))
        pending = list(jobs)  # sorted by (time, job_id)
        # Active entry: [job, seed, remaining sizes, next slice index,
        #                start (None until first slice), slice_starts, results]
        active: list[list] = []
        done: dict[int, JobRecord] = {}
        t = 0.0
        rr = 0

        def admit(now: float) -> None:
            while pending and pending[0].time <= now:
                job = pending.pop(0)
                active.append(
                    [job, job_seed(job), list(self.slice_sizes(job.work)), 0,
                     None, [], []]
                )

        admit(t)
        while pending or active:
            if not active:
                t = max(t, pending[0].time)
                admit(t)
                rr = 0
            entry = active[rr % len(active)]
            job, seed, sizes, k, start, slice_starts, results = entry
            size = sizes.pop(0)
            slice_seed = seed if self.slices == 1 else _slice_seed(seed, k)
            result = run_job(job, size, workers, slice_seed, t)
            if start is None:
                entry[4] = t
            entry[3] = k + 1
            slice_starts.append(t)
            results.append(result)
            t += result.makespan
            idx = rr % len(active)
            if not sizes:
                done[job.job_id] = JobRecord(
                    job=job, start=entry[4], finish=t, workers=workers,
                    results=tuple(results), slice_starts=tuple(slice_starts),
                )
                active.pop(idx)
                rr = idx  # the next entry slid into this slot
            else:
                rr = idx + 1
            admit(t)
        return tuple(done[job.job_id] for job in jobs)

    def _run_faulty(self, platform, jobs, run_job, job_seed, rt):
        """The fault-plane rotation (see class docstring)."""
        workers = tuple(range(platform.N))
        pending = list(jobs)
        active: list[_InterleavedEntry] = []
        done: dict[int, JobRecord] = {}
        t = 0.0
        rr = 0

        def admit(now: float) -> None:
            while pending and pending[0].time <= now:
                job = pending.pop(0)
                active.append(
                    _InterleavedEntry(
                        job, job_seed(job), list(self.slice_sizes(job.work))
                    )
                )

        def fail(entry: _InterleavedEntry, when: float, reason: str) -> None:
            rt.fail(entry.job, when, reason)
            done[entry.job.job_id] = JobRecord(
                job=entry.job,
                start=entry.start if entry.start is not None else when,
                finish=when, workers=workers, results=tuple(entry.results),
                slice_starts=tuple(entry.slice_starts),
                slice_workers=tuple(entry.slice_ws), failed=True,
                failure=reason, attempts=entry.grants,
                resubmissions=entry.resubs,
            )

        admit(t)
        while pending or active:
            if not active:
                t = max(t, pending[0].time)
                admit(t)
                rr = 0
            idx = rr % len(active)
            entry = active[idx]
            live = rt.health.live(workers, t)
            if not live:
                fail(entry, t, "no-live-workers")
                active.pop(idx)
                rr = idx
                admit(t)
                continue
            size = entry.sizes[0]
            base = entry.seed if self.slices == 1 else _slice_seed(entry.seed, entry.k)
            seed_k = base if entry.slice_fails == 0 else _attempt_seed(
                base, entry.slice_fails
            )
            result = run_job(entry.job, size, live, seed_k, t)
            rt.health.observe_slice(live, t, result)
            entry.grants += 1
            if entry.start is None:
                entry.start = t
            entry.slice_starts.append(t)
            entry.results.append(result)
            entry.slice_ws.append(live)
            t += result.makespan
            delivered = result.delivered_work
            if delivered + _DELIVERY_TOL * max(1.0, size) >= size:
                entry.sizes.pop(0)
                entry.k += 1
                entry.slice_fails = 0
                if not entry.sizes:
                    done[entry.job.job_id] = JobRecord(
                        job=entry.job, start=entry.start, finish=t,
                        workers=workers, results=tuple(entry.results),
                        slice_starts=tuple(entry.slice_starts),
                        slice_workers=tuple(entry.slice_ws),
                        attempts=entry.grants, resubmissions=entry.resubs,
                    )
                    active.pop(idx)
                    rr = idx
                else:
                    rr = idx + 1
            else:
                entry.slice_fails += 1
                if entry.slice_fails >= rt.failure.max_attempts:
                    reason = (
                        "delivery-shortfall"
                        if rt.failure.max_attempts == 1
                        else "attempts-exhausted"
                    )
                    fail(entry, t, reason)
                    active.pop(idx)
                    rr = idx
                else:
                    if rt.failure.resubmits:
                        entry.sizes[0] = size - delivered
                        entry.resubs += 1
                        rt.resubmit(
                            entry.job, t, entry.sizes[0],
                            attempt=entry.slice_fails + 1,
                        )
                    rr = idx + 1
            admit(t)
        return tuple(done[job.job_id] for job in jobs)


def _slice_seed(job_seed: "int | None", slice_index: int) -> int:
    """Per-slice seed derived from the job seed (multi-slice jobs only)."""
    return int(stream_for(job_seed, slice_index).integers(0, 2**63 - 1))


def make_stream_policy(spec: "str | StreamPolicy") -> StreamPolicy:
    """Parse a policy spec into a :class:`StreamPolicy`.

    Accepted forms: ``fcfs``, ``partitioned`` / ``partitioned:parts=K``,
    ``interleaved`` / ``interleaved:slices=S``; an already-constructed
    policy passes through unchanged.
    """
    if isinstance(spec, StreamPolicy):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"policy spec must be a string, got {type(spec).__name__}")
    kind, _, body = spec.strip().partition(":")
    kind = kind.strip()
    params: dict[str, int] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed policy parameter {part!r} in {spec!r}")
        try:
            number = float(value)
        except ValueError:
            raise ValueError(
                f"policy parameter {key.strip()!r} needs a number, got {value!r}"
            ) from None
        if number != int(number):
            raise ValueError(f"policy parameter {key.strip()!r} must be integral")
        params[key.strip()] = int(number)
    if kind == "fcfs":
        if params:
            raise ValueError(f"fcfs takes no parameters, got {sorted(params)}")
        return FCFSPolicy()
    if kind == "partitioned":
        parts = params.pop("parts", 2)
        if params:
            raise ValueError(f"unknown parameter(s) for partitioned: {sorted(params)}")
        return PartitionedPolicy(parts=parts)
    if kind == "interleaved":
        slices = params.pop("slices", 4)
        if params:
            raise ValueError(f"unknown parameter(s) for interleaved: {sorted(params)}")
        return InterleavedPolicy(slices=slices)
    raise ValueError(
        f"unknown stream policy {kind!r}; available: fcfs, partitioned, interleaved"
    )


# -- the stream front door ----------------------------------------------------

def simulate_stream(
    platform: PlatformSpec,
    arrivals: "typing.Sequence[JobArrival] | ArrivalProcess | str",
    scheduler: "Scheduler | str" = "RUMR",
    error: float = 0.0,
    seed: int | None = None,
    policy: "StreamPolicy | str" = "fcfs",
    engine: str = "fast",
    faults: "typing.Any | None" = None,
    fault_frame: str = "stream",
    failure_policy: "JobFailurePolicy | str" = "drop",
    topology: "typing.Any | None" = None,
    error_model_factory: "typing.Callable[[], ErrorModel] | None" = None,
    tracer: "typing.Any | None" = None,
) -> MultiJobResult:
    """Run a stream of divisible loads through the scheduler/engine stack.

    Parameters
    ----------
    platform:
        The shared master-worker star all jobs contend for.
    arrivals:
        The job stream: a sequence of :class:`~repro.workloads.arrivals.
        JobArrival`, an :class:`~repro.workloads.arrivals.ArrivalProcess`
        (realized with ``seed``), or an arrival spec string like
        ``"poisson:rate=0.02,jobs=8,work=200"``.
    scheduler:
        Per-job divisible-load scheduler: a registry name (instantiated
        with ``make_scheduler(name, error)``) or a configured
        :class:`~repro.core.base.Scheduler` shared by every job.
    error:
        Prediction-error magnitude: each job slice runs under a fresh
        ``make_error_model("normal", error)`` (0 keeps the exact
        :class:`~repro.errors.NoError` legacy path), and registry
        schedulers receive it as their error estimate.
    seed:
        Stream-level seed: realizes an :class:`ArrivalProcess`, derives
        the per-job seeds of arrivals that carry ``seed=None``, and —
        under ``fault_frame="stream"`` — realizes the one stream fault
        timeline (from its third spawned RNG child, the engines' fault
        stream discipline).
    policy:
        Inter-job policy (see :func:`make_stream_policy`).
    engine:
        Forwarded verbatim to every per-job :func:`~repro.sim.simulate`
        call.
    faults:
        Fault model or spec (see :func:`~repro.errors.faults.
        make_fault_model`).  How it is realized depends on
        ``fault_frame``.
    fault_frame:
        ``"stream"`` (default): realize **one** timeline on the absolute
        stream clock and project it into every grant — crashes persist
        across jobs, the health tracker excludes dead workers at
        admission, and ``failure_policy`` governs jobs that cannot
        finish.  ``"job"``: the legacy escape hatch — every per-job
        ``simulate()`` re-realizes the model relative to its own start,
        so a crashed worker resurrects for the next job; with subset
        policies the realization samples indices against the *subset*,
        so "worker 3" names a different machine per job.  Fault-free
        streams are bitwise identical under both frames.
    failure_policy:
        What to do with a grant that cannot run or falls short (see
        :func:`make_failure_policy`); only consulted under an active
        ``fault_frame="stream"`` plane.
    topology:
        Interconnect spec forwarded to every per-job ``simulate()``;
        ``sharedbw`` is rejected with ``faults`` (matching the
        single-job guard) because loss classification needs a completion
        time predictable at dispatch.
    error_model_factory:
        Override the per-slice error model construction (a zero-argument
        callable returning a fresh :class:`~repro.errors.models.
        ErrorModel`); takes precedence over ``error``'s model.
    tracer:
        Optional :class:`repro.obs.Tracer`; receives the stream's
        job-level events plus the merged per-slice simulation events —
        the same stream :meth:`MultiJobResult.events` derives.
    """
    from repro.core.registry import make_scheduler
    from repro.errors.faults import NoFaults, make_fault_model
    from repro.errors.models import make_error_model
    from repro.platform.topology import make_topology
    from repro.sim.result import simulate

    if fault_frame not in ("stream", "job"):
        raise ValueError(
            f"fault_frame must be 'stream' or 'job', got {fault_frame!r}"
        )
    fault_model = make_fault_model(faults) if faults is not None else None
    if isinstance(fault_model, NoFaults):
        fault_model = None
    if fault_model is not None and make_topology(topology).kind == "sharedbw":
        raise ValueError(
            "fault injection is not supported on sharedbw topologies: loss "
            "classification needs a completion time predictable at dispatch "
            "(matching the single-job simulate() guard)"
        )
    failure = make_failure_policy(failure_policy)

    if isinstance(arrivals, str):
        arrivals = make_arrival_process(arrivals)
    if isinstance(arrivals, ArrivalProcess):
        arrivals = arrivals.generate(seed)
    jobs = tuple(sorted(arrivals, key=lambda a: (a.time, a.job_id)))
    ids = [a.job_id for a in jobs]
    if len(set(ids)) != len(ids):
        raise ValueError("arrival stream contains duplicate job_ids")
    sched = make_scheduler(scheduler, error) if isinstance(scheduler, str) else scheduler
    stream_policy = make_stream_policy(policy)
    if error_model_factory is None:
        def error_model_factory():
            return make_error_model("normal", error)

    plane: StreamFaultSchedule | None = None
    if fault_model is not None and fault_frame == "stream":
        plane = StreamFaultSchedule.realize(fault_model, platform, seed)
        if not plane.any_faults:
            plane = None
    health = PlatformHealth(platform.N, plane)
    runtime = _StreamRuntime(plane, health, failure, stream_policy.name)

    def run_job(job, work, workers, job_run_seed, start):
        sub = platform if len(workers) == platform.N else platform.subset(workers)
        job_faults = faults
        if plane is not None:
            job_faults = FrozenFaults(plane.project(workers, start))
        elif fault_model is not None and fault_frame == "stream":
            # The stream timeline realized all-clear: authoritative.
            job_faults = None
        return simulate(
            sub, work, sched, error_model_factory(), seed=job_run_seed,
            engine=engine, faults=job_faults, topology=topology,
        )

    def job_seed(job: JobArrival) -> "int | None":
        if job.seed is not None:
            return job.seed
        return int(stream_for(seed, job.job_id).integers(0, 2**63 - 1))

    records = stream_policy.run(platform, jobs, run_job, job_seed, runtime)
    result = MultiJobResult(
        platform=platform,
        policy=stream_policy.name,
        scheduler_name=sched.name,
        engine=engine,
        seed=seed,
        jobs=records,
        fault_frame=fault_frame,
        failure_policy=failure.name,
        fault_spec=fault_model.spec if fault_model is not None else "none",
        stream_events=tuple(health.events) + tuple(runtime.events),
        excluded=health.excluded_pairs(),
    )
    if tracer is not None:
        for e in result.events(include_sim=True):
            tracer.emit(e.time, e.kind, e.worker, e.chunk, e.size, e.phase, e.detail)
    return result
