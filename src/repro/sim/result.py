"""Simulation results, the engine-selection front door, and validation."""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.base import Scheduler
from repro.core.chunks import DispatchRecord
from repro.errors.models import ErrorModel, NoError
from repro.platform.spec import PlatformSpec

__all__ = ["SimResult", "simulate", "validate_schedule"]


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated application run.

    Attributes
    ----------
    makespan:
        Completion time of the last *delivered* chunk (the paper's
        objective); chunks lost to worker crashes do not count.
    records:
        One :class:`~repro.core.chunks.DispatchRecord` per chunk, in
        dispatch order (including lost chunks, flagged ``lost=True``).
    platform / total_work / scheduler_name / seed:
        Provenance of the run.
    work_lost:
        Workload units lost to crashed workers.  Under a recovery-aware
        scheduler the lost units are re-dispatched, so
        ``delivered_work == total_work`` still holds; under a static
        scheduler they are simply gone.
    """

    makespan: float
    records: tuple[DispatchRecord, ...]
    platform: PlatformSpec
    total_work: float
    scheduler_name: str
    seed: int | None = None
    work_lost: float = 0.0

    @property
    def num_chunks(self) -> int:
        """How many chunks were dispatched."""
        return len(self.records)

    @property
    def dispatched_work(self) -> float:
        """Total workload actually sent (delivered + lost)."""
        return sum(r.size for r in self.records)

    @property
    def delivered_work(self) -> float:
        """Workload that reached a worker and finished computing."""
        return sum(r.size for r in self.records if not r.lost)

    @property
    def lost_records(self) -> tuple[DispatchRecord, ...]:
        """Records of chunks lost to worker crashes, in dispatch order."""
        return tuple(r for r in self.records if r.lost)

    def worker_records(self, worker: int) -> list[DispatchRecord]:
        """Records for one worker, in dispatch order."""
        return [r for r in self.records if r.worker == worker]

    def worker_busy_time(self, worker: int) -> float:
        """Total computation time of one worker."""
        return sum(r.comp_time for r in self.worker_records(worker))

    def utilization(self) -> float:
        """Mean fraction of the makespan workers spent computing.

        Lost chunks carry fictitious (would-have-been) timelines and are
        excluded.
        """
        if self.makespan == 0:
            return 0.0
        busy = sum(r.comp_time for r in self.records if not r.lost)
        return busy / (self.platform.N * self.makespan)

    def phase_work(self) -> dict[str, float]:
        """Workload dispatched per scheduler phase label."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.phase] = out.get(r.phase, 0.0) + r.size
        return out


def simulate(
    platform: PlatformSpec,
    total_work: float,
    scheduler: Scheduler,
    error_model: ErrorModel | None = None,
    seed: int | None = None,
    engine: str = "fast",
    trace: "typing.Any | None" = None,
    faults: "typing.Any | None" = None,
) -> SimResult:
    """Run one application under ``scheduler`` and return the result.

    Parameters
    ----------
    platform:
        The master-worker platform.
    total_work:
        ``W_total`` in workload units; must be positive.
    scheduler:
        Any :class:`~repro.core.base.Scheduler`.
    error_model:
        Prediction-error model (default: perfect predictions).
    seed:
        Seed for the error streams; irrelevant (but allowed) with
        :class:`~repro.errors.NoError`.
    engine:
        ``"fast"`` (default) or ``"des"`` — identical results, different
        machinery; the DES engine additionally fills ``trace`` if given.
    trace:
        Optional :class:`repro.des.Monitor` (DES engine only).
    faults:
        Optional fault scenario — a :class:`repro.errors.FaultModel` or a
        spec string like ``"crash:p=0.2,tmax=400"`` (see
        :func:`repro.errors.make_fault_model`).  ``None`` or ``"none"``
        keeps the run on the fault-free two-stream code path.
    """
    from repro.errors.faults import make_fault_model
    from repro.sim.engine import simulate_des
    from repro.sim.fastsim import simulate_fast

    if not total_work > 0:
        raise ValueError(f"total_work must be > 0, got {total_work}")
    if error_model is None:
        error_model = NoError()
    fault_model = None
    if faults is not None:
        fault_model = make_fault_model(faults)
        from repro.errors.faults import NoFaults

        if isinstance(fault_model, NoFaults):
            fault_model = None
    if engine == "fast":
        if trace is not None:
            raise ValueError("trace monitors require engine='des'")
        return simulate_fast(
            platform, total_work, scheduler, error_model, seed, faults=fault_model
        )
    if engine == "des":
        return simulate_des(
            platform, total_work, scheduler, error_model, seed, trace, faults=fault_model
        )
    raise ValueError(f"unknown engine {engine!r}")


def validate_schedule(result: SimResult, rel_tol: float = 1e-9) -> None:
    """Assert the physical invariants of a simulated schedule.

    Checks (raises ``AssertionError`` on violation):

    * the dispatched work equals the requested total workload (fault-free
      runs) — with losses, delivered work never exceeds the total and
      delivered + lost == dispatched (full coverage of the total is a
      *scheduler* property — it requires a surviving worker — and is
      asserted by the recovery tests, not here);
    * master-link transfers never overlap and are ordered;
    * each arrival happens at/after its transfer's link release;
    * computation starts at/after arrival and respects per-worker FIFO;
    * the makespan is the max computation end over delivered chunks.
    """
    records = result.records
    total = result.total_work
    has_losses = result.work_lost > 0.0 or any(r.lost for r in records)
    if has_losses:
        work_tol = rel_tol * max(1.0, total)
        delivered = result.delivered_work
        lost = sum(r.size for r in records if r.lost)
        assert delivered <= total + work_tol, (
            f"delivered {delivered} exceeds total {total}"
        )
        assert math.isclose(
            delivered + lost, result.dispatched_work, rel_tol=rel_tol, abs_tol=1e-9
        ), f"delivered {delivered} + lost {lost} != dispatched {result.dispatched_work}"
        assert math.isclose(
            lost, result.work_lost, rel_tol=rel_tol, abs_tol=1e-9
        ), f"lost records sum {lost} != work_lost {result.work_lost}"
    else:
        assert math.isclose(
            result.dispatched_work, total, rel_tol=rel_tol, abs_tol=1e-9
        ), f"dispatched {result.dispatched_work} != total {total}"
    tol = rel_tol * max(1.0, result.makespan)
    prev_send_end = -math.inf
    for r in records:
        assert r.send_start >= prev_send_end - tol, f"link overlap at chunk {r.index}"
        assert r.send_end >= r.send_start - tol, f"negative transfer at chunk {r.index}"
        assert r.arrival >= r.send_end - tol, f"arrival precedes send end at {r.index}"
        assert r.comp_start >= r.arrival - tol, f"compute before arrival at {r.index}"
        assert r.comp_end >= r.comp_start - tol, f"negative compute at {r.index}"
        prev_send_end = r.send_end
    for w in range(result.platform.N):
        prev_end = -math.inf
        for r in result.worker_records(w):
            assert r.comp_start >= prev_end - tol, f"worker {w} FIFO violated"
            prev_end = r.comp_end
    delivered_records = [r for r in records if not r.lost]
    if delivered_records:
        last = max(r.comp_end for r in delivered_records)
        assert math.isclose(result.makespan, last, rel_tol=1e-12, abs_tol=1e-12), (
            f"makespan {result.makespan} != last completion {last}"
        )
