"""Simulation results, the engine-selection front door, and validation."""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.base import Scheduler
from repro.core.chunks import DispatchRecord
from repro.errors.models import ErrorModel, NoError
from repro.platform.spec import PlatformSpec

__all__ = ["SimResult", "simulate", "validate_schedule"]


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated application run.

    Attributes
    ----------
    makespan:
        Completion time of the last *delivered* chunk (the paper's
        objective); chunks lost to worker crashes do not count.
    records:
        One :class:`~repro.core.chunks.DispatchRecord` per chunk, in
        dispatch order (including lost chunks, flagged ``lost=True``).
    platform / total_work / scheduler_name / seed:
        Provenance of the run.
    work_lost:
        Workload units lost to crashed workers.  Under a recovery-aware
        scheduler the lost units are re-dispatched, so
        ``delivered_work == total_work`` still holds; under a static
        scheduler they are simply gone.
    topology:
        Canonical spec string of the interconnect the run was routed
        through (see :mod:`repro.platform.topology`); ``"star"`` for the
        paper's baseline single-level star.
    """

    makespan: float
    records: tuple[DispatchRecord, ...]
    platform: PlatformSpec
    total_work: float
    scheduler_name: str
    seed: int | None = None
    work_lost: float = 0.0
    topology: str = "star"

    @property
    def num_chunks(self) -> int:
        """How many chunks were dispatched."""
        return len(self.records)

    @property
    def dispatched_work(self) -> float:
        """Total workload actually sent (delivered + lost)."""
        return sum(r.size for r in self.records)

    @property
    def delivered_work(self) -> float:
        """Workload that reached a worker and finished computing."""
        return sum(r.size for r in self.records if not r.lost)

    @property
    def lost_records(self) -> tuple[DispatchRecord, ...]:
        """Records of chunks lost to worker crashes, in dispatch order."""
        return tuple(r for r in self.records if r.lost)

    def worker_records(self, worker: int) -> list[DispatchRecord]:
        """Records for one worker, in dispatch order."""
        return [r for r in self.records if r.worker == worker]

    def worker_busy_time(self, worker: int) -> float:
        """Total computation time of one worker."""
        return sum(r.comp_time for r in self.worker_records(worker))

    def utilization(self) -> float:
        """Mean fraction of the makespan workers spent computing.

        Lost chunks carry fictitious (would-have-been) timelines and are
        excluded.
        """
        if self.makespan == 0:
            return 0.0
        busy = sum(r.comp_time for r in self.records if not r.lost)
        return busy / (self.platform.N * self.makespan)

    def phase_work(self) -> dict[str, float]:
        """Workload dispatched per scheduler phase label."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.phase] = out.get(r.phase, 0.0) + r.size
        return out


def simulate(
    platform: PlatformSpec,
    total_work: float,
    scheduler: Scheduler,
    error_model: ErrorModel | None = None,
    seed: int | None = None,
    engine: str = "fast",
    trace: "typing.Any | None" = None,
    faults: "typing.Any | None" = None,
    tracer: "typing.Any | None" = None,
    topology: "typing.Any | None" = None,
) -> SimResult:
    """Run one application under ``scheduler`` and return the result.

    Parameters
    ----------
    platform:
        The master-worker platform.
    total_work:
        ``W_total`` in workload units; must be positive.
    scheduler:
        Any :class:`~repro.core.base.Scheduler`.
    error_model:
        Prediction-error model (default: perfect predictions).
    seed:
        Seed for the error streams; irrelevant (but allowed) with
        :class:`~repro.errors.NoError`.
    engine:
        ``"fast"`` (default) or ``"des"`` — identical results, different
        machinery; the DES engine additionally fills ``trace`` if given.
    trace:
        Optional :class:`repro.des.Monitor` (DES engine only).
    tracer:
        Optional :class:`repro.obs.Tracer`; both engines emit the run's
        typed event stream into it (see :mod:`repro.obs`).
    faults:
        Optional fault scenario — a :class:`repro.errors.FaultModel` or a
        spec string like ``"crash:p=0.2,tmax=400"`` (see
        :func:`repro.errors.make_fault_model`).  ``None`` or ``"none"``
        keeps the run on the fault-free two-stream code path.
    topology:
        Optional interconnect shape — a :class:`~repro.platform.topology.
        Topology` or a spec string like ``"chain:relay=sf"`` (see
        :func:`repro.platform.make_topology`).  ``None`` or ``"star"``
        keeps the legacy star path.  ``sharedbw`` shapes have no
        closed-form recurrence, so ``engine="fast"`` transparently routes
        them to the DES engine.
    """
    from repro.errors.faults import make_fault_model
    from repro.platform.topology import make_topology
    from repro.sim.engine import simulate_des
    from repro.sim.fastsim import simulate_fast

    if not total_work > 0:
        raise ValueError(f"total_work must be > 0, got {total_work}")
    if error_model is None:
        error_model = NoError()
    fault_model = None
    if faults is not None:
        fault_model = make_fault_model(faults)
        from repro.errors.faults import NoFaults

        if isinstance(fault_model, NoFaults):
            fault_model = None
    topo = make_topology(topology) if topology is not None else None
    if engine == "fast":
        if topo is not None and topo.kind == "sharedbw":
            return simulate_des(
                platform, total_work, scheduler, error_model, seed, trace,
                faults=fault_model, tracer=tracer, topology=topo,
            )
        if trace is not None:
            raise ValueError("trace monitors require engine='des'")
        return simulate_fast(
            platform, total_work, scheduler, error_model, seed,
            faults=fault_model, tracer=tracer, topology=topo,
        )
    if engine == "des":
        return simulate_des(
            platform, total_work, scheduler, error_model, seed, trace,
            faults=fault_model, tracer=tracer, topology=topo,
        )
    raise ValueError(f"unknown engine {engine!r}")


def validate_schedule(result: SimResult, rel_tol: float = 1e-9) -> None:
    """Assert the physical invariants of a simulated schedule.

    Checks (raises ``AssertionError`` on violation):

    * the dispatched work equals the requested total workload (fault-free
      runs) — with losses, delivered work never exceeds the total and
      delivered + lost == dispatched (full coverage of the total is a
      *scheduler* property — it requires a surviving worker — and is
      asserted by the recovery tests, not here);
    * master-link transfers never overlap and are ordered;
    * each arrival happens at/after its transfer's link release;
    * computation starts at/after arrival and respects per-worker FIFO;
    * the makespan is the max computation end over delivered chunks.

    Timeline invariants are checked against the run's *event stream*
    (:func:`repro.obs.events.events_from_result`) — the same stream the
    engines emit live and the differential harness compares — so gantt
    rendering, differential testing, and validation all certify one
    representation.  The arrival sandwich and the work accounting are not
    expressible as events and stay record-based.
    """
    from repro.obs.events import events_from_result

    records = result.records
    total = result.total_work
    has_losses = result.work_lost > 0.0 or any(r.lost for r in records)
    if has_losses:
        work_tol = rel_tol * max(1.0, total)
        delivered = result.delivered_work
        lost = sum(r.size for r in records if r.lost)
        assert delivered <= total + work_tol, (
            f"delivered {delivered} exceeds total {total}"
        )
        assert math.isclose(
            delivered + lost, result.dispatched_work, rel_tol=rel_tol, abs_tol=1e-9
        ), f"delivered {delivered} + lost {lost} != dispatched {result.dispatched_work}"
        assert math.isclose(
            lost, result.work_lost, rel_tol=rel_tol, abs_tol=1e-9
        ), f"lost records sum {lost} != work_lost {result.work_lost}"
    else:
        assert math.isclose(
            result.dispatched_work, total, rel_tol=rel_tol, abs_tol=1e-9
        ), f"dispatched {result.dispatched_work} != total {total}"
    tol = rel_tol * max(1.0, result.makespan)

    events = events_from_result(result)
    send_start_of: dict[int, float] = {}
    send_end_of: dict[int, float] = {}
    comp_start_of: dict[int, float] = {}
    comp_end_of: dict[int, float] = {}
    worker_chain: dict[int, float] = {}
    last_comp_end = -math.inf
    for e in events:
        if e.kind == "dispatch_start":
            send_start_of[e.chunk] = e.time
        elif e.kind == "dispatch_end":
            send_end_of[e.chunk] = e.time
        elif e.kind == "comp_start":
            comp_start_of[e.chunk] = e.time
            prev_end = worker_chain.get(e.worker, -math.inf)
            assert e.time >= prev_end - tol, f"worker {e.worker} FIFO violated"
        elif e.kind == "comp_end":
            comp_end_of[e.chunk] = e.time
            worker_chain[e.worker] = e.time
            last_comp_end = max(last_comp_end, e.time)
    assert set(send_start_of) == set(send_end_of), "unbalanced dispatch events"
    assert set(comp_start_of) == set(comp_end_of), "unbalanced compute events"
    # Shared-bandwidth stars transfer concurrently by design — the
    # serialized-link exclusivity invariant does not apply there.
    serialized_link = not result.topology.startswith("sharedbw")
    prev_send_end = -math.inf
    for chunk in sorted(send_start_of):
        ss, se = send_start_of[chunk], send_end_of[chunk]
        if serialized_link:
            assert ss >= prev_send_end - tol, f"link overlap at chunk {chunk}"
        assert se >= ss - tol, f"negative transfer at chunk {chunk}"
        prev_send_end = se
    for chunk in sorted(comp_start_of):
        cs, ce = comp_start_of[chunk], comp_end_of[chunk]
        assert cs >= send_end_of[chunk] - tol, f"compute before send end at {chunk}"
        assert ce >= cs - tol, f"negative compute at {chunk}"
    for r in records:
        assert r.arrival >= r.send_end - tol, f"arrival precedes send end at {r.index}"
        if not r.lost:
            assert r.comp_start >= r.arrival - tol, f"compute before arrival at {r.index}"
    if last_comp_end > -math.inf:
        assert math.isclose(
            result.makespan, last_comp_end, rel_tol=1e-12, abs_tol=1e-12
        ), f"makespan {result.makespan} != last completion {last_comp_end}"
