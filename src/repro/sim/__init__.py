"""Master-worker divisible-load simulators.

Two engines implement the paper's §3.1 platform semantics:

* :func:`repro.sim.fastsim.simulate_fast` — a specialized O(#chunks·log)
  event loop used by the experiment harness;
* :func:`repro.sim.engine.simulate_des` — a reference implementation on the
  generic :mod:`repro.des` kernel, with full trace recording.

Both produce *identical* makespans and dispatch records for the same seed
(cross-validated by the test suite).  :func:`simulate` selects an engine.

Normative semantics (shared by both engines):

* the master owns one serialized link; sending chunk ``c`` to worker ``i``
  occupies it for ``X_comm·(nLat_i + c/B_i)`` and the data reaches the
  worker ``tLat_i`` later (the tail is overlappable);
* worker ``i`` computes delivered chunks FIFO, each for
  ``X_comp·(cLat_i + c/S_i)``, overlapping computation with reception;
* ``X_comm`` and ``X_comp`` are prediction-error perturbations drawn from
  independent streams in dispatch order (see :mod:`repro.errors`);
* the makespan is the completion time of the last chunk.

:mod:`repro.sim.multijob` layers a *stream* on top of the single-run
engines: jobs arriving over time contend for the star under a pluggable
inter-job policy (FCFS, partitioned, interleaved), each job still
scheduled by the single-run stack via :func:`simulate`.
"""

from repro.sim.analytic import analytic_makespan
from repro.sim.engine import simulate_des
from repro.sim.gantt import render_gantt, utilization_profile
from repro.sim.fastsim import simulate_fast
from repro.sim.multijob import (
    JobFailurePolicy,
    JobRecord,
    MultiJobResult,
    PlatformHealth,
    make_failure_policy,
    make_stream_policy,
    simulate_stream,
)
from repro.sim.result import SimResult, simulate, validate_schedule

__all__ = [
    "JobFailurePolicy",
    "JobRecord",
    "MultiJobResult",
    "PlatformHealth",
    "SimResult",
    "analytic_makespan",
    "make_failure_policy",
    "make_stream_policy",
    "render_gantt",
    "utilization_profile",
    "simulate",
    "simulate_des",
    "simulate_fast",
    "simulate_stream",
    "validate_schedule",
]
