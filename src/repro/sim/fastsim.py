"""Specialized fast simulator for the master-worker platform.

Because the platform has exactly one serialized resource (the master's
link) and per-worker FIFO computation, the whole simulation collapses to a
single loop over dispatch decisions — no event calendar needed.  The only
subtlety is *observability*: dynamic schedulers must see a completion only
once the decision time has passed it, which the :class:`_FastView` enforces
with timestamp comparisons against the realized completion times.

The loop draws error perturbations in dispatch order from two independent
streams (communication, computation), exactly like the DES engine, so both
engines are trajectory-identical for a given seed.  Under fault injection a
third stream (spawned after the first two, which therefore keep their
draws) realizes the run's :class:`~repro.errors.faults.FaultSchedule` and
feeds per-dispatch link-spike draws; chunks whose computation would outlive
their worker's crash are *lost* — they free the pending set at
``max(crash_time, arrival)`` via a :class:`~repro.core.base.LossNote`,
deliver no work, and do not extend the makespan.

Non-star topologies (see :mod:`repro.platform.topology`) ride the same
loop: because relay links are deterministic FIFO resources fed in
dispatch order, each chunk's whole relay traversal has a closed form —
:meth:`~repro.platform.topology.LinkPath.traverse` advances per-resource
busy chains exactly like ``worker_busy_until`` advances workers.  The
star topology bypasses all of it (bitwise-identical legacy path), and
``sharedbw`` is declined: fluid bandwidth sharing has no closed-form
recurrence, so it lives in the DES engine only.
"""

from __future__ import annotations

import bisect
import heapq

from repro.core.base import (
    WAIT,
    CompletionNote,
    DeadlockError,
    Dispatch,
    LossNote,
    MasterView,
    Scheduler,
)
from repro.core.chunks import DispatchRecord
from repro.errors.faults import FaultModel, FaultSchedule
from repro.errors.models import ErrorModel
from repro.errors.rng import spawn_rngs
from repro.platform.spec import PlatformSpec
from repro.platform.topology import StarTopology, TopologyError, make_topology
from repro.sim.result import SimResult

__all__ = ["simulate_fast"]


class _FastView(MasterView):
    """Master-observable state backed by the fast engine's arrays."""

    __slots__ = (
        "_now",
        "_n",
        "_sent_count",
        "_sent_work",
        "_ends",
        "_end_work_prefix",
        "_notes_sorted",
        "_notes_pending",
        "_obs_cache",
        "_obs_cache_key",
        "_crash_times",
        "_losses_sorted",
        "_losses_pending",
    )

    def __init__(self, n: int, crash_times: tuple[float, ...] | None = None):
        self._now = 0.0
        self._n = n
        # None when the run is fault-free; faults_possible keys off it so
        # recovery-aware sources skip their fault bookkeeping entirely.
        self._crash_times = crash_times
        self._losses_sorted: list[LossNote] = []
        self._losses_pending: list[LossNote] = []
        self._sent_count = [0] * n
        self._sent_work = [0.0] * n
        # Per-worker realized completion times (nondecreasing: FIFO) and the
        # matching prefix sums of completed work, for O(log) pending queries.
        self._ends: list[list[float]] = [[] for _ in range(n)]
        self._end_work_prefix: list[list[float]] = [[0.0] for _ in range(n)]
        # Global completion notes.  Dispatch appends to the unsorted pending
        # list in O(1); the (time, chunk_index)-sorted list is materialized
        # lazily on the first observed_completions() after a dispatch.  A
        # bisect.insort here would cost O(K) per dispatch — O(K²) over a
        # run — and static schedulers, which never look at completions,
        # would pay it for nothing.
        self._notes_sorted: list[CompletionNote] = []
        self._notes_pending: list[CompletionNote] = []
        self._obs_cache: tuple[CompletionNote, ...] | None = None
        self._obs_cache_key: tuple[float, int] = (-1.0, -1)

    @property
    def now(self) -> float:
        return self._now

    @property
    def num_workers(self) -> int:
        return self._n

    def pending_chunks(self, worker: int) -> int:
        done = bisect.bisect_right(self._ends[worker], self._now)
        return self._sent_count[worker] - done

    def pending_work(self, worker: int) -> float:
        # Prefix-difference form, bit-identical to the DES view (see
        # _DesView in repro.sim.engine) so dynamic-scheduler tie-breaks
        # resolve the same way in both engines.
        done = bisect.bisect_right(self._ends[worker], self._now)
        prefix = self._end_work_prefix[worker]
        return prefix[self._sent_count[worker]] - prefix[done]

    def observed_completions(self) -> tuple[CompletionNote, ...]:
        if self._notes_pending:
            # Pending notes arrive nearly sorted (comp_end is monotone per
            # worker), so timsort merges them cheaply; amortized the whole
            # run costs O(K log K) instead of insort's O(K²).
            self._notes_sorted.extend(self._notes_pending)
            self._notes_sorted.sort(key=lambda n: (n.time, n.chunk_index))
            self._notes_pending.clear()
        key = (self._now, len(self._notes_sorted))
        if self._obs_cache is not None and key == self._obs_cache_key:
            return self._obs_cache
        cutoff = bisect.bisect_right(
            self._notes_sorted,
            (self._now, float("inf")),
            key=lambda n: (n.time, n.chunk_index),
        )
        self._obs_cache = tuple(self._notes_sorted[:cutoff])
        self._obs_cache_key = key
        return self._obs_cache

    # -- fault observability -------------------------------------------------
    @property
    def faults_possible(self) -> bool:
        return self._crash_times is not None

    def crashed_workers(self) -> tuple[int, ...]:
        if self._crash_times is None:
            return ()
        now = self._now
        return tuple(i for i in range(self._n) if self._crash_times[i] <= now)

    def observed_losses(self) -> tuple[LossNote, ...]:
        if self._losses_pending:
            self._losses_sorted.extend(self._losses_pending)
            self._losses_sorted.sort(key=lambda n: (n.time, n.chunk_index))
            self._losses_pending.clear()
        cutoff = bisect.bisect_right(
            self._losses_sorted,
            (self._now, float("inf")),
            key=lambda n: (n.time, n.chunk_index),
        )
        return tuple(self._losses_sorted[:cutoff])

    # -- engine-side mutation ------------------------------------------------
    def _note_dispatch(
        self, worker: int, size: float, end: float, index: int, lost: bool = False
    ) -> None:
        # ``end`` is the chunk's exit from the pending set: its completion
        # time, or — for a lost chunk — its loss-observation time.  Either
        # way it joins the per-worker nondecreasing ends list, so pending
        # accounting needs no loss special case.
        self._sent_count[worker] += 1
        self._sent_work[worker] += size
        self._ends[worker].append(end)
        self._end_work_prefix[worker].append(self._end_work_prefix[worker][-1] + size)
        if lost:
            self._losses_pending.append(
                LossNote(time=end, chunk_index=index, worker=worker, size=size)
            )
        else:
            self._notes_pending.append(
                CompletionNote(time=end, chunk_index=index, worker=worker, size=size)
            )


def simulate_fast(
    platform: PlatformSpec,
    total_work: float,
    scheduler: Scheduler,
    error_model: ErrorModel,
    seed: int | None = None,
    collect_records: bool = True,
    faults: FaultModel | None = None,
    tracer=None,
    topology=None,
) -> SimResult:
    """Simulate one run with the specialized engine (see module docstring).

    ``collect_records=False`` enables the makespan-only mode used by the
    sweep harness: no :class:`DispatchRecord` objects are allocated and the
    returned result carries an empty ``records`` tuple.  The trajectory —
    and therefore the makespan and the random-stream consumption — is
    identical in both modes.

    ``faults`` enables fault injection: a third RNG stream realizes the
    model's :class:`FaultSchedule` before the first dispatch.  Passing
    ``None`` (not merely :class:`~repro.errors.faults.NoFaults`) keeps the
    run on the exact legacy code path with two streams.

    ``tracer`` (a :class:`repro.obs.Tracer`) receives the run's event
    stream; ``None`` (the default) skips all emission work.

    ``topology`` (a spec string or :class:`~repro.platform.topology.
    Topology`) routes transfers through a non-star interconnect; ``None``
    or a star keeps the exact legacy code path.  Chains and trees have
    closed-form relay recurrences handled here; ``sharedbw`` raises
    :class:`TopologyError` (DES only — :func:`repro.sim.result.simulate`
    routes it automatically).
    """
    topo = None
    if topology is not None:
        topo = make_topology(topology)
        if isinstance(topo, StarTopology):
            topo.bind(platform)  # validate n=..., then take the legacy path
            topo = None
        elif topo.kind == "sharedbw":
            raise TopologyError(
                "shared-bandwidth topologies have no closed-form recurrence; "
                "use the DES engine (simulate(..., engine='des') routes this)"
            )
    bound = topo.bind(platform) if topo is not None else None
    relay_busy: list[float] = [0.0] * (bound.num_relay_links if bound else 0)
    schedule: FaultSchedule | None = None
    if faults is not None:
        rng_comm, rng_comp, rng_fault = spawn_rngs(seed, 3)
        schedule = faults.sample(platform, rng_fault)
        if not schedule.any_faults:
            schedule = None
    else:
        rng_comm, rng_comp = spawn_rngs(seed, 2)
    source = scheduler.create_source(
        platform if topo is None else topo.effective_platform(platform), total_work
    )
    workers = platform.workers
    n = platform.N

    view = _FastView(n, schedule.crash_times if schedule is not None else None)
    worker_busy_until = [0.0] * n
    work_lost = 0.0
    # Min-heap of future completion times, for WAIT wake-ups.
    future_ends: list[float] = []
    records: list[DispatchRecord] = []
    num_dispatched = 0
    makespan = 0.0
    now = 0.0
    last_phase: str | None = None
    crashes_observed: set[int] = set()
    if tracer is not None and schedule is not None:
        # Crash events are known once the schedule is realized; emitting
        # them upfront (as the DES engine does via its crash watchers)
        # keeps both engines' streams identical even when a crash falls
        # after the last dispatch.
        for w, ct in enumerate(schedule.crash_times):
            if ct != float("inf"):
                tracer.emit(ct, "fault", w, detail="crash")

    while True:
        view._now = now
        action = source.next_dispatch(view)
        if action is None:
            break
        if action is WAIT:
            while future_ends and future_ends[0] <= now:
                heapq.heappop(future_ends)
            if not future_ends:
                raise DeadlockError(
                    f"{scheduler.name}: WAIT with no outstanding chunk at t={now}"
                )
            now = heapq.heappop(future_ends)
            continue
        if not isinstance(action, Dispatch):
            raise TypeError(
                f"{scheduler.name}: next_dispatch returned {action!r}; "
                "expected Dispatch, WAIT or None"
            )
        if not 0 <= action.worker < n:
            raise ValueError(
                f"{scheduler.name}: dispatch to worker {action.worker} "
                f"outside the platform (N={n})"
            )
        spec = workers[action.worker]
        size = action.size

        if tracer is not None:
            if action.phase != last_phase:
                tracer.emit(
                    now, "round_boundary", -1, chunk=num_dispatched, phase=action.phase
                )
            if schedule is not None:
                # The master acts on a newly observed crash at its next
                # dispatch decision: one recovery_decision per crashed
                # worker entering the observable set.
                for w in view.crashed_workers():
                    if w not in crashes_observed:
                        crashes_observed.add(w)
                        tracer.emit(
                            now, "recovery_decision", w, detail="crash-observed"
                        )
        last_phase = action.phase

        send_start = now
        path = None if bound is None else bound.paths[action.worker]
        if path is None:
            link_time = error_model.perturb(spec.link_time(size), rng_comm)
        else:
            link_time = error_model.perturb(path.occupancy_time(size), rng_comm)
        if schedule is not None:
            link_time += schedule.link_extra(rng_fault)
        send_end = send_start + link_time
        if path is None:
            arrival = send_end + spec.tLat
        else:
            hop_ends: list[tuple[int, float]] | None = (
                [] if tracer is not None else None
            )
            relay_end = path.traverse(size, send_end, relay_busy, hop_ends)
            arrival = relay_end + spec.tLat

        comp_start = max(arrival, worker_busy_until[action.worker])
        comp_time = error_model.perturb(spec.compute_time(size), rng_comp)
        if schedule is not None:
            comp_time = schedule.compute_duration(action.worker, comp_start, comp_time)
        comp_end = comp_start + comp_time
        worker_busy_until[action.worker] = comp_end
        error_model.advance()

        lost = schedule is not None and comp_end > schedule.crash_times[action.worker]
        loss_time = -1.0
        if lost:
            # The master observes the loss when the crash is detected (for
            # chunks already queued) or when delivery fails (in flight):
            # max(crash, arrival).  Fictitious timeline values keep the
            # worker's busy chain monotone, so every later chunk sent to a
            # crashed worker is lost too.
            loss_time = max(schedule.crash_times[action.worker], arrival)
            view._note_dispatch(action.worker, size, loss_time, num_dispatched, lost=True)
            heapq.heappush(future_ends, loss_time)
            work_lost += size
        else:
            view._note_dispatch(action.worker, size, comp_end, num_dispatched)
            heapq.heappush(future_ends, comp_end)
            if comp_end > makespan:
                makespan = comp_end
        if tracer is not None:
            tracer.emit(
                send_start, "dispatch_start", action.worker,
                chunk=num_dispatched, size=size, phase=action.phase,
            )
            tracer.emit(
                send_end, "dispatch_end", action.worker,
                chunk=num_dispatched, size=size, phase=action.phase,
            )
            if path is not None and hop_ends:
                for res, t_hop in hop_ends:
                    tracer.emit(
                        t_hop, "link_hop", action.worker,
                        chunk=num_dispatched, size=size, phase=action.phase,
                        detail=f"link={res}",
                    )
            if lost:
                tracer.emit(
                    loss_time, "fault", action.worker,
                    chunk=num_dispatched, size=size, phase=action.phase,
                    detail="loss",
                )
            else:
                tracer.emit(
                    comp_start, "comp_start", action.worker,
                    chunk=num_dispatched, size=size, phase=action.phase,
                )
                tracer.emit(
                    comp_end, "comp_end", action.worker,
                    chunk=num_dispatched, size=size, phase=action.phase,
                )
        num_dispatched += 1
        if collect_records:
            records.append(
                DispatchRecord(
                    index=len(records),
                    worker=action.worker,
                    size=size,
                    send_start=send_start,
                    send_end=send_end,
                    arrival=arrival,
                    comp_start=comp_start,
                    comp_end=comp_end,
                    phase=action.phase,
                    lost=lost,
                    loss_time=loss_time,
                )
            )
        now = send_end

    return SimResult(
        makespan=makespan,
        records=tuple(records),
        platform=platform,
        total_work=total_work,
        scheduler_name=scheduler.name,
        seed=seed,
        work_lost=work_lost,
        topology=str(topo) if topo is not None else "star",
    )
