"""Lockstep batch simulation of *dynamic* schedulers.

The static batch engine (:mod:`repro.sim.batch`) collapses a repetition
axis because the dispatch sequence is fixed up front.  Dynamic schedulers
have no fixed sequence — but the batchable ones (Factoring,
WeightedFactoring, RUMR) *decide* from pure arithmetic over
master-observable state, so R independent runs can advance in lockstep:
one iteration evaluates every run's next action (dispatch / wait / done)
as row-wise NumPy operations, then applies all dispatches and wait
wake-ups at once.  Rows follow their own trajectories — each has its own
clock, queue state, and decision state — only the *stepping* is shared.

Per iteration:

1. **Observe.**  Pop every per-(row, worker) FIFO queue head whose
   realized completion time has passed the row's clock, accumulating
   completed chunk counts and work in pop order (bit-identical to the
   scalar view's prefix-sum difference).
2. **Decide.**  The merged :class:`~repro.core.lockstep.LockstepKernel`
   fills per-row action/worker/size from the observed pending state,
   using the exact scalar tie-breaks and size formulas.
3. **Apply.**  Dispatching rows advance through the standard timeline
   arithmetic (link occupancy → arrival → FIFO compute start →
   completion), perturbed by each row's own pre-drawn factor columns at
   the row's own dispatch counter; waiting rows jump to their earliest
   outstanding completion; finished rows freeze.

Equivalence contract (mirrors the static engine's): perturbation factors
come from the same two spawned streams per seed, consumed in dispatch
order, so at ``error = 0`` every row equals the scalar engine *exactly*
(bit for bit — same decisions, same arithmetic), and at ``error > 0``
results are distributionally identical, diverging bitwise only where
truncation resampling fires or a zero-cost transfer (``nLat = 0`` with
infinite bandwidth) skips a scalar draw.

Cells from *different* platforms, error levels, and scheduler parameters
are merged into shared calls — grouped by kernel family and padded to a
common worker count — because lockstep efficiency comes from row count:
the per-iteration NumPy overhead is amortized over every row that is
still running.  Only the truncated-normal (``"normal"``/``"none"``)
error model is supported; other kinds stay on the scalar engine.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import DeadlockError, Scheduler
from repro.core.lockstep import DISPATCH, DONE, PAD_PENDING, WAIT_FOR_COMPLETION
from repro.errors.models import MIN_RATIO
from repro.platform.spec import PlatformSpec
from repro.sim.batch import _draw_factors

__all__ = ["DynamicCell", "simulate_dynamic_batch", "simulate_dynamic_cells"]

#: Row cap per lockstep call: bounds peak memory (queues are dense
#: (rows × workers × capacity) arrays) while keeping calls wide enough
#: to amortize the per-iteration overhead.
MAX_ROWS = 1024

#: Initial factor-bank column capacity; grown by doubling on demand.
_INITIAL_COLUMNS = 160


@dataclasses.dataclass(frozen=True)
class DynamicCell:
    """One (platform, scheduler, error) cell and its repetition seeds."""

    platform: PlatformSpec
    scheduler: Scheduler
    total_work: float
    error: float
    seeds: tuple

    def __post_init__(self) -> None:
        if not self.scheduler.is_batch_dynamic:
            raise TypeError(
                f"{self.scheduler.name} is not batch-dynamic; run it through "
                "the scalar engine instead"
            )
        if self.error < 0:
            raise ValueError(f"error magnitude must be >= 0, got {self.error}")
        if not self.total_work > 0:
            raise ValueError(f"total_work must be > 0, got {self.total_work}")
        if len(self.seeds) == 0:
            raise ValueError("a cell needs at least one seed")


class _FactorBank:
    """Per-row (comm, comp) perturbation factor columns, drawn lazily.

    Column ``k`` of row ``r`` perturbs row ``r``'s ``k``-th dispatch.
    Streams are spawned exactly like :func:`repro.errors.rng.spawn_rngs`
    and block-drawn with mask resampling (:func:`repro.sim.batch.
    _draw_factors`), so the consumption is bit-identical to the scalar
    engine's chunk-order draws whenever no resample fires.  Rows with
    zero magnitude hold exact ones and spawn no generators at all.
    """

    def __init__(self, seeds, sigmas, mode: str, min_ratio: float):
        self._sigmas = sigmas
        self._mode = mode
        self._min_ratio = min_ratio
        self._gens: list = []
        for seed, sigma in zip(seeds, sigmas):
            if sigma > 0.0:
                comm_seq, comp_seq = np.random.SeedSequence(int(seed)).spawn(2)
                self._gens.append(
                    (
                        np.random.Generator(np.random.PCG64(comm_seq)),
                        np.random.Generator(np.random.PCG64(comp_seq)),
                    )
                )
            else:
                self._gens.append(None)
        rows = len(self._gens)
        self.comm = np.ones((rows, 0))
        self.comp = np.ones((rows, 0))
        self._cols = 0

    def ensure(self, cols: int) -> None:
        """Guarantee at least ``cols`` drawn columns."""
        if cols <= self._cols:
            return
        target = max(cols, 2 * self._cols, _INITIAL_COLUMNS)
        extra = target - self._cols
        comm_new = np.ones((self.comm.shape[0], extra))
        comp_new = np.ones((self.comm.shape[0], extra))
        for i, pair in enumerate(self._gens):
            if pair is None:
                continue
            comm_new[i] = _draw_factors(pair[0], extra, self._sigmas[i], self._min_ratio)
            comp_new[i] = _draw_factors(pair[1], extra, self._sigmas[i], self._min_ratio)
        if self._mode == "divide":
            np.divide(1.0, comm_new, out=comm_new)
            np.divide(1.0, comp_new, out=comp_new)
        self.comm = np.concatenate([self.comm, comm_new], axis=1)
        self.comp = np.concatenate([self.comp, comp_new], axis=1)
        self._cols = target


def _worker_arrays(cells, reps, n_max):
    """Per-row padded (S, B, cLat, nLat, tLat) matrices."""
    shape = (len(cells), n_max)
    S = np.ones(shape)
    B = np.ones(shape)
    cl = np.zeros(shape)
    nl = np.zeros(shape)
    tl = np.zeros(shape)
    for i, cell in enumerate(cells):
        for j, w in enumerate(cell.platform.workers):
            S[i, j] = w.S
            B[i, j] = w.B
            cl[i, j] = w.cLat
            nl[i, j] = w.nLat
            tl[i, j] = w.tLat
    rep = lambda a: np.repeat(a, reps, axis=0)  # noqa: E731
    return rep(S), rep(B), rep(cl), rep(nl), rep(tl)


def _simulate_rows(cells, specs, mode: str, min_ratio: float, row_tracers=None) -> list:
    """Run one merged batch of cells to completion; makespans per cell.

    ``cells``/``specs`` must be ordered so that equal ``group_key`` runs
    are contiguous: each run becomes one kernel deciding a contiguous row
    slice, while the engine state (clocks, queues, dispatch arithmetic)
    is shared across all rows — one iteration advances every still-active
    row of every family.

    ``row_tracers`` is one :class:`repro.obs.Tracer` (or ``None``) per
    repetition row; traced rows have their dispatch timelines extracted
    from the batch arrays as they are applied (phase labels are not
    available here — lockstep kernels carry no scheduler phase — so traced
    events use ``phase=""`` and emit no ``round_boundary``).
    """
    reps = [len(c.seeds) for c in cells]
    offsets = np.cumsum([0] + reps)
    rows = int(offsets[-1])
    n_max = max(c.platform.N for c in cells)

    kernels = []
    i = 0
    while i < len(cells):
        j = i
        while j < len(cells) and specs[j].group_key == specs[i].group_key:
            j += 1
        kernels.append(
            (
                specs[i].make_kernel(specs[i:j], reps[i:j], n_max),
                slice(int(offsets[i]), int(offsets[j])),
            )
        )
        i = j

    # Stacked (S, B, cLat, nLat, tLat) so each dispatch gathers all five
    # per-worker parameters in one fancy-index operation.
    wp = np.stack(_worker_arrays(cells, reps, n_max))
    seeds = [s for c in cells for s in c.seeds]
    sigmas = np.repeat([c.error for c in cells], reps)
    bank = _FactorBank(seeds, sigmas, mode, min_ratio)
    cell_of_row = np.repeat(np.arange(len(cells)), reps)

    # Append-only FIFO queues of realized completions, one per
    # (row, worker), with the head element mirrored into dense
    # ``head_end``/``head_size`` arrays (inf/0 for an empty queue) so the
    # observe step never gathers from the 3-d slot arrays.
    cap = 8
    q_end = np.full((rows, n_max, cap), np.inf)
    q_size = np.zeros((rows, n_max, cap))
    q_head = np.zeros((rows, n_max), dtype=np.int64)
    q_tail = np.zeros((rows, n_max), dtype=np.int64)
    head_end = np.full((rows, n_max), np.inf)
    head_size = np.zeros((rows, n_max))

    # Pending chunk counts are maintained incrementally (integers, so the
    # running value is exact); pending work stays a sent − done difference
    # because that is bitwise-identical to the scalar view's bookkeeping.
    counts = np.zeros((rows, n_max), dtype=np.int64)
    sent_work = np.zeros((rows, n_max))
    done_work = np.zeros((rows, n_max))
    # Padded worker slots report a huge pending count so no kernel ever
    # selects them or sees them idle.
    n_per_row = np.repeat([c.platform.N for c in cells], reps)
    counts[np.arange(n_max)[None, :] >= n_per_row[:, None]] = PAD_PENDING

    busy = np.zeros((rows, n_max))
    now = np.zeros(rows)
    kdisp = np.zeros(rows, dtype=np.int64)
    active = np.ones(rows, dtype=bool)
    action = np.empty(rows, dtype=np.int64)
    worker = np.zeros(rows, dtype=np.int64)
    size = np.zeros(rows)

    while active.any():
        # 1. Observe: pop queue heads whose completion has passed each
        # row's clock.  One head per (row, worker) per pass, in FIFO
        # order, so done_work accumulates exactly like the scalar view's
        # completed-work prefix sums.
        while True:
            ready = head_end <= now[:, None]
            if not ready.any():
                break
            rr, ww = np.nonzero(ready)
            counts[rr, ww] -= 1
            done_work[rr, ww] += head_size[rr, ww]
            nh = q_head[rr, ww] + 1
            q_head[rr, ww] = nh
            has_more = nh < q_tail[rr, ww]
            idx = np.minimum(nh, q_end.shape[2] - 1)
            head_end[rr, ww] = np.where(has_more, q_end[rr, ww, idx], np.inf)
            head_size[rr, ww] = np.where(has_more, q_size[rr, ww, idx], 0.0)

        # 2. Decide: each family's kernel fills its contiguous row slice.
        works = sent_work - done_work
        for kernel, sl in kernels:
            if active[sl].any():
                kernel.decide(
                    counts[sl], works[sl], action[sl], worker[sl], size[sl]
                )

        newly_done = active & (action == DONE)
        if newly_done.any():
            active &= ~newly_done
            if not active.any():
                break

        # 3a. Apply dispatches.
        disp = np.flatnonzero(active & (action == DISPATCH))
        if disp.size:
            w = worker[disp]
            sz = size[disp]
            k = kdisp[disp]
            bank.ensure(int(k.max()) + 1)
            w_s, w_b, w_cl, w_nl, w_tl = wp[:, disp, w]
            # chunk/inf is +0.0, matching link_time's infinite-bandwidth
            # branch bit for bit; multiplying by an exact 1.0 factor (the
            # zero-error rows) is also a bitwise no-op.
            link_eff = (w_nl + sz / w_b) * bank.comm[disp, k]
            send_end = now[disp] + link_eff
            arrival = send_end + w_tl
            comp_start = np.maximum(arrival, busy[disp, w])
            comp_eff = (w_cl + sz / w_s) * bank.comp[disp, k]
            comp_end = comp_start + comp_eff
            busy[disp, w] = comp_end

            tail = q_tail[disp, w]
            if int(tail.max()) >= q_end.shape[2]:
                grow = q_end.shape[2]
                q_end = np.concatenate(
                    [q_end, np.full((rows, n_max, grow), np.inf)], axis=2
                )
                q_size = np.concatenate(
                    [q_size, np.zeros((rows, n_max, grow))], axis=2
                )
            q_end[disp, w, tail] = comp_end
            q_size[disp, w, tail] = sz
            was_empty = tail == q_head[disp, w]
            head_end[disp, w] = np.where(was_empty, comp_end, head_end[disp, w])
            head_size[disp, w] = np.where(was_empty, sz, head_size[disp, w])
            if row_tracers is not None:
                for pos, row in enumerate(disp):
                    tracer = row_tracers[row]
                    if tracer is None:
                        continue
                    wi = int(w[pos])
                    ci = int(k[pos])
                    szi = float(sz[pos])
                    tracer.emit(
                        float(now[row]), "dispatch_start", wi, chunk=ci, size=szi
                    )
                    tracer.emit(
                        float(send_end[pos]), "dispatch_end", wi, chunk=ci, size=szi
                    )
                    tracer.emit(
                        float(comp_start[pos]), "comp_start", wi, chunk=ci, size=szi
                    )
                    tracer.emit(
                        float(comp_end[pos]), "comp_end", wi, chunk=ci, size=szi
                    )

            q_tail[disp, w] += 1
            counts[disp, w] += 1
            sent_work[disp, w] += sz
            kdisp[disp] += 1
            now[disp] = send_end

        # 3b. Apply waits: jump to the earliest outstanding completion.
        waiting = np.flatnonzero(active & (action == WAIT_FOR_COMPLETION))
        if waiting.size:
            wake = head_end[waiting].min(axis=1)
            stuck = np.isinf(wake)
            if stuck.any():
                row = int(waiting[np.flatnonzero(stuck)[0]])
                cell = cells[int(cell_of_row[row])]
                raise DeadlockError(
                    f"{cell.scheduler.name}: WAIT with no outstanding chunk "
                    f"at t={now[row]}"
                )
            now[waiting] = wake

    # Each worker's busy time is its last chunk's completion, so the
    # row makespan is simply the max over workers (pad slots stay 0).
    makespan = busy.max(axis=1)
    return [makespan[offsets[i] : offsets[i + 1]].copy() for i in range(len(cells))]


def simulate_dynamic_cells(
    cells,
    mode: str = "multiply",
    min_ratio: float = MIN_RATIO,
    max_rows: int = MAX_ROWS,
    tracers=None,
) -> list:
    """Simulate many dynamic cells, merging compatible ones per call.

    Cells are ordered group-major by their kernel spec's ``group_key``
    (decision-rule family) so each lockstep call — chunked to at most
    ``max_rows`` repetition rows — holds contiguous family runs, each
    driven by one merged kernel while the engine state is shared across
    all of them.  Returns one makespan array per cell, in input order,
    each of shape ``(len(cell.seeds),)``.

    ``tracers``, when given, parallels ``cells``: each entry is ``None``
    or a sequence of one :class:`repro.obs.Tracer` (or ``None``) per seed
    of that cell (see :func:`_simulate_rows`).
    """
    if mode not in ("multiply", "divide"):
        raise ValueError(f"unknown perturbation mode {mode!r}")
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows}")
    cells = list(cells)
    outputs: list = [None] * len(cells)

    groups: dict = {}
    for idx, cell in enumerate(cells):
        spec = cell.scheduler.batch_kernel(cell.platform, cell.total_work)
        groups.setdefault(spec.group_key, []).append((idx, spec))
    ordered = [pair for members in groups.values() for pair in members]

    batch: list = []
    batch_rows = 0
    for idx, spec in ordered + [(None, None)]:
        rows = len(cells[idx].seeds) if idx is not None else 0
        if batch and (idx is None or batch_rows + rows > max_rows):
            row_tracers = None
            if tracers is not None and any(tracers[i] for i, _ in batch):
                row_tracers = []
                for i, _ in batch:
                    cell_tracers = tracers[i]
                    if cell_tracers is None:
                        row_tracers.extend([None] * len(cells[i].seeds))
                    else:
                        row_tracers.extend(cell_tracers)
            results = _simulate_rows(
                [cells[i] for i, _ in batch],
                [s for _, s in batch],
                mode,
                min_ratio,
                row_tracers,
            )
            for (i, _), res in zip(batch, results):
                outputs[i] = res
            batch, batch_rows = [], 0
        if idx is not None:
            batch.append((idx, spec))
            batch_rows += rows
    return outputs


def simulate_dynamic_batch(
    platform: PlatformSpec,
    scheduler: Scheduler,
    total_work: float,
    error: float,
    seeds,
    mode: str = "multiply",
    min_ratio: float = MIN_RATIO,
    tracers=None,
) -> np.ndarray:
    """Makespans of one batch-dynamic scheduler under R paired error draws.

    The single-cell entry point: one (platform, error) cell, one seed per
    repetition, same stream contract as the scalar engine (see the module
    docstring).  ``tracers`` is one :class:`repro.obs.Tracer` (or ``None``)
    per seed.  Returns an array of shape ``(len(seeds),)``.
    """
    cell = DynamicCell(
        platform=platform,
        scheduler=scheduler,
        total_work=total_work,
        error=error,
        seeds=tuple(int(s) for s in seeds),
    )
    return simulate_dynamic_cells(
        [cell],
        mode=mode,
        min_ratio=min_ratio,
        tracers=None if tracers is None else [tracers],
    )[0]
