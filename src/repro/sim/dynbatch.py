"""Lockstep batch simulation of *dynamic* schedulers.

The static batch engine (:mod:`repro.sim.batch`) collapses a repetition
axis because the dispatch sequence is fixed up front.  Dynamic schedulers
have no fixed sequence — but the batchable ones (Factoring,
WeightedFactoring, FSC, RUMR, AdaptiveRUMR) *decide* from pure arithmetic
over master-observable state, so R independent runs can advance in
lockstep: one iteration evaluates every run's next action (dispatch /
wait / done) as row-wise NumPy operations, then applies all dispatches
and wait wake-ups at once.  Rows follow their own trajectories — each has
its own clock, queue state, and decision state — only the *stepping* is
shared.

Per iteration:

1. **Observe.**  Pop every per-(row, worker) FIFO queue head whose
   realized completion time has passed the row's clock, accumulating
   completed chunk counts and work in pop order (bit-identical to the
   scalar view's prefix-sum difference).
2. **Decide.**  The merged :class:`~repro.core.lockstep.LockstepKernel`
   fills per-row action/worker/size from the observed pending state,
   using the exact scalar tie-breaks and size formulas.
3. **Apply.**  Dispatching rows advance through the standard timeline
   arithmetic (link occupancy → arrival → FIFO compute start →
   completion), perturbed by each row's own pre-drawn factor columns at
   the row's own dispatch counter; waiting rows jump to their earliest
   outstanding completion; finished rows freeze.

Equivalence contract (mirrors the static engine's): perturbation factors
come from the same two spawned streams per seed, consumed in dispatch
order, so at ``error = 0`` every row equals the scalar engine *exactly*
(bit for bit — same decisions, same arithmetic), and at ``error > 0``
results are distributionally identical, diverging bitwise only where
truncation resampling fires or a zero-cost transfer (``nLat = 0`` with
infinite bandwidth) skips a scalar draw.

Fault cells (:attr:`DynamicCell.faults`) run in the same pass.  Each
cell realizes all of its rows' schedules in one shot through
:meth:`~repro.errors.faults.FaultModel.sample_batch` — a
:class:`~repro.errors.faults.FaultPlane` of stacked crash / pause /
slowdown / spike arrays, bit-identical to sampling row by row from each
seed's third spawned stream (streams 0/1 keep their draws) — and the
scalar fault semantics become vectorized timeline transforms with the
same associativity: pause windows and slowdown onsets reshape the
effective compute duration (pause first, then slowdown), link spikes
add pre-drawn per-dispatch draws from each row's own fault stream, and
a chunk whose computation outlives its worker's crash is *lost* — it
leaves the pending set at ``max(crash_time, arrival)``, delivers no
work, and never extends the makespan.  Each transform runs only when
some row in the batch needs it, over the whole row block at once.
Kernels observe faults through a
:class:`~repro.core.lockstep.KernelStepContext`: per-row crash masks
plus newly observed losses and completions in the scalar view's
``(time, chunk_index)`` order.  Every in-tree kernel family replays
crash recovery in lockstep; the exception path is
:meth:`~repro.core.lockstep.KernelSpec.deferred_rows`, through which a
spec routes the rare crash patterns it cannot express (e.g. RUMR's
replan-from-scratch on a crash at ``t = 0``) to the scalar engine
*inside the same call* — trivially bit-identical — so callers may route
every cell of a fault grid here without inspecting the draws.

Cells from *different* platforms, error levels, and scheduler parameters
are merged into shared calls — grouped by kernel family and padded to a
common worker count — because lockstep efficiency comes from row count:
the per-iteration NumPy overhead is amortized over every row that is
still running.  A :class:`BatchArena` lets consecutive calls reuse the
dense state buffers instead of reallocating them.  Only the
truncated-normal (``"normal"``/``"none"``) error model is supported;
other kinds stay on the scalar engine.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter

import numpy as np

from repro.core.base import DeadlockError, Scheduler
from repro.core.lockstep import (
    DISPATCH,
    DONE,
    PAD_PENDING,
    WAIT_FOR_COMPLETION,
    KernelStepContext,
    LockstepKernel,
)
from repro.errors.faults import FaultModel
from repro.errors.models import MIN_RATIO, make_error_model
from repro.platform.spec import PlatformSpec
from repro.sim.batch import factor_stream
from repro.sim.fastsim import simulate_fast

__all__ = [
    "BatchArena",
    "DynamicCell",
    "simulate_dynamic_batch",
    "simulate_dynamic_cells",
]

#: Row cap per lockstep call: bounds peak memory (queues are dense
#: (rows × workers × capacity) arrays) while keeping calls wide enough
#: to amortize the per-iteration overhead.  At N = 50 workers and the
#: initial capacity of 8 slots the dense queues cost ~13 MB per float
#: array at this cap — wide enough that a paper-scale (platform × error)
#: sweep merges into a single pass per scheduler family.
MAX_ROWS = 4096

#: Initial factor-bank column capacity; grown by doubling on demand.
_INITIAL_COLUMNS = 160


@dataclasses.dataclass(frozen=True)
class DynamicCell:
    """One (platform, scheduler, error) cell and its repetition seeds.

    ``faults`` optionally injects a fault scenario: every repetition row
    samples its own schedule from the seed's third spawned stream,
    matching the scalar engine's contract.  The scheduler must declare
    ``batch_supports_faults`` for such cells.
    """

    platform: PlatformSpec
    scheduler: Scheduler
    total_work: float
    error: float
    seeds: tuple
    faults: "FaultModel | None" = None

    def __post_init__(self) -> None:
        if not self.scheduler.is_batch_dynamic:
            raise TypeError(
                f"{self.scheduler.name} is not batch-dynamic; run it through "
                "the scalar engine instead"
            )
        if self.faults is not None and not self.scheduler.batch_supports_faults:
            raise TypeError(
                f"{self.scheduler.name} does not declare batch fault support; "
                "route its fault cells through the scalar engine instead"
            )
        if self.error < 0:
            raise ValueError(f"error magnitude must be >= 0, got {self.error}")
        if not self.total_work > 0:
            raise ValueError(f"total_work must be > 0, got {self.total_work}")
        if len(self.seeds) == 0:
            raise ValueError("a cell needs at least one seed")


class BatchArena:
    """Reusable backing buffers for the lockstep engine's state arrays.

    A sweep makes many lockstep calls — one per merged batch per grid
    pass — and without reuse each call allocates ~20 dense arrays (the
    (rows × workers × capacity) queue slabs dominating) only to free
    them microseconds later.  The arena keeps one growable buffer per
    array role and hands out views that are re-initialized *in full*
    before use, so calls through one arena are pure: results depend only
    on the call's arguments, never on what a previous call left behind
    (property-tested in ``tests/properties/test_properties_dynbatch.py``).
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def take(self, name: str, shape: tuple, dtype=np.float64, fill=None) -> np.ndarray:
        """Return a ``shape``-sized view of buffer ``name``, refilled.

        The backing buffer grows monotonically (element-wise max of every
        requested shape); ``fill`` overwrites the whole view so no state
        leaks between calls.
        """
        buf = self._buffers.get(name)
        if buf is None or buf.ndim != len(shape) or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        elif any(have < want for have, want in zip(buf.shape, shape)):
            grown = tuple(max(have, want) for have, want in zip(buf.shape, shape))
            buf = np.empty(grown, dtype=dtype)
            self._buffers[name] = buf
        view = buf[tuple(slice(0, s) for s in shape)]
        if fill is not None:
            view[...] = fill
        return view


class _FactorBank:
    """Per-row (comm, comp) perturbation factor columns, fetched lazily.

    Column ``k`` of row ``r`` perturbs row ``r``'s ``k``-th dispatch.
    Rows draw from the shared per-seed stream cache
    (:func:`repro.sim.batch.factor_stream` — spawned exactly like
    :func:`repro.errors.rng.spawn_rngs`, block-drawn with mask
    resampling), so the consumption is bit-identical to the scalar
    engine's chunk-order draws whenever no resample fires, and rows
    revisited by a later sweep reuse the already-drawn columns.  Rows
    with zero magnitude hold exact ones and touch no stream at all.
    """

    def __init__(self, seeds, sigmas, mode: str, min_ratio: float):
        self._mode = mode
        self._min_ratio = min_ratio
        self._keys: list = [
            (int(seed), float(sigma)) if sigma > 0.0 else None
            for seed, sigma in zip(seeds, sigmas)
        ]
        rows = len(self._keys)
        self.comm = np.ones((rows, 0))
        self.comp = np.ones((rows, 0))
        self._cols = 0

    def mute_row(self, row: int) -> None:
        """Stop drawing for one row (it is simulated elsewhere)."""
        self._keys[row] = None

    def compact(self, keep) -> None:
        """Drop every row not in ``keep`` (sorted row indices)."""
        self._keys = [self._keys[int(r)] for r in keep]
        self.comm = self.comm[keep]
        self.comp = self.comp[keep]

    def ensure(self, cols: int) -> None:
        """Guarantee at least ``cols`` materialized columns."""
        if cols <= self._cols:
            return
        target = max(cols, 2 * self._cols, _INITIAL_COLUMNS)
        rows = len(self._keys)
        comm = np.ones((rows, target))
        comp = np.ones((rows, target))
        for i, key in enumerate(self._keys):
            if key is None:
                continue
            stream = factor_stream(key[0], key[1], target, self._min_ratio)
            comm[i] = stream.comm[:target]
            comp[i] = stream.comp[:target]
        if self._mode == "divide":
            np.divide(1.0, comm, out=comm)
            np.divide(1.0, comp, out=comp)
        self.comm = comm
        self.comp = comp
        self._cols = target


class _SpikeBank:
    """Pre-drawn per-dispatch link-spike uniforms, one column per dispatch.

    Column ``k`` of row ``r`` is the ``k``-th ``rng.random()`` call of row
    ``r``'s fault stream (positioned after the schedule draws), so the
    gathered draw matches the scalar engine's per-dispatch consumption
    bitwise — ``Generator.random(k)`` produces the same values as ``k``
    scalar calls, and the stream position never depends on outcomes.
    Rows without a retained generator hold exact ones, which never
    undercut a spike probability.
    """

    def __init__(self, fault_rngs):
        self._rngs = list(fault_rngs)
        self.draws = np.ones((len(self._rngs), 0))
        self._cols = 0

    @property
    def any_live(self) -> bool:
        return any(g is not None for g in self._rngs)

    def ensure(self, cols: int) -> None:
        """Guarantee at least ``cols`` materialized draw columns."""
        if cols <= self._cols:
            return
        target = max(cols, 2 * self._cols, _INITIAL_COLUMNS)
        draws = np.ones((len(self._rngs), target))
        draws[:, : self._cols] = self.draws
        for i, rng in enumerate(self._rngs):
            if rng is not None:
                draws[i, self._cols : target] = rng.random(target - self._cols)
        self.draws = draws
        self._cols = target

    def compact(self, keep) -> None:
        self._rngs = [self._rngs[int(r)] for r in keep]
        self.draws = self.draws[keep]


def _worker_arrays(cells, reps, n_max):
    """Per-row padded (S, B, cLat, nLat, tLat) matrices."""
    shape = (len(cells), n_max)
    S = np.ones(shape)
    B = np.ones(shape)
    cl = np.zeros(shape)
    nl = np.zeros(shape)
    tl = np.zeros(shape)
    for i, cell in enumerate(cells):
        for j, w in enumerate(cell.platform.workers):
            S[i, j] = w.S
            B[i, j] = w.B
            cl[i, j] = w.cLat
            nl[i, j] = w.nLat
            tl[i, j] = w.tLat
    rep = lambda a: np.repeat(a, reps, axis=0)  # noqa: E731
    return rep(S), rep(B), rep(cl), rep(nl), rep(tl)


def _simulate_rows(
    cells, specs, mode: str, min_ratio: float, row_tracers=None, arena=None,
    perf=None,
) -> list:
    """Run one merged batch of cells to completion; makespans per cell.

    ``cells``/``specs`` must be ordered so that equal ``group_key`` runs
    are contiguous: each run becomes one kernel deciding a contiguous row
    slice, while the engine state (clocks, queues, dispatch arithmetic)
    is shared across all rows — one iteration advances every still-active
    row of every family.

    Fault cells ride along: each cell's :class:`FaultPlane` is realized
    in one :meth:`~repro.errors.faults.FaultModel.sample_batch` call and
    block-copied into the batch's fault arrays, whose neutral defaults
    (``inf`` crash, zero-length pause, factor-1 slowdown, zero spike
    probability) make the fault transforms bitwise no-ops for clean rows
    sharing the batch.  Rows the cell's kernel spec reports through
    :meth:`~repro.core.lockstep.KernelSpec.deferred_rows` are simulated
    by :func:`repro.sim.fastsim.simulate_fast` up front and excluded
    from the lockstep state.

    ``perf``, when given, is a mutable mapping accumulating engine
    counters across calls: ``rows_deferred_scalar`` plus wall-time
    buckets ``fault_sample_s`` / ``fault_defer_s`` and the per-kind
    transform times ``fault_crash_s`` / ``fault_pause_s`` /
    ``fault_slow_s`` / ``fault_spike_s``.

    ``row_tracers`` is one :class:`repro.obs.Tracer` (or ``None``) per
    repetition row; traced rows have their dispatch timelines extracted
    from the batch arrays as they are applied (phase labels are not
    available here — lockstep kernels carry no scheduler phase — so traced
    events use ``phase=""``, emit no ``round_boundary``, and fault rows
    emit no ``recovery_decision``).
    """
    reps = [len(c.seeds) for c in cells]
    offsets = np.cumsum([0] + reps)
    rows = int(offsets[-1])
    n_max = max(c.platform.N for c in cells)
    if arena is None:
        arena = BatchArena()

    # (kernel, row slice, wants_notes) per contiguous group-key run.
    kernels = []
    i = 0
    while i < len(cells):
        j = i
        while j < len(cells) and specs[j].group_key == specs[i].group_key:
            j += 1
        kernels.append(
            (
                specs[i].make_kernel(specs[i:j], reps[i:j], n_max),
                slice(int(offsets[i]), int(offsets[j])),
                specs[i].wants_notes,
            )
        )
        i = j

    # Stacked (S, B, cLat, nLat, tLat) so each dispatch gathers all five
    # per-worker parameters in one fancy-index operation.
    wp = np.stack(_worker_arrays(cells, reps, n_max))
    seeds = [s for c in cells for s in c.seeds]
    sigmas = np.repeat([c.error for c in cells], reps)
    bank = _FactorBank(seeds, sigmas, mode, min_ratio)
    cell_of_row = np.repeat(np.arange(len(cells)), reps)

    # Realize every fault cell's schedules in one batched draw from the
    # per-seed third streams (streams 0/1 stay with the factor bank),
    # block-copied into the batch arrays.  Each transform's static
    # any-flag records whether any row needs it at all, so a crash-only
    # batch never pays for pause/slowdown arithmetic and vice versa.
    notes_mode = any(s.wants_notes for s in specs)
    fault_mode = False
    any_crash = any_pause = any_slow = spike_any = False
    fault_rngs: list = [None] * rows
    deferred: list = []
    defer_makespans: dict = {}
    timing = perf is not None
    active = arena.take("active", (rows,), dtype=bool, fill=True)
    t_sample = perf_counter() if timing else 0.0
    if any(c.faults is not None for c in cells):
        crash_t = arena.take("crash_t", (rows, n_max), fill=np.inf)
        pause_s = arena.take("pause_s", (rows, n_max), fill=0.0)
        pause_l = arena.take("pause_l", (rows, n_max), fill=0.0)
        slow_s = arena.take("slow_s", (rows, n_max), fill=0.0)
        slow_f = arena.take("slow_f", (rows, n_max), fill=1.0)
        spike_p = arena.take("spike_p", (rows,), fill=0.0)
        spike_d = arena.take("spike_d", (rows,), fill=0.0)
        fault_row = arena.take("fault_row", (rows,), dtype=bool, fill=False)
        mspan = arena.take("mspan", (rows,), fill=0.0)
        for ci, cell in enumerate(cells):
            if cell.faults is None:
                continue
            plane = cell.faults.sample_batch(cell.platform, cell.seeds)
            lo = int(offsets[ci])
            sl = slice(lo, int(offsets[ci + 1]))
            n = cell.platform.N
            crash_t[sl, :n] = plane.crash_time
            pause_s[sl, :n] = plane.pause_start
            pause_l[sl, :n] = plane.pause_len
            slow_s[sl, :n] = plane.slow_start
            slow_f[sl, :n] = plane.slow_factor
            spike_p[sl] = plane.spike_prob
            spike_d[sl] = plane.spike_delay
            fault_row[sl] = plane.fault_row
            for j, rng in enumerate(plane.rngs):
                if rng is not None:
                    fault_rngs[lo + j] = rng
            defer = specs[ci].deferred_rows(plane.crash_time)
            if defer is not None and defer.any():
                # Crash patterns this kernel cannot replay bitwise: the
                # rows run on the scalar engine (the reference
                # semantics) and their lockstep slots are frozen, with
                # their fault entries reset to neutral.
                for local in map(int, np.flatnonzero(defer)):
                    r = lo + local
                    deferred.append(r)
                    fault_rngs[r] = None
                    bank.mute_row(r)
                    fault_row[r] = False
                    crash_t[r] = np.inf
                    pause_s[r] = 0.0
                    pause_l[r] = 0.0
                    slow_s[r] = 0.0
                    slow_f[r] = 1.0
                    spike_p[r] = 0.0
        fault_mode = bool(fault_row.any())
        any_crash = bool(np.isfinite(crash_t).any())
        any_pause = bool((pause_l > 0.0).any())
        any_slow = bool((slow_f > 1.0).any())
        spike_any = any(g is not None for g in fault_rngs)
        if timing:
            now_t = perf_counter()
            perf["fault_sample_s"] = (
                perf.get("fault_sample_s", 0.0) + now_t - t_sample
            )
            perf["rows_deferred_scalar"] = (
                perf.get("rows_deferred_scalar", 0) + len(deferred)
            )
            t_sample = now_t
        for r in deferred:
            cell = cells[int(cell_of_row[r])]
            result = simulate_fast(
                cell.platform,
                cell.total_work,
                cell.scheduler,
                make_error_model("normal", cell.error, min_ratio=min_ratio, mode=mode),
                seeds[r],
                collect_records=False,
                faults=cell.faults,
                tracer=None if row_tracers is None else row_tracers[r],
            )
            defer_makespans[r] = result.makespan
            active[r] = False
        if timing and deferred:
            perf["fault_defer_s"] = (
                perf.get("fault_defer_s", 0.0) + perf_counter() - t_sample
            )
        if row_tracers is not None:
            # Crash instants are known once the plane is realized;
            # emitting them upfront matches the scalar engine's stream
            # (deferred rows already emitted theirs inside simulate_fast).
            for r in range(rows):
                tracer = row_tracers[r]
                if tracer is not None and fault_row[r]:
                    for wi in map(int, np.flatnonzero(np.isfinite(crash_t[r]))):
                        tracer.emit(float(crash_t[r, wi]), "fault", wi, detail="crash")
    # Losses exist only where crashes do: the collect machinery (chunk
    # indices, loss flags, per-step contexts) is needed for crash rows
    # and note-consuming kernels, not for pause/slowdown/spike rows —
    # those kernels' end-of-run drain is makespan-neutral without
    # losses, because the running makespan maximum is already complete
    # at dispatch-apply time.
    collect = any_crash or notes_mode
    spikes = _SpikeBank(fault_rngs) if spike_any else None
    need_mask = bool(deferred)
    t_crash = t_pause = t_slow = t_spike = 0.0

    # Append-only FIFO queues of realized completions, one per
    # (row, worker), with the head element mirrored into dense
    # ``head_end``/``head_size`` arrays (inf/0 for an empty queue) so the
    # observe step never gathers from the 3-d slot arrays.
    cap = 8
    q_end = arena.take("q_end", (rows, n_max, cap), fill=np.inf)
    q_size = arena.take("q_size", (rows, n_max, cap), fill=0.0)
    q_head = arena.take("q_head", (rows, n_max), dtype=np.int64, fill=0)
    q_tail = arena.take("q_tail", (rows, n_max), dtype=np.int64, fill=0)
    head_end = arena.take("head_end", (rows, n_max), fill=np.inf)
    head_size = arena.take("head_size", (rows, n_max), fill=0.0)
    # Each row's earliest outstanding completion, maintained incrementally
    # so the observe step and wait wake-ups are O(rows) instead of
    # scanning the full (rows × workers) head matrix every iteration.
    head_min = arena.take("head_min", (rows,), fill=np.inf)
    kernel_of_row = np.empty(rows, dtype=np.int64)
    for ki, (_, sl, _) in enumerate(kernels):
        kernel_of_row[sl] = ki
    if collect:
        # Chunk indices give the scalar (time, chunk_index) event order;
        # loss flags mark entries announcing a LossNote instead of a
        # completion.
        q_idx = arena.take("q_idx", (rows, n_max, cap), dtype=np.int64, fill=0)
        q_lost = arena.take("q_lost", (rows, n_max, cap), dtype=bool, fill=False)
        head_idx = arena.take("head_idx", (rows, n_max), dtype=np.int64, fill=0)
        head_lost = arena.take("head_lost", (rows, n_max), dtype=bool, fill=False)
        wants_row = np.zeros(rows, dtype=bool)
        for ki, (_, sl, wants) in enumerate(kernels):
            if wants:
                wants_row[sl] = True

    # Pending chunk counts are maintained incrementally (integers, so the
    # running value is exact); pending work stays a sent − done difference
    # because that is bitwise-identical to the scalar view's bookkeeping.
    counts = arena.take("counts", (rows, n_max), dtype=np.int64, fill=0)
    sent_work = arena.take("sent_work", (rows, n_max), fill=0.0)
    done_work = arena.take("done_work", (rows, n_max), fill=0.0)
    # Padded worker slots report a huge pending count so no kernel ever
    # selects them or sees them idle.
    n_per_row = np.repeat([c.platform.N for c in cells], reps)
    counts[np.arange(n_max)[None, :] >= n_per_row[:, None]] = PAD_PENDING

    busy = arena.take("busy", (rows, n_max), fill=0.0)
    now = arena.take("now", (rows,), fill=0.0)
    kdisp = arena.take("kdisp", (rows,), dtype=np.int64, fill=0)
    action = arena.take("action", (rows,), dtype=np.int64, fill=DONE)
    worker = arena.take("worker", (rows,), dtype=np.int64, fill=0)
    size = arena.take("size", (rows,), fill=0.0)
    # Reused difference buffer for the kernels' pending-work view.
    works = arena.take("works", (rows, n_max), fill=0.0)

    # Liveness as integer counters (global and per kernel group): the loop
    # condition and the per-group decide guards then cost O(1) instead of
    # re-reducing the ``active`` mask every iteration.
    n_active = int(active.sum())
    group_alive = [int(active[sl].sum()) for _, sl, _ in kernels]

    # Rows finish at very different iteration counts (platform size and
    # error level set the dispatch count), so late iterations would pay
    # full-width array ops for mostly-dead rows.  Instead each finished
    # row's makespan is harvested the moment it turns DONE (its state is
    # final), and once at most half the rows remain alive the engine
    # compacts every per-row array — and each kernel's state — down to
    # the survivors.  Compaction only re-indexes rows (their relative
    # order is preserved), so every remaining trajectory is bitwise
    # unchanged.
    final = np.empty(rows)
    orig = np.arange(rows)
    can_compact = all(
        type(k).compact is not LockstepKernel.compact for k, _, _ in kernels
    )

    while n_active:
        # 1. Observe: pop queue heads whose completion has passed each
        # row's clock — only rows whose earliest outstanding completion
        # (head_min) is due participate.  One head per (row, worker) per
        # pass, in FIFO order, so done_work accumulates exactly like the
        # scalar view's completed-work prefix sums.
        pops: list = []
        rdy = np.flatnonzero(head_min <= now)
        while rdy.size:
            ready = head_end[rdy] <= now[rdy, None]
            lr, ww = np.nonzero(ready)
            if lr.size == 0:
                break
            rr = rdy[lr]
            counts[rr, ww] -= 1
            done_work[rr, ww] += head_size[rr, ww]
            if collect:
                pops.append(
                    (
                        rr,
                        ww,
                        head_end[rr, ww],
                        head_size[rr, ww],
                        head_lost[rr, ww],
                        head_idx[rr, ww],
                    )
                )
            nh = q_head[rr, ww] + 1
            q_head[rr, ww] = nh
            has_more = nh < q_tail[rr, ww]
            idx = np.minimum(nh, q_end.shape[2] - 1)
            head_end[rr, ww] = np.where(has_more, q_end[rr, ww, idx], np.inf)
            head_size[rr, ww] = np.where(has_more, q_size[rr, ww, idx], 0.0)
            if collect:
                head_lost[rr, ww] = np.where(has_more, q_lost[rr, ww, idx], False)
                head_idx[rr, ww] = np.where(has_more, q_idx[rr, ww, idx], 0)
        if rdy.size:
            head_min[rdy] = head_end[rdy].min(axis=1)

        # 1b. Build each group's step context: the crash state a scalar
        # view would report at the row's clock, plus the losses and
        # completions that just became observable, delivered in scalar
        # (time, chunk_index) order per row.
        ctxs = None
        if collect:
            crashed_now = (crash_t <= now[:, None]) if any_crash else None
            ctxs = [None] * len(kernels)
            for ki, (_, sl, wants) in enumerate(kernels):
                if fault_mode or wants:
                    ctxs[ki] = KernelStepContext(
                        crashed=None if crashed_now is None else crashed_now[sl],
                        fault_rows=None if not fault_mode else fault_row[sl],
                    )
            if pops:
                prr = np.concatenate([p[0] for p in pops])
                pww = np.concatenate([p[1] for p in pops])
                pend = np.concatenate([p[2] for p in pops])
                psz = np.concatenate([p[3] for p in pops])
                plost = np.concatenate([p[4] for p in pops])
                pidx = np.concatenate([p[5] for p in pops])
                keep = plost | wants_row[prr]
                if keep.any():
                    order = np.lexsort((pidx, pend, prr))
                    for pos in order[keep[order]]:
                        row = int(prr[pos])
                        ki = int(kernel_of_row[row])
                        ctx = ctxs[ki]
                        if ctx is None:
                            continue
                        local = row - kernels[ki][1].start
                        if plost[pos]:
                            ctx.losses.append((local, float(psz[pos])))
                        else:
                            ctx.notes.append(
                                (
                                    local,
                                    float(pend[pos]),
                                    int(pww[pos]),
                                    float(psz[pos]),
                                )
                            )

        # 2. Decide: each family's kernel fills its contiguous row slice.
        for ki, (kernel, sl, _) in enumerate(kernels):
            if group_alive[ki]:
                np.subtract(sent_work[sl], done_work[sl], out=works[sl])
                kernel.decide(
                    counts[sl],
                    works[sl],
                    action[sl],
                    worker[sl],
                    size[sl],
                    mask=active[sl] if need_mask else None,
                    ctx=None if ctxs is None else ctxs[ki],
                )

        done_rows = np.flatnonzero(active & (action == DONE))
        if done_rows.size:
            if fault_mode:
                final[orig[done_rows]] = mspan[done_rows]
            else:
                final[orig[done_rows]] = busy[done_rows].max(axis=1)
            active[done_rows] = False
            n_active -= int(done_rows.size)
            for ki in kernel_of_row[done_rows]:
                group_alive[ki] -= 1
            if n_active == 0:
                break
            if can_compact and rows - n_active >= 128 and n_active <= rows // 2:
                keep = np.flatnonzero(active)
                new_kernels = []
                start = 0
                for ki, (kernel, sl, wants) in enumerate(kernels):
                    loc = keep[(keep >= sl.start) & (keep < sl.stop)] - sl.start
                    kernel.compact(loc)
                    new_kernels.append(
                        (kernel, slice(start, start + loc.size), wants)
                    )
                    group_alive[ki] = int(loc.size)
                    start += loc.size
                kernels = new_kernels
                orig = orig[keep]
                counts = counts[keep]
                sent_work = sent_work[keep]
                done_work = done_work[keep]
                busy = busy[keep]
                now = now[keep]
                kdisp = kdisp[keep]
                action = action[keep]
                worker = worker[keep]
                size = size[keep]
                works = works[: keep.size]
                q_end = q_end[keep]
                q_size = q_size[keep]
                q_head = q_head[keep]
                q_tail = q_tail[keep]
                head_end = head_end[keep]
                head_size = head_size[keep]
                head_min = head_min[keep]
                wp = wp[:, keep]
                bank.compact(keep)
                kernel_of_row = kernel_of_row[keep]
                cell_of_row = cell_of_row[keep]
                active = active[keep]
                if collect:
                    q_idx = q_idx[keep]
                    q_lost = q_lost[keep]
                    head_idx = head_idx[keep]
                    head_lost = head_lost[keep]
                    wants_row = wants_row[keep]
                if fault_mode:
                    crash_t = crash_t[keep]
                    pause_s = pause_s[keep]
                    pause_l = pause_l[keep]
                    slow_s = slow_s[keep]
                    slow_f = slow_f[keep]
                    spike_p = spike_p[keep]
                    spike_d = spike_d[keep]
                    fault_row = fault_row[keep]
                    mspan = mspan[keep]
                    if spikes is not None:
                        spikes.compact(keep)
                        spike_any = spikes.any_live
                    # Survivors may no longer need every transform (the
                    # rows that did may all have finished).
                    fault_mode = bool(fault_row.any())
                    any_crash = any_crash and bool(np.isfinite(crash_t).any())
                    any_pause = any_pause and bool((pause_l > 0.0).any())
                    any_slow = any_slow and bool((slow_f > 1.0).any())
                if row_tracers is not None:
                    row_tracers = [row_tracers[int(r)] for r in keep]
                # Deferred rows were inactive from the start, so the
                # survivors are all live: the mask is no longer needed.
                need_mask = False
                rows = int(keep.size)

        # 3a. Apply dispatches.
        disp = np.flatnonzero(active & (action == DISPATCH))
        if disp.size:
            w = worker[disp]
            sz = size[disp]
            k = kdisp[disp]
            bank.ensure(int(k.max()) + 1)
            w_s, w_b, w_cl, w_nl, w_tl = wp[:, disp, w]
            # chunk/inf is +0.0, matching link_time's infinite-bandwidth
            # branch bit for bit; multiplying by an exact 1.0 factor (the
            # zero-error rows) is also a bitwise no-op.
            link_eff = (w_nl + sz / w_b) * bank.comm[disp, k]
            if spike_any:
                # Per-dispatch spike draws gathered from each row's
                # pre-drawn fault-stream columns at the row's dispatch
                # counter; adding an exact +0.0 to unspiked rows is a
                # bitwise no-op.
                if timing:
                    t0 = perf_counter()
                spikes.ensure(int(k.max()) + 1)
                u = spikes.draws[disp, k]
                link_eff = link_eff + np.where(
                    u < spike_p[disp], spike_d[disp], 0.0
                )
                if timing:
                    t_spike += perf_counter() - t0
            send_end = now[disp] + link_eff
            arrival = send_end + w_tl
            comp_start = np.maximum(arrival, busy[disp, w])
            comp_eff = (w_cl + sz / w_s) * bank.comp[disp, k]
            if any_pause:
                # Pause window first, then slowdown onset — the scalar
                # compute_duration order, with its exact associativity.
                if timing:
                    t0 = perf_counter()
                ps = pause_s[disp, w]
                pl = pause_l[disp, w]
                in_window = (pl > 0.0) & (comp_start < ps + pl)
                if in_window.any():
                    inside = in_window & (comp_start >= ps)
                    straddle = in_window & ~inside & (comp_start + comp_eff > ps)
                    comp_eff = np.where(
                        inside,
                        (ps + pl + comp_eff) - comp_start,
                        np.where(straddle, comp_eff + pl, comp_eff),
                    )
                if timing:
                    t_pause += perf_counter() - t0
            if any_slow:
                if timing:
                    t0 = perf_counter()
                so = slow_s[disp, w]
                sf = slow_f[disp, w]
                slowed = (sf > 1.0) & (comp_start + comp_eff > so)
                if slowed.any():
                    after = slowed & (comp_start >= so)
                    partial = slowed & ~after
                    done_part = so - comp_start
                    comp_eff = np.where(
                        after,
                        comp_eff * sf,
                        np.where(
                            partial,
                            done_part + (comp_eff - done_part) * sf,
                            comp_eff,
                        ),
                    )
                if timing:
                    t_slow += perf_counter() - t0
            comp_end = comp_start + comp_eff
            busy[disp, w] = comp_end

            if fault_mode:
                if any_crash:
                    # A chunk outliving its worker's crash is lost: the
                    # master observes it leave the pending set at
                    # max(crash, arrival) and it contributes neither work
                    # nor makespan.  The busy chain still advances
                    # (fictitious timeline), so every later chunk on that
                    # worker is lost too — matching the scalar engine.
                    if timing:
                        t0 = perf_counter()
                    cw = crash_t[disp, w]
                    lost = comp_end > cw
                    end_q = np.where(lost, np.maximum(cw, arrival), comp_end)
                    mspan[disp] = np.maximum(
                        mspan[disp], np.where(lost, 0.0, comp_end)
                    )
                    if timing:
                        t_crash += perf_counter() - t0
                else:
                    lost = None
                    end_q = comp_end
                    mspan[disp] = np.maximum(mspan[disp], comp_end)
            else:
                lost = None
                end_q = comp_end

            tail = q_tail[disp, w]
            if int(tail.max()) >= q_end.shape[2]:
                grow = q_end.shape[2]
                q_end = np.concatenate(
                    [q_end, np.full((rows, n_max, grow), np.inf)], axis=2
                )
                q_size = np.concatenate(
                    [q_size, np.zeros((rows, n_max, grow))], axis=2
                )
                if collect:
                    q_idx = np.concatenate(
                        [q_idx, np.zeros((rows, n_max, grow), dtype=np.int64)],
                        axis=2,
                    )
                    q_lost = np.concatenate(
                        [q_lost, np.zeros((rows, n_max, grow), dtype=bool)],
                        axis=2,
                    )
            q_end[disp, w, tail] = end_q
            q_size[disp, w, tail] = sz
            was_empty = tail == q_head[disp, w]
            head_end[disp, w] = np.where(was_empty, end_q, head_end[disp, w])
            head_size[disp, w] = np.where(was_empty, sz, head_size[disp, w])
            # A dispatch can only lower a row's earliest completion, and
            # only through the head it may have just installed.
            head_min[disp] = np.minimum(head_min[disp], head_end[disp, w])
            if collect:
                q_idx[disp, w, tail] = k
                head_idx[disp, w] = np.where(was_empty, k, head_idx[disp, w])
                if lost is not None:
                    q_lost[disp, w, tail] = lost
                    head_lost[disp, w] = np.where(was_empty, lost, head_lost[disp, w])
            if row_tracers is not None:
                for pos, row in enumerate(disp):
                    tracer = row_tracers[row]
                    if tracer is None:
                        continue
                    wi = int(w[pos])
                    ci = int(k[pos])
                    szi = float(sz[pos])
                    tracer.emit(
                        float(now[row]), "dispatch_start", wi, chunk=ci, size=szi
                    )
                    tracer.emit(
                        float(send_end[pos]), "dispatch_end", wi, chunk=ci, size=szi
                    )
                    if lost is not None and lost[pos]:
                        tracer.emit(
                            float(end_q[pos]), "fault", wi,
                            chunk=ci, size=szi, detail="loss",
                        )
                    else:
                        tracer.emit(
                            float(comp_start[pos]), "comp_start", wi,
                            chunk=ci, size=szi,
                        )
                        tracer.emit(
                            float(comp_end[pos]), "comp_end", wi,
                            chunk=ci, size=szi,
                        )

            q_tail[disp, w] += 1
            counts[disp, w] += 1
            sent_work[disp, w] += sz
            kdisp[disp] += 1
            now[disp] = send_end

        # 3b. Apply waits: jump to the earliest outstanding completion
        # (for fault rows that includes pending loss announcements).
        waiting = np.flatnonzero(active & (action == WAIT_FOR_COMPLETION))
        if waiting.size:
            wake = head_min[waiting]
            stuck = np.isinf(wake)
            if stuck.any():
                row = int(waiting[np.flatnonzero(stuck)[0]])
                cell = cells[int(cell_of_row[row])]
                raise DeadlockError(
                    f"{cell.scheduler.name}: WAIT with no outstanding chunk "
                    f"at t={now[row]}"
                )
            now[waiting] = wake

    # Each worker's busy time is its last chunk's completion, so a clean
    # row's makespan — harvested the moment the row turned DONE — is
    # simply the max over workers (pad slots stay 0).  Fault rows instead
    # keep a running maximum over *delivered* completions — a lost
    # chunk's busy entry must not count — which agrees bitwise with the
    # busy max on rows that lost nothing.
    for r in deferred:
        final[r] = defer_makespans[r]
    if timing:
        perf["fault_crash_s"] = perf.get("fault_crash_s", 0.0) + t_crash
        perf["fault_pause_s"] = perf.get("fault_pause_s", 0.0) + t_pause
        perf["fault_slow_s"] = perf.get("fault_slow_s", 0.0) + t_slow
        perf["fault_spike_s"] = perf.get("fault_spike_s", 0.0) + t_spike
    return [final[offsets[i] : offsets[i + 1]].copy() for i in range(len(cells))]


def simulate_dynamic_cells(
    cells,
    mode: str = "multiply",
    min_ratio: float = MIN_RATIO,
    max_rows: int = MAX_ROWS,
    tracers=None,
    arena=None,
    perf=None,
) -> list:
    """Simulate many dynamic cells, merging compatible ones per call.

    Cells are ordered group-major by their kernel spec's ``group_key``
    (decision-rule family) so each lockstep call — chunked to at most
    ``max_rows`` repetition rows — holds contiguous family runs, each
    driven by one merged kernel while the engine state is shared across
    all of them.  Fault cells mix freely with clean ones (see
    :func:`_simulate_rows`).  Returns one makespan array per cell, in
    input order, each of shape ``(len(cell.seeds),)``.

    ``tracers``, when given, parallels ``cells``: each entry is ``None``
    or a sequence of one :class:`repro.obs.Tracer` (or ``None``) per seed
    of that cell (see :func:`_simulate_rows`).  ``arena`` (a
    :class:`BatchArena`) lets a long-running caller — e.g. a whole-grid
    sweep — reuse the engine's state buffers across every call it makes.
    ``perf``, when given, is a mutable mapping accumulating the fault
    engine's counters across calls (see :func:`_simulate_rows`).
    """
    if mode not in ("multiply", "divide"):
        raise ValueError(f"unknown perturbation mode {mode!r}")
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows}")
    cells = list(cells)
    outputs: list = [None] * len(cells)
    if arena is None:
        arena = BatchArena()

    groups: dict = {}
    for idx, cell in enumerate(cells):
        spec = cell.scheduler.batch_kernel(cell.platform, cell.total_work)
        groups.setdefault(spec.group_key, []).append((idx, spec))
    ordered = [pair for members in groups.values() for pair in members]

    batch: list = []
    batch_rows = 0
    for idx, spec in ordered + [(None, None)]:
        rows = len(cells[idx].seeds) if idx is not None else 0
        if batch and (idx is None or batch_rows + rows > max_rows):
            row_tracers = None
            if tracers is not None and any(tracers[i] for i, _ in batch):
                row_tracers = []
                for i, _ in batch:
                    cell_tracers = tracers[i]
                    if cell_tracers is None:
                        row_tracers.extend([None] * len(cells[i].seeds))
                    else:
                        row_tracers.extend(cell_tracers)
            results = _simulate_rows(
                [cells[i] for i, _ in batch],
                [s for _, s in batch],
                mode,
                min_ratio,
                row_tracers,
                arena,
                perf,
            )
            for (i, _), res in zip(batch, results):
                outputs[i] = res
            batch, batch_rows = [], 0
        if idx is not None:
            batch.append((idx, spec))
            batch_rows += rows
    return outputs


def simulate_dynamic_batch(
    platform: PlatformSpec,
    scheduler: Scheduler,
    total_work: float,
    error: float,
    seeds,
    mode: str = "multiply",
    min_ratio: float = MIN_RATIO,
    tracers=None,
    faults: "FaultModel | None" = None,
) -> np.ndarray:
    """Makespans of one batch-dynamic scheduler under R paired error draws.

    The single-cell entry point: one (platform, error) cell, one seed per
    repetition, same stream contract as the scalar engine (see the module
    docstring).  ``tracers`` is one :class:`repro.obs.Tracer` (or ``None``)
    per seed; ``faults`` injects a fault scenario into every repetition.
    Returns an array of shape ``(len(seeds),)``.
    """
    cell = DynamicCell(
        platform=platform,
        scheduler=scheduler,
        total_work=total_work,
        error=error,
        seeds=tuple(int(s) for s in seeds),
        faults=faults,
    )
    return simulate_dynamic_cells(
        [cell],
        mode=mode,
        min_ratio=min_ratio,
        tracers=None if tracers is None else [tracers],
    )[0]
