"""Vectorized batch simulation of *static* plans.

The fast engine simulates one run at a time in pure Python; for the full
Table-1 grid (~10^8 runs) even a millisecond per run is days.  For
*static* schedules — UMR, MI-x, one-round: the dispatch sequence is fixed
regardless of what the errors do — whole repetition batches can be
simulated as NumPy array operations instead (the "vectorize your loops"
rule of scientific-Python optimization):

* the link timeline is a per-repetition ``cumsum`` over perturbed
  transfer durations;
* each worker's compute chain ``end_k = max(arrival_k, end_{k-1}) +
  comp_k`` is sequential in *chunk index* only, so one pass over the
  (few hundred) chunks performs R-wide vector ops.

With 1000 repetitions per call the amortized cost is a few microseconds
per run — two to three orders of magnitude faster than the scalar engine.

Equivalence contract: perturbation factors are drawn per repetition from
the same two spawned streams as the scalar engines, in chunk order, so

* at ``error = 0`` the batch result equals the scalar engines *exactly*;
* at ``error > 0`` results are **distributionally** identical but not
  bitwise: the scalar engine interleaves truncation resampling into the
  stream chunk-by-chunk, while the batch draws block-wise and resamples
  the (rare) below-floor entries afterwards.  The test suite checks exact
  equality where defined and statistical agreement elsewhere.

Dynamic schedulers have no fixed dispatch sequence, so they cannot use
*this* engine — but most of them (Factoring, WeightedFactoring, the RUMR
variants) decide from pure arithmetic over master-observable state and
batch under the *lockstep* contract instead: :mod:`repro.sim.dynbatch`
advances all repetitions one decision at a time as row-wise array
operations, consuming the same per-seed streams and reusing this
module's :func:`_draw_factors`.  Only the remaining dynamics (FSC,
AdaptiveRUMR) stay on the scalar engine.  The per-cell seeds are shared
by every path, so the strict cross-algorithm pairing Tables 2–3 need is
preserved throughout.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.core.chunks import ChunkPlan
from repro.errors.models import MIN_RATIO
from repro.platform.spec import PlatformSpec

__all__ = [
    "CompiledStaticPlan",
    "compile_static_plan",
    "draw_factor_matrices",
    "simulate_static_batch",
]


@dataclasses.dataclass(frozen=True)
class CompiledStaticPlan:
    """A static plan lowered to per-chunk prediction arrays.

    Everything :func:`simulate_static_batch` needs that depends only on
    ``(platform, plan)`` — worker indices, predicted link/compute times,
    pipeline latencies — extracted once so repeated calls (one per error
    level in a sweep) skip the per-chunk Python loop over the platform.
    """

    num_workers: int
    workers: np.ndarray       # (K,) int — receiving worker per chunk
    link_pred: np.ndarray     # (K,) predicted link occupancy per chunk
    comp_pred: np.ndarray     # (K,) predicted compute duration per chunk
    tlat: np.ndarray          # (K,) pipeline latency per chunk
    sizes: "np.ndarray | None" = None   # (K,) chunk sizes (tracing only)
    phases: tuple[str, ...] = ()        # (K,) plan-derived phase labels

    @property
    def num_chunks(self) -> int:
        return len(self.workers)


def compile_static_plan(platform: PlatformSpec, plan: ChunkPlan) -> CompiledStaticPlan:
    """Lower a :class:`ChunkPlan` for repeated batch simulation."""
    chunks = list(plan)
    return CompiledStaticPlan(
        num_workers=platform.N,
        workers=np.array([c.worker for c in chunks], dtype=np.intp),
        link_pred=np.array([platform[c.worker].link_time(c.size) for c in chunks]),
        comp_pred=np.array([platform[c.worker].compute_time(c.size) for c in chunks]),
        tlat=np.array([platform[c.worker].tLat for c in chunks]),
        sizes=np.array([c.size for c in chunks]),
        phases=tuple(
            f"round{c.round_index}" if c.round_index >= 0 else "" for c in chunks
        ),
    )


def _draw_factors(
    rng: np.random.Generator, count: int, magnitude: float, min_ratio: float
) -> np.ndarray:
    """Truncated-normal factors, block-drawn with mask resampling."""
    if magnitude == 0.0:
        return np.ones(count)
    x = rng.normal(1.0, magnitude, count)
    bad = x < min_ratio
    while bad.any():
        x[bad] = rng.normal(1.0, magnitude, int(bad.sum()))
        bad = x < min_ratio
    return x


def draw_factor_matrices(
    seeds: "np.ndarray | list[int]",
    k: int,
    error: float,
    min_ratio: float = MIN_RATIO,
) -> tuple[np.ndarray, np.ndarray]:
    """(comm, comp) perturbation-factor matrices of shape (len(seeds), k).

    Stream identity with the scalar engines is preserved: seed ``s`` feeds
    ``SeedSequence(s).spawn(2)`` exactly like
    :func:`repro.errors.rng.spawn_rngs`, and factors come out in chunk
    order.  The spawning itself is batched — all ``2·R`` child sequences
    and bit generators are built in one pass before any drawing — rather
    than interleaving spawn/draw per seed.

    Because every stream emits factors in chunk order, a matrix drawn for
    the *largest* chunk count can be column-sliced and reused for any
    smaller static plan under the same seeds — the sweep harness draws one
    matrix pair per (platform, error) cell and shares it across all static
    algorithms, exactly as the scalar engines share the per-cell streams.
    """
    children = [
        child
        for seed in seeds
        for child in np.random.SeedSequence(int(seed)).spawn(2)
    ]
    generators = [np.random.Generator(np.random.PCG64(c)) for c in children]
    r = len(seeds)
    comm = np.empty((r, k))
    comp = np.empty((r, k))
    for i in range(r):
        comm[i] = _draw_factors(generators[2 * i], k, error, min_ratio)
        comp[i] = _draw_factors(generators[2 * i + 1], k, error, min_ratio)
    return comm, comp


def simulate_static_batch(
    platform: PlatformSpec,
    plan: "ChunkPlan | CompiledStaticPlan",
    error: float,
    seeds: "np.ndarray | list[int]",
    min_ratio: float = MIN_RATIO,
    mode: str = "multiply",
    factors: tuple[np.ndarray, np.ndarray] | None = None,
    tracers: "typing.Sequence | None" = None,
) -> np.ndarray:
    """Makespans of one static plan under R independent error draws.

    Parameters
    ----------
    platform:
        The master-worker platform.
    plan:
        A static dispatch sequence (e.g. ``solve_umr(...).to_chunk_plan()``),
        or its :func:`compile_static_plan` lowering when the same plan is
        simulated at many error levels.
    error:
        Truncated-normal error magnitude (0 = deterministic).
    seeds:
        One seed per repetition; each spawns the same (comm, comp) stream
        pair the scalar engines use.
    mode:
        ``"multiply"`` (default) or ``"divide"`` perturbation direction.
    factors:
        Optional precomputed ``(comm, comp)`` matrices from
        :func:`draw_factor_matrices` with at least ``K`` columns (extra
        columns are ignored); lets callers share one draw across several
        plans under the same seeds.  The ``mode`` inversion is applied
        here, so pass raw factors.
    tracers:
        Optional sequence of one :class:`repro.obs.Tracer` (or ``None``)
        per seed; each non-None entry receives its repetition's event
        stream.  Phase labels come from the compiled plan's round indices
        (``"round{r}"``) rather than scheduler-specific names, and timeline
        values are extracted from the batch arrays only for traced rows —
        the untraced path allocates nothing extra.

    Returns
    -------
    numpy.ndarray
        Makespan per seed, shape ``(len(seeds),)``.
    """
    if mode not in ("multiply", "divide"):
        raise ValueError(f"unknown perturbation mode {mode!r}")
    if not isinstance(plan, CompiledStaticPlan):
        plan = compile_static_plan(platform, plan)
    k = plan.num_chunks
    if k == 0:
        return np.zeros(len(seeds))
    workers = plan.workers
    link_pred = plan.link_pred
    comp_pred = plan.comp_pred
    tlat = plan.tlat

    if error == 0.0:
        # Deterministic: every repetition is the same run.  Simulate one
        # row (no RNG is spawned at all) and broadcast.
        comm_factors = np.ones((1, k))
        comp_factors = comm_factors
    else:
        if factors is not None:
            comm_factors, comp_factors = factors
            if comm_factors.shape[0] != len(seeds):
                raise ValueError(
                    f"shared factor matrices have {comm_factors.shape[0]} "
                    f"rows but {len(seeds)} seeds were given — one row "
                    "per repetition seed is required"
                )
            if comm_factors.shape[1] < k:
                raise ValueError(
                    f"shared factor matrices have {comm_factors.shape[1]} "
                    f"columns < plan's {k} chunks"
                )
            comm_factors = comm_factors[:, :k]
            comp_factors = comp_factors[:, :k]
        else:
            comm_factors, comp_factors = draw_factor_matrices(
                seeds, k, error, min_ratio
            )
        if mode == "divide":
            comm_factors = 1.0 / comm_factors
            comp_factors = 1.0 / comp_factors
    r = comm_factors.shape[0]

    tracing = tracers is not None and any(t is not None for t in tracers)

    link_eff = link_pred[None, :] * comm_factors
    send_end = np.cumsum(link_eff, axis=1)
    arrival = send_end + tlat[None, :]
    comp_dur = comp_pred[None, :] * comp_factors

    busy = np.zeros((r, plan.num_workers))
    makespan = np.zeros(r)
    comp_starts = np.empty((r, k)) if tracing else None
    for j in range(k):
        w = workers[j]
        start = np.maximum(arrival[:, j], busy[:, w])
        end = start + comp_dur[:, j]
        busy[:, w] = end
        np.maximum(makespan, end, out=makespan)
        if tracing:
            comp_starts[:, j] = start

    if tracing:
        # send_start_j is exactly send_end_{j-1} (the scalar engines' link
        # chain), not send_end_j - link_j: (a + b) - b != a in floats.
        send_start = np.concatenate([np.zeros((r, 1)), send_end[:, :-1]], axis=1)
        sizes = plan.sizes if plan.sizes is not None else np.zeros(k)
        phases = plan.phases if plan.phases else ("",) * k
        for i, tracer in enumerate(tracers):
            if tracer is None:
                continue
            # At error 0 only one broadcast row was simulated.
            row = min(i, r - 1)
            last_phase: str | None = None
            for j in range(k):
                w = int(workers[j])
                ph = phases[j]
                sz = float(sizes[j])
                ss = float(send_start[row, j])
                if ph != last_phase:
                    tracer.emit(ss, "round_boundary", -1, chunk=j, phase=ph)
                    last_phase = ph
                tracer.emit(ss, "dispatch_start", w, chunk=j, size=sz, phase=ph)
                tracer.emit(
                    float(send_end[row, j]), "dispatch_end", w,
                    chunk=j, size=sz, phase=ph,
                )
                cs = float(comp_starts[row, j])
                tracer.emit(cs, "comp_start", w, chunk=j, size=sz, phase=ph)
                tracer.emit(
                    cs + float(comp_dur[row, j]), "comp_end", w,
                    chunk=j, size=sz, phase=ph,
                )
    if r == 1 and len(seeds) != 1:
        return np.full(len(seeds), makespan[0])
    return makespan
