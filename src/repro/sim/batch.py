"""Vectorized batch simulation of *static* plans.

The fast engine simulates one run at a time in pure Python; for the full
Table-1 grid (~10^8 runs) even a millisecond per run is days.  For
*static* schedules — UMR, MI-x, one-round: the dispatch sequence is fixed
regardless of what the errors do — whole repetition batches can be
simulated as NumPy array operations instead (the "vectorize your loops"
rule of scientific-Python optimization):

* the link timeline is a per-repetition ``cumsum`` over perturbed
  transfer durations;
* each worker's compute chain ``end_k = max(arrival_k, end_{k-1}) +
  comp_k`` is sequential in *chunk index* only, so one pass over the
  (few hundred) chunks performs R-wide vector ops.

With 1000 repetitions per call the amortized cost is a few microseconds
per run — two to three orders of magnitude faster than the scalar engine.

Equivalence contract: perturbation factors are drawn per repetition from
the same two spawned streams as the scalar engines, in chunk order, so

* at ``error = 0`` the batch result equals the scalar engines *exactly*;
* at ``error > 0`` results are **distributionally** identical but not
  bitwise: the scalar engine interleaves truncation resampling into the
  stream chunk-by-chunk, while the batch draws block-wise and resamples
  the (rare) below-floor entries afterwards.  The test suite checks exact
  equality where defined and statistical agreement elsewhere.

Beyond one plan at a time, :func:`simulate_static_cells` stacks a whole
*grid* of static cells — every (platform, error, algorithm) combination,
padded to a common chunk count — into one (rows × chunks) tensor, so the
sequential chunk loop is amortized over every repetition of every cell
at once.  Fault cells ride along: each cell realizes all of its rows'
schedules in one :meth:`~repro.errors.faults.FaultModel.sample_batch`
call — a :class:`~repro.errors.faults.FaultPlane` of stacked arrays,
bit-identical to sampling row by row from each seed's third stream —
then link spikes perturb the link chain before the cumsum, pause /
slowdown windows reshape compute durations inside the chunk loop, and
chunks outliving their worker's crash are lost (they keep the busy chain
advancing but contribute no makespan) — the scalar engine's fault
semantics, vectorized.  Each transform runs only when some row in the
grid needs it: a crash-only grid skips the pause/slowdown arithmetic
entirely, and a spike-only grid runs the clean compute recurrence.

Dynamic schedulers have no fixed dispatch sequence, so they cannot use
*this* engine — but all of them (Factoring, WeightedFactoring, FSC, the
RUMR variants, AdaptiveRUMR) decide from pure arithmetic over
master-observable state and batch under the *lockstep* contract instead:
:mod:`repro.sim.dynbatch` advances all repetitions one decision at a
time as row-wise array operations, consuming the same per-seed streams
and reusing this module's :func:`_draw_factors`.  The per-cell seeds are
shared by every path, so the strict cross-algorithm pairing Tables 2–3
need is preserved throughout.
"""

from __future__ import annotations

import dataclasses
import typing
from time import perf_counter

import numpy as np

from repro.core.chunks import ChunkPlan
from repro.errors.faults import FaultModel
from repro.errors.models import MIN_RATIO
from repro.platform.spec import PlatformSpec

__all__ = [
    "CompiledStaticPlan",
    "StaticCell",
    "compile_static_plan",
    "draw_factor_matrices",
    "factor_stream",
    "simulate_static_batch",
    "simulate_static_cells",
]


@dataclasses.dataclass(frozen=True)
class CompiledStaticPlan:
    """A static plan lowered to per-chunk prediction arrays.

    Everything :func:`simulate_static_batch` needs that depends only on
    ``(platform, plan)`` — worker indices, predicted link/compute times,
    pipeline latencies — extracted once so repeated calls (one per error
    level in a sweep) skip the per-chunk Python loop over the platform.
    """

    num_workers: int
    workers: np.ndarray       # (K,) int — receiving worker per chunk
    link_pred: np.ndarray     # (K,) predicted link occupancy per chunk
    comp_pred: np.ndarray     # (K,) predicted compute duration per chunk
    tlat: np.ndarray          # (K,) pipeline latency per chunk
    sizes: "np.ndarray | None" = None   # (K,) chunk sizes (tracing only)
    phases: tuple[str, ...] = ()        # (K,) plan-derived phase labels
    #: (N, depth) chunk columns per worker in dispatch order, -1-padded —
    #: the layout the depth-major compute recurrence iterates over.
    by_worker: "np.ndarray | None" = None

    @property
    def num_chunks(self) -> int:
        return len(self.workers)

    @property
    def worker_layout(self) -> np.ndarray:
        """The per-worker chunk layout, derived on demand if not stored."""
        if self.by_worker is not None:
            return self.by_worker
        return _worker_layout(self.workers, self.num_workers)


def _worker_layout(workers: np.ndarray, n: int) -> np.ndarray:
    """(n, depth) chunk columns per worker in dispatch order, -1-padded.

    Each worker's compute chain ``end_k = max(arrival_k, end_{k-1}) +
    dur_k`` depends only on its *own* previous chunk, so the batch
    engines iterate the recurrence depth-major: one step per chunk
    position within a worker (``depth`` steps total) instead of one per
    chunk (``K`` steps), with all workers of all rows advancing together.
    """
    counts = np.bincount(workers, minlength=n) if len(workers) else np.zeros(n, int)
    depth = int(counts.max()) if len(workers) else 0
    out = np.full((n, max(depth, 1)), -1, dtype=np.intp)
    pos = np.zeros(n, dtype=np.intp)
    for j, w in enumerate(workers):
        out[w, pos[w]] = j
        pos[w] += 1
    return out


#: Identity-keyed memo for :func:`compile_static_plan`.  Solvers are
#: lru-cached, so a sweep re-presents the *same* platform and plan
#: objects every time it revisits a cell; keeping strong references in
#: the value makes the ``id()`` key safe (no recycled ids while cached).
_COMPILE_CACHE: dict = {}
_COMPILE_CACHE_MAX = 1024


def compile_static_plan(platform: PlatformSpec, plan: ChunkPlan) -> CompiledStaticPlan:
    """Lower a :class:`ChunkPlan` for repeated batch simulation."""
    key = (id(platform), id(plan))
    hit = _COMPILE_CACHE.get(key)
    if hit is not None and hit[0] is platform and hit[1] is plan:
        return hit[2]
    chunks = list(plan)
    workers = np.array([c.worker for c in chunks], dtype=np.intp)
    compiled = CompiledStaticPlan(
        num_workers=platform.N,
        workers=workers,
        link_pred=np.array([platform[c.worker].link_time(c.size) for c in chunks]),
        comp_pred=np.array([platform[c.worker].compute_time(c.size) for c in chunks]),
        tlat=np.array([platform[c.worker].tLat for c in chunks]),
        sizes=np.array([c.size for c in chunks]),
        phases=tuple(
            f"round{c.round_index}" if c.round_index >= 0 else "" for c in chunks
        ),
        by_worker=_worker_layout(workers, platform.N),
    )
    if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.pop(next(iter(_COMPILE_CACHE)))
    _COMPILE_CACHE[key] = (platform, plan, compiled)
    return compiled


def _draw_factors(
    rng: np.random.Generator, count: int, magnitude: float, min_ratio: float
) -> np.ndarray:
    """Truncated-normal factors, block-drawn with mask resampling."""
    if magnitude == 0.0:
        return np.ones(count)
    x = rng.normal(1.0, magnitude, count)
    bad = x < min_ratio
    while bad.any():
        x[bad] = rng.normal(1.0, magnitude, int(bad.sum()))
        bad = x < min_ratio
    return x


class _FactorStream:
    """One seed's (comm, comp) factor columns, grown by continuation.

    The generators persist with the drawn columns, so extending the
    column count continues the *same* stream — an entry's prefix never
    changes once drawn, which keeps repeated identical sweeps bitwise
    reproducible regardless of cache state.  Factors are stored raw
    (multiply-mode); consumers apply the ``divide`` inversion themselves.
    """

    __slots__ = ("comm", "comp", "_gen_comm", "_gen_comp", "_magnitude", "_min_ratio")

    def __init__(self, seed: int, magnitude: float, min_ratio: float):
        comm_seq, comp_seq = np.random.SeedSequence(int(seed)).spawn(2)
        self._gen_comm = np.random.Generator(np.random.PCG64(comm_seq))
        self._gen_comp = np.random.Generator(np.random.PCG64(comp_seq))
        self._magnitude = magnitude
        self._min_ratio = min_ratio
        self.comm = np.empty(0)
        self.comp = np.empty(0)

    def ensure(self, cols: int) -> None:
        have = len(self.comm)
        if cols <= have:
            return
        target = max(cols, 2 * have, 64)
        extra = target - have
        self.comm = np.concatenate(
            [self.comm, _draw_factors(self._gen_comm, extra, self._magnitude,
                                      self._min_ratio)]
        )
        self.comp = np.concatenate(
            [self.comp, _draw_factors(self._gen_comp, extra, self._magnitude,
                                      self._min_ratio)]
        )


#: Bounded FIFO cache of factor streams keyed by (seed, magnitude,
#: min_ratio).  Sweeps revisit the same per-cell seeds constantly — all
#: algorithms share a cell's streams (paired comparisons), fault-scenario
#: sweeps re-run the same cells, and benchmark/retry paths repeat whole
#: grids — so the spawn-and-draw cost is paid once per seed, not once
#: per visit.  Entries are never mutated after growth (prefix-stable),
#: so consumers may slice but must not write into the returned rows.
_FACTOR_STREAMS: dict = {}
_FACTOR_STREAMS_MAX = 4096


def factor_stream(
    seed: int, magnitude: float, cols: int, min_ratio: float = MIN_RATIO
) -> _FactorStream:
    """The cached factor stream for ``seed``, grown to ``cols`` columns.

    Requires ``magnitude > 0`` (zero-magnitude rows are exact ones and
    need no stream at all).  The returned entry's ``comm``/``comp``
    arrays have at least ``cols`` columns; callers slice a prefix and
    must treat the arrays as read-only.
    """
    key = (int(seed), float(magnitude), float(min_ratio))
    entry = _FACTOR_STREAMS.get(key)
    if entry is None:
        if len(_FACTOR_STREAMS) >= _FACTOR_STREAMS_MAX:
            _FACTOR_STREAMS.pop(next(iter(_FACTOR_STREAMS)))
        entry = _FactorStream(seed, magnitude, min_ratio)
        _FACTOR_STREAMS[key] = entry
    entry.ensure(cols)
    return entry


def draw_factor_matrices(
    seeds: "np.ndarray | list[int]",
    k: int,
    error: float,
    min_ratio: float = MIN_RATIO,
) -> tuple[np.ndarray, np.ndarray]:
    """(comm, comp) perturbation-factor matrices of shape (len(seeds), k).

    Stream identity with the scalar engines is preserved: seed ``s`` feeds
    ``SeedSequence(s).spawn(2)`` exactly like
    :func:`repro.errors.rng.spawn_rngs`, and factors come out in chunk
    order.  Draws come from the per-seed :func:`factor_stream` cache, so
    repeated calls under the same seeds — every algorithm of a cell, every
    fault scenario of a grid, every retry — reuse one spawn-and-draw.

    Because every stream emits factors in chunk order, a matrix drawn for
    the *largest* chunk count can be column-sliced and reused for any
    smaller static plan under the same seeds — the sweep harness draws one
    matrix pair per (platform, error) cell and shares it across all static
    algorithms, exactly as the scalar engines share the per-cell streams.
    """
    r = len(seeds)
    comm = np.empty((r, k))
    comp = np.empty((r, k))
    if error == 0.0:
        comm[...] = 1.0
        comp[...] = 1.0
        return comm, comp
    for i, seed in enumerate(seeds):
        stream = factor_stream(int(seed), error, k, min_ratio)
        comm[i] = stream.comm[:k]
        comp[i] = stream.comp[:k]
    return comm, comp


@dataclasses.dataclass(frozen=True)
class StaticCell:
    """One static (platform, plan, error) cell and its repetition seeds.

    The grid-stacking unit of :func:`simulate_static_cells`.  ``faults``
    optionally injects a fault scenario: each repetition row samples its
    own schedule from the seed's third spawned stream, exactly like the
    scalar engine.
    """

    platform: PlatformSpec
    plan: CompiledStaticPlan
    error: float
    seeds: tuple
    faults: "FaultModel | None" = None

    def __post_init__(self) -> None:
        if self.error < 0:
            raise ValueError(f"error magnitude must be >= 0, got {self.error}")
        if len(self.seeds) == 0:
            raise ValueError("a cell needs at least one seed")


def simulate_static_cells(
    cells: "typing.Sequence[StaticCell]",
    mode: str = "multiply",
    min_ratio: float = MIN_RATIO,
    perf=None,
) -> list:
    """Simulate a whole grid of static cells in one stacked pass.

    Every repetition of every cell becomes one row of a shared
    (rows × chunks) tensor, padded to the longest plan; the sequential
    chunk loop — the only per-chunk Python cost — then runs *once* for
    the entire grid instead of once per (platform, error, algorithm)
    cell.  Factor draws are deduplicated by ``(seed, error)``: rows
    sharing a seed and magnitude (the same cell simulated under several
    algorithms — the paired-comparison discipline) reuse one draw, like
    the scalar engines re-deriving identical streams from the seed.

    Deterministic fault-free cells (``error == 0`` and no faults)
    collapse to a single simulated row broadcast over their seeds,
    mirroring :func:`simulate_static_batch`'s shortcut.  Fault cells
    keep one row per seed — their schedules differ — and follow the
    scalar fault semantics vectorized (see the module docstring).

    ``perf``, when given, is a mutable mapping accumulating fault-engine
    wall-time counters across calls: ``fault_sample_s`` plus the
    per-kind transform times ``fault_crash_s`` / ``fault_pause_s`` /
    ``fault_slow_s`` / ``fault_spike_s``.

    Returns one makespan array per cell, in input order, each of shape
    ``(len(cell.seeds),)``.
    """
    if mode not in ("multiply", "divide"):
        raise ValueError(f"unknown perturbation mode {mode!r}")
    cells = list(cells)
    if not cells:
        return []
    # Clean deterministic cells need only one representative row.
    row_counts = [
        1 if (c.error == 0.0 and c.faults is None) else len(c.seeds) for c in cells
    ]
    offsets = np.cumsum([0] + row_counts)
    rows = int(offsets[-1])
    k_max = max(c.plan.num_chunks for c in cells)
    n_max = max(c.plan.num_workers for c in cells)
    if k_max == 0:
        return [np.zeros(len(c.seeds)) for c in cells]

    # Per-cell padded prediction arrays, row-expanded over repetitions.
    link_pred = np.zeros((len(cells), k_max))
    comp_pred = np.zeros((len(cells), k_max))
    tlat = np.zeros((len(cells), k_max))
    for i, c in enumerate(cells):
        k = c.plan.num_chunks
        link_pred[i, :k] = c.plan.link_pred
        comp_pred[i, :k] = c.plan.comp_pred
        tlat[i, :k] = c.plan.tlat
    rep = lambda a: np.repeat(a, row_counts, axis=0)  # noqa: E731
    link_pred, comp_pred, tlat = map(rep, (link_pred, comp_pred, tlat))

    # Factor matrices: one cached stream per distinct (seed, error) — see
    # :func:`factor_stream` — k_max columns so any plan in the grid can
    # consume its prefix.
    comm = np.empty((rows, k_max))
    comp = np.empty((rows, k_max))
    r = 0
    for c, count in zip(cells, row_counts):
        for seed in c.seeds[:count]:
            if c.error > 0.0:
                stream = factor_stream(int(seed), c.error, k_max, min_ratio)
                comm[r] = stream.comm[:k_max]
                comp[r] = stream.comp[:k_max]
            else:
                comm[r] = 1.0
                comp[r] = 1.0
            r += 1
    if mode == "divide":
        np.divide(1.0, comm, out=comm)
        np.divide(1.0, comp, out=comp)

    # Fault realization: each fault cell's rows come from one batched
    # FaultPlane draw, block-copied into the grid arrays (neutral
    # defaults keep the transforms bitwise no-ops on clean rows).
    fault_mode = any(c.faults is not None for c in cells)
    any_crash = any_pause = any_slow = False
    timing = perf is not None
    t_crash = t_pause = t_slow = 0.0
    spike_rows: list = []
    if fault_mode:
        t0 = perf_counter() if timing else 0.0
        crash_t = np.full((rows, n_max), np.inf)
        pause_s = np.zeros((rows, n_max))
        pause_l = np.zeros((rows, n_max))
        slow_s = np.zeros((rows, n_max))
        slow_f = np.ones((rows, n_max))
        r = 0
        for c, count in zip(cells, row_counts):
            if c.faults is None:
                r += count
                continue
            plane = c.faults.sample_batch(c.platform, c.seeds[:count])
            sl = slice(r, r + count)
            n = plane.num_workers
            crash_t[sl, :n] = plane.crash_time
            pause_s[sl, :n] = plane.pause_start
            pause_l[sl, :n] = plane.pause_len
            slow_s[sl, :n] = plane.slow_start
            slow_f[sl, :n] = plane.slow_factor
            kc = c.plan.num_chunks
            for j, rng in enumerate(plane.rngs):
                if rng is None:
                    continue
                # One uniform draw per dispatch, in dispatch order —
                # Generator.random(k) consumes the stream exactly like
                # k scalar calls.  The scalar engine adds the spike
                # *after* perturbing, so it becomes an additive term
                # folded into link_eff below.
                draws = rng.random(kc)
                spikes = np.where(
                    draws < plane.spike_prob[j], plane.spike_delay[j], 0.0
                )
                spike_rows.append((r + j, kc, spikes))
            r += count
        any_crash = bool(np.isfinite(crash_t).any())
        any_pause = bool((pause_l > 0.0).any())
        any_slow = bool((slow_f > 1.0).any())
        if timing:
            perf["fault_sample_s"] = (
                perf.get("fault_sample_s", 0.0) + perf_counter() - t0
            )

    link_eff = link_pred * comm
    if spike_rows:
        t0 = perf_counter() if timing else 0.0
        for r, kc, spikes in spike_rows:
            link_eff[r, :kc] += spikes
        if timing:
            perf["fault_spike_s"] = (
                perf.get("fault_spike_s", 0.0) + perf_counter() - t0
            )
    # arrival/duration carry the sentinel column in-place (computed into
    # the padded allocation directly — no concatenate copies).
    arr_pad = np.empty((rows, k_max + 1))
    dur_pad = np.empty((rows, k_max + 1))
    arrival = arr_pad[:, :k_max]
    comp_dur = dur_pad[:, :k_max]
    np.cumsum(link_eff, axis=1, out=arrival)
    arrival += tlat
    arr_pad[:, k_max] = -np.inf
    np.multiply(comp_pred, comp, out=comp_dur)
    dur_pad[:, k_max] = 0.0

    # Depth-major compute recurrence (see :func:`_worker_layout`): gather
    # each chunk's arrival/duration into (rows, workers, depth) position,
    # then advance every worker chain of every row one chunk per step.
    # Pad slots gather the appended sentinel column (arrival -inf, dur 0),
    # making ``max(busy, -inf) + 0`` an exact no-op on the busy chain.
    d_max = max(c.plan.worker_layout.shape[1] for c in cells)
    gidx = np.full((len(cells), n_max, d_max), k_max, dtype=np.intp)
    for i, c in enumerate(cells):
        bw = c.plan.worker_layout
        n, d = bw.shape
        np.copyto(gidx[i, :n, :d], bw, where=bw >= 0)
    gidx = rep(gidx.reshape(len(cells), n_max * d_max))
    arr_g = np.take_along_axis(arr_pad, gidx, axis=1).reshape(rows, n_max, d_max)
    dur_g = np.take_along_axis(dur_pad, gidx, axis=1).reshape(rows, n_max, d_max)

    busy = np.zeros((rows, n_max))
    if not (any_crash or any_pause or any_slow):
        # Clean recurrence — also taken by fault grids whose rows need
        # no compute-side transform (e.g. spike-only, already folded
        # into the link chain): nothing is lost, so the makespan over
        # delivered chunks equals the busy-chain max bitwise.
        for d in range(d_max):
            np.maximum(busy, arr_g[:, :, d], out=busy)
            busy += dur_g[:, :, d]
        # Worker chain ends are monotone, so the final busy time per
        # worker is its chain maximum and the row max is the makespan.
        mspan = busy.max(axis=1)
    else:
        vmask = (gidx != k_max).reshape(rows, n_max, d_max)
        mspan_w = np.zeros((rows, n_max))
        for d in range(d_max):
            v = vmask[:, :, d]
            start = np.maximum(busy, arr_g[:, :, d])
            dur = dur_g[:, :, d]
            if any_pause:
                # Pause window first, then slowdown onset — the scalar
                # compute_duration order, with its exact associativity.
                if timing:
                    t0 = perf_counter()
                in_window = (pause_l > 0.0) & (start < pause_s + pause_l)
                if in_window.any():
                    inside = in_window & (start >= pause_s)
                    straddle = in_window & ~inside & (start + dur > pause_s)
                    dur = np.where(
                        inside,
                        (pause_s + pause_l + dur) - start,
                        np.where(straddle, dur + pause_l, dur),
                    )
                if timing:
                    t_pause += perf_counter() - t0
            if any_slow:
                if timing:
                    t0 = perf_counter()
                slowed = (slow_f > 1.0) & (start + dur > slow_s)
                if slowed.any():
                    after = slowed & (start >= slow_s)
                    partial = slowed & ~after
                    done_part = slow_s - start
                    dur = np.where(
                        after,
                        dur * slow_f,
                        np.where(
                            partial, done_part + (dur - done_part) * slow_f, dur
                        ),
                    )
                if timing:
                    t_slow += perf_counter() - t0
            end = start + dur
            busy = np.where(v, end, busy)
            if any_crash:
                # Lost chunks (computation outlives the crash) keep the
                # busy chain advancing but never extend the makespan.
                if timing:
                    t0 = perf_counter()
                delivered = v & ~(end > crash_t)
                np.maximum(mspan_w, np.where(delivered, end, 0.0), out=mspan_w)
                if timing:
                    t_crash += perf_counter() - t0
            else:
                np.maximum(mspan_w, np.where(v, end, 0.0), out=mspan_w)
        mspan = mspan_w.max(axis=1)
    if timing:
        perf["fault_crash_s"] = perf.get("fault_crash_s", 0.0) + t_crash
        perf["fault_pause_s"] = perf.get("fault_pause_s", 0.0) + t_pause
        perf["fault_slow_s"] = perf.get("fault_slow_s", 0.0) + t_slow

    out = []
    for i, c in enumerate(cells):
        part = mspan[offsets[i] : offsets[i + 1]]
        if row_counts[i] == 1 and len(c.seeds) != 1:
            out.append(np.full(len(c.seeds), part[0]))
        else:
            out.append(part.copy())
    return out


def simulate_static_batch(
    platform: PlatformSpec,
    plan: "ChunkPlan | CompiledStaticPlan",
    error: float,
    seeds: "np.ndarray | list[int]",
    min_ratio: float = MIN_RATIO,
    mode: str = "multiply",
    factors: tuple[np.ndarray, np.ndarray] | None = None,
    tracers: "typing.Sequence | None" = None,
    faults: "FaultModel | None" = None,
) -> np.ndarray:
    """Makespans of one static plan under R independent error draws.

    Parameters
    ----------
    platform:
        The master-worker platform.
    plan:
        A static dispatch sequence (e.g. ``solve_umr(...).to_chunk_plan()``),
        or its :func:`compile_static_plan` lowering when the same plan is
        simulated at many error levels.
    error:
        Truncated-normal error magnitude (0 = deterministic).
    seeds:
        One seed per repetition; each spawns the same (comm, comp) stream
        pair the scalar engines use.
    mode:
        ``"multiply"`` (default) or ``"divide"`` perturbation direction.
    factors:
        Optional precomputed ``(comm, comp)`` matrices from
        :func:`draw_factor_matrices` with at least ``K`` columns (extra
        columns are ignored); lets callers share one draw across several
        plans under the same seeds.  The ``mode`` inversion is applied
        here, so pass raw factors.
    tracers:
        Optional sequence of one :class:`repro.obs.Tracer` (or ``None``)
        per seed; each non-None entry receives its repetition's event
        stream.  Phase labels come from the compiled plan's round indices
        (``"round{r}"``) rather than scheduler-specific names, and timeline
        values are extracted from the batch arrays only for traced rows —
        the untraced path allocates nothing extra.
    faults:
        Optional fault model; the call is delegated to
        :func:`simulate_static_cells` as a one-cell grid (so each seed
        realizes its own schedule from its third spawned stream, exactly
        like the scalar engine).  Incompatible with ``factors`` and
        ``tracers``.

    Returns
    -------
    numpy.ndarray
        Makespan per seed, shape ``(len(seeds),)``.
    """
    if mode not in ("multiply", "divide"):
        raise ValueError(f"unknown perturbation mode {mode!r}")
    if not isinstance(plan, CompiledStaticPlan):
        plan = compile_static_plan(platform, plan)
    if faults is not None:
        if factors is not None:
            raise ValueError(
                "faults= cannot be combined with shared factor matrices: "
                "fault cells are never factor-shared (each row's schedule "
                "realization is seed-specific)"
            )
        if tracers is not None and any(t is not None for t in tracers):
            raise ValueError(
                "faults= does not support tracing; use the scalar engine "
                "for traced fault runs"
            )
        cell = StaticCell(
            platform=platform,
            plan=plan,
            error=error,
            seeds=tuple(int(s) for s in seeds),
            faults=faults,
        )
        return simulate_static_cells([cell], mode=mode, min_ratio=min_ratio)[0]
    k = plan.num_chunks
    if k == 0:
        return np.zeros(len(seeds))
    workers = plan.workers
    link_pred = plan.link_pred
    comp_pred = plan.comp_pred
    tlat = plan.tlat

    if error == 0.0:
        # Deterministic: every repetition is the same run.  Simulate one
        # row (no RNG is spawned at all) and broadcast.
        comm_factors = np.ones((1, k))
        comp_factors = comm_factors
    else:
        if factors is not None:
            comm_factors, comp_factors = factors
            if comm_factors.shape[0] != len(seeds):
                raise ValueError(
                    f"shared factor matrices have {comm_factors.shape[0]} "
                    f"rows but {len(seeds)} seeds were given — one row "
                    "per repetition seed is required"
                )
            if comm_factors.shape[1] < k:
                raise ValueError(
                    f"shared factor matrices have {comm_factors.shape[1]} "
                    f"columns < plan's {k} chunks"
                )
            comm_factors = comm_factors[:, :k]
            comp_factors = comp_factors[:, :k]
        else:
            comm_factors, comp_factors = draw_factor_matrices(
                seeds, k, error, min_ratio
            )
        if mode == "divide":
            comm_factors = 1.0 / comm_factors
            comp_factors = 1.0 / comp_factors
    r = comm_factors.shape[0]

    tracing = tracers is not None and any(t is not None for t in tracers)

    link_eff = link_pred[None, :] * comm_factors
    send_end = np.cumsum(link_eff, axis=1)
    arrival = send_end + tlat[None, :]
    comp_dur = comp_pred[None, :] * comp_factors

    busy = np.zeros((r, plan.num_workers))
    if tracing:
        makespan = np.zeros(r)
        comp_starts = np.empty((r, k))
        for j in range(k):
            w = workers[j]
            start = np.maximum(arrival[:, j], busy[:, w])
            end = start + comp_dur[:, j]
            busy[:, w] = end
            np.maximum(makespan, end, out=makespan)
            comp_starts[:, j] = start
    else:
        # Depth-major recurrence (see _worker_layout): worker chains are
        # independent, so the loop needs only max-chunks-per-worker steps.
        bw = plan.worker_layout
        idx = np.where(bw >= 0, bw, k)
        arr_g = np.concatenate([arrival, np.full((r, 1), -np.inf)], axis=1)[:, idx]
        dur_g = np.concatenate([comp_dur, np.zeros((r, 1))], axis=1)[:, idx]
        for d in range(bw.shape[1]):
            np.maximum(busy, arr_g[:, :, d], out=busy)
            busy += dur_g[:, :, d]
        makespan = busy.max(axis=1)

    if tracing:
        # send_start_j is exactly send_end_{j-1} (the scalar engines' link
        # chain), not send_end_j - link_j: (a + b) - b != a in floats.
        send_start = np.concatenate([np.zeros((r, 1)), send_end[:, :-1]], axis=1)
        sizes = plan.sizes if plan.sizes is not None else np.zeros(k)
        phases = plan.phases if plan.phases else ("",) * k
        for i, tracer in enumerate(tracers):
            if tracer is None:
                continue
            # At error 0 only one broadcast row was simulated.
            row = min(i, r - 1)
            last_phase: str | None = None
            for j in range(k):
                w = int(workers[j])
                ph = phases[j]
                sz = float(sizes[j])
                ss = float(send_start[row, j])
                if ph != last_phase:
                    tracer.emit(ss, "round_boundary", -1, chunk=j, phase=ph)
                    last_phase = ph
                tracer.emit(ss, "dispatch_start", w, chunk=j, size=sz, phase=ph)
                tracer.emit(
                    float(send_end[row, j]), "dispatch_end", w,
                    chunk=j, size=sz, phase=ph,
                )
                cs = float(comp_starts[row, j])
                tracer.emit(cs, "comp_start", w, chunk=j, size=sz, phase=ph)
                tracer.emit(
                    cs + float(comp_dur[row, j]), "comp_end", w,
                    chunk=j, size=sz, phase=ph,
                )
    if r == 1 and len(seeds) != 1:
        return np.full(len(seeds), makespan[0])
    return makespan
