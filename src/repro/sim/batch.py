"""Vectorized batch simulation of *static* plans.

The fast engine simulates one run at a time in pure Python; for the full
Table-1 grid (~10^8 runs) even a millisecond per run is days.  For
*static* schedules — UMR, MI-x, one-round: the dispatch sequence is fixed
regardless of what the errors do — whole repetition batches can be
simulated as NumPy array operations instead (the "vectorize your loops"
rule of scientific-Python optimization):

* the link timeline is a per-repetition ``cumsum`` over perturbed
  transfer durations;
* each worker's compute chain ``end_k = max(arrival_k, end_{k-1}) +
  comp_k`` is sequential in *chunk index* only, so one pass over the
  (few hundred) chunks performs R-wide vector ops.

With 1000 repetitions per call the amortized cost is a few microseconds
per run — two to three orders of magnitude faster than the scalar engine.

Equivalence contract: perturbation factors are drawn per repetition from
the same two spawned streams as the scalar engines, in chunk order, so

* at ``error = 0`` the batch result equals the scalar engines *exactly*;
* at ``error > 0`` results are **distributionally** identical but not
  bitwise: the scalar engine interleaves truncation resampling into the
  stream chunk-by-chunk, while the batch draws block-wise and resamples
  the (rare) below-floor entries afterwards.  The test suite checks exact
  equality where defined and statistical agreement elsewhere.

Dynamic schedulers (Factoring, RUMR's tail, FSC) cannot be batched — the
dispatch sequence *is* the random outcome — which is why the experiment
harness keeps the scalar engine: its strict cross-algorithm pairing is
what Tables 2–3 need.  Use this module for wide static-algorithm studies
(e.g. UMR sensitivity sweeps at paper scale).
"""

from __future__ import annotations

import numpy as np

from repro.core.chunks import ChunkPlan
from repro.errors.rng import spawn_rngs
from repro.platform.spec import PlatformSpec

__all__ = ["simulate_static_batch"]


def _draw_factors(
    rng: np.random.Generator, count: int, magnitude: float, min_ratio: float
) -> np.ndarray:
    """Truncated-normal factors, block-drawn with mask resampling."""
    if magnitude == 0.0:
        return np.ones(count)
    x = rng.normal(1.0, magnitude, count)
    bad = x < min_ratio
    while bad.any():
        x[bad] = rng.normal(1.0, magnitude, int(bad.sum()))
        bad = x < min_ratio
    return x


def simulate_static_batch(
    platform: PlatformSpec,
    plan: ChunkPlan,
    error: float,
    seeds: "np.ndarray | list[int]",
    min_ratio: float = 0.01,
    mode: str = "multiply",
) -> np.ndarray:
    """Makespans of one static plan under R independent error draws.

    Parameters
    ----------
    platform:
        The master-worker platform.
    plan:
        A static dispatch sequence (e.g. ``solve_umr(...).to_chunk_plan()``).
    error:
        Truncated-normal error magnitude (0 = deterministic).
    seeds:
        One seed per repetition; each spawns the same (comm, comp) stream
        pair the scalar engines use.
    mode:
        ``"multiply"`` (default) or ``"divide"`` perturbation direction.

    Returns
    -------
    numpy.ndarray
        Makespan per seed, shape ``(len(seeds),)``.
    """
    if mode not in ("multiply", "divide"):
        raise ValueError(f"unknown perturbation mode {mode!r}")
    chunks = list(plan)
    if not chunks:
        return np.zeros(len(seeds))
    k = len(chunks)
    r = len(seeds)
    workers = np.array([c.worker for c in chunks])
    link_pred = np.array([platform[c.worker].link_time(c.size) for c in chunks])
    comp_pred = np.array([platform[c.worker].compute_time(c.size) for c in chunks])
    tlat = np.array([platform[c.worker].tLat for c in chunks])

    comm_factors = np.empty((r, k))
    comp_factors = np.empty((r, k))
    for i, seed in enumerate(seeds):
        rng_comm, rng_comp = spawn_rngs(int(seed), 2)
        comm_factors[i] = _draw_factors(rng_comm, k, error, min_ratio)
        comp_factors[i] = _draw_factors(rng_comp, k, error, min_ratio)
    if mode == "divide":
        comm_factors = 1.0 / comm_factors
        comp_factors = 1.0 / comp_factors

    send_end = np.cumsum(link_pred[None, :] * comm_factors, axis=1)
    arrival = send_end + tlat[None, :]
    comp_dur = comp_pred[None, :] * comp_factors

    busy = np.zeros((r, platform.N))
    makespan = np.zeros(r)
    for j in range(k):
        w = workers[j]
        start = np.maximum(arrival[:, j], busy[:, w])
        end = start + comp_dur[:, j]
        busy[:, w] = end
        np.maximum(makespan, end, out=makespan)
    return makespan
