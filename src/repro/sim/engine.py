"""Reference master-worker simulator on the generic DES kernel.

This engine expresses the paper's platform as interacting processes:

* one *master* process that queries the scheduler's dispatch source,
  occupies the serialized link for each transfer, and hands chunks to
  per-worker delivery processes (which model the overlappable ``tLat``
  pipeline tail);
* one *worker* process per processor, consuming its FIFO inbox and
  announcing completions to the master's completion inbox;
* the scheduler only observes completion announcements, like a real master.

The engine is trajectory-identical to :mod:`repro.sim.fastsim`: the same
floating-point operations in the same order, and error-model draws in
dispatch order from the same two streams.  A zero-delay flush before every
dispatch decision guarantees that completions occurring *exactly* at the
decision time are observed — these ties are systematic under zero error
because UMR aligns round boundaries by construction.

Fault injection preserves that identity.  The master mirrors the fast
engine's busy-until chain (``pred_busy``) so it can price each chunk's
computation window at dispatch time with the exact same float operations;
a chunk whose predicted completion outlives its worker's crash is *lost* —
it occupies the link normally but is never delivered.  Loss announcements
reach the completions inbox at ``max(crash_time, arrival)``: a per-worker
crash-watch process (started at ``t=0``, so its ``timeout(t_crash)`` fires
at the exact crash float) reports chunks already queued on the worker, and
a per-chunk announcer riding the ``tLat`` tail reports chunks still in
flight.

Non-star topologies (:mod:`repro.platform.topology`) extend the process
graph honestly.  Chains and trees add one *relay* process per serialized
relay link: a FIFO inbox feeds it chunks (in dispatch order, because the
master link upstream is serialized), it holds the link for the hop time,
emits a ``link_hop`` event, and forwards to the next hop or the terminal
delivery stage.  The master still predicts the whole timeline at
dispatch via the same :meth:`~repro.platform.topology.LinkPath.traverse`
arithmetic the fast engine uses — relay ``max``/``+`` chains realize the
exact same floats, so chain/tree trajectories stay engine-identical.
Relays are deterministic forwarders: the error model perturbs only the
master-link occupancy, and worker crashes stop computation, not
forwarding (lost chunks still occupy relay links).

``sharedbw`` topologies replace the serialized link with a fluid shared
medium (:class:`_SharedLink`): the master pays only ``nLat`` serially,
registers the transfer (its byte volume perturbed by the comm stream),
and a water-filling allocator splits the capacity max-min fairly among
concurrent transfers, re-solving rates on every join/leave via versioned
watcher processes (the kernel has no event cancellation; stale watchers
simply return).  This shape exists only here — the fast engine has no
calendar to realize rate changes on — and rejects fault injection, since
loss classification needs a completion time predictable at dispatch.
"""

from __future__ import annotations

import bisect
import dataclasses
import math

from repro.core.base import (
    WAIT,
    CompletionNote,
    DeadlockError,
    Dispatch,
    LossNote,
    MasterView,
    Scheduler,
)
from repro.core.chunks import DispatchRecord
from repro.des import Environment, Event, Monitor, Store
from repro.errors.faults import FaultModel, FaultSchedule
from repro.errors.models import ErrorModel
from repro.errors.rng import spawn_rngs
from repro.platform.spec import PlatformSpec
from repro.platform.topology import RelayHop, StarTopology, make_topology
from repro.sim.result import SimResult

__all__ = ["simulate_des"]

#: Inbox sentinel telling a worker process to terminate.
_POISON = object()


@dataclasses.dataclass(slots=True)
class _ChunkMsg:
    """A delivered chunk: its size and the (pre-drawn) compute duration."""

    index: int
    size: float
    comp_time: float
    phase: str


@dataclasses.dataclass(slots=True)
class _RelayMsg:
    """A chunk riding the relay pipeline of a chain/tree topology.

    ``terminal`` decides what happens after the last hop and tail:
    ``"deliver"`` hands ``chunk_msg`` to the worker via the ``tLat``
    delivery, ``"loss"`` announces an in-flight crash loss at the
    would-have-been arrival, ``"drop"`` just occupies the links (the
    chunk was queued at its worker's crash; the crash watch announces
    it).
    """

    worker: int
    index: int
    size: float
    phase: str
    hops: tuple[RelayHop, ...]
    hop_idx: int
    tail_time: float
    has_tail: bool
    t_lat: float
    terminal: str
    chunk_msg: "_ChunkMsg | None"


@dataclasses.dataclass(slots=True)
class _Transfer:
    """One in-flight transfer on a :class:`_SharedLink`."""

    tid: int
    remaining: float
    bcap: float
    done: Event
    rate: float = 0.0


class _SharedLink:
    """A fluid shared medium with max-min fair capacity allocation.

    Active transfers progress at rates solved by water-filling: total
    capacity ``cap`` is split equally, transfers whose own link cap
    ``bcap`` is below their share keep ``bcap``, and the surplus is
    re-split among the rest.  Rates change only when a transfer joins
    (:meth:`register`) or completes; each change advances every
    transfer's remaining volume at the old rates, bumps a version
    counter, and spawns a fresh watcher process sleeping until the
    earliest completion under the new rates.  The kernel has no event
    cancellation, so superseded watchers notice the version mismatch
    when they wake and simply return.

    Everything is plain deterministic float arithmetic on
    deterministically ordered dicts — repeated runs realize identical
    calendars, which is what the DES self-consistency gate certifies.
    """

    __slots__ = ("env", "cap", "active", "last", "version")

    def __init__(self, env: Environment, cap: float):
        self.env = env
        self.cap = cap
        self.active: dict[int, _Transfer] = {}
        self.last = 0.0
        self.version = 0

    def register(self, tid: int, volume: float, bcap: float, done: Event) -> None:
        """Admit a transfer of ``volume`` units capped at rate ``bcap``.

        ``done`` is succeeded (with the completion time) once the whole
        volume has flowed.
        """
        self._advance()
        self.active[tid] = _Transfer(tid=tid, remaining=volume, bcap=bcap, done=done)
        self._reschedule()

    def _advance(self) -> None:
        dt = self.env.now - self.last
        if dt > 0.0:
            for t in self.active.values():
                t.remaining -= t.rate * dt
        self.last = self.env.now

    def _allocate(self) -> None:
        # Water-filling: serve the tightest own-caps first; ties broken by
        # transfer id so the allocation order is deterministic.
        items = sorted(self.active.values(), key=lambda t: (t.bcap, t.tid))
        rem_cap = self.cap
        k = len(items)
        for t in items:
            share = rem_cap / k
            t.rate = t.bcap if t.bcap < share else share
            rem_cap -= t.rate
            k -= 1

    def _reschedule(self) -> None:
        self.version += 1
        if not self.active:
            return
        self._allocate()
        best: float | None = None
        due: list[int] = []
        for t in sorted(self.active.values(), key=lambda t: t.tid):
            dt = (t.remaining if t.remaining > 0.0 else 0.0) / t.rate
            if best is None or dt < best:
                best, due = dt, [t.tid]
            elif dt == best:
                due.append(t.tid)
        assert best is not None
        self.env.process(self._watch(self.version, best, tuple(due)))

    def _watch(self, version: int, delay: float, due: tuple[int, ...]):
        yield self.env.timeout(delay)
        if version != self.version:
            return  # a join re-planned the link while we slept
        self._advance()
        for tid in due:
            transfer = self.active.pop(tid)
            transfer.done.succeed(self.env.now)
        self._reschedule()


class _NullTracer:
    """Absorbs emissions so the engine's hot paths stay branch-free."""

    __slots__ = ()

    def emit(self, *args, **kwargs) -> None:
        pass


class _DesView(MasterView):
    """Master-observable state, maintained by explicit message counting.

    Pending work is represented as a per-worker prefix-sum list over the
    dispatch order plus a completed count — the *same arithmetic* as the
    fast engine's view, so both views return bit-identical floats and
    tie-breaks in dynamic schedulers resolve identically (a naive
    incremental add/subtract accumulator leaves ±1-ulp residues that can
    flip least-loaded orderings between engines).
    """

    __slots__ = (
        "env",
        "_n",
        "_sent",
        "_done",
        "_prefix",
        "_all_notes",
        "_crash_times",
        "_all_losses",
    )

    def __init__(self, env: Environment, n: int, crash_times: tuple[float, ...] | None = None):
        self.env = env
        self._n = n
        self._sent = [0] * n
        self._done = [0] * n
        self._prefix: list[list[float]] = [[0.0] for _ in range(n)]
        # Sorted by (time, chunk_index): identical to the fast view even
        # when announcements drain in a different internal order.
        self._all_notes: list[CompletionNote] = []
        self._crash_times = crash_times
        self._all_losses: list[LossNote] = []

    @property
    def now(self) -> float:
        return self.env.now

    @property
    def num_workers(self) -> int:
        return self._n

    def pending_chunks(self, worker: int) -> int:
        return self._sent[worker] - self._done[worker]

    def pending_work(self, worker: int) -> float:
        prefix = self._prefix[worker]
        return prefix[self._sent[worker]] - prefix[self._done[worker]]

    def observed_completions(self) -> tuple[CompletionNote, ...]:
        return tuple(self._all_notes)

    # -- fault observability -------------------------------------------------
    @property
    def faults_possible(self) -> bool:
        return self._crash_times is not None

    def crashed_workers(self) -> tuple[int, ...]:
        if self._crash_times is None:
            return ()
        now = self.env.now
        return tuple(i for i in range(self._n) if self._crash_times[i] <= now)

    def observed_losses(self) -> tuple[LossNote, ...]:
        return tuple(self._all_losses)

    # -- engine-side mutation ----------------------------------------------
    def note_dispatch(self, worker: int, size: float) -> None:
        self._sent[worker] += 1
        self._prefix[worker].append(self._prefix[worker][-1] + size)

    def note_completion(self, worker: int, chunk_index: int, size: float, when: float) -> None:
        self._done[worker] += 1
        bisect.insort(
            self._all_notes,
            CompletionNote(time=when, chunk_index=chunk_index, worker=worker, size=size),
        )

    def note_loss(self, worker: int, chunk_index: int, size: float, when: float) -> None:
        # A loss leaves the pending set exactly like a completion; it is
        # only recorded in the loss list rather than the completion list.
        self._done[worker] += 1
        bisect.insort(
            self._all_losses,
            LossNote(time=when, chunk_index=chunk_index, worker=worker, size=size),
        )


def simulate_des(
    platform: PlatformSpec,
    total_work: float,
    scheduler: Scheduler,
    error_model: ErrorModel,
    seed: int | None = None,
    trace: Monitor | None = None,
    faults: FaultModel | None = None,
    tracer=None,
    topology=None,
) -> SimResult:
    """Simulate one run with the DES engine (see module docstring).

    ``faults`` matches :func:`repro.sim.fastsim.simulate_fast`: ``None``
    keeps the legacy two-stream path; a model spawns a third stream,
    realizes one :class:`FaultSchedule`, and injects it.

    ``tracer`` (a :class:`repro.obs.Tracer`) receives the run's typed
    event stream.  Unlike the fast engine — which can emit a chunk's whole
    timeline at dispatch — this engine emits each event from the process
    that realizes it (workers, delivery tails, crash watchers), so the
    stream certifies the DES kernel's actual execution; the two engines'
    *canonical* streams are equal exactly when their trajectories are.
    ``trace`` is the legacy low-level :class:`Monitor` hook, kept for the
    kernel's own regression tests.

    ``topology`` (a spec string or :class:`~repro.platform.topology.
    Topology`) routes transfers through a non-star interconnect: chains
    and trees add relay processes, ``sharedbw`` replaces the serialized
    link with a :class:`_SharedLink`.  ``None`` or a star keeps the
    exact legacy code path.  ``sharedbw`` with ``faults`` raises (see
    the module docstring).
    """
    topo = None
    if topology is not None:
        topo = make_topology(topology)
        if isinstance(topo, StarTopology):
            topo.bind(platform)  # validate n=..., then take the legacy path
            topo = None
    bound = topo.bind(platform) if topo is not None else None
    sharedbw = bound is not None and bound.kind == "sharedbw"
    if sharedbw and faults is not None:
        raise ValueError(
            "fault injection is not supported on sharedbw topologies: loss "
            "classification needs a completion time predictable at dispatch"
        )
    schedule: FaultSchedule | None = None
    if faults is not None:
        rng_comm, rng_comp, rng_fault = spawn_rngs(seed, 3)
        schedule = faults.sample(platform, rng_fault)
        if not schedule.any_faults:
            schedule = None
    else:
        rng_comm, rng_comp = spawn_rngs(seed, 2)
    source = scheduler.create_source(
        platform if topo is None else topo.effective_platform(platform), total_work
    )
    env = Environment()
    monitor = trace if trace is not None else Monitor(enabled=False)
    tr = tracer if tracer is not None else _NullTracer()
    n = platform.N

    inboxes = [Store(env) for _ in range(n)]
    completions = Store(env)
    view = _DesView(env, n, schedule.crash_times if schedule is not None else None)
    records: list[DispatchRecord | None] = []
    deliveries: list = []  # delivery processes, joined before shutdown
    # Chunks dispatched but not yet announced complete or lost (deadlock
    # detection).
    outstanding = [0]
    work_lost = [0.0]
    # Mirror of the fast engine's busy-until chain: lets the master price a
    # chunk's computation window at dispatch time with the exact floats the
    # worker will realize, which is what decides whether it outlives the
    # worker's crash.
    pred_busy = [0.0] * n
    # Lost chunks queued on a worker at its crash instant, announced by the
    # crash-watch process; after the watch has fired, registrations report
    # themselves directly.
    crash_pending: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    watch_fired = [False] * n
    # Topology plumbing: one FIFO inbox per serialized relay link, plus the
    # master-side prediction mirror of the relay busy chains (the analogue
    # of pred_busy for links).  Empty on the legacy star path.
    relay_inboxes: list[Store] = (
        [Store(env) for _ in range(bound.num_relay_links)] if bound is not None else []
    )
    relay_busy: list[float] = [0.0] * len(relay_inboxes)
    shared_link = _SharedLink(env, bound.cap) if sharedbw else None

    def worker_proc(index: int):
        while True:
            msg = yield inboxes[index].get()
            if msg is _POISON:
                return
            comp_start = env.now
            monitor.record(comp_start, "compute_start", index, chunk=msg.index, size=msg.size)
            tr.emit(
                comp_start, "comp_start", index,
                chunk=msg.index, size=msg.size, phase=msg.phase,
            )
            yield env.timeout(msg.comp_time)
            comp_end = env.now
            monitor.record(comp_end, "compute_end", index, chunk=msg.index, size=msg.size)
            tr.emit(
                comp_end, "comp_end", index,
                chunk=msg.index, size=msg.size, phase=msg.phase,
            )
            rec = records[msg.index]
            assert rec is not None
            records[msg.index] = dataclasses.replace(
                rec, comp_start=comp_start, comp_end=comp_end
            )
            completions.put(("done", index, msg.index, msg.size, comp_end))

    def delivery_proc(worker: int, msg: _ChunkMsg, t_lat: float):
        if t_lat > 0:
            yield env.timeout(t_lat)
        monitor.record(env.now, "arrival", worker, chunk=msg.index, size=msg.size)
        rec = records[msg.index]
        assert rec is not None
        records[msg.index] = dataclasses.replace(rec, arrival=env.now)
        inboxes[worker].put(msg)

    def loss_announce_proc(worker: int, idx: int, size: float, phase: str, t_lat: float):
        # In-flight loss: the master learns of it when delivery fails at
        # the (would-have-been) arrival instant, send_end + tLat.
        if t_lat > 0:
            yield env.timeout(t_lat)
        monitor.record(env.now, "chunk_lost", worker, chunk=idx, size=size)
        tr.emit(env.now, "fault", worker, chunk=idx, size=size, phase=phase, detail="loss")
        completions.put(("lost", worker, idx, size, env.now))

    def transport_tail_proc(rmsg: _RelayMsg):
        # The contention-free pipe tail plus the terminal stage, entered at
        # the end of the last hop (or straight after link release for
        # hop-free paths such as cut-through chains and tree roots).
        if rmsg.has_tail:
            yield env.timeout(rmsg.tail_time)
        if rmsg.terminal == "deliver":
            assert rmsg.chunk_msg is not None
            yield from delivery_proc(rmsg.worker, rmsg.chunk_msg, rmsg.t_lat)
        elif rmsg.terminal == "loss":
            yield from loss_announce_proc(
                rmsg.worker, rmsg.index, rmsg.size, rmsg.phase, rmsg.t_lat
            )
        # "drop": queued-at-crash ghost — it only existed to occupy links;
        # the crash watch owns its announcement.

    def relay_proc(res: int):
        # One serialized relay link: FIFO over its inbox, so chunks cross
        # in dispatch order — the order the master's prediction mirror
        # (LinkPath.traverse over relay_busy) prices them in.
        while True:
            rmsg = yield relay_inboxes[res].get()
            if rmsg is _POISON:
                return
            hop = rmsg.hops[rmsg.hop_idx]
            yield env.timeout(hop.hop_time(rmsg.size))
            monitor.record(env.now, "link_hop", rmsg.worker, chunk=rmsg.index, size=rmsg.size)
            tr.emit(
                env.now, "link_hop", rmsg.worker,
                chunk=rmsg.index, size=rmsg.size, phase=rmsg.phase,
                detail=f"link={res}",
            )
            rmsg.hop_idx += 1
            if rmsg.hop_idx < len(rmsg.hops):
                relay_inboxes[rmsg.hops[rmsg.hop_idx].resource].put(rmsg)
            else:
                env.process(transport_tail_proc(rmsg))

    def shared_tail_proc(
        worker: int, index: int, size: float, comp_time: float, phase: str,
        t_lat: float, done: Event,
    ):
        # Rides one sharedbw transfer end to end: waits for the fluid
        # allocator to drain the volume, realizes send_end, then the
        # ordinary tLat delivery.
        yield done
        send_end = env.now
        monitor.record(send_end, "send_end", worker, chunk=index, size=size)
        tr.emit(
            send_end, "dispatch_end", worker, chunk=index, size=size, phase=phase
        )
        rec = records[index]
        assert rec is not None
        records[index] = dataclasses.replace(rec, send_end=send_end)
        msg = _ChunkMsg(index=index, size=size, comp_time=comp_time, phase=phase)
        yield from delivery_proc(worker, msg, t_lat)

    def route_relay(rmsg: _RelayMsg) -> None:
        # First hop's inbox, or straight to the tail for hop-free paths.
        if rmsg.hops:
            relay_inboxes[rmsg.hops[0].resource].put(rmsg)
        else:
            env.process(transport_tail_proc(rmsg))

    def crash_watch_proc(worker: int, t_crash: float):
        # Started at t=0 so ``timeout(t_crash)`` lands on the exact crash
        # float; its early insertion sequence also makes it run before any
        # master activity at the same timestamp.
        yield env.timeout(t_crash)
        monitor.record(env.now, "crash", worker)
        tr.emit(t_crash, "fault", worker, detail="crash")
        watch_fired[worker] = True
        for idx, size, phase in crash_pending[worker]:
            monitor.record(env.now, "chunk_lost", worker, chunk=idx, size=size)
            tr.emit(
                t_crash, "fault", worker, chunk=idx, size=size, phase=phase, detail="loss"
            )
            completions.put(("lost", worker, idx, size, t_crash))
        crash_pending[worker].clear()

    def apply_note(kind: str, worker: int, idx: int, size: float, when: float) -> None:
        if kind == "done":
            view.note_completion(worker, idx, size, when)
        else:
            view.note_loss(worker, idx, size, when)
        outstanding[0] -= 1

    def drain_completions() -> None:
        while len(completions) > 0:
            event = completions.get()
            apply_note(*event.value)

    def master_proc():
        last_phase: str | None = None
        crashes_observed: set[int] = set()
        while True:
            # Flush same-time events so completions at exactly `now` are
            # visible, then fold announcements into the view.
            yield env.timeout(0)
            drain_completions()
            action = source.next_dispatch(view)
            if action is None:
                break
            if action is WAIT:
                if outstanding[0] <= 0:
                    raise DeadlockError(
                        f"{scheduler.name}: WAIT with no outstanding chunk at t={env.now}"
                    )
                msg = yield completions.get()
                apply_note(*msg)
                continue
            if not isinstance(action, Dispatch):
                raise TypeError(
                    f"{scheduler.name}: next_dispatch returned {action!r}; "
                    "expected Dispatch, WAIT or None"
                )
            if not 0 <= action.worker < n:
                raise ValueError(
                    f"{scheduler.name}: dispatch to worker {action.worker} "
                    f"outside the platform (N={n})"
                )
            spec = platform[action.worker]
            size = action.size
            if action.phase != last_phase:
                tr.emit(
                    env.now, "round_boundary", -1,
                    chunk=len(records), phase=action.phase,
                )
                last_phase = action.phase
            if schedule is not None:
                for w in view.crashed_workers():
                    if w not in crashes_observed:
                        crashes_observed.add(w)
                        tr.emit(env.now, "recovery_decision", w, detail="crash-observed")
            if sharedbw:
                # The shared medium has no exclusive occupancy: the master
                # pays nLat serially, registers the transfer (its volume
                # perturbed by the comm stream — one draw per dispatch,
                # preserving the stream discipline), and moves on; the
                # fluid allocator realizes send_end.  Timeline fields are
                # placeholders until the realization processes fill them.
                assert shared_link is not None
                volume = error_model.perturb(size, rng_comm)
                comp_time = error_model.perturb(spec.compute_time(size), rng_comp)
                error_model.advance()
                index = len(records)
                send_start = env.now
                monitor.record(
                    send_start, "send_start", action.worker, chunk=index, size=size
                )
                tr.emit(
                    send_start, "dispatch_start", action.worker,
                    chunk=index, size=size, phase=action.phase,
                )
                records.append(
                    DispatchRecord(
                        index=index,
                        worker=action.worker,
                        size=size,
                        send_start=send_start,
                        send_end=send_start,
                        arrival=send_start,
                        comp_start=send_start,
                        comp_end=send_start,
                        phase=action.phase,
                    )
                )
                view.note_dispatch(action.worker, size)
                outstanding[0] += 1
                if spec.nLat > 0:
                    yield env.timeout(spec.nLat)
                done = Event(env)
                shared_link.register(index, volume, spec.B, done)
                env.process(
                    shared_tail_proc(
                        action.worker, index, size, comp_time, action.phase,
                        spec.tLat, done,
                    )
                )
                continue
            path = bound.paths[action.worker] if bound is not None else None
            if path is None:
                link_time = error_model.perturb(spec.link_time(size), rng_comm)
            else:
                link_time = error_model.perturb(path.occupancy_time(size), rng_comm)
            if schedule is not None:
                link_time += schedule.link_extra(rng_fault)
            comp_time = error_model.perturb(spec.compute_time(size), rng_comp)
            error_model.advance()
            index = len(records)
            send_start = env.now
            # Predicted chunk timeline — bit-identical to what the kernel
            # will realize, because env.timeout chains absolute times with
            # the same `a + b` float operations (relay hops included: the
            # relay processes realize traverse()'s max/+ chains exactly).
            send_end_pred = send_start + link_time
            if path is None:
                arrival_pred = send_end_pred + spec.tLat
            else:
                relay_end_pred = path.traverse(size, send_end_pred, relay_busy)
                arrival_pred = relay_end_pred + spec.tLat
            comp_start_pred = max(arrival_pred, pred_busy[action.worker])
            if schedule is not None:
                comp_time = schedule.compute_duration(
                    action.worker, comp_start_pred, comp_time
                )
            comp_end_pred = comp_start_pred + comp_time
            pred_busy[action.worker] = comp_end_pred
            lost = (
                schedule is not None
                and comp_end_pred > schedule.crash_times[action.worker]
            )
            loss_time = (
                max(schedule.crash_times[action.worker], arrival_pred) if lost else -1.0
            )
            monitor.record(send_start, "send_start", action.worker, chunk=index, size=size)
            tr.emit(
                send_start, "dispatch_start", action.worker,
                chunk=index, size=size, phase=action.phase,
            )
            records.append(
                DispatchRecord(
                    index=index,
                    worker=action.worker,
                    size=size,
                    send_start=send_start,
                    send_end=send_end_pred,
                    arrival=arrival_pred,
                    comp_start=comp_start_pred,
                    comp_end=comp_end_pred,
                    phase=action.phase,
                    lost=lost,
                    loss_time=loss_time,
                )
            )
            view.note_dispatch(action.worker, size)
            outstanding[0] += 1
            if lost:
                work_lost[0] += size
                t_crash = schedule.crash_times[action.worker]
                if arrival_pred > t_crash:
                    # Still in flight at the crash: announced at arrival.
                    yield env.timeout(link_time)
                    monitor.record(env.now, "send_end", action.worker, chunk=index, size=size)
                    tr.emit(
                        env.now, "dispatch_end", action.worker,
                        chunk=index, size=size, phase=action.phase,
                    )
                    if path is None:
                        deliveries.append(
                            env.process(
                                loss_announce_proc(
                                    action.worker, index, size, action.phase, spec.tLat
                                )
                            )
                        )
                    else:
                        route_relay(
                            _RelayMsg(
                                worker=action.worker, index=index, size=size,
                                phase=action.phase, hops=path.hops, hop_idx=0,
                                tail_time=path.tail_time(size) if path.has_tail else 0.0,
                                has_tail=path.has_tail, t_lat=spec.tLat,
                                terminal="loss", chunk_msg=None,
                            )
                        )
                else:
                    # Queued on the worker at the crash: announced by the
                    # crash watch at the crash instant itself (or now, in
                    # the degenerate same-timestamp case where the watch
                    # already fired).
                    if watch_fired[action.worker]:
                        tr.emit(
                            t_crash, "fault", action.worker,
                            chunk=index, size=size, phase=action.phase, detail="loss",
                        )
                        completions.put(("lost", action.worker, index, size, t_crash))
                    else:
                        crash_pending[action.worker].append((index, size, action.phase))
                    yield env.timeout(link_time)
                    monitor.record(env.now, "send_end", action.worker, chunk=index, size=size)
                    tr.emit(
                        env.now, "dispatch_end", action.worker,
                        chunk=index, size=size, phase=action.phase,
                    )
                    if path is not None:
                        # Ghost ride: the chunk was priced through the relay
                        # busy chains, so it must still occupy them.
                        route_relay(
                            _RelayMsg(
                                worker=action.worker, index=index, size=size,
                                phase=action.phase, hops=path.hops, hop_idx=0,
                                tail_time=path.tail_time(size) if path.has_tail else 0.0,
                                has_tail=path.has_tail, t_lat=spec.tLat,
                                terminal="drop", chunk_msg=None,
                            )
                        )
                continue
            yield env.timeout(link_time)
            send_end = env.now
            monitor.record(send_end, "send_end", action.worker, chunk=index, size=size)
            tr.emit(
                send_end, "dispatch_end", action.worker,
                chunk=index, size=size, phase=action.phase,
            )
            rec = records[index]
            assert rec is not None
            records[index] = dataclasses.replace(rec, send_end=send_end)
            msg = _ChunkMsg(index=index, size=size, comp_time=comp_time, phase=action.phase)
            if path is None:
                deliveries.append(env.process(delivery_proc(action.worker, msg, spec.tLat)))
            else:
                route_relay(
                    _RelayMsg(
                        worker=action.worker, index=index, size=size,
                        phase=action.phase, hops=path.hops, hop_idx=0,
                        tail_time=path.tail_time(size) if path.has_tail else 0.0,
                        has_tail=path.has_tail, t_lat=spec.tLat,
                        terminal="deliver", chunk_msg=msg,
                    )
                )
        if bound is None:
            # All work dispatched.  Deliveries may still be riding their tLat
            # pipeline tails — poisoning the inboxes now would overtake them,
            # so join every delivery first, then let the workers drain and
            # stop.
            for delivery in deliveries:
                if not delivery.processed:
                    yield delivery
        else:
            # Topology runs realize deliveries inside relay/shared-link
            # processes the master holds no handles to; every chunk
            # eventually announces done or lost, so drain the outstanding
            # count instead.
            while outstanding[0] > 0:
                msg = yield completions.get()
                apply_note(*msg)
        for inbox in inboxes:
            inbox.put(_POISON)
        for inbox in relay_inboxes:
            inbox.put(_POISON)

    worker_procs = [env.process(worker_proc(i)) for i in range(n)]
    relay_procs = [env.process(relay_proc(r)) for r in range(len(relay_inboxes))]
    if schedule is not None:
        for w, t_crash in enumerate(schedule.crash_times):
            if t_crash != math.inf:
                env.process(crash_watch_proc(w, t_crash))
    env.process(master_proc())
    env.run()
    for proc in worker_procs:
        assert proc.processed, "worker process did not terminate"
    for proc in relay_procs:
        assert proc.processed, "relay process did not terminate"

    final = [r for r in records if r is not None]
    makespan = max((r.comp_end for r in final if not r.lost), default=0.0)
    return SimResult(
        makespan=makespan,
        records=tuple(final),
        platform=platform,
        total_work=total_work,
        scheduler_name=scheduler.name,
        seed=seed,
        work_lost=work_lost[0],
        topology=str(topo) if topo is not None else "star",
    )
