"""Closed-form (deterministic) makespan evaluation for static plans.

Under perfect predictions the platform's timeline is a simple recurrence:
transfer ``k`` starts when transfer ``k-1`` releases the link, and each
worker's computation is the usual ``max(arrival, previous end)`` chain.
This module evaluates that recurrence directly from a
:class:`~repro.core.chunks.ChunkPlan`, independently of the simulation
engines — the test suite uses it as an oracle for both.
"""

from __future__ import annotations

from repro.core.chunks import ChunkPlan
from repro.platform.spec import PlatformSpec

__all__ = ["analytic_makespan", "analytic_timeline"]


def analytic_timeline(
    platform: PlatformSpec, plan: ChunkPlan
) -> list[tuple[int, float, float, float, float, float]]:
    """Evaluate a plan's exact timeline with zero prediction error.

    Returns one tuple per chunk, in dispatch order:
    ``(worker, send_start, send_end, arrival, comp_start, comp_end)``.
    """
    link_free = 0.0
    busy = [0.0] * platform.N
    out = []
    for chunk in plan:
        spec = platform[chunk.worker]
        send_start = link_free
        send_end = send_start + spec.link_time(chunk.size)
        arrival = send_end + spec.tLat
        comp_start = max(arrival, busy[chunk.worker])
        comp_end = comp_start + spec.compute_time(chunk.size)
        busy[chunk.worker] = comp_end
        link_free = send_end
        out.append((chunk.worker, send_start, send_end, arrival, comp_start, comp_end))
    return out


def analytic_makespan(platform: PlatformSpec, plan: ChunkPlan) -> float:
    """Makespan of a static plan under perfect predictions."""
    timeline = analytic_timeline(platform, plan)
    return max((row[5] for row in timeline), default=0.0)
