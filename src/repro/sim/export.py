"""Exporting simulation results to standard formats.

Downstream analysis (pandas, gnuplot, Chrome's trace viewer) wants flat
files, not Python objects:

* :func:`records_csv` — one row per dispatched chunk with the full
  timeline (the CSV twin of :class:`~repro.core.chunks.DispatchRecord`);
* :func:`result_json` — a self-describing JSON document with platform,
  provenance and records;
* :func:`chrome_trace` — the Chrome/Perfetto ``trace_event`` format
  (open ``chrome://tracing`` and drop the file): one row per worker plus
  one for the master's link, chunks as complete events.
"""

from __future__ import annotations

import dataclasses
import json

from repro.sim.result import SimResult

__all__ = ["records_csv", "result_json", "chrome_trace"]

_CSV_FIELDS = (
    "index",
    "worker",
    "size",
    "send_start",
    "send_end",
    "arrival",
    "comp_start",
    "comp_end",
    "phase",
)


def records_csv(result: SimResult) -> str:
    """One CSV row per dispatched chunk, in dispatch order."""
    lines = [",".join(_CSV_FIELDS)]
    for r in result.records:
        row = [getattr(r, f) for f in _CSV_FIELDS]
        lines.append(
            ",".join(f"{v:.9g}" if isinstance(v, float) else str(v) for v in row)
        )
    return "\n".join(lines) + "\n"


def result_json(result: SimResult, indent: int | None = None) -> str:
    """A self-describing JSON document for one run."""
    doc = {
        "scheduler": result.scheduler_name,
        "total_work": result.total_work,
        "seed": result.seed,
        "makespan": result.makespan,
        "num_chunks": result.num_chunks,
        "utilization": result.utilization(),
        "platform": [dataclasses.asdict(w) for w in result.platform],
        "records": [dataclasses.asdict(r) for r in result.records],
    }
    return json.dumps(doc, indent=indent)


def chrome_trace(result: SimResult) -> str:
    """Chrome ``trace_event`` JSON (load in chrome://tracing or Perfetto).

    Timestamps are microseconds (simulated seconds × 1e6).  The link gets
    tid 0; worker ``i`` gets tid ``i + 1``.  Transfers and computations
    are complete ("X") events named by chunk and phase.
    """
    events = []

    def span(name: str, tid: int, start: float, end: float, **args) -> None:
        events.append(
            {
                "name": name,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": start * 1e6,
                "dur": max(0.0, (end - start) * 1e6),
                "args": args,
            }
        )

    for r in result.records:
        span(
            f"send #{r.index}",
            0,
            r.send_start,
            r.send_end,
            worker=r.worker,
            size=r.size,
            phase=r.phase,
        )
        span(
            f"compute #{r.index} ({r.phase})" if r.phase else f"compute #{r.index}",
            r.worker + 1,
            r.comp_start,
            r.comp_end,
            size=r.size,
        )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "master link"},
        }
    ] + [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": w + 1,
            "args": {"name": f"worker {w}"},
        }
        for w in range(result.platform.N)
    ]
    return json.dumps({"traceEvents": meta + events, "displayTimeUnit": "ms"})
