"""Master-worker simulation with output-data return transfers.

The paper's model (§3.1) transfers input only, citing Rosenberg [11] and
Altilar & Paker [12] for treatments of output data.  This module supplies
that missing substrate: after computing a chunk, the worker must ship
``output_ratio · chunk`` units of results back to the master over the
*same* serialized link, contending FIFO with the master's outgoing chunk
dispatches.  A return occupies the link for ``nLat_i + out/B_i`` and the
master holds the results ``tLat_i`` later; the makespan becomes the last
result arrival.

This is a deliberately separate engine built directly on the DES kernel
(:mod:`repro.des`) with a real :class:`~repro.des.Resource` for the link —
the fast engine's single-pass structure cannot express bidirectional link
contention.  Schedulers run unmodified: they still observe compute
completions (a worker announces completion when computation ends, before
queueing its return), so dispatch policies are identical and the effect
of output traffic is isolated.

The ablation benchmark uses this to ask a question the paper leaves open:
does RUMR's advantage survive when the link also carries results?
"""

from __future__ import annotations

import bisect
import dataclasses

from repro.core.base import (
    WAIT,
    CompletionNote,
    DeadlockError,
    Dispatch,
    MasterView,
    Scheduler,
)
from repro.core.chunks import DispatchRecord
from repro.des import Environment, Resource, Store
from repro.errors.models import ErrorModel
from repro.errors.rng import spawn_rngs
from repro.platform.spec import PlatformSpec
from repro.sim.result import SimResult

__all__ = ["OutputSimResult", "ReturnRecord", "simulate_with_output"]


@dataclasses.dataclass(frozen=True, slots=True)
class ReturnRecord:
    """One result-return transfer over the shared link."""

    chunk_index: int
    worker: int
    output_size: float
    link_start: float
    link_end: float
    received: float


@dataclasses.dataclass(frozen=True)
class OutputSimResult:
    """Outcome of a run with output transfers.

    ``makespan`` is the last *result arrival*; ``compute_makespan`` is the
    last computation end (comparable with the input-only engines).
    """

    makespan: float
    compute_makespan: float
    records: tuple[DispatchRecord, ...]
    returns: tuple[ReturnRecord, ...]
    platform: PlatformSpec
    total_work: float
    scheduler_name: str
    output_ratio: float
    seed: int | None = None

    def to_sim_result(self) -> SimResult:
        """The input-side view, for reuse of SimResult tooling."""
        return SimResult(
            makespan=self.compute_makespan,
            records=self.records,
            platform=self.platform,
            total_work=self.total_work,
            scheduler_name=self.scheduler_name,
            seed=self.seed,
        )


class _View(MasterView):
    """Same observable semantics as the standard engines."""

    def __init__(self, env: Environment, n: int):
        self.env = env
        self._n = n
        self._sent = [0] * n
        self._done = [0] * n
        self._prefix: list[list[float]] = [[0.0] for _ in range(n)]
        self._notes: list = []

    @property
    def now(self) -> float:
        return self.env.now

    @property
    def num_workers(self) -> int:
        return self._n

    def pending_chunks(self, worker: int) -> int:
        return self._sent[worker] - self._done[worker]

    def pending_work(self, worker: int) -> float:
        prefix = self._prefix[worker]
        return prefix[self._sent[worker]] - prefix[self._done[worker]]

    def observed_completions(self):
        return tuple(self._notes)


def simulate_with_output(
    platform: PlatformSpec,
    total_work: float,
    scheduler: Scheduler,
    error_model: ErrorModel,
    output_ratio: float,
    seed: int | None = None,
    ports: int = 1,
) -> OutputSimResult:
    """Simulate one run with result-return traffic (see module docstring).

    ``output_ratio = 0`` means no return transfers at all and reproduces
    the standard engines' makespans exactly (verified by tests).

    ``ports`` is the master's one-port relaxation — the paper's §3.1
    future-work question ("it could be beneficial to allow for
    simultaneous transfers"): with ``ports = k`` the master can drive up
    to ``k`` transfers (dispatches and returns combined) concurrently,
    each still at the per-worker rate ``B_i``.  The one-port default is
    the paper's model.  Note the UMR/RUMR *solvers* still assume one
    port, so multi-port runs measure how much their plans leave on the
    table — see the multiport benchmark.
    """
    if output_ratio < 0:
        raise ValueError(f"output_ratio must be >= 0, got {output_ratio}")
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
    rng_comm, rng_comp = spawn_rngs(seed, 2)
    source = scheduler.create_source(platform, total_work)
    env = Environment()
    n = platform.N
    link = Resource(env, capacity=ports)
    inboxes = [Store(env) for _ in range(n)]
    completions = Store(env)
    view = _View(env, n)
    records: list[DispatchRecord] = []
    returns: list[ReturnRecord] = []
    outstanding = [0]
    open_returns = [0]
    done_event = env.event()

    def maybe_finish() -> None:
        if outstanding[0] == 0 and open_returns[0] == 0 and master_done[0]:
            if not done_event.triggered:
                done_event.succeed()

    master_done = [False]

    def worker_proc(index: int):
        spec = platform[index]
        while True:
            msg = yield inboxes[index].get()
            if msg is None:
                return
            chunk_index, size, comp_time = msg
            comp_start = env.now
            yield env.timeout(comp_time)
            comp_end = env.now
            rec = records[chunk_index]
            records[chunk_index] = dataclasses.replace(
                rec, comp_start=comp_start, comp_end=comp_end
            )
            completions.put((index, chunk_index, size, comp_end))
            if output_ratio > 0:
                open_returns[0] += 1
                env.process(return_proc(index, chunk_index, output_ratio * size))

    def return_proc(index: int, chunk_index: int, out_size: float):
        spec = platform[index]
        req = link.request()
        yield req
        start = env.now
        duration = spec.nLat + (0.0 if out_size == 0 else out_size / spec.B)
        if duration > 0:
            yield env.timeout(duration)
        link.release(req)
        end = env.now
        received = end + spec.tLat
        returns.append(
            ReturnRecord(
                chunk_index=chunk_index,
                worker=index,
                output_size=out_size,
                link_start=start,
                link_end=end,
                received=received,
            )
        )
        open_returns[0] -= 1
        maybe_finish()

    def delivery_proc(worker: int, payload, t_lat: float):
        if t_lat > 0:
            yield env.timeout(t_lat)
        chunk_index = payload[0]
        rec = records[chunk_index]
        records[chunk_index] = dataclasses.replace(rec, arrival=env.now)
        inboxes[worker].put(payload)

    def absorb(worker: int, idx: int, size: float, when: float) -> None:
        view._done[worker] += 1
        bisect.insort(
            view._notes,
            CompletionNote(time=when, chunk_index=idx, worker=worker, size=size),
        )
        outstanding[0] -= 1

    def drain() -> None:
        while len(completions) > 0:
            absorb(*completions.get().value)

    def sender_proc(req, worker: int, index: int, size: float, link_time: float, comp_time: float):
        """Occupy one port for a dispatch, then hand off to delivery."""
        yield env.timeout(link_time)
        link.release(req)
        send_end = env.now
        records[index] = dataclasses.replace(records[index], send_end=send_end)
        env.process(delivery_proc(worker, (index, size, comp_time), platform[worker].tLat))

    def master_proc():
        while True:
            # Acquire a port *before* deciding, so the decision sees the
            # freshest observable state at the moment a send could start.
            req = link.request()
            yield req
            yield env.timeout(0)
            drain()
            action = source.next_dispatch(view)
            if action is None:
                link.release(req)
                break
            if action is WAIT:
                link.release(req)
                if outstanding[0] <= 0:
                    raise DeadlockError(
                        f"{scheduler.name}: WAIT with no outstanding chunk at t={env.now}"
                    )
                msg = yield completions.get()
                absorb(*msg)
                continue
            if not isinstance(action, Dispatch):
                raise TypeError(
                    f"{scheduler.name}: next_dispatch returned {action!r}; "
                    "expected Dispatch, WAIT or None"
                )
            if not 0 <= action.worker < n:
                raise ValueError(
                    f"{scheduler.name}: dispatch to worker {action.worker} "
                    f"outside the platform (N={n})"
                )
            spec = platform[action.worker]
            size = action.size
            link_time = error_model.perturb(spec.link_time(size), rng_comm)
            comp_time = error_model.perturb(spec.compute_time(size), rng_comp)
            error_model.advance()
            index = len(records)
            send_start = env.now
            records.append(
                DispatchRecord(
                    index=index,
                    worker=action.worker,
                    size=size,
                    send_start=send_start,
                    send_end=send_start,
                    arrival=send_start,
                    comp_start=send_start,
                    comp_end=send_start,
                    phase=action.phase,
                )
            )
            view._sent[action.worker] += 1
            view._prefix[action.worker].append(
                view._prefix[action.worker][-1] + size
            )
            outstanding[0] += 1
            env.process(
                sender_proc(req, action.worker, index, size, link_time, comp_time)
            )
        master_done[0] = True
        # Wait for every computation *and* every return to finish, then
        # stop the workers.
        while outstanding[0] > 0:
            msg = yield completions.get()
            absorb(*msg)
        maybe_finish()
        yield done_event
        for inbox in inboxes:
            inbox.put(None)

    worker_procs = [env.process(worker_proc(i)) for i in range(n)]
    env.process(master_proc())
    env.run()
    for proc in worker_procs:
        assert proc.processed, "worker process did not terminate"

    compute_makespan = max((r.comp_end for r in records), default=0.0)
    makespan = max(
        [compute_makespan] + [ret.received for ret in returns]
    )
    return OutputSimResult(
        makespan=makespan,
        compute_makespan=compute_makespan,
        records=tuple(records),
        returns=tuple(returns),
        platform=platform,
        total_work=total_work,
        scheduler_name=scheduler.name,
        output_ratio=output_ratio,
        seed=seed,
    )
