"""Text Gantt rendering of simulation results.

Turns a :class:`~repro.sim.result.SimResult` into a per-worker timeline
(one row per worker plus one for the master's link) so schedules can be
inspected in a terminal.  Compute intervals render as ``#`` runs keyed to
the scheduler phase; link occupancy renders as ``=``; idle time as spaces
— the comm/comp overlap the algorithms fight for is directly visible.
"""

from __future__ import annotations

import io

from repro.sim.result import SimResult

__all__ = ["render_gantt", "utilization_profile"]


def _phase_mark(phase: str) -> str:
    """Stable one-character mark per phase label family."""
    if "p2" in phase or "factoring" in phase or "fsc" in phase:
        return "+"
    return "#"


def render_gantt(result: SimResult, width: int = 96) -> str:
    """Render a result as an ASCII Gantt chart.

    One row per worker (computation) plus a ``link`` row (master transfer
    occupancy).  The horizontal axis spans ``[0, makespan]``.
    """
    if result.makespan <= 0 or not result.records:
        return "(empty schedule)\n"
    scale = (width - 1) / result.makespan

    def span(a: float, b: float) -> tuple[int, int]:
        lo = int(a * scale)
        hi = max(lo + 1, int(b * scale))
        return lo, min(hi, width)

    out = io.StringIO()
    out.write(
        f"Gantt: {result.scheduler_name}, N={result.platform.N}, "
        f"W={result.total_work:g}, makespan={result.makespan:.3f}s, "
        f"utilization={result.utilization():.0%}\n"
    )
    link_row = [" "] * width
    for r in result.records:
        lo, hi = span(r.send_start, r.send_end)
        for c in range(lo, hi):
            link_row[c] = "="
    out.write(f"{'link':>7} |{''.join(link_row)}|\n")

    for w in range(result.platform.N):
        row = [" "] * width
        for r in result.worker_records(w):
            lo, hi = span(r.comp_start, r.comp_end)
            mark = _phase_mark(r.phase)
            for c in range(lo, hi):
                row[c] = mark
        out.write(f"{f'w{w}':>7} |{''.join(row)}|\n")
    out.write(f"{'':>8} 0{'':>{width - 10}}{result.makespan:8.2f}s\n")
    out.write("         '=' link busy   '#' compute (phase 1/static)   '+' compute (factoring tail)\n")
    return out.getvalue()


def utilization_profile(result: SimResult, buckets: int = 20) -> list[float]:
    """Fraction of workers computing in each of ``buckets`` makespan slices.

    Useful in tests and examples to quantify ramp-up (pipeline fill) and
    tail (straggler) inefficiency without eyeballing the Gantt.
    """
    if result.makespan <= 0:
        return [0.0] * buckets
    edges = [result.makespan * k / buckets for k in range(buckets + 1)]
    totals = [0.0] * buckets
    for r in result.records:
        for b in range(buckets):
            lo, hi = edges[b], edges[b + 1]
            overlap = min(r.comp_end, hi) - max(r.comp_start, lo)
            if overlap > 0:
                totals[b] += overlap
    slice_len = result.makespan / buckets
    n = result.platform.N
    return [t / (slice_len * n) for t in totals]
