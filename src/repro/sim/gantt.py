"""Text Gantt rendering of simulation event streams.

Turns the event stream of a run into a per-worker timeline (one row per
worker plus one for the master's link) so schedules can be inspected in a
terminal.  Compute intervals render as ``#`` runs keyed to the scheduler
phase; link occupancy renders as ``=``; chunk losses as ``x``; idle time
as spaces — the comm/comp overlap the algorithms fight for is directly
visible.

Both entry points consume :class:`~repro.obs.events.SimEvent` streams —
the same stream the engines emit live and the differential harness
compares — derived from the result's records via
:func:`repro.obs.events.events_from_result` when no explicit stream is
given.  Lost chunks therefore never render fictitious compute: the
derived stream carries a ``fault``/loss event instead of compute events
for them.
"""

from __future__ import annotations

import io
import typing

from repro.obs.events import SimEvent, events_from_result
from repro.sim.result import SimResult

__all__ = ["render_gantt", "utilization_profile"]


def _phase_mark(phase: str) -> str:
    """Stable one-character mark per phase label family."""
    if "p2" in phase or "factoring" in phase or "fsc" in phase:
        return "+"
    return "#"


def _paired_intervals(
    events: typing.Iterable[SimEvent], start_kind: str, end_kind: str
) -> list[tuple[SimEvent, float]]:
    """Match start/end event pairs per (worker, chunk), in stream order."""
    open_by_key: dict[tuple[int, int], SimEvent] = {}
    out: list[tuple[SimEvent, float]] = []
    for e in events:
        key = (e.worker, e.chunk)
        if e.kind == start_kind:
            open_by_key[key] = e
        elif e.kind == end_kind:
            start = open_by_key.pop(key, None)
            if start is not None:
                out.append((start, e.time))
    return out


def render_gantt(
    result: SimResult,
    width: int = 96,
    events: "typing.Sequence[SimEvent] | None" = None,
) -> str:
    """Render a result as an ASCII Gantt chart.

    One row per worker (computation, with ``x`` marking observed chunk
    losses) plus a ``link`` row (master transfer occupancy).  The
    horizontal axis spans ``[0, makespan]``.  ``events`` substitutes an
    explicit stream (e.g. a live :meth:`repro.obs.Tracer.canonical`) for
    the record-derived one.
    """
    if result.makespan <= 0 or not result.records:
        return "(empty schedule)\n"
    if events is None:
        events = events_from_result(result)
    scale = (width - 1) / result.makespan

    def span(a: float, b: float) -> tuple[int, int]:
        lo = int(a * scale)
        hi = max(lo + 1, int(b * scale))
        return lo, min(hi, width)

    out = io.StringIO()
    out.write(
        f"Gantt: {result.scheduler_name}, N={result.platform.N}, "
        f"W={result.total_work:g}, makespan={result.makespan:.3f}s, "
        f"utilization={result.utilization():.0%}\n"
    )
    link_row = [" "] * width
    for start, end_time in _paired_intervals(events, "dispatch_start", "dispatch_end"):
        lo, hi = span(start.time, end_time)
        for c in range(lo, hi):
            link_row[c] = "="
    out.write(f"{'link':>7} |{''.join(link_row)}|\n")

    comp = _paired_intervals(events, "comp_start", "comp_end")
    losses = [e for e in events if e.kind == "fault" and e.detail == "loss"]
    any_loss = False
    for w in range(result.platform.N):
        row = [" "] * width
        for start, end_time in comp:
            if start.worker != w:
                continue
            lo, hi = span(start.time, end_time)
            mark = _phase_mark(start.phase)
            for c in range(lo, hi):
                row[c] = mark
        for e in losses:
            if e.worker == w and e.time <= result.makespan:
                row[min(int(e.time * scale), width - 1)] = "x"
                any_loss = True
        out.write(f"{f'w{w}':>7} |{''.join(row)}|\n")
    out.write(f"{'':>8} 0{'':>{width - 10}}{result.makespan:8.2f}s\n")
    out.write("         '=' link busy   '#' compute (phase 1/static)   '+' compute (factoring tail)\n")
    if any_loss:
        out.write("         'x' chunk lost to a worker crash\n")
    return out.getvalue()


def utilization_profile(
    result: SimResult,
    buckets: int = 20,
    events: "typing.Sequence[SimEvent] | None" = None,
) -> list[float]:
    """Fraction of workers computing in each of ``buckets`` makespan slices.

    Useful in tests and examples to quantify ramp-up (pipeline fill) and
    tail (straggler) inefficiency without eyeballing the Gantt.  Computed
    from the event stream's compute intervals, so lost chunks' fictitious
    timelines never count as busy time.
    """
    if result.makespan <= 0:
        return [0.0] * buckets
    if events is None:
        events = events_from_result(result)
    edges = [result.makespan * k / buckets for k in range(buckets + 1)]
    totals = [0.0] * buckets
    for start, end_time in _paired_intervals(events, "comp_start", "comp_end"):
        for b in range(buckets):
            lo, hi = edges[b], edges[b + 1]
            overlap = min(end_time, hi) - max(start.time, lo)
            if overlap > 0:
                totals[b] += overlap
    slice_len = result.makespan / buckets
    n = result.platform.N
    return [t / (slice_len * n) for t in totals]
