"""Trace-driven prediction errors (paper §6: "use traces from real
applications").

Instead of a parametric distribution, a :class:`TraceErrorModel` replays a
recorded sequence of perturbation factors — e.g. measured slowdowns from a
production cluster, or factors *derived from a workload model's own
data-dependent costs* via :func:`trace_from_workload`.  The trace's
empirical standard deviation is exposed as ``magnitude`` so RUMR's phase
split consumes it exactly like a parametric error level.

Replay semantics: each simulated run draws factors by walking the trace
from a per-run random offset (so repetitions differ while preserving the
trace's marginal distribution and local autocorrelation — which parametric
iid models destroy, and which matters for chunk-level error, see
:mod:`repro.workloads.raytracing`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors.models import MIN_RATIO, ErrorModel
from repro.workloads.base import DivisibleWorkload

__all__ = ["TraceErrorModel", "trace_from_workload"]


@dataclasses.dataclass
class TraceErrorModel(ErrorModel):
    """Replay a recorded sequence of perturbation factors.

    Parameters
    ----------
    trace:
        The recorded factors (mean should be ≈1; values are clipped below
        at ``MIN_RATIO``).
    mode:
        ``"multiply"`` (default) or ``"divide"``, as for the parametric
        models.
    """

    trace: tuple[float, ...] = ()
    mode: str = "multiply"
    _offset: int | None = dataclasses.field(default=None, init=False)
    _cursor: int = dataclasses.field(default=0, init=False)

    def __post_init__(self) -> None:
        if len(self.trace) < 2:
            raise ValueError("a trace needs at least 2 entries")
        clipped = tuple(max(float(v), MIN_RATIO) for v in self.trace)
        object.__setattr__(self, "trace", clipped)
        arr = np.asarray(clipped)
        self.magnitude = float(arr.std())

    def ratio(self, rng: np.random.Generator) -> float:
        if self._offset is None:
            # First draw of a run: pick the replay offset from the run's
            # own stream so repetitions see different trace windows.
            self._offset = int(rng.integers(0, len(self.trace)))
            self._cursor = 0
        value = self.trace[(self._offset + self._cursor) % len(self.trace)]
        self._cursor += 1
        return value

    def reset(self) -> None:
        """Forget the replay offset (models are bound per run)."""
        self._offset = None
        self._cursor = 0


def trace_from_workload(
    workload: DivisibleWorkload,
    chunk_units: float,
    length: int = 512,
    seed: int | None = None,
) -> TraceErrorModel:
    """Derive a perturbation trace from a workload's data-dependent costs.

    Simulates ``length`` consecutive chunks of ``chunk_units`` units each
    and records the ratio of each chunk's realized cost to the mean chunk
    cost — exactly the multiplicative factor the §4.1 model abstracts.
    The resulting model preserves the workload's autocorrelation structure
    (adjacent chunks of a ray-traced scene are similar; iid models are
    not), making it the bridge between :mod:`repro.workloads` and the
    schedulers' error interface.
    """
    if chunk_units < 1:
        raise ValueError(f"chunk_units must be >= 1, got {chunk_units}")
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    rng = np.random.default_rng(seed)
    n_units = max(1, int(round(chunk_units)))
    costs = np.empty(length)
    for k in range(length):
        costs[k] = sum(workload.unit_cost(rng) for _ in range(n_units))
    mean = costs.mean()
    if mean <= 0:
        raise ValueError("workload produced non-positive chunk costs")
    return TraceErrorModel(trace=tuple(costs / mean))
