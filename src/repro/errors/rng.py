"""Reproducible random-stream management.

Every simulation run derives its randomness from a single integer seed via
``numpy.random.SeedSequence`` spawning, so that:

* the same (seed, scenario) pair always reproduces the same run;
* communication and computation errors come from *independent* streams, so
  adding a chunk transfer never perturbs the computation error sequence;
* paired comparisons across algorithms can share a base seed (common random
  numbers) without the algorithms' differing draw counts aliasing streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rngs", "stream_for"]


def spawn_rngs(seed: int | np.random.SeedSequence | None, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in root.spawn(n)]


def stream_for(seed: int | None, *keys: int) -> np.random.Generator:
    """A generator keyed by an arbitrary tuple of non-negative integers.

    Used by the experiment harness to give every (configuration, repetition)
    cell its own stream: ``stream_for(seed, config_index, repetition)``.
    """
    if any(k < 0 for k in keys):
        raise ValueError(f"stream keys must be non-negative, got {keys}")
    entropy = 0 if seed is None else seed
    root = np.random.SeedSequence(entropy=entropy, spawn_key=tuple(keys))
    return np.random.Generator(np.random.PCG64(root))
