"""Worker fault models: crashes, pauses, slowdowns and link spikes.

The prediction-error models in :mod:`repro.errors.models` cover one half of
robustness on real star platforms — durations that differ from their
predictions.  This module covers the other half: *workers that misbehave*.
Four fault kinds are modelled, mirroring the failure taxonomy of the
resource-sharing DLT literature:

* **permanent crash** — a worker dies at time ``t``; every chunk that has
  not finished computing by then (queued, in flight on the link, or mid
  computation) is lost and must be re-dispatched by a recovery-aware
  scheduler;
* **transient pause** — a worker computes nothing during a window
  ``[start, start + duration)`` and then resumes where it left off;
* **sustained slowdown** — from ``start`` onward a worker's computations
  take ``factor×`` as long;
* **link latency spike** — an individual transfer occupies the master's
  serialized link for ``delay`` extra seconds, with probability ``prob``
  per dispatch.

A :class:`FaultModel` is *configuration only* (like a
:class:`~repro.core.base.Scheduler`): calling :meth:`FaultModel.sample`
with a platform and an RNG realizes one run's :class:`FaultSchedule`.  Both
simulation engines spawn the fault stream as the **third** child of the run
seed — after the communication and computation error streams, whose draws
are unchanged — sample the schedule once at run start, and then draw the
per-dispatch spike stream in dispatch order.  The engines therefore stay
trajectory-identical under faults (see ``docs/faults.md`` for the exact
semantics contract and ``tests/sim/test_differential.py`` for the
enforcement).

Fault scenarios are named by compact spec strings so they can ride through
the experiment grid, the sweep cache key and the CLI unchanged::

    none
    crash:p=0.2,tmax=400        # each worker crashes w.p. 0.2 at U(0, 400)
    crash:worker=0,at=25        # deterministic: worker 0 dies at t=25
    pause:p=0.5,tmax=200,dur=60
    slow:p=0.5,tmax=200,factor=2.5
    spike:p=0.1,delay=5
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.spec import PlatformSpec

__all__ = [
    "NO_FAULT_SPEC",
    "FaultPlane",
    "FaultSchedule",
    "FaultModel",
    "FrozenFaults",
    "NoFaults",
    "CrashFaults",
    "PauseFaults",
    "SlowdownFaults",
    "LinkSpikeFaults",
    "StreamFaultSchedule",
    "fault_stream",
    "make_fault_model",
]

#: The spec string meaning "no fault injection" (the grid default).
NO_FAULT_SPEC = "none"

_NEVER = math.inf


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """One run's realized faults, pre-sampled before the first dispatch.

    Both engines consume the schedule through three pure-arithmetic hooks,
    guaranteeing identical trajectories:

    * :attr:`crash_times` — per-worker absolute crash instants
      (``math.inf`` = never).  A chunk whose computation would end after
      its worker's crash time is *lost*; the master observes the loss at
      ``max(crash_time, arrival)`` (queued work is reported when the crash
      is detected, in-flight work when its delivery fails).
    * :meth:`compute_duration` — maps a computation's start time and
      nominal duration to its effective duration, folding in the worker's
      pause window and slowdown onset.
    * :meth:`link_extra` — the per-dispatch latency-spike draw, consumed
      from the fault stream in dispatch order (one draw per dispatch
      whenever ``spike_prob > 0``, spike or not, so the stream position
      never depends on outcomes).
    """

    crash_times: tuple[float, ...]
    #: Per-worker ``(start, duration)``; ``duration <= 0`` means no pause.
    pauses: tuple[tuple[float, float], ...]
    #: Per-worker ``(start, factor)``; ``factor <= 1`` means no slowdown.
    slowdowns: tuple[tuple[float, float], ...]
    spike_prob: float = 0.0
    spike_delay: float = 0.0

    def __post_init__(self) -> None:
        n = len(self.crash_times)
        if len(self.pauses) != n or len(self.slowdowns) != n:
            raise ValueError("fault schedule arrays must have equal length")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError(f"spike_prob must be in [0, 1], got {self.spike_prob}")

    @property
    def num_workers(self) -> int:
        return len(self.crash_times)

    @property
    def any_faults(self) -> bool:
        """Whether the schedule can perturb this run at all."""
        return (
            any(t != _NEVER for t in self.crash_times)
            or any(d > 0.0 for _, d in self.pauses)
            or any(f > 1.0 for _, f in self.slowdowns)
            or self.spike_prob > 0.0
        )

    def crash_time(self, worker: int) -> float:
        """Absolute crash instant of ``worker`` (``inf`` = never)."""
        return self.crash_times[worker]

    def compute_duration(self, worker: int, start: float, duration: float) -> float:
        """Effective duration of a computation starting at ``start``.

        Work progresses at the worker's nominal rate outside its pause
        window, at rate zero inside it, and — once the slowdown onset has
        passed — takes ``factor×`` as long per unit of remaining work.
        Engines must compute ``comp_end = comp_start + compute_duration(…)``
        with this exact value so the DES timeout chain reproduces the fast
        engine's floats bit-for-bit.
        """
        pause_start, pause_len = self.pauses[worker]
        if pause_len > 0.0 and start < pause_start + pause_len:
            if start >= pause_start:
                # Began inside the window: all work shifts past its end.
                duration = (pause_start + pause_len + duration) - start
            elif start + duration > pause_start:
                # Straddles the window: the tail is delayed by its length.
                duration = duration + pause_len
        slow_start, slow_factor = self.slowdowns[worker]
        if slow_factor > 1.0 and start + duration > slow_start:
            if start >= slow_start:
                duration = duration * slow_factor
            else:
                done = slow_start - start
                duration = done + (duration - done) * slow_factor
        return duration

    def link_extra(self, rng: np.random.Generator) -> float:
        """Extra link occupancy for the next dispatch (spike model)."""
        if self.spike_prob <= 0.0:
            return 0.0
        if rng.random() < self.spike_prob:
            return self.spike_delay
        return 0.0


def _clear_schedule(n: int) -> FaultSchedule:
    return FaultSchedule(
        crash_times=(_NEVER,) * n,
        pauses=((0.0, 0.0),) * n,
        slowdowns=((0.0, 1.0),) * n,
    )


def fault_stream(seed: int) -> np.random.Generator:
    """The fault RNG stream for one run seed.

    ``SeedSequence(seed, spawn_key=(2,))`` is the *third spawned child* of
    the run seed — bit-identical to ``SeedSequence(seed).spawn(3)[2]``
    (``spawn`` simply appends the child index to ``spawn_key``) — without
    materializing the two error-stream children the engines draw
    elsewhere.
    """
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(int(seed), spawn_key=(2,)))
    )


@dataclasses.dataclass(frozen=True)
class StreamFaultSchedule:
    """One *stream's* realized faults on the absolute stream clock.

    A multi-job stream (:mod:`repro.sim.multijob`) serves many jobs on
    one shared platform, so its fault timeline must be realized **once**
    — on the absolute clock, for the full star — and then *projected*
    into each job's frame: crash/pause/slowdown state carries across
    jobs, and a worker that died during job ``k`` stays dead for every
    job ``j > k``.  The legacy behavior (each per-job ``simulate()``
    call re-realizing the model relative to its own start, so a crashed
    worker resurrects for the next job) is kept behind the
    ``fault_frame="job"`` escape hatch of
    :func:`~repro.sim.multijob.simulate_stream`.

    :meth:`realize` samples the model exactly like the single-run
    engines do — from the *third spawned child* of the (stream) seed
    (see :func:`fault_stream`) — so a stream timeline is bitwise the
    schedule a single run under the same seed would have seen.

    :meth:`project` produces the per-job, per-subset
    :class:`FaultSchedule` view: times are shifted by the job's absolute
    start (clamping already-elapsed onsets to 0), worker indices are
    remapped to the subset's local numbering (``platform.subset``
    slices), and the memoryless per-dispatch spike parameters pass
    through verbatim (each job draws its spike stream from its own run
    seed, as single runs do).
    """

    #: Absolute-clock realization over the full platform.
    schedule: FaultSchedule

    @classmethod
    def realize(
        cls,
        model: "FaultModel",
        platform: "PlatformSpec",
        seed: "int | None",
    ) -> "StreamFaultSchedule":
        """Sample one stream timeline from the stream seed's fault stream.

        Uses the third spawned child of ``seed`` — the same stream
        discipline as the engines (``spawn_rngs(seed, 3)[2]``), so the
        communication/computation error streams of any other consumer of
        the seed are untouched.
        """
        from repro.errors.rng import spawn_rngs

        rng = spawn_rngs(seed, 3)[2]
        return cls(schedule=model.sample(platform, rng))

    @property
    def num_workers(self) -> int:
        return self.schedule.num_workers

    @property
    def any_faults(self) -> bool:
        return self.schedule.any_faults

    def dead_at(self, time: float) -> tuple[int, ...]:
        """Workers whose crash instant has passed by ``time`` (inclusive).

        A crash at exactly ``time`` counts as dead: the loss rule
        ``comp_end > crash`` loses every computation ending after the
        crash, so granting such a worker new work is always futile.
        """
        return tuple(
            w for w, ct in enumerate(self.schedule.crash_times) if ct <= time
        )

    def crash_time(self, worker: int) -> float:
        """Absolute crash instant of ``worker`` (``inf`` = never)."""
        return self.schedule.crash_times[worker]

    def project(
        self, workers: typing.Sequence[int], offset: float
    ) -> FaultSchedule:
        """The job-relative, subset-local view of this timeline.

        ``workers`` are the *global* worker indices granted to the job
        (local index ``i`` of the projected schedule is global worker
        ``workers[i]``); ``offset`` is the job's absolute start time.

        * A crash at absolute ``t`` becomes a relative crash at
          ``max(t - offset, 0)`` — a worker already dead at the job's
          start is dead from its time 0 (every computation is lost).
        * A pause window ``[s, s + d)`` becomes its not-yet-elapsed
          remainder; a window fully in the past projects to no pause.
        * A slowdown onset becomes ``max(s - offset, 0)`` with the
          factor unchanged — once degraded, a worker stays degraded.
        * ``spike_prob``/``spike_delay`` pass through verbatim (the
          spike model is memoryless per dispatch).
        """
        if offset < 0.0:
            raise ValueError(f"projection offset must be >= 0, got {offset}")
        n = self.schedule.num_workers
        crash: list[float] = []
        pauses: list[tuple[float, float]] = []
        slowdowns: list[tuple[float, float]] = []
        for w in workers:
            if not 0 <= w < n:
                raise ValueError(
                    f"worker {w} outside the stream platform (N={n})"
                )
            ct = self.schedule.crash_times[w]
            crash.append(ct if ct == _NEVER else max(ct - offset, 0.0))
            ps, pl = self.schedule.pauses[w]
            if pl > 0.0 and ps + pl > offset:
                rel_start = max(ps - offset, 0.0)
                pauses.append((rel_start, (ps + pl - offset) - rel_start))
            else:
                pauses.append((0.0, 0.0))
            ss, sf = self.schedule.slowdowns[w]
            if sf > 1.0:
                slowdowns.append((max(ss - offset, 0.0), sf))
            else:
                slowdowns.append((0.0, 1.0))
        return FaultSchedule(
            crash_times=tuple(crash),
            pauses=tuple(pauses),
            slowdowns=tuple(slowdowns),
            spike_prob=self.schedule.spike_prob,
            spike_delay=self.schedule.spike_delay,
        )


@dataclasses.dataclass
class FaultPlane:
    """A stack of realized fault schedules, one row per run.

    The batch engines consume faults through this plane instead of R
    :class:`FaultSchedule` objects: every per-step transform (the pause /
    slowdown stretch, the ``comp_end > crash`` loss rule, the spike
    stream) then indexes dense ``(rows, workers)`` arrays.  Neutral
    entries (``inf`` crash, zero-length pause, factor-1 slowdown, zero
    spike probability) make every transform a bitwise no-op, so clean
    rows stack freely with faulty ones.

    ``rngs`` holds each row's fault generator *positioned after the
    schedule draws* — retained only for rows that still need per-dispatch
    link-spike draws (``spike_prob > 0``), ``None`` elsewhere.
    """

    crash_time: np.ndarray
    pause_start: np.ndarray
    pause_len: np.ndarray
    slow_start: np.ndarray
    slow_factor: np.ndarray
    #: Per-row spike parameters (scalars in the schedule, so rank 1 here).
    spike_prob: np.ndarray
    spike_delay: np.ndarray
    #: Per-row ``FaultSchedule.any_faults``.
    fault_row: np.ndarray
    rngs: list

    @classmethod
    def clear(cls, rows: int, n: int) -> "FaultPlane":
        """An all-neutral plane (every row fault-free)."""
        return cls(
            crash_time=np.full((rows, n), _NEVER),
            pause_start=np.zeros((rows, n)),
            pause_len=np.zeros((rows, n)),
            slow_start=np.zeros((rows, n)),
            slow_factor=np.ones((rows, n)),
            spike_prob=np.zeros(rows),
            spike_delay=np.zeros(rows),
            fault_row=np.zeros(rows, dtype=bool),
            rngs=[None] * rows,
        )

    @property
    def num_rows(self) -> int:
        return self.crash_time.shape[0]

    @property
    def num_workers(self) -> int:
        return self.crash_time.shape[1]

    def schedule(self, row: int) -> FaultSchedule:
        """Row ``row`` re-materialized as a scalar :class:`FaultSchedule`."""
        return FaultSchedule(
            crash_times=tuple(float(t) for t in self.crash_time[row]),
            pauses=tuple(
                (float(s), float(d))
                for s, d in zip(self.pause_start[row], self.pause_len[row])
            ),
            slowdowns=tuple(
                (float(s), float(f))
                for s, f in zip(self.slow_start[row], self.slow_factor[row])
            ),
            spike_prob=float(self.spike_prob[row]),
            spike_delay=float(self.spike_delay[row]),
        )


class FaultModel:
    """A configured fault scenario (see module docstring).

    Subclasses implement :meth:`sample`; instances hold configuration only
    and may be reused across thousands of runs.  :attr:`spec` is the
    canonical spec string (round-trips through :func:`make_fault_model`).
    """

    spec: str = NO_FAULT_SPEC

    def sample(self, platform: "PlatformSpec", rng: np.random.Generator) -> FaultSchedule:
        """Realize one run's fault schedule from the fault RNG stream."""
        raise NotImplementedError

    def sample_batch(self, platform: "PlatformSpec", seeds) -> FaultPlane:
        """Realize one schedule per seed, stacked into a :class:`FaultPlane`.

        Bit-identical to looping :meth:`sample` over per-seed
        :func:`fault_stream` generators — the contract the batch engines
        rely on and ``tests/properties`` enforces.  This base
        implementation *is* that loop, so third-party models are correct
        by construction; the in-tree models override it with batched
        draws that decode to the same values from the same stream.
        """
        plane = FaultPlane.clear(len(seeds), platform.N)
        for r, seed in enumerate(seeds):
            rng = fault_stream(seed)
            s = self.sample(platform, rng)
            plane.crash_time[r] = s.crash_times
            pp = np.asarray(s.pauses)
            plane.pause_start[r] = pp[:, 0]
            plane.pause_len[r] = pp[:, 1]
            ss = np.asarray(s.slowdowns)
            plane.slow_start[r] = ss[:, 0]
            plane.slow_factor[r] = ss[:, 1]
            plane.spike_prob[r] = s.spike_prob
            plane.spike_delay[r] = s.spike_delay
            if s.any_faults:
                plane.fault_row[r] = True
                if s.spike_prob > 0.0:
                    plane.rngs[r] = rng
        return plane

    def __repr__(self) -> str:
        return f"{type(self).__name__}(spec={self.spec!r})"


@dataclasses.dataclass(frozen=True, repr=False)
class NoFaults(FaultModel):
    """The identity scenario: nothing ever fails."""

    spec: str = NO_FAULT_SPEC

    def sample(self, platform: "PlatformSpec", rng: np.random.Generator) -> FaultSchedule:
        return _clear_schedule(platform.N)

    def sample_batch(self, platform: "PlatformSpec", seeds) -> FaultPlane:
        # Nothing is drawn, so no generator is even constructed.
        return FaultPlane.clear(len(seeds), platform.N)


@dataclasses.dataclass(frozen=True, repr=False)
class FrozenFaults(FaultModel):
    """A pre-realized :class:`FaultSchedule` wrapped as a model.

    :meth:`sample` returns the wrapped schedule verbatim, drawing
    nothing from the fault stream — so the per-dispatch spike draws
    (consumed *after* sampling) still come from the run seed's fresh
    fault stream, exactly as they do for the sampling models.  This is
    how the multi-job stream layer hands each job its projected view of
    a :class:`StreamFaultSchedule` through the unchanged single-run
    ``simulate()`` front door, and how the conformance suite replays a
    projected schedule directly.

    ``spec`` is ``"frozen"`` for display; frozen models do not
    round-trip through :func:`make_fault_model` (they are realizations,
    not scenarios).
    """

    schedule: FaultSchedule = dataclasses.field(
        default_factory=lambda: _clear_schedule(1)
    )
    spec: str = dataclasses.field(default="frozen", init=False)

    def sample(self, platform: "PlatformSpec", rng: np.random.Generator) -> FaultSchedule:
        if platform.N != self.schedule.num_workers:
            raise ValueError(
                f"frozen schedule covers {self.schedule.num_workers} worker(s) "
                f"but the platform has {platform.N}"
            )
        return self.schedule


def _draw_onsets(
    n: int, prob: float, tmax: float, rng: np.random.Generator
) -> list[float | None]:
    """Per-worker fault onset times: ``None`` for unaffected workers.

    Draw order is fixed (worker 0..n-1, hit test then onset) so the fault
    stream position is identical in both engines.
    """
    onsets: list[float | None] = []
    for _ in range(n):
        if rng.random() < prob:
            onsets.append(float(rng.uniform(0.0, tmax)))
        else:
            onsets.append(None)
    return onsets


def _draw_onsets_batch(
    seeds, n: int, prob: float, tmax: float
) -> tuple[np.ndarray, np.ndarray]:
    """All rows' :func:`_draw_onsets` at once: ``(hit, onset)``, ``(R, n)``.

    Each row's generator draws one ``2n``-uniform block (a superset of
    what the scalar loop can consume; ``Generator.random(k)`` produces the
    same values as ``k`` scalar calls), then a per-row position pointer
    walks the block exactly like the scalar draw order: one hit test per
    worker, plus one onset draw *only* after a hit.  ``uniform(0, tmax)``
    is computed as ``tmax * u`` — bitwise what ``Generator.uniform`` does.
    Over-drawing is safe because callers discard the generators (only the
    spike model retains its stream, and it draws nothing at sample time).
    """
    rows = len(seeds)
    hit = np.zeros((rows, n), dtype=bool)
    onset = np.zeros((rows, n))
    if rows == 0 or n == 0:
        return hit, onset
    buf = np.empty((rows, 2 * n))
    for r, seed in enumerate(seeds):
        buf[r] = fault_stream(seed).random(2 * n)
    pos = np.zeros(rows, dtype=np.intp)
    ridx = np.arange(rows)
    for j in range(n):
        h = buf[ridx, pos] < prob
        # The onset, if worker j hit, is the *next* draw; pos stays at
        # most 2j here, so pos + 1 <= 2n - 1 never overruns the block.
        onset[:, j] = tmax * buf[ridx, pos + 1]
        hit[:, j] = h
        pos += 1
        pos += h
    onset[~hit] = 0.0
    return hit, onset


def _check_prob_tmax(prob: float, tmax: float) -> None:
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"fault probability must be in [0, 1], got {prob}")
    if tmax < 0.0:
        raise ValueError(f"fault onset horizon must be >= 0, got {tmax}")


@dataclasses.dataclass(frozen=True, repr=False)
class CrashFaults(FaultModel):
    """Permanent worker crashes.

    Random form: each worker independently crashes with probability
    ``prob`` at a time uniform on ``[0, tmax]``.  ``spare_one`` (default)
    keeps at least one worker alive — when every worker draws a crash, the
    latest-crashing one is spared — so recovery-aware schedulers always
    have somewhere to re-dispatch.  Deterministic form: ``worker``/``at``
    pin exactly one crash (used by tests and the docs examples).
    """

    prob: float = 0.0
    tmax: float = 0.0
    worker: int | None = None
    at: float | None = None
    spare_one: bool = True

    def __post_init__(self) -> None:
        if (self.worker is None) != (self.at is None):
            raise ValueError("deterministic crashes need both worker= and at=")
        if self.worker is None:
            _check_prob_tmax(self.prob, self.tmax)
        elif self.at < 0.0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")

    @property
    def spec(self) -> str:
        if self.worker is not None:
            return f"crash:worker={self.worker},at={_fmt(self.at)}"
        return f"crash:p={_fmt(self.prob)},tmax={_fmt(self.tmax)}"

    def sample(self, platform: "PlatformSpec", rng: np.random.Generator) -> FaultSchedule:
        n = platform.N
        times = [_NEVER] * n
        if self.worker is not None:
            if not 0 <= self.worker < n:
                raise ValueError(
                    f"crash worker {self.worker} outside the platform (N={n})"
                )
            times[self.worker] = float(self.at)
        else:
            for i, onset in enumerate(_draw_onsets(n, self.prob, self.tmax, rng)):
                if onset is not None:
                    times[i] = onset
            if self.spare_one and all(t != _NEVER for t in times):
                times[max(range(n), key=times.__getitem__)] = _NEVER
        return dataclasses.replace(_clear_schedule(n), crash_times=tuple(times))

    def sample_batch(self, platform: "PlatformSpec", seeds) -> FaultPlane:
        n = platform.N
        plane = FaultPlane.clear(len(seeds), n)
        if self.worker is not None:
            if not 0 <= self.worker < n:
                raise ValueError(
                    f"crash worker {self.worker} outside the platform (N={n})"
                )
            plane.crash_time[:, self.worker] = float(self.at)
            plane.fault_row[:] = True
            return plane
        hit, onset = _draw_onsets_batch(seeds, n, self.prob, self.tmax)
        times = np.where(hit, onset, _NEVER)
        if self.spare_one and n > 0:
            all_hit = hit.all(axis=1)
            if all_hit.any():
                # argmax returns the first maximal index, like the scalar
                # max(range(n), key=...) tie-break.
                spare = times.argmax(axis=1)
                rows = np.flatnonzero(all_hit)
                times[rows, spare[rows]] = _NEVER
        plane.crash_time[:] = times
        plane.fault_row[:] = np.isfinite(times).any(axis=1)
        return plane


@dataclasses.dataclass(frozen=True, repr=False)
class PauseFaults(FaultModel):
    """Transient stalls: affected workers compute nothing for ``duration``."""

    prob: float = 0.0
    tmax: float = 0.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        _check_prob_tmax(self.prob, self.tmax)
        if self.duration < 0.0:
            raise ValueError(f"pause duration must be >= 0, got {self.duration}")

    @property
    def spec(self) -> str:
        return f"pause:p={_fmt(self.prob)},tmax={_fmt(self.tmax)},dur={_fmt(self.duration)}"

    def sample(self, platform: "PlatformSpec", rng: np.random.Generator) -> FaultSchedule:
        n = platform.N
        pauses = [(0.0, 0.0)] * n
        for i, onset in enumerate(_draw_onsets(n, self.prob, self.tmax, rng)):
            if onset is not None:
                pauses[i] = (onset, self.duration)
        return dataclasses.replace(_clear_schedule(n), pauses=tuple(pauses))

    def sample_batch(self, platform: "PlatformSpec", seeds) -> FaultPlane:
        plane = FaultPlane.clear(len(seeds), platform.N)
        hit, onset = _draw_onsets_batch(seeds, platform.N, self.prob, self.tmax)
        plane.pause_start[:] = np.where(hit, onset, 0.0)
        plane.pause_len[:] = np.where(hit, self.duration, 0.0)
        # A zero-length pause never perturbs (any_faults checks dur > 0).
        plane.fault_row[:] = hit.any(axis=1) & (self.duration > 0.0)
        return plane


@dataclasses.dataclass(frozen=True, repr=False)
class SlowdownFaults(FaultModel):
    """Sustained degradation: computations stretch by ``factor`` after onset."""

    prob: float = 0.0
    tmax: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        _check_prob_tmax(self.prob, self.tmax)
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")

    @property
    def spec(self) -> str:
        return f"slow:p={_fmt(self.prob)},tmax={_fmt(self.tmax)},factor={_fmt(self.factor)}"

    def sample(self, platform: "PlatformSpec", rng: np.random.Generator) -> FaultSchedule:
        n = platform.N
        slowdowns = [(0.0, 1.0)] * n
        for i, onset in enumerate(_draw_onsets(n, self.prob, self.tmax, rng)):
            if onset is not None:
                slowdowns[i] = (onset, self.factor)
        return dataclasses.replace(_clear_schedule(n), slowdowns=tuple(slowdowns))

    def sample_batch(self, platform: "PlatformSpec", seeds) -> FaultPlane:
        plane = FaultPlane.clear(len(seeds), platform.N)
        hit, onset = _draw_onsets_batch(seeds, platform.N, self.prob, self.tmax)
        plane.slow_start[:] = np.where(hit, onset, 0.0)
        plane.slow_factor[:] = np.where(hit, self.factor, 1.0)
        # A factor-1 slowdown never perturbs (any_faults checks f > 1).
        plane.fault_row[:] = hit.any(axis=1) & (self.factor > 1.0)
        return plane


@dataclasses.dataclass(frozen=True, repr=False)
class LinkSpikeFaults(FaultModel):
    """Per-dispatch link latency spikes (drawn in dispatch order)."""

    prob: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"spike probability must be in [0, 1], got {self.prob}")
        if self.delay < 0.0:
            raise ValueError(f"spike delay must be >= 0, got {self.delay}")

    @property
    def spec(self) -> str:
        return f"spike:p={_fmt(self.prob)},delay={_fmt(self.delay)}"

    def sample(self, platform: "PlatformSpec", rng: np.random.Generator) -> FaultSchedule:
        return dataclasses.replace(
            _clear_schedule(platform.N),
            spike_prob=self.prob,
            spike_delay=self.delay,
        )

    def sample_batch(self, platform: "PlatformSpec", seeds) -> FaultPlane:
        plane = FaultPlane.clear(len(seeds), platform.N)
        plane.spike_prob[:] = self.prob
        plane.spike_delay[:] = self.delay
        if self.prob > 0.0:
            plane.fault_row[:] = True
            # sample() draws nothing, so a fresh stream per row is
            # exactly the post-sample generator state.
            plane.rngs = [fault_stream(s) for s in seeds]
        return plane


def _fmt(value: float | int) -> str:
    """Compact canonical number formatting for spec strings."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _parse_kv(body: str, kind: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed fault parameter {part!r} in {kind!r} spec")
        try:
            out[key.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"fault parameter {key.strip()!r} needs a number, got {value!r}"
            ) from None
    return out


def _take(params: dict[str, float], kind: str, *names: str, **defaults) -> list[float]:
    values = []
    for name in names:
        if name in params:
            values.append(params.pop(name))
        elif name in defaults:
            values.append(defaults[name])
        else:
            raise ValueError(f"fault spec {kind!r} is missing parameter {name!r}")
    if params:
        extra = ", ".join(sorted(params))
        raise ValueError(f"unknown parameter(s) for fault kind {kind!r}: {extra}")
    return values


def make_fault_model(spec: str | FaultModel) -> FaultModel:
    """Parse a fault spec string (see module docstring) into a model.

    Accepts an already-constructed :class:`FaultModel` unchanged, so
    callers can be agnostic about which form they hold.
    """
    if isinstance(spec, FaultModel):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"fault spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    if text in (NO_FAULT_SPEC, ""):
        return NoFaults()
    kind, sep, body = text.partition(":")
    kind = kind.strip()
    if not sep:
        raise ValueError(f"fault spec {spec!r} has no parameters (expected kind:k=v,…)")
    params = _parse_kv(body, kind)
    if kind == "crash":
        if "worker" in params or "at" in params:
            worker, at = _take(params, kind, "worker", "at")
            if worker != int(worker):
                raise ValueError(f"crash worker index must be integral, got {worker}")
            return CrashFaults(worker=int(worker), at=at)
        p, tmax = _take(params, kind, "p", "tmax")
        return CrashFaults(prob=p, tmax=tmax)
    if kind == "pause":
        p, tmax, dur = _take(params, kind, "p", "tmax", "dur")
        return PauseFaults(prob=p, tmax=tmax, duration=dur)
    if kind == "slow":
        p, tmax, factor = _take(params, kind, "p", "tmax", "factor")
        return SlowdownFaults(prob=p, tmax=tmax, factor=factor)
    if kind == "spike":
        p, delay = _take(params, kind, "p", "delay")
        return LinkSpikeFaults(prob=p, delay=delay)
    raise ValueError(
        f"unknown fault kind {kind!r}; available: crash, pause, slow, spike, none"
    )
