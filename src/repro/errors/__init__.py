"""Performance-prediction error models (paper §4.1).

The paper models uncertainty as a multiplicative perturbation: the ratio of
*predicted* to *effective* duration is drawn from ``Normal(1, error)``
truncated to positive values, independently for every data transfer and
every chunk computation.  A uniform-ratio variant is mentioned as giving
"essentially similar" results, and non-stationary behaviour is left as
future work; both are implemented here as well.
"""

from repro.errors.faults import (
    NO_FAULT_SPEC,
    CrashFaults,
    FaultModel,
    FaultSchedule,
    FrozenFaults,
    LinkSpikeFaults,
    NoFaults,
    PauseFaults,
    SlowdownFaults,
    StreamFaultSchedule,
    make_fault_model,
)
from repro.errors.models import (
    DriftingErrorModel,
    ErrorModel,
    NoError,
    NormalErrorModel,
    UniformErrorModel,
    make_error_model,
)
from repro.errors.rng import spawn_rngs, stream_for
from repro.errors.trace import TraceErrorModel, trace_from_workload

__all__ = [
    "NO_FAULT_SPEC",
    "CrashFaults",
    "DriftingErrorModel",
    "ErrorModel",
    "FaultModel",
    "FaultSchedule",
    "FrozenFaults",
    "LinkSpikeFaults",
    "NoError",
    "NoFaults",
    "NormalErrorModel",
    "PauseFaults",
    "SlowdownFaults",
    "StreamFaultSchedule",
    "TraceErrorModel",
    "UniformErrorModel",
    "make_error_model",
    "make_fault_model",
    "spawn_rngs",
    "stream_for",
    "trace_from_workload",
]
