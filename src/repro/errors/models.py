"""Multiplicative prediction-error models.

All models implement the same contract: :meth:`ErrorModel.perturb` maps a
*predicted* duration to an *effective* (actual) duration through a
multiplicative factor ``X`` with mean 1 and standard deviation ``error``
(the paper's §4.1 model), drawn independently per transfer and computation.

Two perturbation directions are supported:

* ``mode="multiply"`` (default): ``effective = predicted · X``.  Bounded
  perturbations; this is the only reading consistent with the paper's
  smooth 40-repetition single-configuration curves (Fig 5–7 resolve ~1%
  effects, impossible under the unbounded variant below).
* ``mode="divide"``: ``effective = predicted / X`` — the verbatim reading
  of §4.1 ("the ratio of predicted execution time to effective execution
  time is normally distributed").  Because ``X`` can come arbitrarily
  close to zero, effective times are unbounded above, and makespan
  averages over 40 repetitions are dominated by outliers.  Kept as an
  option; the experiment harness exposes it for sensitivity checks.

``X`` is truncated below at :data:`MIN_RATIO` (the paper truncates "to
avoid negative values"; a strictly positive floor additionally avoids
degenerate zero durations).  Truncation is by resampling, which preserves
the distribution shape above the floor.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = [
    "MIN_RATIO",
    "ErrorModel",
    "NoError",
    "NormalErrorModel",
    "UniformErrorModel",
    "DriftingErrorModel",
    "make_error_model",
]

#: Lower truncation bound for the predicted/effective ratio.
MIN_RATIO = 0.01


class ErrorModel:
    """Base class: a source of multiplicative prediction errors.

    Subclasses implement :meth:`ratio`, drawing the perturbation factor
    ``X`` (mean 1, standard deviation ``magnitude``).  ``perturb`` returns
    ``predicted · X`` or ``predicted / X`` depending on ``mode`` (see the
    module docstring).

    The ``magnitude`` attribute is the nominal error level (the paper's
    *error* parameter); schedulers such as RUMR read it when it is assumed
    known (§4.1 "whether error is a known quantity").
    """

    magnitude: float = 0.0
    mode: str = "multiply"

    def ratio(self, rng: np.random.Generator) -> float:
        """Draw one perturbation factor."""
        raise NotImplementedError

    def perturb(self, predicted: float, rng: np.random.Generator) -> float:
        """Map a predicted duration to an effective duration."""
        if predicted < 0:
            raise ValueError(f"negative predicted duration {predicted}")
        if predicted == 0.0:
            return 0.0
        if self.mode == "divide":
            return predicted / self.ratio(rng)
        return predicted * self.ratio(rng)

    def advance(self) -> None:
        """Hook for non-stationary models: called once per simulated chunk."""


@dataclasses.dataclass
class NoError(ErrorModel):
    """Perfect predictions: effective time equals predicted time."""

    magnitude: float = 0.0

    def ratio(self, rng: np.random.Generator) -> float:
        return 1.0

    def perturb(self, predicted: float, rng: np.random.Generator) -> float:
        if predicted < 0:
            raise ValueError(f"negative predicted duration {predicted}")
        return predicted


@dataclasses.dataclass
class NormalErrorModel(ErrorModel):
    """The paper's model: factor ~ Normal(1, error), truncated positive.

    Parameters
    ----------
    magnitude:
        Standard deviation of the factor (the paper's *error*, 0–0.5 in
        the experiments).  Zero degenerates to perfect predictions.
    min_ratio:
        Truncation floor; resampled below this value.
    mode:
        ``"multiply"`` (default) or ``"divide"`` — see module docstring.
    """

    magnitude: float = 0.0
    min_ratio: float = MIN_RATIO
    mode: str = "multiply"

    def __post_init__(self) -> None:
        if self.magnitude < 0:
            raise ValueError(f"error magnitude must be >= 0, got {self.magnitude}")
        if not 0 < self.min_ratio < 1:
            raise ValueError(f"min_ratio must be in (0, 1), got {self.min_ratio}")
        if self.mode not in ("multiply", "divide"):
            raise ValueError(f"unknown perturbation mode {self.mode!r}")

    def ratio(self, rng: np.random.Generator) -> float:
        if self.magnitude == 0.0:
            return 1.0
        while True:
            x = rng.normal(1.0, self.magnitude)
            if x >= self.min_ratio:
                return x


@dataclasses.dataclass
class UniformErrorModel(ErrorModel):
    """Uniform-ratio variant (§4.1: "essentially similar" results).

    The factor is uniform on ``[1 - √3·error, 1 + √3·error]``, which matches
    the normal model's mean (1) and standard deviation (*error*).  The lower
    endpoint is clipped at ``min_ratio``.
    """

    magnitude: float = 0.0
    min_ratio: float = MIN_RATIO
    mode: str = "multiply"

    def __post_init__(self) -> None:
        if self.magnitude < 0:
            raise ValueError(f"error magnitude must be >= 0, got {self.magnitude}")
        if self.mode not in ("multiply", "divide"):
            raise ValueError(f"unknown perturbation mode {self.mode!r}")

    def ratio(self, rng: np.random.Generator) -> float:
        if self.magnitude == 0.0:
            return 1.0
        half_width = math.sqrt(3.0) * self.magnitude
        low = max(1.0 - half_width, self.min_ratio)
        return rng.uniform(low, 1.0 + half_width)


@dataclasses.dataclass
class DriftingErrorModel(ErrorModel):
    """A non-stationary extension (paper future work, §4.1).

    The ratio's mean drifts linearly by ``drift_per_step`` after each chunk,
    modelling slowly changing background load.  The RUMR design argument is
    that phase 2 keeps working under such drift because it never consults
    predictions; this model exists to test that claim (see the ablation
    benchmarks).
    """

    magnitude: float = 0.0
    drift_per_step: float = 0.0
    min_ratio: float = MIN_RATIO
    mode: str = "multiply"
    _mean: float = dataclasses.field(default=1.0, init=False)

    def ratio(self, rng: np.random.Generator) -> float:
        if self.magnitude == 0.0:
            return max(self._mean, self.min_ratio)
        while True:
            x = rng.normal(self._mean, self.magnitude)
            if x >= self.min_ratio:
                return x

    def advance(self) -> None:
        self._mean = max(self.min_ratio, self._mean + self.drift_per_step)

    def reset(self) -> None:
        """Restore the initial mean (models are reused across runs)."""
        self._mean = 1.0


def make_error_model(kind: str, magnitude: float, **kwargs) -> ErrorModel:
    """Factory used by the CLI and the experiment harness.

    ``kind`` is one of ``"none"``, ``"normal"``, ``"uniform"``,
    ``"drifting"``.  ``magnitude == 0`` always yields :class:`NoError`.
    """
    if magnitude == 0.0 and kind in ("none", "normal", "uniform"):
        return NoError()
    if kind == "none":
        return NoError()
    if kind == "normal":
        return NormalErrorModel(magnitude, **kwargs)
    if kind == "uniform":
        return UniformErrorModel(magnitude, **kwargs)
    if kind == "drifting":
        return DriftingErrorModel(magnitude, **kwargs)
    raise ValueError(f"unknown error model kind {kind!r}")
