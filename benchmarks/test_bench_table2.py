"""Benchmark: regenerate Table 2 (RUMR outperformance percentages).

Paper reference (Table 2, full Table-1 grid): RUMR beats UMR in 55-86% of
experiments (rising with error), MI-2..4 in ~94-100%, Factoring in 85-98%
(falling with error).  The shape assertions below check those trends on
the smoke grid; absolute percentages differ because the grid is decimated.
"""

from repro.experiments.config import PAPER_ALGORITHMS, smoke_grid
from repro.experiments.report import render_table
from repro.experiments.runner import run_sweep
from repro.experiments.tables import table2


def regenerate_table2(grid):
    results = run_sweep(grid, algorithms=PAPER_ALGORITHMS)
    return table2(results)


def test_bench_table2(benchmark):
    grid = smoke_grid()
    table = benchmark.pedantic(regenerate_table2, args=(grid,), rounds=1, iterations=1)
    print()
    print(render_table(table))

    # Shape assertions against the paper's Table 2.
    umr = table.row("UMR")
    assert umr[-1] > umr[0], "RUMR's win rate over UMR must grow with error"
    for mi in ("MI-2", "MI-3", "MI-4"):
        assert min(table.row(mi)) > 50.0, f"RUMR must beat {mi} in most experiments"
    fact = table.row("Factoring")
    assert fact[0] > 80.0, "RUMR must dominate Factoring at small error"
    assert fact[-1] < fact[0] + 1e-9, "Factoring must close the gap as error grows"
