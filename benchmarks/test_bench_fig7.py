"""Benchmark: regenerate Figure 7 (out-of-order phase-1 ablation).

Paper reference: replacing RUMR's greedy out-of-order phase-1 dispatch
with plain in-order UMR costs only ~1% at high error and is marginally
*better* at very low error ("most of the effectiveness of RUMR comes from
the division into two phases").  The assertion bounds the effect to a few
percent across the whole error axis and requires it to be non-negative at
the high end.
"""

from repro.experiments.config import smoke_grid
from repro.experiments.figures import fig7
from repro.experiments.report import ascii_chart, figure_csv


def regenerate_fig7(grid):
    return fig7(grid)


def test_bench_fig7(benchmark):
    grid = smoke_grid().restrict(repetitions=10)
    fig = benchmark.pedantic(regenerate_fig7, args=(grid,), rounds=1, iterations=1)
    print()
    print(ascii_chart(fig))
    print(figure_csv(fig))

    plain = fig.series["RUMR-plain"]
    # The effect is marginal everywhere (paper: about 1%).
    assert all(abs(v - 1.0) < 0.05 for v in plain), plain
    # Identical dispatch under zero error: exact parity.
    assert abs(plain[0] - 1.0) < 1e-9
    # At the high-error end, out-of-order dispatch does not hurt.
    assert plain[-1] >= 1.0 - 5e-3
