"""Benchmarks for the observability layer: tracing must be pay-as-you-go.

Two contracts from ``repro.obs``:

* **zero-cost when disabled** — engines take ``tracer=None`` and guard
  every emission behind one ``is not None`` test, so an untraced run
  costs what it cost before the hooks existed.  The gating version of
  this check lives in ``scripts/bench_sweep.py --max-overhead`` (full
  sweep vs the committed ``BENCH_sweep.json``); here we document the
  single-run cost and sanity-check the sweep against the baseline with a
  generous noise allowance.
* **bounded when enabled** — a traced run pays per-event append cost,
  linear in the chunk count, not superlinear in anything.
"""

import time

import pytest

from repro.core import RUMR, Factoring
from repro.errors import NormalErrorModel
from repro.experiments.config import PAPER_ALGORITHMS
from repro.experiments.runner import run_sweep
from repro.obs import Tracer
from repro.platform import homogeneous_platform
from repro.sim import simulate_des, simulate_fast

W = 1000.0


@pytest.fixture
def platform():
    return homogeneous_platform(20, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)


@pytest.fixture
def model():
    return NormalErrorModel(0.3)


def test_bench_fast_engine_untraced(benchmark, platform, model):
    result = benchmark(simulate_fast, platform, W, Factoring(), model, 1)
    assert result.makespan > 0


def test_bench_fast_engine_traced(benchmark, platform, model):
    def run():
        tracer = Tracer()
        return simulate_fast(
            platform, W, Factoring(), model, 1, tracer=tracer
        ), tracer

    (result, tracer) = benchmark(run)
    assert result.makespan > 0
    assert len(tracer.events()) >= 4 * result.num_chunks


def test_bench_des_engine_traced(benchmark, platform, model):
    def run():
        tracer = Tracer()
        return simulate_des(
            platform, W, RUMR(known_error=0.3), model, 1, tracer=tracer
        ), tracer

    (result, tracer) = benchmark(run)
    assert result.makespan > 0
    assert len(tracer.events()) >= 4 * result.num_chunks


def test_untraced_sweep_within_baseline(bench_grid, bench_baseline):
    # The pay-nothing direction, sweep-scale: one batched smoke sweep
    # (which never traces) against the committed baseline wall time.  The
    # strict 5% gate runs in CI via scripts/bench_sweep.py on best-of-N
    # timings; a single pytest-interleaved run is noisier, so this
    # assertion allows 2x before failing — it catches "the hooks landed
    # in the hot loop", not single-digit drift.
    if bench_baseline is None:
        pytest.skip("no BENCH_sweep.json baseline committed")
    base_wall = bench_baseline["full_sweep"]["batched_wall_s"]
    run_sweep(bench_grid, algorithms=PAPER_ALGORITHMS)  # warm solver caches
    start = time.perf_counter()
    run_sweep(bench_grid, algorithms=PAPER_ALGORITHMS)
    wall = time.perf_counter() - start
    assert wall <= base_wall * 2.0, (
        f"untraced batched sweep took {wall:.3f}s vs baseline "
        f"{base_wall:.3f}s — disabled tracing must stay off the hot paths"
    )
