"""Extension benchmark: heterogeneity study (beyond the paper's §5).

The paper evaluates homogeneous platforms only.  This bench sweeps a
controlled heterogeneity level (speed/bandwidth spread at constant
aggregate capacity) and reports mean makespans for UMR, Factoring, RUMR,
and RUMR with a Weighted-Factoring phase 2.

Expected shapes (asserted):

* UMR is nearly flat — its per-worker chunk sizing absorbs heterogeneity;
* Factoring degrades sharply — equal self-scheduled chunks turn slow
  workers into per-batch stragglers;
* plain RUMR inherits factoring's weakness at high heterogeneity (its
  phase 2 chunks are equal-sized) and loses to UMR there;
* RUMR with the weighted phase 2 dominates at every level.
"""

from repro.core import RUMR, UMR, Factoring
from repro.experiments.hetero import run_hetero_study

LEVELS = (0.0, 0.5, 1.0, 2.0, 4.0)
ERROR = 0.3


def regenerate():
    return run_hetero_study(
        {
            "UMR": lambda: UMR(),
            "Factoring": lambda: Factoring(),
            "RUMR": lambda: RUMR(known_error=ERROR),
            "RUMR-weighted": lambda: RUMR(known_error=ERROR, phase2_weighted=True),
        },
        levels=LEVELS,
        n=16,
        error=ERROR,
        repetitions=10,
    )


def test_bench_hetero(benchmark):
    study = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(f"{'level':>6} " + " ".join(f"{k:>14}" for k in study.means))
    for i, level in enumerate(study.levels):
        print(
            f"{level:>6.1f} "
            + " ".join(f"{study.means[k][i]:>14.2f}" for k in study.means)
        )

    umr = study.means["UMR"]
    fact = study.means["Factoring"]
    weighted = study.means["RUMR-weighted"]
    # UMR nearly flat (within 15% of its homogeneous value everywhere).
    assert max(umr) < 1.15 * umr[0]
    # Factoring collapses at the high end.
    assert fact[-1] > 1.5 * fact[0]
    # Weighted-phase-2 RUMR dominates UMR at every level.
    assert all(w < u * 1.02 for w, u in zip(weighted, umr))
    # And dominates plain RUMR at the heterogeneous end.
    assert weighted[-1] < study.means["RUMR"][-1]
