"""Extension benchmark: output-data return traffic.

The paper's model transfers input only (§3.1, citing [11, 12] for output).
This bench asks the question that exclusion leaves open: does RUMR's
advantage survive when every chunk's results must return over the same
serialized link?

Sweep: output ratio 0 … 1 (result bytes per input byte) at 30% error.
Expected shape (asserted): RUMR stays ahead of UMR across the sweep, but
the margin narrows as the link fills with return traffic (the link is a
shared bottleneck no dispatch policy controls); Factoring degrades fastest
because its request-driven dispatches now also queue behind returns.
"""

import statistics

from repro.core import RUMR, UMR, Factoring
from repro.errors import NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim.output import simulate_with_output

RATIOS = (0.0, 0.2, 0.5, 1.0)
ERROR = 0.3
SEEDS = range(10)


def regenerate():
    platform = homogeneous_platform(16, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)
    w = 1000.0
    rows = {}
    for ratio in RATIOS:
        def mean(sched_factory):
            return statistics.mean(
                simulate_with_output(
                    platform, w, sched_factory(), NormalErrorModel(ERROR),
                    output_ratio=ratio, seed=s,
                ).makespan
                for s in SEEDS
            )

        rows[ratio] = {
            "UMR": mean(UMR),
            "RUMR": mean(lambda: RUMR(known_error=ERROR)),
            "Factoring": mean(Factoring),
        }
    return rows


def test_bench_output(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    header = list(next(iter(rows.values())))
    print(f"{'ratio':>6} " + " ".join(f"{h:>11}" for h in header))
    for ratio, row in rows.items():
        print(f"{ratio:>6.1f} " + " ".join(f"{row[h]:>11.2f}" for h in header))

    for ratio in RATIOS:
        assert rows[ratio]["RUMR"] < rows[ratio]["UMR"], ratio
    # Return traffic slows everyone down monotonically.
    rumr = [rows[r]["RUMR"] for r in RATIOS]
    assert rumr == sorted(rumr)
