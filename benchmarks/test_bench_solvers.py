"""Micro-benchmarks: scheduler plan construction.

Paper reference (§3.2): solving the UMR Lagrange system by bisection took
"about 0.07 seconds on a 400 MHz PIII".  Both our solvers are measured
here on the Table-1-sized problem (N=50); the search solver is typically
well under a millisecond.
"""

import pytest

from repro.core.multi_installment import solve_multi_installment
from repro.core.rumr import RUMR
from repro.core.umr import solve_umr_lagrange, solve_umr_search
from repro.platform import homogeneous_platform

W = 1000.0


@pytest.fixture
def platform():
    return homogeneous_platform(50, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)


def test_bench_umr_lagrange(benchmark, platform):
    plan = benchmark(solve_umr_lagrange, platform, W)
    assert plan.total_work == pytest.approx(W)


def test_bench_umr_search(benchmark, platform):
    plan = benchmark(solve_umr_search, platform, W)
    assert plan.total_work == pytest.approx(W)


def test_bench_mi4_linear_system(benchmark, platform):
    # 200 unknowns (N=50 x 4 rounds); bypass the memo cache to measure.
    solve = solve_multi_installment.__wrapped__
    schedule = benchmark(solve, platform, W, 4)
    assert schedule.total_work == pytest.approx(W)


def test_bench_rumr_source_construction(benchmark, platform):
    scheduler = RUMR(known_error=0.3)
    source = benchmark(scheduler.create_source, platform, W)
    assert source is not None
