"""Extension benchmark: online error estimation (the paper's future work).

§6 of the paper: the APST integration "will make it possible to determine
empirical performance prediction error distributions … as the application
runs.  Such information will be used on-the-fly by RUMR."  AdaptiveRUMR
implements that loop; this bench compares, across the error axis:

* UMR            — no robustness mechanism;
* RUMR(oracle)   — RUMR given the *true* error magnitude;
* AdaptiveRUMR   — no a-priori knowledge, estimates from completion
                   intervals during phase 1 and switches on its own;
* RUMR_80        — the paper's recommended fixed split when the error is
                   unknown (the static alternative to estimating online).

Expected shape (asserted): AdaptiveRUMR recovers at least half of the
oracle's advantage over UMR at moderate-to-large error, and at zero error
it stays exactly at UMR's makespan (never switching on a phantom signal
costs nothing).
"""

import statistics

from repro.core import RUMR, UMR, AdaptiveRUMR
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate_fast

ERRORS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
SEEDS = range(15)


def regenerate():
    platform = homogeneous_platform(20, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)
    w = 1000.0
    rows = {}
    for error in ERRORS:
        def model():
            return NormalErrorModel(error) if error else NoError()

        def mean(sched):
            return statistics.mean(
                simulate_fast(platform, w, sched, model(), seed=s).makespan
                for s in SEEDS
            )

        rows[error] = {
            "UMR": mean(UMR()),
            "RUMR(oracle)": mean(RUMR(known_error=error)),
            "AdaptiveRUMR": mean(AdaptiveRUMR()),
            "RUMR_80": mean(RUMR(known_error=error, phase1_fraction=0.8)),
        }
    return rows


def test_bench_adaptive(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    header = list(next(iter(rows.values())))
    print(f"{'error':>6} " + " ".join(f"{h:>13}" for h in header))
    for error, row in rows.items():
        print(f"{error:>6.2f} " + " ".join(f"{row[h]:>13.2f}" for h in header))

    # Zero error: the adaptive scheduler must not pay for a phantom signal.
    assert rows[0.0]["AdaptiveRUMR"] <= rows[0.0]["UMR"] * 1.001
    # Moderate-to-large error: recover at least half the oracle gap.
    for error in (0.3, 0.4, 0.5):
        umr = rows[error]["UMR"]
        oracle = rows[error]["RUMR(oracle)"]
        adaptive = rows[error]["AdaptiveRUMR"]
        assert oracle < umr
        assert adaptive < umr - 0.5 * (umr - oracle), (error, umr, oracle, adaptive)
