"""Benchmark: regenerate Figure 6 (fixed phase-1 share ablation).

Paper reference: versions of RUMR that fix the phase-1 share at 50-90%
(ignoring the error estimate) lose to the original heuristic at small
error (the original uses *no* phase 2 there), and the small-share versions
lose most; at large error they converge toward the original.  Averaged
over the error axis, RUMR_80 is the best fixed choice ("80% in phase #1
seems like a good practical choice").
"""

from repro.experiments.config import smoke_grid
from repro.experiments.figures import fig6
from repro.experiments.report import ascii_chart, figure_csv


def regenerate_fig6(grid):
    return fig6(grid)


def test_bench_fig6(benchmark):
    grid = smoke_grid().restrict(repetitions=5)
    fig = benchmark.pedantic(regenerate_fig6, args=(grid,), rounds=1, iterations=1)
    print()
    print(ascii_chart(fig))
    print(figure_csv(fig))

    # At error 0 the fixed-share variants run a pointless phase 2; they are
    # at best around parity with the original (the paper notes the curves
    # "don't necessarily intersect the x-axis" because the original's
    # threshold sometimes withholds a phase 2 the fixed variants run —
    # occasionally to the fixed variants' benefit, so allow ~1% slack).
    for label, series in fig.series.items():
        assert series[0] >= 0.99, f"{label} cannot materially beat original at error 0"
    # Smaller phase-1 share hurts more at small error.
    assert fig.series["RUMR_50"][0] > fig.series["RUMR_90"][0]
    # The penalty of fixed shares shrinks as error grows (phase 2 becomes
    # the right call anyway).
    assert fig.series["RUMR_50"][-1] < fig.series["RUMR_50"][0]
    # Averaged over the error axis, 80% is among the best fixed choices
    # (paper: "the version that schedules 80% ... achieves the best
    # relative performance").
    means = {k: sum(v) / len(v) for k, v in fig.series.items()}
    best = min(means, key=means.get)
    assert best in ("RUMR_80", "RUMR_90"), f"best fixed share was {best}"
