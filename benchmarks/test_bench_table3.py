"""Benchmark: regenerate Table 3 (outperformance by at least 10%).

Paper reference (Table 3): the ≥10% margin wipes out RUMR's advantage
over UMR at small error (0.00%) but grows it to ~56% at large error;
against Factoring the trend is *inverted* (90% → 24%), because Factoring's
absolute gap narrows with error while UMR's widens.  Those two opposite
trends are the table's headline and are asserted below.
"""

from repro.experiments.config import PAPER_ALGORITHMS, smoke_grid
from repro.experiments.report import render_table
from repro.experiments.runner import run_sweep
from repro.experiments.tables import table3


def regenerate_table3(grid):
    results = run_sweep(grid, algorithms=PAPER_ALGORITHMS)
    return table3(results)


def test_bench_table3(benchmark):
    grid = smoke_grid()
    table = benchmark.pedantic(regenerate_table3, args=(grid,), rounds=1, iterations=1)
    print()
    print(render_table(table))

    umr = table.row("UMR")
    fact = table.row("Factoring")
    # Inverted trends (paper: "interesting and inverted trends for UMR and
    # Factoring as error grows").
    assert umr[0] < 5.0, "at near-zero error RUMR ~ UMR, no 10% wins"
    assert umr[-1] > umr[0], "10%-margin wins over UMR grow with error"
    assert fact[-1] < fact[0], "10%-margin wins over Factoring shrink with error"
