"""Shared fixtures for the benchmark harness.

Every table/figure benchmark regenerates its artifact end to end (sweep +
derivation) on the ``smoke`` grid, so ``pytest benchmarks/
--benchmark-only`` completes in minutes on one core.  To regenerate at
higher fidelity, use the CLI (``python -m repro all --preset small``) —
the artifacts shipped in EXPERIMENTS.md come from that path.

The sweep used by Tables 2/3 and Figure 4 is shared through a
session-scoped fixture so it runs once; each benchmark still times a full
regeneration of its own artifact.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PAPER_ALGORITHMS, smoke_grid
from repro.experiments.runner import run_sweep


@pytest.fixture(scope="session")
def bench_grid():
    """The benchmark grid: Table-1-shaped, seconds-scale."""
    return smoke_grid()


@pytest.fixture(scope="session")
def main_sweep(bench_grid):
    """The seven-algorithm sweep behind Tables 2-3 and Figure 4."""
    return run_sweep(bench_grid, algorithms=PAPER_ALGORITHMS)
