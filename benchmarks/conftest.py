"""Shared fixtures for the benchmark harness.

Every table/figure benchmark regenerates its artifact end to end (sweep +
derivation) on the ``smoke`` grid, so ``pytest benchmarks/
--benchmark-only`` completes in minutes on one core.  To regenerate at
higher fidelity, use the CLI (``python -m repro all --preset small``) —
the artifacts shipped in EXPERIMENTS.md come from that path.

The sweep used by Tables 2/3 and Figure 4 is shared through a
session-scoped fixture so it runs once; each benchmark still times a full
regeneration of its own artifact.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.config import PAPER_ALGORITHMS, smoke_grid
from repro.experiments.runner import run_sweep

BENCH_BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_sweep.json"


@pytest.fixture(scope="session")
def bench_grid():
    """The benchmark grid: Table-1-shaped, seconds-scale."""
    return smoke_grid()


@pytest.fixture(scope="session")
def bench_baseline():
    """The committed ``BENCH_sweep.json`` report, or None if absent.

    The trace-overhead benchmarks compare against it; regenerate with
    ``PYTHONPATH=src python scripts/bench_sweep.py`` after intentional
    perf changes.
    """
    if not BENCH_BASELINE_PATH.exists():
        return None
    try:
        return json.loads(BENCH_BASELINE_PATH.read_text())
    except json.JSONDecodeError:
        return None


@pytest.fixture(scope="session")
def main_sweep(bench_grid):
    """The seven-algorithm sweep behind Tables 2-3 and Figure 4."""
    return run_sweep(bench_grid, algorithms=PAPER_ALGORITHMS)
