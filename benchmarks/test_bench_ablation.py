"""Ablation benchmarks for design choices beyond the paper's figures.

DESIGN.md §5 lists five ablation targets; Figures 6 and 7 cover the first
two, these benches cover the rest:

3. the phase-2 chunk floor (§4.2 question (iii)) — with the floor removed,
   factoring's tail degenerates into many vanishing chunks whose per-chunk
   latency is pure overhead;
4. the threshold-rule reading (per-worker §4.2 vs total §5.1) — the two
   variants differ exactly in the error range where they disagree about
   running a phase 2;
5. the error-distribution family (§4.1: uniform "essentially similar",
   and the mode="divide" verbatim reading) plus the non-stationary
   drifting model the paper defers to future work.
"""

import statistics

import pytest

from repro.core import RUMR, UMR, Factoring
from repro.core.rumr import phase2_workload
from repro.errors import (
    DriftingErrorModel,
    NormalErrorModel,
    UniformErrorModel,
)
from repro.platform import homogeneous_platform
from repro.sim import simulate_fast

W = 1000.0
SEEDS = range(15)


def platform(n=20, cLat=0.3, nLat=0.1):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=1.8, cLat=cLat, nLat=nLat)


def mean_makespan(p, scheduler, model_factory, seeds=SEEDS):
    return statistics.mean(
        simulate_fast(p, W, scheduler, model_factory(), seed=s).makespan for s in seeds
    )


class TestChunkFloorAblation:
    def test_bench_chunk_floor(self, benchmark):
        # Factoring with and without the minimum chunk bound, on a
        # latency-heavy platform where tiny chunks are pure overhead.
        p = platform(cLat=0.5, nLat=0.3)
        error = 0.3

        def run():
            with_floor = mean_makespan(
                p, Factoring(min_chunk=1.0), lambda: NormalErrorModel(error)
            )
            without_floor = mean_makespan(
                p, Factoring(min_chunk=1e-6), lambda: NormalErrorModel(error)
            )
            return with_floor, without_floor

        with_floor, without_floor = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nfactoring makespan with floor:    {with_floor:8.2f} s")
        print(f"factoring makespan without floor: {without_floor:8.2f} s")
        assert with_floor < without_floor, "the chunk floor must pay for itself"


class TestThresholdRuleAblation:
    def test_bench_threshold_rules(self, benchmark):
        # The per-worker rule (§4.2) needs error >= N(cLat + N nLat)/W to
        # enable phase 2; the total rule (§5.1) needs only
        # error >= (cLat + N nLat)/W.  Between the two thresholds they
        # disagree; measure both in that window.
        p = platform(n=20, cLat=0.3, nLat=0.5)  # overhead = 10.3
        error = 0.12  # total: 120 >= 10.3 (on) ; per-worker: 6 < 10.3 (off)
        assert phase2_workload(p, W, error, "per_worker") == 0.0
        assert phase2_workload(p, W, error, "total") > 0.0

        def run():
            per_worker = mean_makespan(
                p,
                RUMR(known_error=error, threshold_rule="per_worker"),
                lambda: NormalErrorModel(error),
            )
            total_rule = mean_makespan(
                p,
                RUMR(known_error=error, threshold_rule="total"),
                lambda: NormalErrorModel(error),
            )
            return per_worker, total_rule

        per_worker, total_rule = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nper-worker rule (phase 2 off): {per_worker:8.2f} s")
        print(f"total rule (phase 2 on):       {total_rule:8.2f} s")
        # Both readings must stay within a sane band of each other; which
        # wins is platform-dependent, the point is to quantify the gap.
        assert abs(per_worker - total_rule) / per_worker < 0.25


class TestErrorFamilyAblation:
    def test_bench_error_families(self, benchmark):
        # §4.1: "We also ran all the experiments under a uniformly
        # distributed error model, but our results were essentially
        # similar."  Check RUMR's relative advantage over UMR under
        # normal, uniform, and the verbatim divide-mode model.
        p = platform()
        error = 0.3
        families = {
            "normal": lambda: NormalErrorModel(error),
            "uniform": lambda: UniformErrorModel(error),
            "normal-divide": lambda: NormalErrorModel(error, mode="divide"),
        }

        def run():
            out = {}
            for name, factory in families.items():
                rumr = mean_makespan(p, RUMR(known_error=error), factory)
                umr = mean_makespan(p, UMR(), factory)
                out[name] = umr / rumr
            return out

        ratios = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        for name, ratio in ratios.items():
            print(f"UMR/RUMR under {name:>14}: {ratio:6.3f}")
        # RUMR must keep its advantage under every family.
        assert all(r > 1.0 for r in ratios.values()), ratios
        # Normal and uniform are "essentially similar".
        assert abs(ratios["normal"] - ratios["uniform"]) < 0.15


class TestFSCClaim:
    def test_bench_fsc_worse_than_factoring(self, benchmark):
        # §5.1: "We also investigated the Fixed-Size Chunking (FSC)
        # strategy ... performs worse than Factoring in most of our
        # experiments.  Consequently we do not show results for FSC."
        from repro.core import FixedSizeChunking

        configs = [
            (10, 0.1, 0.1), (10, 0.5, 0.2), (20, 0.3, 0.1),
            (20, 0.0, 0.5), (40, 0.2, 0.2),
        ]
        error = 0.3

        def run():
            fsc_wins = 0
            total = 0
            for n, cl, nl in configs:
                p = platform(n=n, cLat=cl, nLat=nl)
                for s in range(8):
                    fsc = simulate_fast(
                        p, W, FixedSizeChunking(known_error=error),
                        NormalErrorModel(error), seed=s,
                    ).makespan
                    fact = simulate_fast(
                        p, W, Factoring(), NormalErrorModel(error), seed=s
                    ).makespan
                    fsc_wins += fsc < fact
                    total += 1
            return fsc_wins / total

        fsc_win_rate = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nFSC beats Factoring in {fsc_win_rate:.0%} of experiments")
        assert fsc_win_rate < 0.5, "paper: FSC worse than Factoring in most experiments"


class TestNonStationaryAblation:
    def test_bench_drifting_errors(self, benchmark):
        # Future-work scenario: background load drifts during the run.
        # Phase 2 never consults predictions, so RUMR should degrade more
        # gracefully than UMR.
        p = platform()
        error = 0.2

        def model():
            return DriftingErrorModel(magnitude=error, drift_per_step=-0.002)

        def run():
            rumr = mean_makespan(p, RUMR(known_error=error), model)
            umr = mean_makespan(p, UMR(), model)
            return umr / rumr

        ratio = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nUMR/RUMR under drifting load: {ratio:6.3f}")
        assert ratio > 1.0, "RUMR must retain its advantage under drift"
