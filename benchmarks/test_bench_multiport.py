"""Extension benchmark: simultaneous transfers (multi-port master).

§3.1 of the paper: "it could be beneficial to allow for simultaneous
transfers for better throughput in some cases (e.g. WANs).  We have
provided an initial investigation of this issue in [17] and leave a more
complete study for future work."  This bench is that study, in miniature:
makespan vs port count at a latency-heavy configuration, under error.

Expected shapes (asserted):

* more ports never hurt and help most at high nLat (per-transfer set-up
  is the quantity extra ports parallelize);
* diminishing returns: the jump from 1→2 ports dwarfs 4→8;
* the one-port UMR/RUMR *plans* stay usable (they are merely conservative
  on a multi-port master), so RUMR keeps beating UMR under error at every
  port count.
"""

import statistics

from repro.core import RUMR, UMR
from repro.errors import NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim.output import simulate_with_output

PORTS = (1, 2, 4, 8)
ERROR = 0.3
SEEDS = range(8)


def regenerate():
    platform = homogeneous_platform(16, S=1.0, bandwidth_factor=1.3, cLat=0.2, nLat=0.3)
    w = 1000.0
    rows = {}
    for ports in PORTS:
        def mean(sched_factory):
            return statistics.mean(
                simulate_with_output(
                    platform, w, sched_factory(), NormalErrorModel(ERROR),
                    output_ratio=0.0, ports=ports, seed=s,
                ).makespan
                for s in SEEDS
            )

        rows[ports] = {
            "UMR": mean(UMR),
            "RUMR": mean(lambda: RUMR(known_error=ERROR)),
        }
    return rows


def test_bench_multiport(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(f"{'ports':>6} {'UMR':>10} {'RUMR':>10}")
    for ports, row in rows.items():
        print(f"{ports:>6} {row['UMR']:>10.2f} {row['RUMR']:>10.2f}")

    umr = [rows[p]["UMR"] for p in PORTS]
    assert umr == sorted(umr, reverse=True), "extra ports must not hurt"
    gain_12 = umr[0] - umr[1]
    gain_48 = umr[2] - umr[3]
    assert gain_12 > gain_48, "diminishing returns in port count"
    for ports in PORTS:
        assert rows[ports]["RUMR"] < rows[ports]["UMR"], ports
