"""Micro-benchmarks: simulation-engine throughput.

The fast engine carries the full experiment harness (hundreds of
thousands of runs per sweep); the DES engine is the cross-validated
reference.  These benchmarks document their per-run costs and the ratio
between them.
"""

import pytest

from repro.core import RUMR, Factoring, UMR
from repro.errors import NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate_des, simulate_fast

W = 1000.0


@pytest.fixture
def platform():
    return homogeneous_platform(20, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)


@pytest.fixture
def model():
    return NormalErrorModel(0.3)


def test_bench_fast_engine_umr(benchmark, platform, model):
    result = benchmark(simulate_fast, platform, W, UMR(), model, 1)
    assert result.makespan > 0


def test_bench_fast_engine_rumr(benchmark, platform, model):
    result = benchmark(simulate_fast, platform, W, RUMR(known_error=0.3), model, 1)
    assert result.makespan > 0


def test_bench_fast_engine_factoring(benchmark, platform, model):
    result = benchmark(simulate_fast, platform, W, Factoring(), model, 1)
    assert result.makespan > 0


def test_bench_batch_engine_umr_per_run(benchmark, platform, model):
    # Amortized per-run cost of the vectorized batch simulator: simulate
    # 500 repetitions per call; compare Mean/500 against the scalar rows.
    from repro.core.umr import solve_umr
    from repro.sim.batch import simulate_static_batch

    plan = solve_umr(platform, W).to_chunk_plan()
    seeds = list(range(500))

    def run():
        return simulate_static_batch(platform, plan, error=0.3, seeds=seeds)

    spans = benchmark(run)
    assert spans.shape == (500,)
    assert (spans > 0).all()


def test_bench_des_engine_umr(benchmark, platform, model):
    result = benchmark(simulate_des, platform, W, UMR(), model, 1)
    assert result.makespan > 0


def test_bench_des_engine_rumr(benchmark, platform, model):
    result = benchmark(simulate_des, platform, W, RUMR(known_error=0.3), model, 1)
    assert result.makespan > 0
