"""Micro-benchmarks: simulation-engine throughput.

The fast engine carries the full experiment harness (hundreds of
thousands of runs per sweep); the DES engine is the cross-validated
reference.  These benchmarks document their per-run costs and the ratio
between them.
"""

import pytest

from repro.core import RUMR, Factoring, UMR
from repro.errors import NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate_des, simulate_fast

W = 1000.0


@pytest.fixture
def platform():
    return homogeneous_platform(20, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)


@pytest.fixture
def model():
    return NormalErrorModel(0.3)


def test_bench_fast_engine_umr(benchmark, platform, model):
    result = benchmark(simulate_fast, platform, W, UMR(), model, 1)
    assert result.makespan > 0


def test_bench_fast_engine_rumr(benchmark, platform, model):
    result = benchmark(simulate_fast, platform, W, RUMR(known_error=0.3), model, 1)
    assert result.makespan > 0


def test_bench_fast_engine_factoring(benchmark, platform, model):
    result = benchmark(simulate_fast, platform, W, Factoring(), model, 1)
    assert result.makespan > 0


def test_bench_batch_engine_umr_per_run(benchmark, platform, model):
    # Amortized per-run cost of the vectorized batch simulator: simulate
    # 500 repetitions per call; compare Mean/500 against the scalar rows.
    from repro.core.umr import solve_umr
    from repro.sim.batch import simulate_static_batch

    plan = solve_umr(platform, W).to_chunk_plan()
    seeds = list(range(500))

    def run():
        return simulate_static_batch(platform, plan, error=0.3, seeds=seeds)

    spans = benchmark(run)
    assert spans.shape == (500,)
    assert (spans > 0).all()


def test_bench_fast_engine_umr_makespan_only(benchmark, platform, model):
    # The sweep harness's scalar mode: no DispatchRecord allocation.
    result = benchmark(
        simulate_fast, platform, W, UMR(), model, 1, collect_records=False
    )
    assert result.makespan > 0
    assert result.records == ()


def test_bench_fast_engine_rumr_makespan_only(benchmark, platform, model):
    result = benchmark(
        simulate_fast, platform, W, RUMR(known_error=0.3), model, 1,
        collect_records=False,
    )
    assert result.makespan > 0
    assert result.records == ()


def test_bench_compiled_batch_umr_per_run(benchmark, platform):
    # The sweep fast path proper: plan compiled once, then re-simulated —
    # this is what each (platform, error) cell costs after compilation.
    from repro.core.umr import solve_umr
    from repro.sim.batch import compile_static_plan, simulate_static_batch

    compiled = compile_static_plan(platform, solve_umr(platform, W).to_chunk_plan())
    seeds = list(range(500))

    def run():
        return simulate_static_batch(platform, compiled, 0.3, seeds)

    spans = benchmark(run)
    assert spans.shape == (500,)
    assert (spans > 0).all()


@pytest.fixture
def sweep_grid():
    from repro.experiments.config import smoke_grid

    return smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.4, 1.8), cLats=(0.0, 0.2), nLats=(0.1,),
        errors=(0.0, 0.2, 0.4), repetitions=3,
    )


def test_bench_sweep_static_scalar(benchmark, sweep_grid):
    from repro.experiments.runner import run_sweep

    results = benchmark(
        run_sweep, sweep_grid, algorithms=("UMR", "MI-2", "MI-4"),
        batch_static=False,
    )
    assert (results.makespans["UMR"] > 0).all()


def test_bench_sweep_static_batched(benchmark, sweep_grid):
    from repro.experiments.runner import run_sweep

    results = benchmark(
        run_sweep, sweep_grid, algorithms=("UMR", "MI-2", "MI-4"),
        batch_static=True,
    )
    assert (results.makespans["UMR"] > 0).all()


def test_bench_des_engine_umr(benchmark, platform, model):
    result = benchmark(simulate_des, platform, W, UMR(), model, 1)
    assert result.makespan > 0


def test_bench_des_engine_rumr(benchmark, platform, model):
    result = benchmark(simulate_des, platform, W, RUMR(known_error=0.3), model, 1)
    assert result.makespan > 0
