"""Benchmark: regenerate Figure 5 (the single high-nLat configuration).

Paper reference: at cLat=0.3, nLat=0.9, N=20, B=36 the per-round overhead
is so large that RUMR's phase-2 threshold keeps phase 2 off at small
error; once error crosses the threshold the competitors' relative
makespans jump up sharply ("this pattern explicitly demonstrates the
benefit of splitting the execution in two phases").

The assertion checks for that jump: the UMR series must rise from ~parity
at error 0 and its largest single-step increase must occur at the error
value where the per-worker threshold `error·W/N >= cLat + nLat·N` first
passes (error* = N·(cLat + N·nLat)/W = 0.366 here, so between grid points
0.3 and 0.4 on the smoke error axis).
"""

from repro.experiments.config import smoke_grid
from repro.experiments.figures import fig5
from repro.experiments.report import ascii_chart, figure_csv


def regenerate_fig5(grid):
    return fig5(grid)


def test_bench_fig5(benchmark):
    grid = smoke_grid().restrict(
        errors=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5), repetitions=20
    )
    fig = benchmark.pedantic(regenerate_fig5, args=(grid,), rounds=1, iterations=1)
    print()
    print(ascii_chart(fig))
    print(figure_csv(fig))

    umr = fig.series["UMR"]
    assert abs(umr[0] - 1.0) < 1e-9, "parity at error 0 (RUMR == UMR)"
    assert umr[-1] > umr[0], "UMR must degrade relative to RUMR"
    # The biggest jump happens when phase 2 switches on: threshold at
    # error* = N(cLat + N*nLat)/W = 20*(0.3+18)/1000 = 0.366.
    steps = [b - a for a, b in zip(umr, umr[1:])]
    jump_index = steps.index(max(steps))
    jump_error = fig.errors[jump_index + 1]
    assert jump_error >= 0.3, (
        f"phase-2 switch-on jump at error={jump_error}, expected >= 0.3 "
        "(threshold 0.366 for this configuration)"
    )
