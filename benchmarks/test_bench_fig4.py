"""Benchmark: regenerate Figures 4(a) and 4(b) (relative makespan vs error).

Paper reference: in Fig 4(a) UMR is the only algorithm ever below 1.0
(slightly, at small error) and rises steadily; Factoring starts highest
and descends toward (but stays above) RUMR; MI-x stay well above 1.0
throughout.  Fig 4(b) restricts to cLat < 0.3, nLat < 0.3 where RUMR uses
many phase-1 rounds and the MI-x curves turn upward with error.
"""

from repro.experiments.config import PAPER_ALGORITHMS, smoke_grid
from repro.experiments.figures import fig4a, fig4b
from repro.experiments.report import ascii_chart, figure_csv
from repro.experiments.runner import run_sweep


def regenerate_fig4(grid):
    results = run_sweep(grid, algorithms=PAPER_ALGORITHMS)
    return fig4a(results), fig4b(results)


def test_bench_fig4(benchmark):
    grid = smoke_grid()
    fa, fb = benchmark.pedantic(regenerate_fig4, args=(grid,), rounds=1, iterations=1)
    print()
    for fig in (fa, fb):
        print(ascii_chart(fig))
        print(figure_csv(fig))

    for fig in (fa, fb):
        umr = fig.series["UMR"]
        fact = fig.series["Factoring"]
        # UMR starts at parity (RUMR == UMR at error 0) and ends worse.
        assert abs(umr[0] - 1.0) < 1e-9
        assert umr[-1] > 1.02
        # Factoring approaches RUMR from above as error grows.
        assert fact[0] > 1.05
        assert fact[-1] < fact[0]
        # MI-x never close to RUMR on average at zero error cost regimes.
        assert min(fig.series["MI-1"]) > 1.0
