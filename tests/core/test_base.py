"""Tests for the scheduler/engine contract primitives."""

import pytest

from repro.core.base import WAIT, Dispatch, StaticPlanSource, Wait
from repro.core.chunks import ChunkPlan, DispatchRecord, PlannedChunk


class TestDispatch:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Dispatch(worker=0, size=0.0)

    def test_wait_is_singleton(self):
        assert Wait() is WAIT


class TestStaticPlanSource:
    def test_replays_in_order_and_terminates(self):
        plan = [Dispatch(worker=i, size=float(i + 1)) for i in range(3)]
        src = StaticPlanSource(plan)
        assert src.remaining_dispatches == 3
        out = [src.next_dispatch(None) for _ in range(4)]
        assert out[:3] == plan
        assert out[3] is None
        assert src.remaining_dispatches == 0


class TestPlannedChunk:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            PlannedChunk(worker=0, size=-1.0)

    def test_rejects_negative_worker(self):
        with pytest.raises(ValueError):
            PlannedChunk(worker=-1, size=1.0)


class TestChunkPlan:
    def make(self):
        return ChunkPlan(
            [
                PlannedChunk(worker=0, size=1.0, round_index=0),
                PlannedChunk(worker=1, size=2.0, round_index=0),
                PlannedChunk(worker=0, size=3.0, round_index=1),
                PlannedChunk(worker=1, size=4.0, round_index=1),
            ]
        )

    def test_total_work(self):
        assert self.make().total_work == 10.0

    def test_num_rounds(self):
        assert self.make().num_rounds == 2

    def test_round_sizes(self):
        assert self.make().round_sizes() == [[1.0, 2.0], [3.0, 4.0]]

    def test_for_worker(self):
        chunks = self.make().for_worker(1)
        assert [c.size for c in chunks] == [2.0, 4.0]

    def test_sequence_protocol(self):
        plan = self.make()
        assert len(plan) == 4
        assert plan[0].size == 1.0
        assert [c.worker for c in plan] == [0, 1, 0, 1]


class TestDispatchRecord:
    def test_derived_durations(self):
        r = DispatchRecord(
            index=0,
            worker=2,
            size=5.0,
            send_start=1.0,
            send_end=1.5,
            arrival=1.6,
            comp_start=2.0,
            comp_end=4.0,
            phase="x",
        )
        assert r.link_time == pytest.approx(0.5)
        assert r.comp_time == pytest.approx(2.0)
