"""Tests for the Factoring self-scheduler."""

import pytest

from repro.core.factoring import Factoring, FactoringSource
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0


def platform(n=10):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=1.5, cLat=0.1, nLat=0.05)


class TestBatchRule:
    def test_first_batch_is_half_remaining(self):
        p = platform(n=4)
        result = simulate(p, W, Factoring(min_chunk=0.5))
        # First 4 chunks: W / (2*4) each.
        for r in result.records[:4]:
            assert r.size == pytest.approx(W / 8)

    def test_batches_halve(self):
        p = platform(n=4)
        result = simulate(p, W, Factoring(min_chunk=1e-9))
        sizes = [r.size for r in result.records]
        # Batch k chunk size = W * (1/2)^{k+1} / N.
        for k in range(3):
            batch = sizes[4 * k : 4 * (k + 1)]
            expected = W * 0.5 ** (k + 1) / 4
            for s in batch:
                assert s == pytest.approx(expected, rel=1e-9)

    def test_chunk_sizes_nonincreasing(self):
        result = simulate(platform(), W, Factoring())
        sizes = [r.size for r in result.records]
        assert all(b <= a + 1e-9 for a, b in zip(sizes, sizes[1:]))

    def test_min_chunk_floor_respected(self):
        result = simulate(platform(), W, Factoring(min_chunk=5.0))
        sizes = [r.size for r in result.records]
        # Every chunk except possibly the last (the residue) >= floor.
        assert all(s >= 5.0 - 1e-9 for s in sizes[:-1])

    def test_total_work_conserved(self):
        result = simulate(platform(), W, Factoring())
        assert result.dispatched_work == pytest.approx(W, rel=1e-9)
        validate_schedule(result)

    def test_custom_factor(self):
        p = platform(n=4)
        result = simulate(p, W, Factoring(factor=4.0, min_chunk=1e-9))
        assert result.records[0].size == pytest.approx(W / 16)

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            Factoring(factor=1.0)
        with pytest.raises(ValueError):
            FactoringSource(4, W, factor=0.5, min_chunk=1.0, phase="x")

    def test_negative_min_chunk_rejected(self):
        with pytest.raises(ValueError):
            FactoringSource(4, W, factor=2.0, min_chunk=-1.0, phase="x")


class TestSelfScheduling:
    def test_initial_chunks_go_to_distinct_workers(self):
        p = platform(n=6)
        result = simulate(p, W, Factoring())
        first = [r.worker for r in result.records[:6]]
        assert sorted(first) == list(range(6))

    def test_workers_served_on_demand_under_error(self):
        # With strong errors the dispatch order adapts: every worker still
        # receives work and the schedule stays valid.
        p = platform(n=5)
        result = simulate(p, W, Factoring(), NormalErrorModel(0.4), seed=7)
        validate_schedule(result)
        assert {r.worker for r in result.records} == set(range(5))

    def test_deterministic_given_seed(self):
        p = platform()
        a = simulate(p, W, Factoring(), NormalErrorModel(0.3), seed=11)
        b = simulate(p, W, Factoring(), NormalErrorModel(0.3), seed=11)
        assert a.makespan == b.makespan
        assert [r.worker for r in a.records] == [r.worker for r in b.records]

    def test_robustness_beats_one_round_under_error(self):
        from repro.core.one_round import OneRound

        p = platform()
        err = NormalErrorModel(0.4)
        fact = sum(
            simulate(p, W, Factoring(), err, seed=s).makespan for s in range(10)
        )
        one = sum(simulate(p, W, OneRound(), err, seed=s).makespan for s in range(10))
        assert fact < one

    def test_remaining_property_decreases(self):
        src = FactoringSource(4, W, factor=2.0, min_chunk=1.0, phase="f")
        assert src.remaining == W

    def test_phase_label(self):
        result = simulate(platform(), W, Factoring())
        assert all(r.phase == "factoring" for r in result.records)
