"""Tests for the Multi-Installment (MI-x) linear-system solver."""

import pytest

from repro.core.multi_installment import (
    MIInfeasibleError,
    MISchedule,
    MultiInstallment,
    solve_multi_installment,
)
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform

W = 1000.0


def platform(n=10, factor=1.5):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=factor)


def recv_and_comp_ends(p, sizes):
    """Replay the latency-free MI model and return per-(round, worker) ends."""
    n = p.N
    recv_end = {}
    comp_end = {}
    t = 0.0
    for j, row in enumerate(sizes):
        for i, a in enumerate(row):
            t += a / p[i].B
            recv_end[(j, i)] = t
    for j, row in enumerate(sizes):
        for i, a in enumerate(row):
            if j == 0:
                start = recv_end[(0, i)]
            else:
                start = max(recv_end[(j, i)], comp_end[(j - 1, i)])
            comp_end[(j, i)] = start + a / p[i].S
    return recv_end, comp_end


class TestSolution:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 4])
    def test_conservation(self, rounds):
        sched = solve_multi_installment(platform(), W, rounds)
        assert sched.total_work == pytest.approx(W, rel=1e-9)

    @pytest.mark.parametrize("rounds", [1, 2, 3, 4])
    def test_all_sizes_nonnegative(self, rounds):
        sched = solve_multi_installment(platform(), W, rounds)
        assert min(min(row) for row in sched.sizes) >= 0.0

    @pytest.mark.parametrize("rounds", [2, 3, 4])
    def test_no_idle_condition(self, rounds):
        p = platform()
        sched = solve_multi_installment(p, W, rounds)
        recv_end, comp_end = recv_and_comp_ends(p, sched.sizes)
        for j in range(1, sched.rounds_used):
            for i in range(p.N):
                assert recv_end[(j, i)] == pytest.approx(comp_end[(j - 1, i)], rel=1e-7)

    @pytest.mark.parametrize("rounds", [1, 2, 3, 4])
    def test_simultaneous_completion(self, rounds):
        p = platform()
        sched = solve_multi_installment(p, W, rounds)
        _, comp_end = recv_and_comp_ends(p, sched.sizes)
        last = sched.rounds_used - 1
        finishes = [comp_end[(last, i)] for i in range(p.N)]
        assert max(finishes) - min(finishes) < 1e-6 * max(finishes)

    def test_single_round_decreasing_geometric(self):
        # Classic one-installment result: alpha_{i+1} = alpha_i * B/(B+S).
        p = platform(n=6, factor=1.5)
        sched = solve_multi_installment(p, W, 1)
        sizes = sched.sizes[0]
        b, s = p[0].B, p[0].S
        ratio = b / (b + s)
        for a, bb in zip(sizes, sizes[1:]):
            assert bb / a == pytest.approx(ratio, rel=1e-7)

    def test_more_installments_finish_sooner_in_mi_model(self):
        # Within MI's own (latency-free) model, more rounds means better
        # overlap and a strictly earlier simultaneous finish.
        p = platform()
        finishes = []
        for x in (1, 2, 3, 4):
            sched = solve_multi_installment(p, W, x)
            _, comp_end = recv_and_comp_ends(p, sched.sizes)
            finishes.append(comp_end[(sched.rounds_used - 1, 0)])
        assert finishes == sorted(finishes, reverse=True)

    def test_heterogeneous_platform(self, hetero_platform):
        sched = solve_multi_installment(hetero_platform, W, 3)
        assert sched.total_work == pytest.approx(W, rel=1e-9)
        recv_end, comp_end = recv_and_comp_ends(hetero_platform, sched.sizes)
        last = sched.rounds_used - 1
        finishes = [comp_end[(last, i)] for i in range(hetero_platform.N)]
        assert max(finishes) - min(finishes) < 1e-6 * max(finishes)


class TestInterface:
    def test_rounds_used_reported(self):
        sched = solve_multi_installment(platform(), W, 3)
        assert isinstance(sched, MISchedule)
        assert sched.rounds_requested == 3
        assert 1 <= sched.rounds_used <= 3

    def test_bad_rounds_rejected(self):
        with pytest.raises(ValueError):
            solve_multi_installment(platform(), W, 0)

    def test_bad_work_rejected(self):
        with pytest.raises(ValueError):
            solve_multi_installment(platform(), -5.0, 2)

    def test_scheduler_name(self):
        assert MultiInstallment(3).name == "MI-3"

    def test_scheduler_bad_rounds(self):
        with pytest.raises(ValueError):
            MultiInstallment(0)

    def test_chunk_plan_round_major(self):
        plan = solve_multi_installment(platform(n=3), W, 2).to_chunk_plan()
        rounds = [c.round_index for c in plan]
        assert rounds == sorted(rounds)

    def test_single_worker(self):
        p = homogeneous_platform(1, S=1.0, B=3.0)
        sched = solve_multi_installment(p, W, 2)
        assert sched.total_work == pytest.approx(W)

    def test_infeasible_error_type_exists(self):
        assert issubclass(MIInfeasibleError, ValueError)
