"""Tests for Fixed-Size Chunking."""

import pytest

from repro.core.fsc import FixedSizeChunking, kruskal_weiss_chunk_size
from repro.errors import NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0


def platform(n=8):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


class TestChunkSizeFormula:
    def test_degenerates_to_equal_split_without_noise(self):
        assert kruskal_weiss_chunk_size(W, 8, overhead=0.3, sigma_per_unit=0.0) == W / 8

    def test_degenerates_for_single_worker(self):
        assert kruskal_weiss_chunk_size(W, 1, overhead=0.3, sigma_per_unit=0.2) == W

    def test_zero_overhead_gives_zero(self):
        assert kruskal_weiss_chunk_size(W, 8, overhead=0.0, sigma_per_unit=0.2) == 0.0

    def test_capped_at_equal_split(self):
        c = kruskal_weiss_chunk_size(W, 4, overhead=100.0, sigma_per_unit=1e-6)
        assert c <= W / 4

    def test_monotone_in_overhead(self):
        lo = kruskal_weiss_chunk_size(W, 8, overhead=0.1, sigma_per_unit=0.3)
        hi = kruskal_weiss_chunk_size(W, 8, overhead=0.5, sigma_per_unit=0.3)
        assert hi > lo

    def test_monotone_decreasing_in_noise(self):
        lo = kruskal_weiss_chunk_size(W, 8, overhead=0.3, sigma_per_unit=0.5)
        hi = kruskal_weiss_chunk_size(W, 8, overhead=0.3, sigma_per_unit=0.1)
        assert hi > lo


class TestScheduler:
    def test_all_chunks_equal_except_last(self):
        result = simulate(platform(), W, FixedSizeChunking(chunk_size=30.0))
        sizes = [r.size for r in result.records]
        assert all(s == pytest.approx(30.0) for s in sizes[:-1])
        assert sizes[-1] <= 30.0 + 1e-9

    def test_work_conserved_and_valid(self):
        result = simulate(platform(), W, FixedSizeChunking(known_error=0.3))
        assert result.dispatched_work == pytest.approx(W, rel=1e-9)
        validate_schedule(result)

    def test_explicit_chunk_size_overrides_formula(self):
        result = simulate(platform(), W, FixedSizeChunking(chunk_size=100.0))
        assert result.records[0].size == pytest.approx(100.0)

    def test_min_chunk_floor(self):
        sched = FixedSizeChunking(known_error=100.0, min_chunk=7.0)
        result = simulate(platform(), W, sched)
        assert all(r.size >= 7.0 - 1e-9 for r in result.records[:-1])

    def test_self_scheduled_under_error(self):
        result = simulate(
            platform(), W, FixedSizeChunking(known_error=0.3), NormalErrorModel(0.3), seed=3
        )
        validate_schedule(result)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            FixedSizeChunking(chunk_size=0.0)

    def test_chunk_never_exceeds_workload(self):
        result = simulate(platform(), 10.0, FixedSizeChunking(chunk_size=1e9))
        assert result.num_chunks == 1
        assert result.records[0].size == pytest.approx(10.0)
