"""Tests for Weighted Factoring."""

import statistics

import pytest

from repro.core.factoring import Factoring
from repro.core.weighted_factoring import WeightedFactoring
from repro.errors import NormalErrorModel
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0


def hetero():
    return PlatformSpec(
        [
            WorkerSpec(S=3.0, B=30.0, cLat=0.1, nLat=0.05),
            WorkerSpec(S=1.0, B=20.0, cLat=0.1, nLat=0.05),
            WorkerSpec(S=1.0, B=20.0, cLat=0.1, nLat=0.05),
            WorkerSpec(S=0.5, B=15.0, cLat=0.1, nLat=0.05),
        ]
    )


class TestWeightedBatches:
    def test_first_chunk_sizes_proportional_to_speed(self):
        p = hetero()
        result = simulate(p, W, WeightedFactoring(min_chunk=1e-9))
        # Sizes decay continuously with `remaining`, so check the ratio of
        # each chunk to the remaining workload at its dispatch.
        s_tot = 5.5
        remaining = W
        for r in result.records[:4]:
            expected = remaining / 2 * p[r.worker].S / s_tot
            assert r.size == pytest.approx(expected, rel=1e-9)
            remaining -= r.size

    def test_chunk_compute_times_speed_balanced(self):
        p = hetero()
        result = simulate(p, W, WeightedFactoring(min_chunk=1e-9))
        # The first chunk of each worker costs (remaining/2/S_tot) seconds;
        # with continuous decay those times shrink with dispatch order but
        # stay within one decay step (factor 2) across a worker rotation.
        times = [r.size / p[r.worker].S for r in result.records[:4]]
        assert max(times) / min(times) < 2.0
        # Crucially they are far more balanced than unweighted equal-size
        # chunks would be (speed spread is 6x on this platform).
        assert max(times) / min(times) < 6.0 / 2.0

    def test_close_to_plain_factoring_on_homogeneous(self):
        # On homogeneous platforms weighted factoring only differs by its
        # continuous (vs per-batch) decay profile: mean makespans within 2%.
        p = homogeneous_platform(6, S=1.0, bandwidth_factor=1.5, cLat=0.1, nLat=0.05)
        def mean(sched):
            return statistics.mean(
                simulate(p, W, sched, NormalErrorModel(0.3), seed=s).makespan
                for s in range(20)
            )
        assert mean(WeightedFactoring()) == pytest.approx(mean(Factoring()), rel=0.02)

    def test_work_conserved_and_valid(self):
        result = simulate(hetero(), W, WeightedFactoring(), NormalErrorModel(0.3), seed=1)
        assert result.dispatched_work == pytest.approx(W, rel=1e-9)
        validate_schedule(result)

    def test_beats_plain_factoring_on_heterogeneous(self):
        p = hetero()
        def mean(sched):
            return statistics.mean(
                simulate(p, W, sched, NormalErrorModel(0.2), seed=s).makespan
                for s in range(15)
            )
        assert mean(WeightedFactoring()) < mean(Factoring())

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            WeightedFactoring(factor=1.0)
        from repro.core.weighted_factoring import WeightedFactoringSource

        with pytest.raises(ValueError):
            WeightedFactoringSource(hetero(), W, factor=2.0, min_chunk=-1.0)
        with pytest.raises(ValueError):
            WeightedFactoringSource(hetero(), W, factor=2.0, min_chunk=1.0, lookahead=0)

    def test_engines_identical(self):
        p = hetero()
        f = simulate(p, W, WeightedFactoring(), NormalErrorModel(0.3), seed=7, engine="fast")
        d = simulate(p, W, WeightedFactoring(), NormalErrorModel(0.3), seed=7, engine="des")
        assert f.records == d.records
