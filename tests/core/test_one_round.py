"""Tests for single-installment baselines."""

import pytest

from repro.core.one_round import EqualSplit, OneRound
from repro.platform import homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0


def platform(n=8):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=1.5, cLat=0.1, nLat=0.05)


class TestOneRound:
    def test_one_chunk_per_worker(self):
        result = simulate(platform(), W, OneRound())
        assert result.num_chunks == 8
        assert sorted(r.worker for r in result.records) == list(range(8))

    def test_sizes_decrease_with_dispatch_order(self):
        sizes = OneRound().chunk_sizes(platform(), W)
        assert all(b < a for a, b in zip(sizes, sizes[1:]))

    def test_work_conserved(self):
        result = simulate(platform(), W, OneRound())
        assert result.dispatched_work == pytest.approx(W, rel=1e-9)
        validate_schedule(result)

    def test_beats_equal_split_under_ideal_model(self):
        # The simultaneous-finish sizing compensates for sequential
        # distribution; equal split leaves late workers waiting.
        p = platform()
        one = simulate(p, W, OneRound()).makespan
        eq = simulate(p, W, EqualSplit()).makespan
        assert one < eq


class TestEqualSplit:
    def test_equal_chunks(self):
        result = simulate(platform(), W, EqualSplit())
        assert all(r.size == pytest.approx(W / 8) for r in result.records)

    def test_work_conserved(self):
        result = simulate(platform(), W, EqualSplit())
        assert result.dispatched_work == pytest.approx(W, rel=1e-9)
        validate_schedule(result)

    def test_plan_inspectable(self):
        plan = EqualSplit().plan(platform(n=4), W)
        assert len(plan) == 4
        assert plan.total_work == pytest.approx(W)
