"""Tests for the UMR solver: recurrence, optimality machinery, plan shape."""

import math

import pytest

from repro.core.umr import (
    MAX_ROUNDS,
    UMR,
    UMRPlan,
    solve_umr,
    solve_umr_lagrange,
    solve_umr_search,
    umr_predicted_makespan,
)
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim.analytic import analytic_makespan

W = 1000.0


def table1_platform(n=20, factor=1.8, cLat=0.3, nLat=0.1):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=factor, cLat=cLat, nLat=nLat)


class TestRecurrence:
    def test_chunks_sum_to_workload(self):
        plan = solve_umr(table1_platform(), W)
        assert plan.total_work == pytest.approx(W, rel=1e-9)

    def test_chunks_increase_between_rounds(self):
        plan = solve_umr(table1_platform(), W)
        per_round = [row[0] for row in plan.chunk_sizes]
        assert all(b >= a - 1e-9 for a, b in zip(per_round, per_round[1:]))

    def test_chunks_uniform_within_round_homogeneous(self):
        plan = solve_umr(table1_platform(), W)
        for row in plan.chunk_sizes[:-1]:  # last round absorbs the residual
            assert max(row) - min(row) < 1e-12

    def test_recurrence_holds_between_rounds(self):
        # chunk_{j+1} = theta*chunk_j + gamma with theta = B/(N*S) and
        # gamma = B*cLat/N - B*nLat (paper Section 3.2 induction).
        p = table1_platform(n=10, factor=1.5, cLat=0.4, nLat=0.2)
        plan = solve_umr(p, W)
        w = p[0]
        theta = w.B / (p.N * w.S)
        gamma = w.B * w.cLat / p.N - w.B * w.nLat
        chunks = [row[0] for row in plan.chunk_sizes]
        for a, b in zip(chunks[:-2], chunks[1:-1]):  # skip residual-bearing last
            assert b == pytest.approx(theta * a + gamma, rel=1e-9, abs=1e-9)

    def test_theta_matches_definition(self):
        p = table1_platform(n=25, factor=1.4)
        plan = solve_umr(p, W)
        assert plan.theta == pytest.approx(1.4)

    def test_no_idle_condition(self):
        # N*(nLat + chunk_{j+1}/B) == cLat + chunk_j/S for interior rounds.
        p = table1_platform(n=15, factor=1.6, cLat=0.5, nLat=0.3)
        plan = solve_umr(p, W)
        w = p[0]
        chunks = [row[0] for row in plan.chunk_sizes]
        for a, b in zip(chunks[:-2], chunks[1:-1]):
            dispatch = p.N * (w.nLat + b / w.B)
            compute = w.cLat + a / w.S
            assert dispatch == pytest.approx(compute, rel=1e-9)


class TestOptimality:
    def test_search_and_lagrange_agree_on_objective(self):
        for cl in (0.0, 0.2, 0.7, 1.0):
            for nl in (0.0, 0.2, 0.7, 1.0):
                p = table1_platform(cLat=cl, nLat=nl)
                f_search = solve_umr_search(p, W).predicted_makespan
                f_lagrange = solve_umr_lagrange(p, W).predicted_makespan
                assert f_lagrange == pytest.approx(f_search, rel=1e-6), (cl, nl)

    def test_search_finds_integer_minimum(self):
        # Exhaustive check: no other round count does better.
        p = table1_platform(n=10, factor=1.3, cLat=0.6, nLat=0.4)
        best = solve_umr_search(p, W)
        from repro.core.umr import _derive, _plan_from_t0, _t0_for_rounds

        d = _derive(p)
        for m in range(1, MAX_ROUNDS + 1):
            t0 = _t0_for_rounds(d, W, m)
            if t0 is None:
                continue
            plan = _plan_from_t0(p, d, t0, m, "search", W)
            if plan is None:
                continue
            assert best.predicted_makespan <= plan.predicted_makespan + 1e-6

    def test_single_round_when_workload_tiny(self):
        p = table1_platform(cLat=1.0, nLat=1.0)
        plan = solve_umr(p, 1.0)
        assert plan.num_rounds == 1

    def test_more_rounds_with_higher_latency_cost_tradeoff(self):
        # Zero latencies favour many rounds; very high cLat favours few.
        p_free = table1_platform(cLat=0.0, nLat=0.0)
        p_costly = table1_platform(cLat=1.0, nLat=1.0)
        assert solve_umr(p_free, W).num_rounds > solve_umr(p_costly, W).num_rounds

    def test_predicted_makespan_matches_closed_form(self):
        p = table1_platform()
        plan = solve_umr(p, W)
        assert plan.predicted_makespan == pytest.approx(
            umr_predicted_makespan(p, plan), rel=1e-9
        )

    def test_predicted_makespan_matches_simulated(self):
        # The no-idle construction means the analytic replay of the plan
        # achieves exactly the model objective.
        for cl, nl in [(0.1, 0.1), (0.3, 0.9), (0.0, 0.5), (1.0, 0.0)]:
            p = table1_platform(cLat=cl, nLat=nl)
            plan = solve_umr(p, W)
            simulated = analytic_makespan(p, plan.to_chunk_plan())
            assert simulated == pytest.approx(plan.predicted_makespan, rel=1e-9)

    def test_umr_beats_one_round_with_latencies(self):
        from repro.core.one_round import OneRound
        from repro.sim import simulate

        p = table1_platform(cLat=0.2, nLat=0.1)
        umr = simulate(p, W, UMR()).makespan
        one = simulate(p, W, OneRound()).makespan
        assert umr < one


class TestHeterogeneous:
    def test_chunks_scale_with_speed(self, hetero_platform):
        plan = solve_umr(hetero_platform, W)
        assert plan.total_work == pytest.approx(W, rel=1e-9)
        # Within a round, chunk_i = S_i * (T_j - cLat_i): faster workers get
        # proportionally more.
        row = plan.chunk_sizes[0]
        t0 = plan.round_times[0]
        for w, c in zip(hetero_platform, row):
            assert c == pytest.approx(w.S * (t0 - w.cLat), rel=1e-9, abs=1e-9)

    def test_round_compute_time_uniform_across_workers(self, hetero_platform):
        plan = solve_umr(hetero_platform, W)
        for t, row in list(zip(plan.round_times, plan.chunk_sizes))[:-1]:
            for w, c in zip(hetero_platform, row):
                assert w.cLat + c / w.S == pytest.approx(t, rel=1e-9)

    def test_reduces_to_homogeneous_solution(self):
        p = table1_platform(n=12, factor=1.5, cLat=0.3, nLat=0.2)
        plan = solve_umr(p, W)
        # The homogeneous recurrence expressed through round times:
        # T_j = cLat + chunk_j / S.
        w = p[0]
        for t, row in list(zip(plan.round_times, plan.chunk_sizes))[:-1]:
            assert t == pytest.approx(w.cLat + row[0] / w.S, rel=1e-9)


class TestEdgeCases:
    def test_zero_latency_corner(self):
        plan = solve_umr(table1_platform(cLat=0.0, nLat=0.0), W)
        assert plan.total_work == pytest.approx(W)
        assert plan.num_rounds >= 2

    def test_theta_below_one_degrades_to_single_round(self):
        # B < N*S: increasing chunks are impossible (full utilization is
        # violated).  UMR as published requires nondecreasing rounds, so
        # the solver falls back to a single round (the paper's "due to the
        # way in which UMR operates" behaviour at high latencies).
        p = homogeneous_platform(10, S=1.0, B=5.0, cLat=0.1, nLat=0.1)
        plan = solve_umr(p, W)
        assert plan.theta < 1.0
        assert plan.num_rounds == 1
        assert plan.total_work == pytest.approx(W)
        simulated = analytic_makespan(p, plan.to_chunk_plan())
        assert simulated == pytest.approx(plan.predicted_makespan, rel=1e-9)

    def test_allow_decreasing_recovers_better_schedules(self):
        # Lifting the UMR restriction admits decreasing-chunk no-idle
        # schedules, which are strictly better here (an upper baseline).
        p = homogeneous_platform(10, S=1.0, B=5.0, cLat=0.1, nLat=0.1)
        restricted = solve_umr(p, W)
        free = solve_umr(p, W, allow_decreasing=True)
        assert free.num_rounds > 1
        assert free.predicted_makespan < restricted.predicted_makespan
        chunks = [row[0] for row in free.chunk_sizes]
        assert all(b <= a + 1e-9 for a, b in zip(chunks, chunks[1:]))
        simulated = analytic_makespan(p, free.to_chunk_plan())
        assert simulated == pytest.approx(free.predicted_makespan, rel=1e-9)

    def test_high_nlat_uses_one_round(self):
        # The paper: "in high latency situations RUMR often uses only one
        # round in phase #1 (due to the way in which UMR operates)."
        p = table1_platform(cLat=0.3, nLat=0.9)
        assert solve_umr(p, W).num_rounds == 1

    def test_theta_exactly_one(self):
        p = homogeneous_platform(8, S=1.0, B=8.0, cLat=0.1, nLat=0.1)
        plan = solve_umr(p, W)
        assert plan.total_work == pytest.approx(W)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            solve_umr(table1_platform(), W, method="magic")

    def test_nonpositive_work_rejected(self):
        with pytest.raises(ValueError):
            solve_umr(table1_platform(), 0.0)

    def test_single_worker(self):
        p = homogeneous_platform(1, S=1.0, B=2.0, cLat=0.1, nLat=0.1)
        plan = solve_umr(p, W)
        assert plan.total_work == pytest.approx(W)

    def test_scheduler_name(self):
        assert UMR().name == "UMR"

    def test_scheduler_rejects_bad_method(self):
        with pytest.raises(ValueError):
            UMR(method="nope")

    def test_plan_round_times_length(self):
        plan = solve_umr(table1_platform(), W)
        assert len(plan.round_times) == plan.num_rounds
        assert isinstance(plan, UMRPlan)

    def test_chunk_plan_round_major_order(self):
        p = table1_platform(n=3)
        plan = solve_umr(p, W).to_chunk_plan()
        rounds = [c.round_index for c in plan]
        assert rounds == sorted(rounds)
        workers_in_round0 = [c.worker for c in plan if c.round_index == 0]
        assert workers_in_round0 == [0, 1, 2]

    def test_prestaged_data_infinite_bandwidth(self):
        p = PlatformSpec([WorkerSpec(S=1.0, B=math.inf, cLat=0.1, nLat=0.05)] * 4)
        plan = solve_umr(p, W)
        assert plan.total_work == pytest.approx(W)

    def test_closed_form_rejects_heterogeneous(self, hetero_platform):
        plan = solve_umr(hetero_platform, W)
        with pytest.raises(ValueError, match="homogeneous"):
            umr_predicted_makespan(hetero_platform, plan)

    def test_solver_memoization_returns_same_object(self):
        p = table1_platform()
        assert solve_umr(p, W) is solve_umr(p, W)
        assert solve_umr(p, W) is not solve_umr(p, W + 1.0)

    def test_plan_chunk0_property(self):
        plan = solve_umr(table1_platform(), W)
        assert plan.chunk0 == plan.chunk_sizes[0][0]
