"""Tests for resource selection under the full-utilization condition."""

import pytest

from repro.core.selection import select_workers
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform


def test_feasible_platform_keeps_all_workers():
    p = homogeneous_platform(10, S=1.0, bandwidth_factor=1.5)
    assert select_workers(p) == list(range(10))


def test_infeasible_platform_drops_workers():
    # B = 0.5*N*S: only about half the workers can be fed.
    p = homogeneous_platform(10, S=1.0, B=5.0)
    chosen = select_workers(p)
    assert 0 < len(chosen) < 10
    sub = p.subset(chosen)
    assert sub.utilization_sum() < 1.0


def test_selection_prefers_high_bandwidth():
    p = PlatformSpec(
        [
            WorkerSpec(S=1.0, B=1.1),   # barely feasible alone
            WorkerSpec(S=1.0, B=50.0),  # cheap to feed
            WorkerSpec(S=1.0, B=40.0),
        ]
    )
    chosen = select_workers(p)
    assert 1 in chosen and 2 in chosen


def test_at_least_one_worker_always_selected():
    # A single worker that alone violates the condition is still selected.
    p = PlatformSpec([WorkerSpec(S=10.0, B=1.0)])
    assert select_workers(p) == [0]


def test_result_in_original_order():
    p = PlatformSpec(
        [WorkerSpec(S=1.0, B=10.0), WorkerSpec(S=1.0, B=30.0), WorkerSpec(S=1.0, B=20.0)]
    )
    chosen = select_workers(p)
    assert chosen == sorted(chosen)


def test_margin_tightens_selection():
    p = homogeneous_platform(10, S=1.0, B=20.0)  # sum = 0.5 at full set
    assert len(select_workers(p, margin=1.0)) == 10
    assert len(select_workers(p, margin=0.3)) < 10


def test_bad_margin_rejected():
    p = homogeneous_platform(2, S=1.0, B=5.0)
    with pytest.raises(ValueError):
        select_workers(p, margin=0.0)


def test_custom_score_function():
    p = PlatformSpec([WorkerSpec(S=i + 1.0, B=100.0) for i in range(3)])
    # Prefer slow workers: with a generous link all still fit.
    chosen = select_workers(p, score=lambda i, plat: -plat[i].S)
    assert chosen == [0, 1, 2]


def test_selected_subset_feasible_for_umr():
    from repro.core.umr import solve_umr

    p = homogeneous_platform(12, S=1.0, B=6.0)  # infeasible as a whole
    sub = p.subset(select_workers(p))
    plan = solve_umr(sub, 500.0)
    assert plan.total_work == pytest.approx(500.0)
    assert plan.theta > 1.0
