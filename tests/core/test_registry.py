"""Tests for the scheduler registry."""

import pytest

from repro.core import RUMR, UMR, available_schedulers, make_scheduler
from repro.core.factoring import Factoring
from repro.core.multi_installment import MultiInstallment


def test_paper_algorithms_all_registered():
    names = available_schedulers()
    for required in ("RUMR", "UMR", "MI-1", "MI-2", "MI-3", "MI-4", "Factoring", "FSC"):
        assert required in names


def test_fig6_variants_registered():
    names = available_schedulers()
    for pct in (50, 60, 70, 80, 90):
        assert f"RUMR_{pct}" in names


def test_fig7_variant_registered():
    assert "RUMR-plain" in available_schedulers()


def test_make_scheduler_types():
    assert isinstance(make_scheduler("UMR"), UMR)
    assert isinstance(make_scheduler("Factoring"), Factoring)
    assert isinstance(make_scheduler("MI-3"), MultiInstallment)
    assert make_scheduler("MI-3").rounds == 3


def test_rumr_receives_error_estimate():
    sched = make_scheduler("RUMR", error=0.25)
    assert isinstance(sched, RUMR)
    assert sched.known_error == 0.25


def test_umr_ignores_error_estimate():
    assert isinstance(make_scheduler("UMR", error=0.4), UMR)


def test_unknown_name_rejected_with_listing():
    with pytest.raises(ValueError, match="available"):
        make_scheduler("SuperScheduler")


def test_names_match_instances():
    for name in available_schedulers():
        assert make_scheduler(name, 0.2).name == name
