"""Tests for RUMR: phase split, chunk floor, dispatch behaviour."""

import pytest

from repro.core import UMR, Factoring, RUMR
from repro.core.rumr import phase2_min_chunk, phase2_workload, round_overhead
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0


def platform(n=20, factor=1.8, cLat=0.3, nLat=0.1):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=factor, cLat=cLat, nLat=nLat)


class TestRoundOverhead:
    def test_homogeneous_formula(self):
        p = platform(n=20, cLat=0.3, nLat=0.1)
        assert round_overhead(p) == pytest.approx(0.3 + 20 * 0.1)

    def test_zero_latency(self):
        assert round_overhead(platform(cLat=0.0, nLat=0.0)) == 0.0


class TestPhaseSplit:
    def test_zero_error_means_pure_umr(self):
        assert phase2_workload(platform(), W, 0.0) == 0.0

    def test_error_above_one_means_pure_factoring(self):
        assert phase2_workload(platform(), W, 1.0) == W
        assert phase2_workload(platform(), W, 1.7) == W

    def test_intermediate_error_reserves_error_fraction(self):
        p = platform(cLat=0.1, nLat=0.0)  # tiny overhead, threshold passes
        assert phase2_workload(p, W, 0.3) == pytest.approx(0.3 * W)

    def test_per_worker_threshold_disables_phase2(self):
        # error*W/N < cLat + nLat*N  =>  no phase 2.
        p = platform(n=50, cLat=1.0, nLat=1.0)  # overhead = 51 per round
        # error=0.5: per-worker phase-2 work = 0.5*1000/50 = 10 < 51.
        assert phase2_workload(p, W, 0.5) == 0.0

    def test_total_threshold_variant(self):
        p = platform(n=50, cLat=1.0, nLat=1.0)  # overhead = 51
        # total rule: error*W = 500 >= 51, so phase 2 IS used.
        assert phase2_workload(p, W, 0.5, threshold_rule="total") == pytest.approx(500.0)

    def test_unknown_threshold_rule_rejected(self):
        with pytest.raises(ValueError):
            phase2_workload(platform(), W, 0.3, threshold_rule="maybe")

    def test_scheduler_split_known_error(self):
        p = platform(cLat=0.1, nLat=0.0)
        w1, w2 = RUMR(known_error=0.2).split(p, W)
        assert w2 == pytest.approx(0.2 * W)
        assert w1 + w2 == pytest.approx(W)

    def test_scheduler_split_unknown_error_uses_fixed_fraction(self):
        w1, w2 = RUMR(known_error=None).split(platform(), W)
        assert w1 == pytest.approx(0.8 * W)

    def test_fixed_fraction_bypasses_threshold(self):
        # Even where the error heuristic would skip phase 2, RUMR_90 must
        # reserve exactly 10% (the paper notes this explicitly for Fig 6).
        p = platform(n=50, cLat=1.0, nLat=1.0)
        w1, w2 = RUMR(known_error=0.1, phase1_fraction=0.9).split(p, W)
        assert w2 == pytest.approx(0.1 * W)


class TestMinChunk:
    def test_known_error_floor(self):
        p = platform(n=20, cLat=0.3, nLat=0.1)
        # (cLat + nLat*N) / error
        assert phase2_min_chunk(p, 0.2) == pytest.approx((0.3 + 2.0) / 0.2)

    def test_unknown_error_floor_is_hagerup_rule(self):
        p = platform(n=20, cLat=0.3, nLat=0.1)
        assert phase2_min_chunk(p, None) == pytest.approx(2.3)

    def test_absolute_floor_applies(self):
        p = platform(cLat=0.0, nLat=0.0)
        assert phase2_min_chunk(p, 0.3) == 1.0  # one workload unit


class TestDegenerateEquivalences:
    def test_rumr_zero_error_equals_umr(self):
        p = platform()
        a = simulate(p, W, RUMR(known_error=0.0), NoError())
        b = simulate(p, W, UMR(), NoError())
        assert a.makespan == b.makespan
        assert [r.size for r in a.records] == [r.size for r in b.records]

    def test_rumr_error_above_one_equals_factoring_structure(self):
        p = platform()
        result = simulate(p, W, RUMR(known_error=1.2))
        assert all(r.phase == "rumr-p2" for r in result.records)
        sizes = [r.size for r in result.records]
        assert all(b <= a + 1e-9 for a, b in zip(sizes, sizes[1:]))

    def test_rumr_with_real_error_runs_both_phases(self):
        p = platform(cLat=0.1, nLat=0.0)
        result = simulate(p, W, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=5)
        phases = result.phase_work()
        p1 = sum(v for k, v in phases.items() if k.startswith("rumr-p1"))
        p2 = phases.get("rumr-p2", 0.0)
        assert p1 == pytest.approx(0.7 * W, rel=1e-6)
        assert p2 == pytest.approx(0.3 * W, rel=1e-6)
        validate_schedule(result)

    def test_phase1_precedes_phase2(self):
        p = platform(cLat=0.1, nLat=0.0)
        result = simulate(p, W, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=5)
        labels = [r.phase for r in result.records]
        first_p2 = labels.index("rumr-p2")
        assert all(lab == "rumr-p2" for lab in labels[first_p2:])

    def test_phase1_chunks_increase(self):
        p = platform(cLat=0.1, nLat=0.0)
        result = simulate(p, W, RUMR(known_error=0.3))
        p1_sizes = [r.size for r in result.records if r.phase.startswith("rumr-p1")]
        n = p.N
        round_means = [
            sum(p1_sizes[i : i + n]) / n for i in range(0, len(p1_sizes) - n + 1, n)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(round_means[:-1], round_means[1:]))


class TestOutOfOrder:
    def test_plain_variant_keeps_planned_order_without_error(self):
        p = platform()
        a = simulate(p, W, RUMR(known_error=0.3, out_of_order=False))
        workers = [r.worker for r in a.records if r.phase.startswith("rumr-p1")]
        n = p.N
        for start in range(0, len(workers) - n + 1, n):
            assert workers[start : start + n] == list(range(n))

    def test_out_of_order_matches_plain_under_zero_error(self):
        # Without prediction errors no worker finishes prematurely, so the
        # greedy reordering never triggers (chunk at the head of a round
        # always goes to the lowest-index pending worker).
        p = platform()
        a = simulate(p, W, RUMR(known_error=0.3, out_of_order=True))
        b = simulate(p, W, RUMR(known_error=0.3, out_of_order=False))
        assert a.makespan == pytest.approx(b.makespan)

    def test_both_variants_valid_under_error(self):
        p = platform()
        for ooo in (True, False):
            r = simulate(
                p, W, RUMR(known_error=0.3, out_of_order=ooo), NormalErrorModel(0.3), seed=9
            )
            validate_schedule(r)

    def test_names(self):
        assert RUMR(known_error=0.2).name == "RUMR"
        assert RUMR(known_error=0.2, out_of_order=False).name == "RUMR-plain"
        assert RUMR(phase1_fraction=0.8).name == "RUMR_80"


class TestValidation:
    def test_bad_known_error_rejected(self):
        with pytest.raises(ValueError):
            RUMR(known_error=-0.1)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            RUMR(phase1_fraction=1.5)

    def test_bad_threshold_rule_rejected(self):
        with pytest.raises(ValueError):
            RUMR(known_error=0.1, threshold_rule="sometimes")

    def test_bad_unknown_fraction_rejected(self):
        with pytest.raises(ValueError):
            RUMR(unknown_phase1_fraction=-0.2)

    def test_work_conservation_across_settings(self):
        p = platform(cLat=0.2, nLat=0.05)
        for err in (0.0, 0.1, 0.3, 0.7, 1.0, 2.0):
            result = simulate(p, W, RUMR(known_error=err), NormalErrorModel(0.3), seed=1)
            assert result.dispatched_work == pytest.approx(W, rel=1e-6)


class TestRobustnessStory:
    def test_rumr_beats_umr_under_large_error(self):
        p = platform(cLat=0.1, nLat=0.0)
        err = 0.4
        rumr_total, umr_total = 0.0, 0.0
        for s in range(12):
            em = NormalErrorModel(err)
            rumr_total += simulate(p, W, RUMR(known_error=err), em, seed=s).makespan
            umr_total += simulate(p, W, UMR(), em, seed=s).makespan
        assert rumr_total < umr_total

    def test_rumr_beats_factoring_under_small_error(self):
        p = platform()
        err = 0.05
        rumr_total, fact_total = 0.0, 0.0
        for s in range(12):
            em = NormalErrorModel(err)
            rumr_total += simulate(p, W, RUMR(known_error=err), em, seed=s).makespan
            fact_total += simulate(p, W, Factoring(), em, seed=s).makespan
        assert rumr_total < fact_total
