"""Tests for AdaptiveRUMR and the online error estimator."""

import statistics

import pytest

from repro.core import RUMR, UMR, AdaptiveRUMR
from repro.core.adaptive import OnlineErrorEstimator
from repro.core.base import CompletionNote
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0


def platform(n=20, cLat=0.3, nLat=0.1):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=1.8, cLat=cLat, nLat=nLat)


class _FakeView:
    """Minimal MasterView stand-in feeding canned completion notes."""

    def __init__(self, notes):
        self._notes = tuple(notes)

    def observed_completions(self):
        return self._notes


class TestOnlineErrorEstimator:
    def test_no_estimate_before_two_samples(self):
        est = OnlineErrorEstimator(platform(n=2))
        assert est.estimate() is None

    def test_exact_intervals_give_zero_error(self):
        p = platform(n=1, cLat=0.0)
        est = OnlineErrorEstimator(p)
        # Chunks of 10 units back to back: intervals exactly 10 s.
        notes = [
            CompletionNote(time=10.0 * (k + 1), chunk_index=k, worker=0, size=10.0)
            for k in range(6)
        ]
        est.consume(_FakeView(notes), {k: 10.0 for k in range(6)})
        assert est.samples == 5
        assert est.estimate() == pytest.approx(0.0, abs=1e-12)

    def test_noisy_intervals_recover_magnitude(self):
        import numpy as np

        p = platform(n=1, cLat=0.0)
        est = OnlineErrorEstimator(p)
        rng = np.random.default_rng(3)
        t = 0.0
        notes = []
        for k in range(400):
            t += 10.0 * rng.normal(1.0, 0.25)
            notes.append(CompletionNote(time=t, chunk_index=k, worker=0, size=10.0))
        est.consume(_FakeView(notes), {k: 10.0 for k in range(400)})
        assert est.estimate() == pytest.approx(0.25, abs=0.04)

    def test_outlier_intervals_discarded(self):
        p = platform(n=1, cLat=0.0)
        est = OnlineErrorEstimator(p, outlier_factor=3.0)
        notes = [
            CompletionNote(time=10.0, chunk_index=0, worker=0, size=10.0),
            # A 100 s gap (worker idled): must not poison the estimate.
            CompletionNote(time=110.0, chunk_index=1, worker=0, size=10.0),
            CompletionNote(time=120.0, chunk_index=2, worker=0, size=10.0),
        ]
        est.consume(_FakeView(notes), {0: 10.0, 1: 10.0, 2: 10.0})
        assert est.samples == 1  # only the 110->120 interval

    def test_incremental_consumption(self):
        p = platform(n=1, cLat=0.0)
        est = OnlineErrorEstimator(p)
        notes = [
            CompletionNote(time=10.0 * (k + 1), chunk_index=k, worker=0, size=10.0)
            for k in range(4)
        ]
        est.consume(_FakeView(notes[:2]), {k: 10.0 for k in range(4)})
        first = est.samples
        est.consume(_FakeView(notes), {k: 10.0 for k in range(4)})
        assert est.samples == 3 and first == 1


class TestAdaptiveRUMR:
    def test_zero_error_stays_pure_umr(self):
        p = platform()
        a = simulate(p, W, AdaptiveRUMR(), NoError())
        b = simulate(p, W, UMR(), NoError())
        assert a.makespan == pytest.approx(b.makespan)
        assert all(r.phase.startswith("adaptive-p1") for r in a.records)

    def test_switches_to_phase2_under_error(self):
        p = platform()
        result = simulate(p, W, AdaptiveRUMR(), NormalErrorModel(0.4), seed=2)
        phases = {r.phase.split("-round")[0] for r in result.records}
        assert "adaptive-p2" in phases
        validate_schedule(result)

    def test_work_conserved(self):
        p = platform()
        for err, seed in [(0.1, 0), (0.3, 1), (0.6, 2)]:
            result = simulate(p, W, AdaptiveRUMR(), NormalErrorModel(err), seed=seed)
            assert result.dispatched_work == pytest.approx(W, rel=1e-9)

    def test_recovers_most_of_oracle_gap(self):
        # Mean over seeds: adaptive must close at least half the gap between
        # UMR (no robustness) and RUMR with the true error (oracle).
        p = platform()
        err = 0.4
        def mean(sched):
            return statistics.mean(
                simulate(p, W, sched, NormalErrorModel(err), seed=s).makespan
                for s in range(15)
            )
        umr = mean(UMR())
        oracle = mean(RUMR(known_error=err))
        adaptive = mean(AdaptiveRUMR())
        assert oracle < umr  # the gap exists at all
        assert adaptive < umr - 0.5 * (umr - oracle)

    def test_estimator_diagnostics_exposed(self):
        p = platform()
        sched = AdaptiveRUMR()
        source = sched.create_source(p, W)
        assert source.switched_at is None
        result = None
        # Drive through the public simulate() path with a probing subclass.
        class Probe(AdaptiveRUMR):
            def create_source(self, platform_, total_work):
                self.last = super().create_source(platform_, total_work)
                return self.last

        probe = Probe()
        result = simulate(p, W, probe, NormalErrorModel(0.4), seed=5)
        assert result is not None
        assert probe.last.switched_at is not None
        assert probe.last.final_estimate is not None
        assert 0.0 < probe.last.final_estimate < 1.0

    def test_engines_identical(self):
        p = platform()
        f = simulate(p, W, AdaptiveRUMR(), NormalErrorModel(0.3), seed=9, engine="fast")
        d = simulate(p, W, AdaptiveRUMR(), NormalErrorModel(0.3), seed=9, engine="des")
        assert f.makespan == d.makespan
        assert f.records == d.records

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRUMR(min_samples=1)

    def test_registered(self):
        from repro.core import available_schedulers, make_scheduler

        assert "AdaptiveRUMR" in available_schedulers()
        assert isinstance(make_scheduler("AdaptiveRUMR", 0.3), AdaptiveRUMR)
