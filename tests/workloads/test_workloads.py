"""Tests for the divisible-workload application models."""

import numpy as np
import pytest

from repro.platform import homogeneous_platform
from repro.workloads import ImageFeatureExtraction, SequenceMatching, SignalScan


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestImageFeatureExtraction:
    def test_total_units_counts_blocks(self):
        wl = ImageFeatureExtraction(width=1024, height=512, block=64)
        assert wl.total_units == (1024 / 64) * (512 / 64)

    def test_partial_blocks_rounded_up(self):
        wl = ImageFeatureExtraction(width=100, height=100, block=64)
        assert wl.total_units == 4  # 2x2 blocks

    def test_mean_cost_independent_of_complexity(self, rng):
        wl = ImageFeatureExtraction(complexity_sigma=0.8, base_cost=2.0)
        costs = [wl.unit_cost(rng) for _ in range(20000)]
        assert np.mean(costs) == pytest.approx(2.0, rel=0.05)

    def test_zero_sigma_is_deterministic(self, rng):
        wl = ImageFeatureExtraction(complexity_sigma=0.0, base_cost=1.5)
        assert wl.unit_cost(rng) == 1.5
        assert wl.estimate_error(chunk_units=10, samples=20, seed=0) == 0.0

    def test_error_shrinks_with_chunk_size(self):
        wl = ImageFeatureExtraction(complexity_sigma=0.8)
        small = wl.estimate_error(chunk_units=1, samples=300, seed=1)
        large = wl.estimate_error(chunk_units=100, samples=300, seed=1)
        assert large < small

    def test_bytes_per_unit(self):
        wl = ImageFeatureExtraction(block=64)
        assert wl.bytes_per_unit(bytes_per_pixel=3) == 64 * 64 * 3

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            ImageFeatureExtraction(width=0)
        with pytest.raises(ValueError):
            ImageFeatureExtraction(complexity_sigma=-1)
        with pytest.raises(ValueError):
            ImageFeatureExtraction(base_cost=0)


class TestSequenceMatching:
    def test_mean_length_calibration(self, rng):
        wl = SequenceMatching(mean_length=350.0, tail_index=3.0)
        lengths = [wl.sequence_length(rng) for _ in range(50000)]
        assert np.mean(lengths) == pytest.approx(350.0, rel=0.05)

    def test_heavier_tail_means_larger_error(self):
        heavy = SequenceMatching(tail_index=2.2)
        light = SequenceMatching(tail_index=8.0)
        assert heavy.estimate_error(10, samples=400, seed=2) > light.estimate_error(
            10, samples=400, seed=2
        )

    def test_mean_unit_cost(self):
        wl = SequenceMatching(mean_length=400.0, cost_per_letter=0.005)
        assert wl.mean_unit_cost() == pytest.approx(2.0)

    def test_tail_index_must_give_finite_variance(self):
        with pytest.raises(ValueError):
            SequenceMatching(tail_index=2.0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            SequenceMatching(num_sequences=0)
        with pytest.raises(ValueError):
            SequenceMatching(mean_length=-1)


class TestSignalScan:
    def test_total_units(self):
        wl = SignalScan(duration_s=10.0, sample_rate=1000.0, window=100)
        assert wl.total_units == 100

    def test_mean_cost_accounts_for_early_exit(self):
        wl = SignalScan(early_exit_fraction=0.5, early_exit_cost_ratio=0.5, base_cost=1.0)
        assert wl.mean_unit_cost() == pytest.approx(0.75)

    def test_low_inherent_error(self):
        # The signal scan is the predictable workload of the trio.
        signal = SignalScan(early_exit_fraction=0.1)
        seq = SequenceMatching(tail_index=2.5)
        assert signal.estimate_error(20, samples=300, seed=3) < seq.estimate_error(
            20, samples=300, seed=3
        )

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            SignalScan(duration_s=0)
        with pytest.raises(ValueError):
            SignalScan(early_exit_fraction=1.0)
        with pytest.raises(ValueError):
            SignalScan(early_exit_cost_ratio=0.0)


class TestCalibration:
    def test_calibrated_platform_rescales_compute_rate(self):
        wl = SequenceMatching(mean_length=400.0, cost_per_letter=0.005)  # 2 s/unit
        p = homogeneous_platform(4, S=3.0, B=100.0, cLat=0.1)
        cal = wl.calibrated_platform(p)
        assert cal[0].S == pytest.approx(1.5)  # 3 ref-units/s over 2 s/unit
        assert cal[0].B == 100.0 and cal[0].cLat == 0.1

    def test_estimate_error_requires_positive_chunk(self):
        with pytest.raises(ValueError):
            SignalScan().estimate_error(0)

    def test_sample_unit_costs_stats(self):
        wl = SignalScan(early_exit_fraction=0.0)
        stats = wl.sample_unit_costs(samples=50, seed=1)
        assert stats.mean == pytest.approx(1.0)
        assert stats.std == pytest.approx(0.0)
        assert stats.coefficient_of_variation == 0.0

    def test_schedulers_run_on_calibrated_workload(self):
        from repro.core import RUMR
        from repro.errors import NormalErrorModel
        from repro.sim import simulate, validate_schedule

        wl = ImageFeatureExtraction(width=2048, height=2048, block=64)
        p = wl.calibrated_platform(
            homogeneous_platform(8, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.05)
        )
        err = wl.estimate_error(chunk_units=wl.total_units / 64, samples=100, seed=4)
        result = simulate(
            p, wl.total_units, RUMR(known_error=err), NormalErrorModel(err), seed=0
        )
        validate_schedule(result)
