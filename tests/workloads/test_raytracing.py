"""Tests for the ray-tracing workload (spatially correlated costs)."""

import numpy as np
import pytest

from repro.workloads import RayTracing


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestScene:
    def test_tile_count(self):
        wl = RayTracing(width=640, height=320, tile=32)
        assert wl.total_units == (640 / 32) * (320 / 32)

    def test_field_is_deterministic_per_seed(self):
        a = RayTracing(seed=4).complexity_field
        b = RayTracing(seed=4).complexity_field
        c = RayTracing(seed=5).complexity_field
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_field_mean_near_one(self):
        wl = RayTracing(width=4096, height=4096, tile=32, sigma=0.7)
        assert wl.complexity_field.mean() == pytest.approx(1.0, abs=0.15)

    def test_adjacent_tiles_correlated(self):
        wl = RayTracing(sigma=0.7, correlation=0.95)
        field = np.log(wl.complexity_field)
        r = np.corrcoef(field[:-1], field[1:])[0, 1]
        assert r > 0.8

    def test_zero_correlation_uncorrelated(self):
        wl = RayTracing(width=4096, height=4096, tile=32, correlation=0.0)
        field = np.log(wl.complexity_field)
        r = np.corrcoef(field[:-1], field[1:])[0, 1]
        assert abs(r) < 0.1

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RayTracing(correlation=1.0)
        with pytest.raises(ValueError):
            RayTracing(sigma=-1)
        with pytest.raises(ValueError):
            RayTracing(width=0)
        with pytest.raises(ValueError):
            RayTracing(base_cost=0.0)


class TestCosts:
    def test_unit_cost_scans_the_field(self, rng):
        wl = RayTracing(jitter_sigma=0.0)
        costs = [wl.unit_cost(rng) for _ in range(5)]
        assert costs == pytest.approx(list(wl.complexity_field[:5] * wl.base_cost))

    def test_scan_wraps_around(self, rng):
        wl = RayTracing(width=64, height=64, tile=32, jitter_sigma=0.0)  # 4 tiles
        first = [wl.unit_cost(rng) for _ in range(4)]
        second = [wl.unit_cost(rng) for _ in range(4)]
        assert first == second

    def test_reset_scan(self, rng):
        wl = RayTracing(jitter_sigma=0.0)
        a = wl.unit_cost(rng)
        wl.reset_scan()
        assert wl.unit_cost(rng) == a

    def test_mean_unit_cost_matches_field(self):
        wl = RayTracing(base_cost=2.0)
        assert wl.mean_unit_cost() == pytest.approx(2.0 * wl.complexity_field.mean())


class TestCorrelationMatters:
    def test_chunk_error_decays_slowly_under_correlation(self):
        correlated = RayTracing(sigma=0.7, correlation=0.95, seed=1)
        iid = RayTracing(sigma=0.7, correlation=0.0, seed=1)
        e_corr = correlated.estimate_error(50, samples=150, seed=2)
        e_iid = iid.estimate_error(50, samples=150, seed=2)
        # The correlated scene retains far more chunk-level uncertainty.
        assert e_corr > 2.5 * e_iid

    def test_end_to_end_with_rumr(self):
        from repro.core import RUMR
        from repro.errors import NormalErrorModel
        from repro.platform import homogeneous_platform
        from repro.sim import simulate, validate_schedule

        wl = RayTracing(width=1920, height=1080, tile=64)
        hardware = homogeneous_platform(8, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.05)
        platform = wl.calibrated_platform(hardware)
        error = wl.estimate_error(chunk_units=wl.total_units / 32, samples=60, seed=3)
        result = simulate(
            platform, wl.total_units, RUMR(known_error=min(error, 0.99)),
            NormalErrorModel(min(error, 0.99)), seed=0,
        )
        validate_schedule(result)
