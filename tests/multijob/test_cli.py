"""CLI smoke: ``repro multijob`` end to end."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.multijob


def test_multijob_defaults(capsys):
    assert main(["multijob", "--n", "4", "--work", "100"]) == 0
    out = capsys.readouterr().out
    assert "job" in out and "slowdown" in out
    assert "fcfs" in out and "8 jobs" in out


def test_multijob_policy_arrivals_and_json(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    assert main([
        "multijob", "--n", "4", "--scheduler", "UMR", "--seed", "3",
        "--arrivals", "bursty:bursts=2,size=3,gap=200,work=80",
        "--policy", "interleaved:slices=2",
        "--json", str(path),
    ]) == 0
    out = capsys.readouterr().out
    assert "interleaved:slices=2" in out and "UMR" in out
    metrics = json.loads(path.read_text())
    assert metrics["num_jobs"] == 6
    assert metrics["policy"] == "interleaved:slices=2"
    assert metrics["scheduler"] == "UMR"


def test_multijob_trace_file_replay(tmp_path, capsys):
    from repro.workloads import PoissonArrivals, arrivals_to_jsonl

    trace = tmp_path / "arrivals.jsonl"
    trace.write_text(
        arrivals_to_jsonl(PoissonArrivals(rate=0.05, jobs=3, work=60.0).generate(1))
    )
    assert main(["multijob", "--n", "4", "--arrivals", f"trace:{trace}"]) == 0
    assert "3 jobs" in capsys.readouterr().out


def test_multijob_under_faults_legacy_frame(capsys):
    # The legacy job frame re-realizes crashes per job, so losses recur.
    assert main([
        "multijob", "--n", "4", "--work", "150", "--seed", "5",
        "--fault", "crash:p=0.8,tmax=20", "--fault-frame", "job",
    ]) == 0
    assert "work lost to faults" in capsys.readouterr().out


def test_multijob_stream_frame_reports_health(capsys):
    assert main([
        "multijob", "--n", "4", "--work", "150", "--seed", "5",
        "--fault", "crash:p=0.8,tmax=20",
    ]) == 0
    out = capsys.readouterr().out
    assert "stream health [drop]:" in out
    assert "worker(s) excluded" in out
    assert "goodput=" in out


@pytest.mark.parametrize(
    "failure_policy", ("drop", "retry:attempts=2,backoff=3", "resubmit")
)
def test_multijob_failure_policy_smoke(capsys, failure_policy, tmp_path):
    path = tmp_path / "metrics.json"
    assert main([
        "multijob", "--n", "4", "--work", "150", "--seed", "5",
        "--fault", "crash:p=0.8,tmax=20",
        "--failure-policy", failure_policy,
        "--json", str(path),
    ]) == 0
    out = capsys.readouterr().out
    assert f"stream health [{failure_policy.partition(':')[0]}" in out
    metrics = json.loads(path.read_text())
    assert "health" in metrics
    assert metrics["health"]["workers_excluded"] >= 0


def test_multijob_rejects_bad_failure_policy():
    with pytest.raises(ValueError, match="unknown failure policy"):
        main([
            "multijob", "--n", "4", "--fault", "crash:p=0.5,tmax=20",
            "--failure-policy", "panic",
        ])


def test_multijob_rejects_bad_policy():
    with pytest.raises(ValueError, match="unknown stream policy"):
        main(["multijob", "--n", "4", "--policy", "lifo"])
