"""The stream-level fault plane: persistence, health, failure policies.

The acceptance core of the fault plane: a worker that crashes
permanently during job ``k`` dispatches **zero** chunks to any job
``j > k`` under the default ``fault_frame="stream"`` — the health
tracker excludes it at every later admission — while the legacy
``fault_frame="job"`` escape hatch keeps the old per-job re-realization
(the crashed worker resurrects).  Around that: the
:class:`~repro.errors.StreamFaultSchedule` projection arithmetic, the
three :class:`~repro.sim.multijob.JobFailurePolicy` flavors, the
stream-level event kinds, the guards, and the ``SweepStats`` /
``QueueingMetrics`` health surfaces.
"""

import dataclasses
import math

import pytest

from repro.errors import CrashFaults, FrozenFaults, StreamFaultSchedule, make_fault_model
from repro.errors.faults import FaultSchedule
from repro.experiments.queueing import (
    StreamHealthStats,
    metrics_from_json,
    metrics_to_json,
    queueing_metrics,
    run_queueing_sweep,
)
from repro.obs import SweepStats
from repro.platform import homogeneous_platform
from repro.sim import simulate_stream
from repro.sim.multijob import (
    DropFailurePolicy,
    PlatformHealth,
    ResubmitFailurePolicy,
    RetryFailurePolicy,
    make_failure_policy,
)
from repro.workloads import JobArrival

pytestmark = [pytest.mark.multijob, pytest.mark.stream_faults]


@pytest.fixture(scope="module")
def platform():
    return homogeneous_platform(4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


def jobs_at(*times, work=200.0):
    return [JobArrival(job_id=i, time=t, work=work) for i, t in enumerate(times)]


def global_dispatches(stream):
    """(job_id, global_worker, absolute_send_start) for every record."""
    out = []
    for rec in stream.jobs:
        for i, result in enumerate(rec.results):
            workers = rec.workers_for_slice(i)
            offset = rec.slice_starts[i]
            for r in result.records:
                out.append((rec.job.job_id, workers[r.worker], offset + r.send_start))
    return out


ALL_DIE = CrashFaults(prob=1.0, tmax=30.0, spare_one=False)


# -- the acceptance core ------------------------------------------------------

class TestCrashPersistence:
    @pytest.mark.parametrize(
        "policy", ("fcfs", "partitioned:parts=2", "interleaved:slices=3")
    )
    def test_worker_crashing_in_job_k_gets_zero_chunks_in_later_jobs(
        self, platform, policy
    ):
        # Worker 2 dies at t=5, during job 0; jobs 1..3 must never
        # dispatch to it, under every stream policy.
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0, 120.0, 180.0), seed=9, policy=policy,
            faults="crash:worker=2,at=5",
        )
        assert stream.fault_frame == "stream"
        assert 2 in stream.workers_excluded
        for job_id, worker, send_start in global_dispatches(stream):
            if job_id > 0:
                assert worker != 2, (
                    f"dead worker 2 was granted a chunk of job {job_id} "
                    f"at t={send_start}"
                )

    def test_exclusion_is_recorded_at_the_crash_instant(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0), seed=9, faults="crash:worker=1,at=7.5",
        )
        assert stream.excluded == ((1, 7.5),)
        (event,) = [e for e in stream.events() if e.kind == "worker_excluded"]
        assert event.time == 7.5 and event.worker == 1 and event.detail == "crash"

    def test_crash_between_jobs_is_caught_at_admission(self, platform):
        # The crash falls in the idle gap between job 0 and job 1 — no
        # loss ledger ever shows it, only the admission check can.
        stream = simulate_stream(
            platform, jobs_at(0.0, 100.0), seed=9, faults="crash:worker=0,at=90",
        )
        assert stream.workers_excluded == (0,)
        for job_id, worker, _ in global_dispatches(stream):
            if job_id == 1:
                assert worker != 0
        assert stream.jobs_failed == 0  # three survivors carry job 1

    def test_job_frame_escape_hatch_resurrects_the_worker(self, platform):
        # Legacy frame: the deterministic crash re-realizes at t=5 of
        # *every* job's own clock, so worker 2 is hit in each job and is
        # never excluded — the documented legacy behavior.
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0, 120.0), seed=9,
            faults="crash:worker=2,at=5", fault_frame="job",
        )
        assert stream.fault_frame == "job"
        assert stream.workers_excluded == ()
        for rec in stream.jobs:
            assert rec.work_lost > 0  # every job re-loses to the resurrected crash

    def test_fault_free_stream_is_bitwise_identical_across_frames(self, platform):
        a = simulate_stream(platform, jobs_at(0.0, 40.0), seed=3)
        b = simulate_stream(platform, jobs_at(0.0, 40.0), seed=3, fault_frame="job")
        assert a.jobs == b.jobs


# -- projection arithmetic ----------------------------------------------------

class TestProjection:
    def make_plane(self):
        schedule = FaultSchedule(
            crash_times=(50.0, math.inf, 10.0),
            pauses=((5.0, 10.0), (0.0, 0.0), (20.0, 4.0)),
            slowdowns=((30.0, 2.0), (0.0, 1.0), (0.0, 1.0)),
            spike_prob=0.25,
            spike_delay=1.5,
        )
        return StreamFaultSchedule(schedule=schedule)

    def test_offsets_shift_and_clamp(self):
        view = self.make_plane().project((0, 1, 2), 12.0)
        assert view.crash_times == (38.0, math.inf, 0.0)  # already dead -> 0
        assert view.pauses[0] == (0.0, 3.0)  # [5,15) -> remaining [0,3)
        assert view.pauses[2] == (8.0, 4.0)
        assert view.slowdowns[0] == (18.0, 2.0)
        assert view.spike_prob == 0.25 and view.spike_delay == 1.5

    def test_elapsed_pause_projects_to_no_pause(self):
        view = self.make_plane().project((0,), 20.0)
        assert view.pauses[0] == (0.0, 0.0)

    def test_subset_remaps_worker_indices(self):
        view = self.make_plane().project((2, 0), 0.0)
        assert view.crash_times == (10.0, 50.0)
        assert view.pauses == ((20.0, 4.0), (5.0, 10.0))

    def test_projection_rejects_bad_inputs(self):
        plane = self.make_plane()
        with pytest.raises(ValueError, match="offset"):
            plane.project((0,), -1.0)
        with pytest.raises(ValueError, match="outside"):
            plane.project((3,), 0.0)

    def test_realize_matches_engine_fault_stream(self, platform):
        # The stream timeline must come from the same third-spawned RNG
        # child the single-run engines use, so schedules are comparable.
        from repro.errors.faults import fault_stream

        model = make_fault_model("crash:p=0.6,tmax=30")
        plane = StreamFaultSchedule.realize(model, platform, 21)
        direct = model.sample(platform, fault_stream(21))
        assert plane.schedule == direct

    def test_frozen_faults_replays_and_validates(self, platform):
        plane = StreamFaultSchedule.realize(
            make_fault_model("crash:p=1,tmax=30"), platform, 7
        )
        frozen = FrozenFaults(plane.schedule)
        assert frozen.sample(platform, None) is plane.schedule
        small = homogeneous_platform(
            2, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1
        )
        with pytest.raises(ValueError, match="worker"):
            frozen.sample(small, None)

    def test_dead_at_is_inclusive(self):
        plane = self.make_plane()
        assert plane.dead_at(9.9) == ()
        assert plane.dead_at(10.0) == (2,)
        assert plane.dead_at(50.0) == (0, 2)


# -- platform health ----------------------------------------------------------

class TestPlatformHealth:
    def test_live_filters_and_marks_once(self):
        plane = StreamFaultSchedule(
            schedule=FaultSchedule(
                crash_times=(5.0, math.inf, 8.0),
                pauses=((0.0, 0.0),) * 3,
                slowdowns=((0.0, 1.0),) * 3,
            )
        )
        health = PlatformHealth(3, plane)
        assert health.live((0, 1, 2), 0.0) == (0, 1, 2)
        assert health.live((0, 1, 2), 6.0) == (1, 2)
        assert health.live((0, 1, 2), 9.0) == (1,)
        assert health.dead == {0, 2}
        assert health.excluded_pairs() == ((0, 5.0), (2, 8.0))
        assert len(health.events) == 2  # no duplicates on re-checks
        assert health.death_time(1) == math.inf

    def test_degraded_workers_stay_admissible(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0), seed=9, faults="slow:p=1,tmax=10,factor=3",
        )
        assert stream.workers_excluded == ()
        assert stream.jobs_failed == 0


# -- failure policies ---------------------------------------------------------

class TestFailurePolicies:
    def test_drop_fails_orphaned_jobs(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0, 120.0), seed=7, faults=ALL_DIE,
        )
        assert stream.failure_policy == "drop"
        assert stream.jobs_failed == 3
        reasons = {rec.job.job_id: rec.failure for rec in stream.jobs}
        assert reasons[0] == "delivery-shortfall"  # caught mid-crash
        assert reasons[1] == reasons[2] == "no-live-workers"
        kinds = [e.kind for e in stream.events()]
        assert kinds.count("job_failed") == 3
        assert "job_done" not in kinds

    def test_failed_never_served_job_has_no_job_start(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0), seed=7, faults=ALL_DIE,
        )
        starts = [e.chunk for e in stream.events() if e.kind == "job_start"]
        assert starts == [0]  # job 1 never got a grant

    def test_retry_consumes_attempts_then_fails(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0), seed=7, faults=ALL_DIE,
            failure_policy="retry:attempts=3,backoff=2,jitter=0",
        )
        assert all(rec.attempts == 3 for rec in stream.jobs)
        assert all(rec.failed for rec in stream.jobs)

    def test_retry_backoff_advances_the_failure_clock(self, platform):
        quick = simulate_stream(
            platform, jobs_at(60.0), seed=7, faults=ALL_DIE,
            failure_policy="retry:attempts=2,backoff=1,jitter=0",
        )
        slow = simulate_stream(
            platform, jobs_at(60.0), seed=7, faults=ALL_DIE,
            failure_policy="retry:attempts=2,backoff=50,jitter=0",
        )
        assert slow.jobs[0].finish == quick.jobs[0].finish + 49.0

    def test_resubmit_regrants_remainder_to_survivors(self, platform):
        # Workers die mid-job-0; resubmission re-runs only what was not
        # delivered, on whoever is left.
        stream = simulate_stream(
            platform, jobs_at(0.0), seed=7, faults=ALL_DIE,
            failure_policy="resubmit:attempts=6",
        )
        (rec,) = stream.jobs
        assert rec.resubmissions >= 1
        resub = [e for e in stream.events() if e.kind == "job_resubmitted"]
        assert len(resub) == rec.resubmissions
        assert all(e.size < rec.job.work for e in resub)

    def test_spared_survivor_absorbs_everything_without_failures(self, platform):
        # The default crash model spares one worker: with persistence the
        # stream degrades to a 1-worker star but every job completes.
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0, 120.0), seed=7,
            faults="crash:p=1,tmax=30",
        )
        assert stream.jobs_failed == 0
        assert len(stream.workers_excluded) == platform.N - 1
        delivered = sum(rec.delivered_work for rec in stream.completed_jobs)
        assert delivered == pytest.approx(stream.total_work, rel=1e-9)

    @pytest.mark.parametrize(
        "policy", ("partitioned:parts=2", "interleaved:slices=3")
    )
    def test_subset_policies_fail_rather_than_deadlock(self, platform, policy):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0, 120.0), seed=7, policy=policy,
            faults=ALL_DIE, failure_policy="resubmit",
        )
        assert stream.jobs_failed + len(stream.completed_jobs) == 3
        assert stream.horizon < 1e6  # terminated, no idle-spin

    def test_partitioned_reroutes_around_a_dead_partition(self, platform):
        # Single-worker partition {0} dies in the idle gap after job 0
        # finishes on it; job 1 must be admitted to a surviving
        # partition instead of deadlocking on the dead-but-free one.
        stream = simulate_stream(
            platform, jobs_at(0.0, 200.0, work=50.0), seed=7,
            policy="partitioned:parts=4", faults="crash:worker=0,at=150",
        )
        assert stream.jobs_failed == 0
        assert stream.workers_excluded == (0,)
        for job_id, worker, _ in global_dispatches(stream):
            if job_id == 1:
                assert worker != 0


# -- spec parsing and guards --------------------------------------------------

class TestSpecsAndGuards:
    def test_make_failure_policy_parses_all_forms(self):
        assert isinstance(make_failure_policy("drop"), DropFailurePolicy)
        retry = make_failure_policy("retry:attempts=5,backoff=2,mult=3,jitter=0")
        assert isinstance(retry, RetryFailurePolicy)
        assert retry.max_attempts == 5
        assert retry.backoff(2) == 6.0  # 2 * 3**1, no jitter
        resub = make_failure_policy("resubmit:attempts=2")
        assert isinstance(resub, ResubmitFailurePolicy)
        assert resub.max_attempts == 2 and resub.resubmits
        passthrough = DropFailurePolicy()
        assert make_failure_policy(passthrough) is passthrough

    @pytest.mark.parametrize(
        "spec", ("panic", "retry:attempts=0", "retry:lives=3", "drop:now=1",
                 "retry:attempts=1.5")
    )
    def test_make_failure_policy_rejects(self, spec):
        with pytest.raises(ValueError):
            make_failure_policy(spec)

    def test_retry_jitter_is_deterministic_in_the_seed(self):
        retry = RetryFailurePolicy(jitter_fraction=0.25)
        assert retry.backoff(1, seed=5) == retry.backoff(1, seed=5)
        assert retry.backoff(1, seed=5) != retry.backoff(1, seed=6)

    def test_stream_rejects_faults_on_sharedbw(self, platform):
        with pytest.raises(ValueError, match="sharedbw"):
            simulate_stream(
                platform, jobs_at(0.0), seed=1, faults="crash:p=0.5,tmax=20",
                topology="sharedbw:cap=30",
            )

    def test_sharedbw_without_faults_is_allowed(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0), seed=1, topology="sharedbw:cap=30",
            engine="des",
        )
        assert stream.jobs[0].results[0].topology.startswith("sharedbw")

    def test_stream_rejects_unknown_fault_frame(self, platform):
        with pytest.raises(ValueError, match="fault_frame"):
            simulate_stream(platform, jobs_at(0.0), seed=1, fault_frame="relative")


# -- metrics and stats surfaces -----------------------------------------------

class TestHealthMetrics:
    def test_fault_free_metrics_have_no_health_block(self, platform):
        metrics = queueing_metrics(simulate_stream(platform, jobs_at(0.0), seed=3))
        assert metrics.health is None
        assert '"health"' not in metrics_to_json(metrics)
        assert metrics_from_json(metrics_to_json(metrics)) == metrics

    def test_faulty_metrics_carry_health_and_round_trip(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0, 120.0), seed=7, faults=ALL_DIE,
        )
        metrics = queueing_metrics(stream)
        h = metrics.health
        assert isinstance(h, StreamHealthStats)
        assert h.jobs_failed == 3
        assert h.workers_excluded == platform.N
        assert h.goodput == 0.0  # nothing completed
        assert h.live_capacity < platform.N * metrics.horizon
        assert metrics_from_json(metrics_to_json(metrics)) == metrics

    def test_live_utilization_uses_degraded_capacity(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0, 120.0), seed=7, faults="crash:p=1,tmax=30",
        )
        metrics = queueing_metrics(stream)
        assert metrics.health.live_utilization > metrics.utilization

    def test_per_job_statistics_cover_completed_jobs_only(self, platform):
        stream = simulate_stream(
            platform, jobs_at(0.0, 60.0), seed=7, faults=ALL_DIE,
        )
        metrics = queueing_metrics(stream)
        assert metrics.num_jobs == 2
        assert metrics.throughput == 0.0
        assert metrics.mean_response == 0.0

    def test_sweep_stats_count_stream_and_summary(self, platform):
        stats = SweepStats()
        run_queueing_sweep(
            platform, ["poisson:rate=0.02,jobs=4,work=150"], policies=("fcfs",),
            seed=7, faults=ALL_DIE, stats=stats,
        )
        assert stats.jobs_failed > 0
        assert stats.workers_excluded == platform.N
        summary = stats.summary()
        assert "stream health:" in summary
        assert f"{stats.jobs_failed} job(s) failed" in summary
        snapshot = stats.as_dict()
        assert {"jobs_failed", "jobs_resubmitted", "workers_excluded"} <= set(snapshot)

    def test_fault_free_sweep_stats_stay_silent(self, platform):
        stats = SweepStats()
        run_queueing_sweep(
            platform, ["poisson:rate=0.02,jobs=3,work=150"], policies=("fcfs",),
            seed=7, stats=stats,
        )
        assert stats.jobs_failed == 0
        assert "stream health" not in stats.summary()
