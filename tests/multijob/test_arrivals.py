"""Arrival processes: determinism, ordering, round-trips, conservation.

Hypothesis drives the generative properties — same seed → identical
trace, nonnegative inter-arrivals, exact JSONL round-trip — and the
stream-level conservation law (per-job delivered work sums to the
stream's dispatched work when no faults destroy chunks).  Unit tests pin
the spec-string grammar's accept/reject behavior.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import homogeneous_platform
from repro.sim import simulate_stream
from repro.workloads import (
    BurstyArrivals,
    JobArrival,
    PoissonArrivals,
    TraceArrivals,
    arrivals_from_jsonl,
    arrivals_to_jsonl,
    make_arrival_process,
)

pytestmark = [pytest.mark.multijob, pytest.mark.property]

finite = dict(allow_nan=False, allow_infinity=False)

poisson_processes = st.builds(
    PoissonArrivals,
    rate=st.floats(min_value=0.001, max_value=1.0, **finite),
    jobs=st.integers(min_value=1, max_value=20),
    work=st.floats(min_value=1.0, max_value=500.0, **finite),
    work_cv=st.floats(min_value=0.0, max_value=1.0, **finite),
)

bursty_processes = st.builds(
    BurstyArrivals,
    bursts=st.integers(min_value=1, max_value=4),
    size=st.integers(min_value=1, max_value=5),
    gap=st.floats(min_value=1.0, max_value=500.0, **finite),
    work=st.floats(min_value=1.0, max_value=500.0, **finite),
    spread=st.floats(min_value=0.0, max_value=5.0, **finite),
    work_cv=st.floats(min_value=0.0, max_value=1.0, **finite),
)

processes = st.one_of(poisson_processes, bursty_processes)

seeds = st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1))


class TestGenerativeProperties:
    @given(process=processes, seed=seeds)
    def test_same_seed_same_trace(self, process, seed):
        assert process.generate(seed) == process.generate(seed)

    @given(process=processes, seed=seeds)
    def test_trace_is_well_formed(self, process, seed):
        trace = process.generate(seed)
        ids = [a.job_id for a in trace]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        times = [a.time for a in trace]
        assert times == sorted(times), "arrivals out of time order"
        assert all(t >= 0 and math.isfinite(t) for t in times)
        assert all(a.work > 0 and math.isfinite(a.work) for a in trace)
        assert all(a.seed is not None for a in trace), (
            "generated arrivals must be self-contained (pinned job seeds)"
        )

    @given(process=poisson_processes, seed=st.integers(0, 2**32 - 1))
    def test_distinct_seeds_usually_distinct_traces(self, process, seed):
        a, b = process.generate(seed), process.generate(seed + 1)
        assert a != b

    @given(process=processes, seed=seeds)
    def test_jsonl_round_trip_is_exact(self, process, seed):
        trace = process.generate(seed)
        assert arrivals_from_jsonl(arrivals_to_jsonl(trace)) == trace

    @given(process=processes, seed=seeds)
    def test_jsonl_is_byte_deterministic(self, process, seed):
        trace = process.generate(seed)
        assert arrivals_to_jsonl(trace) == arrivals_to_jsonl(trace)


class TestConservation:
    @given(
        jobs=st.integers(min_value=1, max_value=4),
        rate=st.floats(min_value=0.005, max_value=0.1, **finite),
        error=st.floats(min_value=0.0, max_value=0.4, **finite),
        seed=st.integers(min_value=0, max_value=2**16),
        policy=st.sampled_from(
            ["fcfs", "partitioned:parts=2", "interleaved:slices=2"]
        ),
    )
    @settings(max_examples=20)
    def test_per_job_delivered_work_sums_to_dispatched(
        self, jobs, rate, error, seed, policy
    ):
        platform = homogeneous_platform(
            4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1
        )
        stream = simulate_stream(
            platform,
            PoissonArrivals(rate=rate, jobs=jobs, work=120.0, work_cv=0.3),
            scheduler="RUMR",
            error=error,
            seed=seed,
            policy=policy,
        )
        # No faults: every dispatched chunk is delivered, per job and in sum.
        for rec in stream.jobs:
            assert rec.delivered_work == rec.dispatched_work
            assert rec.work_lost == 0.0
        assert sum(r.delivered_work for r in stream.jobs) == stream.dispatched_work
        # And the dispatched total covers the requested workloads.
        assert stream.dispatched_work == pytest.approx(
            stream.total_work, rel=1e-9
        )


class TestTraceArrivals:
    def test_generate_sorts_and_ignores_seed(self):
        trace = TraceArrivals(
            [
                JobArrival(1, 10.0, 50.0, seed=2),
                JobArrival(0, 5.0, 30.0, seed=1),
            ]
        )
        a, b = trace.generate(0), trace.generate(99)
        assert a == b
        assert [j.job_id for j in a] == [0, 1]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate job_id"):
            TraceArrivals([JobArrival(0, 0.0, 1.0), JobArrival(0, 1.0, 1.0)])

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 1"):
            arrivals_from_jsonl("not json\n")
        with pytest.raises(ValueError, match="unknown fields"):
            arrivals_from_jsonl('{"job_id":0,"time":0.0,"work":1.0,"wat":1}\n')
        with pytest.raises(ValueError, match="missing field"):
            arrivals_from_jsonl('{"job_id":0,"time":0.0}\n')


class TestSpecGrammar:
    def test_poisson_spec(self):
        p = make_arrival_process("poisson:rate=0.02,jobs=8,work=200")
        assert p == PoissonArrivals(rate=0.02, jobs=8, work=200.0)

    def test_bursty_spec_with_defaults(self):
        p = make_arrival_process("bursty:bursts=3,size=4,gap=300,work=150")
        assert p == BurstyArrivals(bursts=3, size=4, gap=300.0, work=150.0)

    def test_trace_spec_round_trips_through_a_file(self, tmp_path):
        trace = PoissonArrivals(rate=0.05, jobs=5, work=100.0).generate(3)
        path = tmp_path / "arrivals.jsonl"
        path.write_text(arrivals_to_jsonl(trace))
        p = make_arrival_process(f"trace:{path}")
        assert p.generate(0) == trace

    @pytest.mark.parametrize(
        "spec",
        [
            "poisson:rate=0.02,jobs=8",          # missing work
            "poisson:rate=0.02,jobs=8,work=200,typo=1",
            "poisson:rate=0,jobs=8,work=200",    # rate must be > 0
            "poisson:rate=0.02,jobs=2.5,work=200",
            "bursty:bursts=2,size=0,gap=10,work=5",
            "trace:/nonexistent/arrivals.jsonl",
            "weibull:rate=1",
            "poisson",                           # no parameters at all
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            make_arrival_process(spec)

    def test_process_passes_through(self):
        p = PoissonArrivals(rate=0.1, jobs=2, work=10.0)
        assert make_arrival_process(p) is p
