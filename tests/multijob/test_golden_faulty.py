"""Golden regression: a crashy Poisson stream under each failure policy.

``tests/data/golden_multijob_faulty.json`` byte-pins the queueing
metrics — health block included — of one fault-ridden multi-job scenario
under each :class:`~repro.sim.multijob.JobFailurePolicy`.  It is the
fault-plane counterpart of ``test_golden_queueing.py``: any drift in the
stream-clock fault realization, the health tracker's admission
filtering, retry/resubmit seeding and backoff arithmetic, or the
degraded-capacity metric definitions shows up here as an exact
string-equality failure.

To regenerate after an *intentional* semantics change::

    PYTHONPATH=src python -c "
    import json
    from tests.multijob.test_golden_faulty import GOLDEN_PATH, SCENARIO, FAILURE_POLICIES, run_cell
    from repro.experiments.queueing import metrics_to_json
    payload = {'scenario': SCENARIO, 'failure_policies': list(FAILURE_POLICIES),
               'metrics': {p: json.loads(metrics_to_json(run_cell(p))) for p in FAILURE_POLICIES}}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + chr(10))
    "
"""

import json
import pathlib

import pytest

from repro.experiments.queueing import metrics_to_json, queueing_metrics
from repro.platform import homogeneous_platform
from repro.sim import simulate_stream

pytestmark = [pytest.mark.multijob, pytest.mark.stream_faults]

GOLDEN_PATH = (
    pathlib.Path(__file__).parent.parent / "data" / "golden_multijob_faulty.json"
)

SCENARIO = {
    "N": 4,
    "bandwidth_factor": 1.5,
    "cLat": 0.2,
    "nLat": 0.1,
    "arrivals": "poisson:rate=0.02,jobs=6,work=150,work_cv=0.3",
    "scheduler": "RUMR",
    "error": 0.2,
    "seed": 58,
    "engine": "fast",
    "faults": "crash:p=0.9,tmax=60",
    "policy": "partitioned:parts=4",
}

# Single-worker partitions make the crashes consequential (a partition
# whose worker dies mid-grant fails its job under ``drop``), so the
# three cells pin three genuinely different metric vectors — the seed
# was chosen so drop/retry/resubmit all serialize differently.
FAILURE_POLICIES = ("drop", "retry:attempts=2,backoff=40", "resubmit")


def run_cell(failure_policy: str):
    platform = homogeneous_platform(
        SCENARIO["N"], S=1.0, bandwidth_factor=SCENARIO["bandwidth_factor"],
        cLat=SCENARIO["cLat"], nLat=SCENARIO["nLat"],
    )
    stream = simulate_stream(
        platform,
        SCENARIO["arrivals"],
        scheduler=SCENARIO["scheduler"],
        error=SCENARIO["error"],
        seed=SCENARIO["seed"],
        policy=SCENARIO["policy"],
        engine=SCENARIO["engine"],
        faults=SCENARIO["faults"],
        failure_policy=failure_policy,
    )
    return queueing_metrics(stream)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_describes_this_scenario(golden):
    assert golden["scenario"] == SCENARIO
    assert golden["failure_policies"] == list(FAILURE_POLICIES)
    assert set(golden["metrics"]) == set(FAILURE_POLICIES)


@pytest.mark.parametrize("failure_policy", FAILURE_POLICIES)
def test_faulty_metrics_reproduce_golden_byte_for_byte(golden, failure_policy):
    actual = metrics_to_json(run_cell(failure_policy))
    expected = json.dumps(
        golden["metrics"][failure_policy], sort_keys=True, separators=(",", ":")
    )
    assert actual == expected, (
        f"faulty queueing-metrics drift under failure policy {failure_policy!r}"
    )


def test_golden_metrics_are_internally_consistent(golden):
    # The crash realization is shared (same stream seed), so every
    # failure policy sees the same exclusions and the same offered work;
    # what differs is how much of it becomes goodput.
    excluded = {
        golden["metrics"][p]["health"]["workers_excluded"]
        for p in FAILURE_POLICIES
    }
    assert len(excluded) == 1 and excluded.pop() >= 1
    for p in FAILURE_POLICIES:
        m = golden["metrics"][p]
        assert m["num_jobs"] == 6
        assert "health" in m
        assert m["health"]["live_capacity"] <= m["horizon"] * SCENARIO["N"]
        assert m["health"]["live_utilization"] >= m["utilization"]
    assert (
        golden["metrics"]["drop"]["total_work"]
        == golden["metrics"]["retry:attempts=2,backoff=40"]["total_work"]
        == golden["metrics"]["resubmit"]["total_work"]
    )
    # The three cells must pin three distinct behaviors.
    serialized = {
        json.dumps(golden["metrics"][p], sort_keys=True) for p in FAILURE_POLICIES
    }
    assert len(serialized) == len(FAILURE_POLICIES)
