"""Golden regression: the pinned Poisson scenario's queueing metrics.

``tests/data/golden_multijob_poisson.json`` byte-pins the queueing
metrics of one multi-job scenario under each inter-job policy.  Any
change to engine arithmetic, RNG stream layout, arrival-process draw
order, policy composition or metric definitions shows up here as an
exact string-equality failure — deliberately strict, because the 1-job
conformance suite and this file together pin the whole stream layer.

To regenerate after an *intentional* semantics change::

    PYTHONPATH=src python -c "
    import json
    from tests.multijob.test_golden_queueing import GOLDEN_PATH, SCENARIO, POLICIES, run_cell
    from repro.experiments.queueing import metrics_to_json
    payload = {'scenario': SCENARIO, 'policies': list(POLICIES),
               'metrics': {p: json.loads(metrics_to_json(run_cell(p))) for p in POLICIES}}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + chr(10))
    "
"""

import json
import pathlib

import pytest

from repro.experiments.queueing import metrics_to_json, queueing_metrics
from repro.platform import homogeneous_platform
from repro.sim import simulate_stream

pytestmark = pytest.mark.multijob

GOLDEN_PATH = (
    pathlib.Path(__file__).parent.parent / "data" / "golden_multijob_poisson.json"
)

SCENARIO = {
    "N": 4,
    "bandwidth_factor": 1.5,
    "cLat": 0.2,
    "nLat": 0.1,
    "arrivals": "poisson:rate=0.02,jobs=6,work=150,work_cv=0.3",
    "scheduler": "RUMR",
    "error": 0.2,
    "seed": 2026,
    "engine": "fast",
}

POLICIES = ("fcfs", "partitioned:parts=2", "interleaved:slices=3")


def run_cell(policy: str):
    platform = homogeneous_platform(
        SCENARIO["N"], S=1.0, bandwidth_factor=SCENARIO["bandwidth_factor"],
        cLat=SCENARIO["cLat"], nLat=SCENARIO["nLat"],
    )
    stream = simulate_stream(
        platform,
        SCENARIO["arrivals"],
        scheduler=SCENARIO["scheduler"],
        error=SCENARIO["error"],
        seed=SCENARIO["seed"],
        policy=policy,
        engine=SCENARIO["engine"],
    )
    return queueing_metrics(stream)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_describes_this_scenario(golden):
    assert golden["scenario"] == SCENARIO
    assert golden["policies"] == list(POLICIES)
    assert set(golden["metrics"]) == set(POLICIES)


@pytest.mark.parametrize("policy", POLICIES)
def test_queueing_metrics_reproduce_golden_byte_for_byte(golden, policy):
    actual = metrics_to_json(run_cell(policy))
    expected = json.dumps(
        golden["metrics"][policy], sort_keys=True, separators=(",", ":")
    )
    assert actual == expected, f"queueing-metrics drift under policy {policy!r}"


def test_golden_metrics_are_internally_consistent(golden):
    # Sanity on the pinned numbers themselves: same jobs, same total
    # work under every policy; FCFS waits bound the partitioned ones'
    # job count; slowdowns are >= 1 by construction.
    for policy in POLICIES:
        m = golden["metrics"][policy]
        assert m["num_jobs"] == 6
        assert m["work_lost"] == 0.0
        assert m["mean_slowdown"] >= 1.0
        assert m["max_queue_depth"] >= 1
    assert (
        golden["metrics"]["fcfs"]["total_work"]
        == golden["metrics"]["partitioned:parts=2"]["total_work"]
        == golden["metrics"]["interleaved:slices=3"]["total_work"]
    )
