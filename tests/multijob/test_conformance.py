"""Differential conformance: a 1-job stream IS a single run, bitwise.

The multi-job layer's contract is that it adds *no* arithmetic of its
own: each job runs through :func:`repro.sim.simulate` untouched, so a
degenerate one-job arrival stream must produce a ``SimResult`` that is
**bitwise equal** (dataclass equality over all floats and records) to
calling ``simulate()`` directly — for every registered scheduler, at
error 0 and under every fault kind, on both engines, and under every
policy's degenerate configuration.  Any drift here means the stream
layer leaked into the per-job trajectory.
"""

import pytest

from repro.core.registry import available_schedulers, make_scheduler
from repro.errors import FrozenFaults, NoError, StreamFaultSchedule, make_fault_model
from repro.errors.models import make_error_model
from repro.platform import homogeneous_platform
from repro.sim import simulate, simulate_stream
from repro.workloads import JobArrival

pytestmark = pytest.mark.multijob

WORK = 200.0
SEED = 7

FAULT_SPECS = (
    None,
    "crash:p=0.6,tmax=30",
    "pause:p=1,tmax=20,dur=10",
    "slow:p=1,tmax=20,factor=3",
    "spike:p=0.5,delay=2",
)


@pytest.fixture(scope="module")
def platform():
    return homogeneous_platform(4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


def one_job_stream(platform, scheduler, faults=None, engine="fast", policy="fcfs",
                   error=0.0, **kwargs):
    return simulate_stream(
        platform,
        [JobArrival(job_id=0, time=0.0, work=WORK, seed=SEED)],
        scheduler=scheduler,
        error=error,
        policy=policy,
        engine=engine,
        faults=faults,
        **kwargs,
    )


@pytest.mark.parametrize("scheduler", available_schedulers())
@pytest.mark.parametrize("faults", FAULT_SPECS, ids=lambda s: s or "none")
def test_one_job_stream_bitwise_equals_simulate(platform, scheduler, faults):
    # The legacy job frame: every per-job simulate() re-realizes the
    # fault model in its own frame, so a 1-job stream is exactly a
    # single run.  Fault-free streams take this path under both frames.
    direct = simulate(
        platform, WORK, make_scheduler(scheduler, 0.0), NoError(),
        seed=SEED, faults=faults,
    )
    kwargs = {} if faults is None else {"fault_frame": "job"}
    stream = one_job_stream(platform, scheduler, faults=faults, **kwargs)
    assert stream.num_jobs == 1
    (rec,) = stream.jobs
    assert len(rec.results) == 1
    assert rec.results[0] == direct  # frozen-dataclass equality: bitwise
    assert rec.start == 0.0
    assert rec.finish == direct.makespan
    assert rec.work_lost == direct.work_lost


@pytest.mark.parametrize("engine", ("fast", "des"))
@pytest.mark.parametrize(
    "faults", [s for s in FAULT_SPECS if s is not None], ids=lambda s: s
)
def test_one_job_stream_frame_bitwise_equals_projected_simulate(
    platform, engine, faults
):
    # The stream frame: the one stream timeline (realized from the
    # *stream* seed's third spawned RNG child) is projected into the
    # job's frame; a single run handed that exact frozen projection must
    # be bitwise what the stream recorded — for every fault kind, on
    # both engines.
    stream_seed = 11
    plane = StreamFaultSchedule.realize(
        make_fault_model(faults), platform, stream_seed
    )
    direct = simulate(
        platform, WORK, make_scheduler("RUMR", 0.0), NoError(),
        seed=SEED, engine=engine,
        faults=FrozenFaults(plane.project(range(platform.N), 0.0)),
    )
    stream = one_job_stream(
        platform, "RUMR", faults=faults, engine=engine, seed=stream_seed
    )
    assert stream.fault_frame == "stream"
    (rec,) = stream.jobs
    assert rec.results[0] == direct
    assert rec.work_lost == direct.work_lost


@pytest.mark.parametrize("scheduler", ("RUMR", "UMR", "Factoring", "FSC"))
def test_one_job_stream_bitwise_on_des_engine(platform, scheduler):
    direct = simulate(
        platform, WORK, make_scheduler(scheduler, 0.0), NoError(),
        seed=SEED, engine="des",
    )
    stream = one_job_stream(platform, scheduler, engine="des")
    assert stream.jobs[0].results[0] == direct


@pytest.mark.parametrize(
    "policy", ("fcfs", "partitioned:parts=1", "interleaved:slices=1")
)
def test_degenerate_policies_are_bitwise_identical(platform, policy):
    direct = simulate(
        platform, WORK, make_scheduler("RUMR", 0.0), NoError(), seed=SEED
    )
    stream = one_job_stream(platform, "RUMR", policy=policy)
    assert stream.jobs[0].results[0] == direct


def test_one_job_stream_bitwise_under_prediction_error(platform):
    # error > 0: the stream builds a fresh error model per job; a fresh
    # model on the direct path must agree draw for draw (the model state
    # is consumed inside simulate(), keyed only by the seed).
    direct = simulate(
        platform, WORK, make_scheduler("RUMR", 0.3),
        make_error_model("normal", 0.3), seed=SEED,
    )
    stream = one_job_stream(platform, "RUMR", error=0.3)
    assert stream.jobs[0].results[0] == direct


def test_multi_job_fcfs_jobs_are_each_bitwise_single_runs(platform):
    # FCFS never slices or re-platforms: every job of an n-job stream is
    # itself a plain simulate() run under its own seed.
    arrivals = [
        JobArrival(job_id=i, time=40.0 * i, work=WORK + 10 * i, seed=100 + i)
        for i in range(3)
    ]
    stream = simulate_stream(platform, arrivals, scheduler="UMR")
    for rec in stream.jobs:
        direct = simulate(
            platform, rec.job.work, make_scheduler("UMR", 0.0), NoError(),
            seed=rec.job.seed,
        )
        assert rec.results[0] == direct


def test_partitioned_job_is_bitwise_a_subset_run(platform):
    stream = simulate_stream(
        platform,
        [JobArrival(job_id=0, time=0.0, work=WORK, seed=SEED)],
        scheduler="RUMR",
        policy="partitioned:parts=2",
    )
    (rec,) = stream.jobs
    sub = platform.subset(rec.workers)
    direct = simulate(sub, WORK, make_scheduler("RUMR", 0.0), NoError(), seed=SEED)
    assert rec.results[0] == direct
