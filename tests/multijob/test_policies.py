"""Inter-job policies: composition semantics and the spec grammar."""

import pytest

from repro.platform import homogeneous_platform
from repro.sim import make_stream_policy, simulate_stream
from repro.sim.multijob import (
    FCFSPolicy,
    InterleavedPolicy,
    PartitionedPolicy,
)
from repro.workloads import JobArrival

pytestmark = pytest.mark.multijob


@pytest.fixture(scope="module")
def platform():
    return homogeneous_platform(5, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


class TestSpecGrammar:
    def test_known_specs(self):
        assert make_stream_policy("fcfs") == FCFSPolicy()
        assert make_stream_policy("partitioned") == PartitionedPolicy(parts=2)
        assert make_stream_policy("partitioned:parts=3") == PartitionedPolicy(parts=3)
        assert make_stream_policy("interleaved") == InterleavedPolicy(slices=4)
        assert make_stream_policy("interleaved:slices=2") == InterleavedPolicy(slices=2)

    def test_policy_passes_through(self):
        p = InterleavedPolicy(slices=7)
        assert make_stream_policy(p) is p

    @pytest.mark.parametrize(
        "spec",
        [
            "lifo",
            "fcfs:parts=2",
            "partitioned:slices=2",
            "partitioned:parts=1.5",
            "partitioned:parts",
            "interleaved:slices=x",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            make_stream_policy(spec)

    def test_degenerate_parameters_rejected(self):
        with pytest.raises(ValueError):
            PartitionedPolicy(parts=0)
        with pytest.raises(ValueError):
            InterleavedPolicy(slices=0)


class TestFCFS:
    def test_jobs_never_overlap_and_keep_arrival_order(self, platform):
        arrivals = [JobArrival(i, 5.0 * i, 100.0, seed=i) for i in range(4)]
        stream = simulate_stream(platform, arrivals, scheduler="UMR")
        for prev, nxt in zip(stream.jobs, stream.jobs[1:]):
            assert nxt.start >= prev.finish
            assert nxt.start == max(nxt.job.time, prev.finish)
        assert stream.max_queue_depth() >= 2  # jobs 1..3 queue behind job 0

    def test_idle_gap_resets_the_queue(self, platform):
        arrivals = [
            JobArrival(0, 0.0, 50.0, seed=1),
            JobArrival(1, 10_000.0, 50.0, seed=2),
        ]
        stream = simulate_stream(platform, arrivals, scheduler="UMR")
        assert stream.jobs[1].start == 10_000.0
        assert stream.jobs[1].wait == 0.0
        assert stream.max_queue_depth() == 1


class TestPartitioned:
    def test_partitions_are_contiguous_balanced_and_exhaustive(self, platform):
        groups = PartitionedPolicy(parts=2).partitions(platform)
        assert groups == ((0, 1, 2), (3, 4))
        assert PartitionedPolicy(parts=5).partitions(platform) == (
            (0,), (1,), (2,), (3,), (4,),
        )

    def test_more_partitions_than_workers_rejected(self, platform):
        with pytest.raises(ValueError, match="cannot split"):
            PartitionedPolicy(parts=6).partitions(platform)

    def test_simultaneous_jobs_run_in_parallel_partitions(self, platform):
        arrivals = [JobArrival(i, 0.0, 100.0, seed=i) for i in range(2)]
        stream = simulate_stream(
            platform, arrivals, scheduler="UMR", policy="partitioned:parts=2"
        )
        a, b = stream.jobs
        assert a.workers == (0, 1, 2) and b.workers == (3, 4)
        assert a.start == b.start == 0.0  # no queueing: true sharing
        assert a.wait == b.wait == 0.0

    def test_earliest_start_wins_ties_to_lowest_index(self, platform):
        arrivals = [JobArrival(i, 0.0, 100.0, seed=i) for i in range(3)]
        stream = simulate_stream(
            platform, arrivals, scheduler="UMR", policy="partitioned:parts=2"
        )
        # Third job goes to whichever partition frees first.
        first_free = min(stream.jobs[0].finish, stream.jobs[1].finish)
        assert stream.jobs[2].start == first_free


class TestInterleaved:
    def test_slice_sizes_sum_exactly(self):
        policy = InterleavedPolicy(slices=3)
        sizes = policy.slice_sizes(100.0)
        assert len(sizes) == 3
        assert sum(sizes) == 100.0
        assert all(s > 0 for s in sizes)
        assert InterleavedPolicy(slices=1).slice_sizes(7.0) == (7.0,)

    def test_concurrent_jobs_alternate_slices(self, platform):
        arrivals = [JobArrival(i, 0.0, 100.0, seed=i) for i in range(2)]
        stream = simulate_stream(
            platform, arrivals, scheduler="UMR", policy="interleaved:slices=2"
        )
        a, b = stream.jobs
        assert len(a.results) == len(b.results) == 2
        # Round-robin: a's first slice, b's first, a's second, b's second.
        order = sorted(
            [(t, "a") for t in a.slice_starts] + [(t, "b") for t in b.slice_starts]
        )
        assert [owner for _, owner in order] == ["a", "b", "a", "b"]
        # Interleaving means neither job monopolizes the star: the
        # first-arrived job finishes *after* the other starts.
        assert b.start < a.finish

    def test_small_job_is_not_stuck_behind_a_long_one(self, platform):
        # The head-of-line-blocking case interleaving exists to soften:
        # a short job arriving just after a huge one gets its first
        # service grant far sooner than under FCFS (the trade-off is
        # per-job dilation, so response time is not the metric here).
        arrivals = [
            JobArrival(0, 0.0, 2000.0, seed=1),
            JobArrival(1, 1.0, 20.0, seed=2),
        ]
        fcfs = simulate_stream(platform, arrivals, scheduler="UMR")
        ilv = simulate_stream(
            platform, arrivals, scheduler="UMR", policy="interleaved:slices=8"
        )
        assert ilv.job_record(1).wait < fcfs.job_record(1).wait
        # And the long job is diluted, not starved: both still finish.
        assert ilv.job_record(0).delivered_work == pytest.approx(2000.0, rel=1e-9)

    def test_idle_jump_to_next_arrival(self, platform):
        arrivals = [
            JobArrival(0, 0.0, 40.0, seed=1),
            JobArrival(1, 5_000.0, 40.0, seed=2),
        ]
        stream = simulate_stream(
            platform, arrivals, scheduler="UMR", policy="interleaved:slices=2"
        )
        assert stream.jobs[1].start == 5_000.0


class TestResultAccounting:
    def test_job_record_lookup(self, platform):
        stream = simulate_stream(
            platform, [JobArrival(3, 0.0, 50.0, seed=9)], scheduler="UMR"
        )
        assert stream.job_record(3).job.job_id == 3
        with pytest.raises(KeyError):
            stream.job_record(0)

    def test_duplicate_job_ids_rejected(self, platform):
        with pytest.raises(ValueError, match="duplicate"):
            simulate_stream(
                platform,
                [JobArrival(0, 0.0, 1.0), JobArrival(0, 1.0, 1.0)],
                scheduler="UMR",
            )

    def test_stream_under_crashes_accounts_lost_work(self, platform):
        # Legacy job frame: every job re-realizes the crash model, so
        # under p=0.8 losses happen throughout the stream.
        stream = simulate_stream(
            platform,
            "poisson:rate=0.05,jobs=4,work=150",
            scheduler="RUMR",
            seed=5,
            policy="fcfs",
            faults="crash:p=0.8,tmax=20",
            fault_frame="job",
        )
        assert stream.work_lost > 0
        assert stream.dispatched_work == pytest.approx(
            stream.delivered_work + stream.work_lost
        )
        # Recovery-aware RUMR still finishes every job's full workload.
        assert stream.delivered_work == pytest.approx(stream.total_work, rel=1e-9)

    def test_stream_frame_excludes_dead_workers_and_conserves_work(self, platform):
        # Default stream frame: the one timeline's crashes persist, the
        # health tracker excludes the dead, and work stays conserved.
        stream = simulate_stream(
            platform,
            "poisson:rate=0.05,jobs=4,work=150",
            scheduler="RUMR",
            seed=5,
            policy="fcfs",
            faults="crash:p=0.8,tmax=20",
        )
        assert stream.fault_frame == "stream"
        assert stream.workers_excluded  # tmax=20 precedes most arrivals
        assert stream.dispatched_work == pytest.approx(
            stream.delivered_work + stream.work_lost
        )
        completed = sum(rec.job.work for rec in stream.completed_jobs)
        delivered_completed = sum(rec.delivered_work for rec in stream.completed_jobs)
        assert delivered_completed == pytest.approx(completed, rel=1e-9)
        dead = dict(stream.excluded)
        for rec in stream.jobs:
            for i, start in enumerate(rec.slice_starts):
                for w in rec.workers_for_slice(i):
                    assert dead.get(w, float("inf")) > start
