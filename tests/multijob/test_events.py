"""Stream events: the ``job_*`` kinds obey the trace invariants.

A multi-job stream's merged event stream (job-level markers plus every
slice's engine events shifted onto the absolute timeline) must satisfy
the same well-formedness properties the single-run traces are held to —
balanced dispatch/compute pairs, per-worker monotonicity, canonical
ordering — and plug into :func:`repro.obs.first_divergence` as a
cross-run oracle exactly like engine traces do.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    EVENT_KINDS,
    SimEvent,
    Tracer,
    canonical_order,
    events_to_jsonl,
    first_divergence,
)
from repro.platform import homogeneous_platform
from repro.sim import simulate_stream
from tests.properties.test_properties_trace import (
    assert_balanced_pairs,
    assert_worker_monotone,
)

pytestmark = pytest.mark.multijob

ARRIVALS = "poisson:rate=0.02,jobs=5,work=120,work_cv=0.2"
POLICIES = ("fcfs", "partitioned:parts=2", "interleaved:slices=3")


@pytest.fixture(scope="module")
def platform():
    return homogeneous_platform(4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


def test_job_kinds_are_registered():
    assert {"job_arrival", "job_start", "job_done"} <= EVENT_KINDS


def test_job_done_sorts_before_job_arrival_at_one_instant():
    # Observe-then-act at a shared timestamp: a completion is ordered
    # before the admissions it may enable.
    done = SimEvent(10.0, "job_done", -1, chunk=0)
    arrival = SimEvent(10.0, "job_arrival", -1, chunk=1)
    start = SimEvent(10.0, "job_start", -1, chunk=1)
    assert canonical_order([start, arrival, done]) == (done, arrival, start)


@pytest.mark.parametrize("policy", POLICIES)
def test_job_level_stream_is_canonical_and_complete(platform, policy):
    stream = simulate_stream(
        platform, ARRIVALS, error=0.2, seed=11, policy=policy
    )
    events = stream.events()
    assert events == canonical_order(events)
    for kind in ("job_arrival", "job_start", "job_done"):
        per_job = [e for e in events if e.kind == kind]
        assert sorted(e.chunk for e in per_job) == [0, 1, 2, 3, 4]
        assert all(e.worker == -1 for e in per_job)
        assert all(e.phase == stream.policy for e in per_job)
    for rec in stream.jobs:
        times = {
            e.kind: e.time for e in events if e.chunk == rec.job.job_id
        }
        assert times["job_arrival"] == rec.job.time
        assert times["job_start"] == rec.start
        assert times["job_done"] == rec.finish
        assert times["job_arrival"] <= times["job_start"] <= times["job_done"]


@pytest.mark.parametrize("policy", POLICIES)
def test_merged_stream_passes_trace_well_formedness(platform, policy):
    stream = simulate_stream(
        platform, ARRIVALS, error=0.2, seed=11, policy=policy
    )
    events = stream.events(include_sim=True)
    assert events == canonical_order(events)
    assert all(e.kind in EVENT_KINDS for e in events)
    assert_balanced_pairs(events)
    assert_worker_monotone(events)
    # Chunk renumbering keeps dispatch indices stream-unique.
    dispatched = [e.chunk for e in events if e.kind == "dispatch_start"]
    assert len(set(dispatched)) == len(dispatched)
    # All sim events land on the absolute timeline: none precede the
    # owning job's first service, none outlive the stream horizon.
    sim_events = [e for e in events if not e.kind.startswith("job_")]
    assert all(0.0 <= e.time <= stream.horizon for e in sim_events)
    assert all(0 <= e.worker < platform.N for e in sim_events if e.worker >= 0)


def test_merged_stream_serializes_and_feeds_the_tracer(platform):
    tracer = Tracer()
    stream = simulate_stream(
        platform, ARRIVALS, error=0.2, seed=11,
        policy="interleaved:slices=2", tracer=tracer,
    )
    events = stream.events(include_sim=True)
    assert tracer.canonical() == events
    text = events_to_jsonl(events)
    assert text == events_to_jsonl(events)  # byte-deterministic
    kinds = {json.loads(line)["kind"] for line in text.splitlines()}
    assert {"job_arrival", "job_start", "job_done", "dispatch_start"} <= kinds


class TestFirstDivergence:
    def test_identical_streams_have_no_divergence(self, platform):
        a = simulate_stream(platform, ARRIVALS, error=0.2, seed=11).events(True)
        b = simulate_stream(platform, ARRIVALS, error=0.2, seed=11).events(True)
        assert first_divergence(a, b) is None

    def test_seed_change_is_localized_by_the_oracle(self, platform):
        a = simulate_stream(platform, ARRIVALS, error=0.2, seed=11).events(True)
        b = simulate_stream(platform, ARRIVALS, error=0.2, seed=12).events(True)
        div = first_divergence(a, b, labels=("seed11", "seed12"))
        assert div is not None
        assert "seed11" in div.describe()

    def test_policy_change_diverges_at_a_job_event(self, platform):
        a = simulate_stream(platform, ARRIVALS, seed=11, policy="fcfs")
        b = simulate_stream(
            platform, ARRIVALS, seed=11, policy="interleaved:slices=2"
        )
        div = first_divergence(a.events(), b.events(), labels=("fcfs", "ilv"))
        assert div is not None
        # The policy label rides on every job event's phase, so the fork
        # is immediate and the report names it.
        assert div.index == 0
        assert "phase" in div.describe()

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10)
    def test_divergence_is_reflexively_none(self, platform, seed):
        events = simulate_stream(
            platform, "poisson:rate=0.05,jobs=3,work=80", seed=seed,
            policy="partitioned:parts=2",
        ).events(True)
        assert first_divergence(events, events) is None
